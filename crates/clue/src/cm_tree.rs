//! The Clue Merged Tree (CM-Tree, §IV-B/IV-C, Fig 6).
//!
//! Two layers:
//!
//! * **CM-Tree1** — an MPT keyed by `sha3(clue)`. Each leaf value commits
//!   the clue's CM-Tree2: the subtree root plus its entry count. The
//!   CM-Tree1 root hash is recorded in every block as the verifiable
//!   lineage snapshot.
//! * **CM-Tree2** — one Shrubs accumulator per clue holding that clue's
//!   journal digests in append order.
//!
//! Insertion (§IV-B3) is two steps: append the journal digest to the
//! clue's CM-Tree2 (O(1) amortized thanks to Shrubs), then refresh the
//! clue's value in CM-Tree1 and re-hash the MPT path (O(depth)).
//!
//! Clue-oriented verification (§IV-C) follows the paper's S/P/R/V
//! pipeline: locate the target leaf set, compute the minimal non-leaf
//! proof-cell complement (the batch proof omits cells derivable from the
//! target leaves themselves), fetch CM-Tree1 path nodes, and validate both
//! layers — a proof is true only when *both* legs verify.

use crate::error::ClueError;
use crate::clue_key;
use ledgerdb_accumulator::shrubs::{Shrubs, ShrubsBatchProof};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::sha256::Sha256;
use ledgerdb_mpt::{verify_proof, Mpt, MptProof};
use std::collections::HashMap;

/// Whether verification runs inside the trusted server or at a distrusting
/// client from a self-contained proof (§II-C's two verification manners).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerifyLevel {
    /// Server-side: state is local, only recomputation is needed.
    Server,
    /// Client-side: every digest must come from the proof object.
    Client,
}

/// The commitment CM-Tree1 stores for a clue: subtree root + entry count.
///
/// Committing the count is what makes "the number of records" itself
/// verifiable — an N-lineage requirement the paper calls out in §IV-A.
fn commit_value(subtree_root: &Digest, count: u64) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update(b"ledgerdb.cmtree.commit.v1");
    h.update(&subtree_root.0);
    h.update(&count.to_be_bytes());
    let digest = h.finalize();
    let mut out = Vec::with_capacity(32 + 8 + 32);
    out.extend_from_slice(&subtree_root.0);
    out.extend_from_slice(&count.to_be_bytes());
    out.extend_from_slice(&digest);
    out
}

/// Parse a CM-Tree1 value back into (subtree root, count), checking its
/// internal binding digest.
fn parse_commit(value: &[u8]) -> Result<(Digest, u64), ClueError> {
    if value.len() != 72 {
        return Err(ClueError::MalformedProof("bad commit value length"));
    }
    let root = Digest(value[..32].try_into().expect("length checked"));
    let count = u64::from_be_bytes(value[32..40].try_into().expect("length checked"));
    let expect = commit_value(&root, count);
    if expect != value {
        return Err(ClueError::MalformedProof("commit binding digest mismatch"));
    }
    Ok((root, count))
}

/// A self-contained client-side clue proof.
#[derive(Clone, Debug)]
pub struct ClueProof {
    /// The clue being proven.
    pub clue: String,
    /// Version range `[lo, hi)` of the proven entries.
    pub range: (u64, u64),
    /// The proven `(version, journal digest)` entries.
    pub entries: Vec<(u64, Digest)>,
    /// CM-Tree2 batch proof for the entries.
    pub subtree: ShrubsBatchProof,
    /// CM-Tree1 inclusion proof of the clue's commitment value.
    pub mpt: MptProof,
}

impl ClueProof {
    /// Total digests/nodes carried — the Fig 9 cost metric.
    pub fn len(&self) -> usize {
        self.subtree.len() + self.mpt.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A point-in-time summary of the CM-Tree: the CM-Tree1 root (the same
/// value every block header records as its `clue_root`) plus tree-wide
/// totals. Captured into read snapshots at block seal so lineage
/// queries can be answered against the frozen roots without cloning the
/// MPT or the per-clue accumulators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CmRoot {
    /// CM-Tree1 root hash at capture time.
    pub root: Digest,
    /// Distinct clues at capture time.
    pub clue_count: u64,
    /// Total entries across all CM-Tree2 accumulators at capture time.
    pub entry_count: u64,
}

/// The clue merged tree.
#[derive(Clone, Debug, Default)]
pub struct CmTree {
    /// CM-Tree1.
    mpt: Mpt,
    /// CM-Tree2 accumulators, by clue string.
    subtrees: HashMap<String, Shrubs>,
    /// jsn references per clue, append order (the ListTx index).
    refs: HashMap<String, Vec<u64>>,
}

impl CmTree {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct clues.
    pub fn clue_count(&self) -> usize {
        self.subtrees.len()
    }

    /// Entry count for one clue.
    pub fn entry_count(&self, clue: &str) -> u64 {
        self.subtrees.get(clue).map(|s| s.leaf_count()).unwrap_or(0)
    }

    /// The jsn references recorded for a clue (ListTx).
    pub fn jsns(&self, clue: &str) -> &[u64] {
        self.refs.get(clue).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The CM-Tree1 root — recorded per block as the lineage snapshot.
    pub fn root(&self) -> Digest {
        self.mpt.root_hash()
    }

    /// Warm dirty CM-Tree1 node digests across `pool` so a following
    /// [`CmTree::root`] is a cache walk. CM-Tree2 (Shrubs) hashes
    /// eagerly at append, so the MPT is the only lazy hashing here;
    /// see [`Mpt::hash_subtrees_with`] for the determinism argument.
    pub fn hash_subtrees_with(&self, pool: &ledgerdb_pool::Pool) {
        self.mpt.hash_subtrees_with(pool);
    }

    /// Capture the frozen root summary for the snapshot read path.
    pub fn snapshot_root(&self) -> CmRoot {
        CmRoot {
            root: self.root(),
            clue_count: self.subtrees.len() as u64,
            entry_count: self.subtrees.values().map(|s| s.leaf_count()).sum(),
        }
    }

    /// §IV-B3 insertion: top-down CM-Tree2 append, bottom-up CM-Tree1
    /// re-hash.
    pub fn append(&mut self, clue: &str, jsn: u64, journal_digest: Digest) {
        let subtree = self.subtrees.entry(clue.to_string()).or_default();
        subtree.append(journal_digest);
        let value = commit_value(&subtree.root(), subtree.leaf_count());
        let key = clue_key(clue);
        self.mpt.insert(key.as_bytes(), value);
        self.refs.entry(clue.to_string()).or_default().push(jsn);
    }

    /// Export every clue's state for checkpoint serialization, sorted by
    /// clue so the encoding is canonical. Each entry carries the clue's
    /// CM-Tree2 accumulator and its jsn reference list; CM-Tree1 is
    /// derived state and is rebuilt on restore.
    pub fn export_parts(&self) -> Vec<(String, Shrubs, Vec<u64>)> {
        let mut out: Vec<(String, Shrubs, Vec<u64>)> = self
            .subtrees
            .iter()
            .map(|(clue, subtree)| {
                (clue.clone(), subtree.clone(), self.refs.get(clue).cloned().unwrap_or_default())
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Rebuild a CM-Tree from exported parts: re-insert each clue's
    /// commitment value into a fresh CM-Tree1 (insertion order does not
    /// affect the MPT root). The per-clue accumulators are restored
    /// verbatim, so no journal digest is re-hashed.
    pub fn from_parts(parts: Vec<(String, Shrubs, Vec<u64>)>) -> Result<CmTree, ClueError> {
        let mut tree = CmTree::new();
        for (clue, subtree, refs) in parts {
            if refs.len() as u64 != subtree.leaf_count() {
                return Err(ClueError::MalformedProof("clue refs do not match subtree size"));
            }
            let value = commit_value(&subtree.root(), subtree.leaf_count());
            tree.mpt.insert(clue_key(&clue).as_bytes(), value);
            tree.subtrees.insert(clue.clone(), subtree);
            tree.refs.insert(clue, refs);
        }
        Ok(tree)
    }

    /// Produce a client-side proof for clue versions `[lo, hi)`; pass
    /// `(0, entry_count)` to prove the entire lineage so far.
    pub fn prove_range(
        &self,
        clue: &str,
        lo: u64,
        hi: u64,
        journal_digest: impl Fn(u64) -> Option<Digest>,
    ) -> Result<ClueProof, ClueError> {
        let subtree = self
            .subtrees
            .get(clue)
            .ok_or_else(|| ClueError::UnknownClue(clue.to_string()))?;
        let count = subtree.leaf_count();
        if lo >= hi || hi > count {
            return Err(ClueError::BadRange { lo, hi, count });
        }
        let indices: Vec<u64> = (lo..hi).collect();
        let mut entries = Vec::with_capacity(indices.len());
        for &v in &indices {
            let d = journal_digest(v).ok_or(ClueError::MalformedProof("missing journal digest"))?;
            entries.push((v, d));
        }
        let batch = subtree.prove_batch(&indices)?;
        let key = clue_key(clue);
        let mpt_proof = self.mpt.prove(key.as_bytes())?;
        Ok(ClueProof {
            clue: clue.to_string(),
            range: (lo, hi),
            entries,
            subtree: batch,
            mpt: mpt_proof,
        })
    }

    /// Prove the entire clue lineage so far.
    pub fn prove_all(&self, clue: &str) -> Result<ClueProof, ClueError> {
        let subtree = self
            .subtrees
            .get(clue)
            .ok_or_else(|| ClueError::UnknownClue(clue.to_string()))?;
        let count = subtree.leaf_count();
        self.prove_range(clue, 0, count, |v| subtree.node(leaf_node_pos(v)))
    }

    /// §IV-C verification. With [`VerifyLevel::Client`], `cm_root` is the
    /// verifier's trusted CM-Tree1 root (from a block's LedgerInfo) and the
    /// whole proof object is re-derived. With [`VerifyLevel::Server`], local
    /// state replaces steps 4–5 (no proof-cell shipping).
    pub fn verify(
        &self,
        cm_root: &Digest,
        proof: &ClueProof,
        level: VerifyLevel,
    ) -> Result<(), ClueError> {
        match level {
            VerifyLevel::Client => Self::verify_client(cm_root, proof),
            VerifyLevel::Server => {
                // Server side: recompute the subtree commitment from local
                // state and compare (steps 1-3 + local validate).
                let subtree = self
                    .subtrees
                    .get(&proof.clue)
                    .ok_or_else(|| ClueError::UnknownClue(proof.clue.clone()))?;
                Shrubs::verify_batch(&subtree.root(), &proof.entries, &proof.subtree)?;
                if self.root() != *cm_root {
                    return Err(ClueError::SubtreeCommitMismatch);
                }
                Ok(())
            }
        }
    }

    /// Stateless client-side verification (the 6-step algorithm of §IV-C).
    pub fn verify_client(cm_root: &Digest, proof: &ClueProof) -> Result<(), ClueError> {
        // Steps 1-3 happened at proof construction; the client holds the
        // minimal proof-cell set. Step 6(1): validate entries against the
        // CM-Tree2 commitment carried in the CM-Tree1 value.
        let (subtree_root, count) = parse_commit(&proof.mpt.value)?;
        if proof.subtree.leaf_count != count {
            return Err(ClueError::MalformedProof("entry count does not match commitment"));
        }
        let (lo, hi) = proof.range;
        if lo >= hi || hi > count {
            return Err(ClueError::BadRange { lo, hi, count });
        }
        let expected: Vec<u64> = (lo..hi).collect();
        if proof.subtree.indices != expected {
            return Err(ClueError::MalformedProof("proof indices do not match range"));
        }
        Shrubs::verify_batch(&subtree_root, &proof.entries, &proof.subtree)?;
        // Step 6(2): validate the CM-Tree1 route to the trusted root.
        let key = clue_key(&proof.clue);
        if proof.mpt.key != key.as_bytes() {
            return Err(ClueError::MalformedProof("MPT key does not match clue"));
        }
        verify_proof(cm_root, &proof.mpt)?;
        Ok(())
    }
}

/// Post-order node position of leaf `v` (helper for in-tree digest lookup).
fn leaf_node_pos(v: u64) -> u64 {
    ledgerdb_accumulator::shrubs::leaf_pos(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerdb_crypto::hash_leaf;

    fn journal(i: u64) -> Digest {
        hash_leaf(format!("journal-{i}").as_bytes())
    }

    fn build(clues: &[(&str, u64)]) -> CmTree {
        let mut t = CmTree::new();
        let mut jsn = 0;
        for &(clue, n) in clues {
            for _ in 0..n {
                t.append(clue, jsn, journal(jsn));
                jsn += 1;
            }
        }
        t
    }

    #[test]
    fn append_and_counts() {
        let t = build(&[("DCI001", 3), ("SKU-9", 5)]);
        assert_eq!(t.clue_count(), 2);
        assert_eq!(t.entry_count("DCI001"), 3);
        assert_eq!(t.entry_count("SKU-9"), 5);
        assert_eq!(t.entry_count("missing"), 0);
        assert_eq!(t.jsns("DCI001"), &[0, 1, 2]);
    }

    #[test]
    fn prove_all_verifies_client_side() {
        let t = build(&[("DCI001", 3), ("SKU-9", 8), ("lot-42", 1)]);
        let root = t.root();
        for clue in ["DCI001", "SKU-9", "lot-42"] {
            let proof = t.prove_all(clue).unwrap();
            CmTree::verify_client(&root, &proof).unwrap_or_else(|e| panic!("{clue}: {e}"));
        }
    }

    #[test]
    fn prove_subrange() {
        let t = build(&[("art", 10)]);
        let root = t.root();
        let sub = t.subtrees.get("art").unwrap().clone();
        let proof = t
            .prove_range("art", 2, 6, |v| sub.node(leaf_node_pos(v)))
            .unwrap();
        assert_eq!(proof.entries.len(), 4);
        CmTree::verify_client(&root, &proof).unwrap();
    }

    #[test]
    fn server_side_verify() {
        let t = build(&[("k", 6)]);
        let root = t.root();
        let proof = t.prove_all("k").unwrap();
        t.verify(&root, &proof, VerifyLevel::Server).unwrap();
        t.verify(&root, &proof, VerifyLevel::Client).unwrap();
    }

    #[test]
    fn tampered_entry_fails() {
        let t = build(&[("k", 6)]);
        let root = t.root();
        let mut proof = t.prove_all("k").unwrap();
        proof.entries[2].1 = hash_leaf(b"evil");
        assert!(CmTree::verify_client(&root, &proof).is_err());
    }

    #[test]
    fn dropped_entry_fails() {
        // N-lineage must verify the *number* of records: removing one entry
        // must fail even if the remaining ones are genuine.
        let t = build(&[("k", 6)]);
        let root = t.root();
        let mut proof = t.prove_all("k").unwrap();
        proof.entries.pop();
        assert!(CmTree::verify_client(&root, &proof).is_err());
    }

    #[test]
    fn stale_root_fails() {
        let mut t = build(&[("k", 6)]);
        let proof = t.prove_all("k").unwrap();
        t.append("k", 100, journal(100));
        assert!(CmTree::verify_client(&t.root(), &proof).is_err());
    }

    #[test]
    fn cross_clue_proof_swap_fails() {
        let t = build(&[("a", 4), ("b", 4)]);
        let root = t.root();
        let mut proof = t.prove_all("a").unwrap();
        proof.clue = "b".to_string();
        assert!(CmTree::verify_client(&root, &proof).is_err());
    }

    #[test]
    fn unknown_clue_errors() {
        let t = build(&[("a", 1)]);
        assert!(matches!(t.prove_all("zzz"), Err(ClueError::UnknownClue(_))));
    }

    #[test]
    fn bad_range_errors() {
        let t = build(&[("a", 4)]);
        let sub = t.subtrees.get("a").unwrap().clone();
        let get = |v: u64| sub.node(leaf_node_pos(v));
        assert!(matches!(t.prove_range("a", 2, 2, get), Err(ClueError::BadRange { .. })));
        assert!(matches!(t.prove_range("a", 0, 5, get), Err(ClueError::BadRange { .. })));
    }

    #[test]
    fn commit_value_round_trip() {
        let root = hash_leaf(b"r");
        let v = commit_value(&root, 42);
        let (r, c) = parse_commit(&v).unwrap();
        assert_eq!(r, root);
        assert_eq!(c, 42);
    }

    #[test]
    fn commit_value_tamper_detected() {
        let root = hash_leaf(b"r");
        let mut v = commit_value(&root, 42);
        v[35] ^= 1; // flip a count byte
        assert!(parse_commit(&v).is_err());
    }

    #[test]
    fn verification_cost_independent_of_other_clues() {
        // The headline CM-Tree property (Fig 9a): proof size for one clue
        // does not grow with total ledger content.
        let small = build(&[("target", 8), ("other", 8)]);
        let mut big_spec: Vec<(String, u64)> = vec![("target".to_string(), 8)];
        for i in 0..200 {
            big_spec.push((format!("noise-{i}"), 5));
        }
        let big = {
            let mut t = CmTree::new();
            let mut jsn = 0;
            for (clue, n) in &big_spec {
                for _ in 0..*n {
                    t.append(clue, jsn, journal(jsn));
                    jsn += 1;
                }
            }
            t
        };
        let p_small = small.prove_all("target").unwrap();
        let p_big = big.prove_all("target").unwrap();
        // CM-Tree2 leg identical; only the MPT path may grow slightly
        // (log16 of clue count).
        assert_eq!(p_small.subtree.len(), p_big.subtree.len());
        assert!(p_big.mpt.len() <= p_small.mpt.len() + 4);
    }
}
