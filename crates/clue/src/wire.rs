//! Wire encodings for clue proofs (CM-Tree and ccMPT), enabling real
//! client-side verification across a trust boundary.

use crate::ccmpt::CcMptProof;
use crate::cm_tree::ClueProof;
use ledgerdb_accumulator::shrubs::ShrubsBatchProof;
use ledgerdb_accumulator::tim::TimProof;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::wire::{Reader, Wire, WireError, Writer};
use ledgerdb_mpt::MptProof;

impl Wire for ClueProof {
    fn encode(&self, w: &mut Writer) {
        self.clue.encode(w);
        w.put_u64(self.range.0);
        w.put_u64(self.range.1);
        self.entries.encode(w);
        self.subtree.encode(w);
        self.mpt.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ClueProof {
            clue: String::decode(r)?,
            range: (r.get_u64()?, r.get_u64()?),
            entries: Vec::decode(r)?,
            subtree: ShrubsBatchProof::decode(r)?,
            mpt: MptProof::decode(r)?,
        })
    }
}

impl Wire for CcMptProof {
    fn encode(&self, w: &mut Writer) {
        self.clue.encode(w);
        self.counter.encode(w);
        w.put_u64(self.entries.len() as u64);
        for (jsn, digest, proof) in &self.entries {
            w.put_u64(*jsn);
            digest.encode(w);
            proof.0.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let clue = String::decode(r)?;
        let counter = MptProof::decode(r)?;
        let len = r.get_seq_len(48)?;
        let mut entries = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            let jsn = r.get_u64()?;
            let digest = Digest::decode(r)?;
            let proof = TimProof(ledgerdb_accumulator::shrubs::ShrubsProof::decode(r)?);
            entries.push((jsn, digest, proof));
        }
        Ok(CcMptProof { clue, counter, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccmpt::CcMpt;
    use crate::cm_tree::CmTree;
    use ledgerdb_accumulator::tim::TimAccumulator;
    use ledgerdb_crypto::hash_leaf;

    #[test]
    fn clue_proof_round_trip_verifies() {
        let mut cm = CmTree::new();
        for i in 0..12u64 {
            cm.append("asset", i, hash_leaf(&i.to_be_bytes()));
        }
        let proof = cm.prove_all("asset").unwrap();
        let decoded = ClueProof::from_wire(&proof.to_wire()).unwrap();
        CmTree::verify_client(&cm.root(), &decoded).unwrap();
    }

    #[test]
    fn ccmpt_proof_round_trip_verifies() {
        let mut cc = CcMpt::new();
        let mut ledger = TimAccumulator::new();
        let mut digests = Vec::new();
        for i in 0..8u64 {
            let d = hash_leaf(&i.to_be_bytes());
            cc.append("k", i);
            ledger.append(d);
            digests.push(d);
        }
        let proof = cc.prove("k", &ledger, |j| digests.get(j as usize).copied()).unwrap();
        let decoded = CcMptProof::from_wire(&proof.to_wire()).unwrap();
        CcMpt::verify(&cc.root(), &ledger.root(), &decoded).unwrap();
    }

    #[test]
    fn tampered_wire_bytes_fail_verification() {
        let mut cm = CmTree::new();
        for i in 0..6u64 {
            cm.append("a", i, hash_leaf(&i.to_be_bytes()));
        }
        let mut bytes = cm.prove_all("a").unwrap().to_wire();
        let idx = bytes.len() - 10;
        bytes[idx] ^= 0x55;
        match ClueProof::from_wire(&bytes) {
            Ok(decoded) => assert!(CmTree::verify_client(&cm.root(), &decoded).is_err()),
            Err(_) => {} // Structural rejection is fine too.
        }
    }
}
