//! The clue-counter MPT (ccMPT) — the earlier-design baseline (§IV-B1).
//!
//! ccMPT stores only a per-clue counter `m` in the MPT; the journals
//! themselves are *not* separately accumulated. Clue verification must
//! therefore (1) prove the counter via the MPT and (2) prove each of the
//! `m` journals individually against the *global* ledger accumulator —
//! `O(m · log n)` where `n` is the total journal count. Fig 9 measures
//! exactly this gap against the CM-Tree.

use crate::clue_key;
use crate::error::ClueError;
use ledgerdb_accumulator::tim::{TimAccumulator, TimProof};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_mpt::{verify_proof, Mpt, MptProof};
use std::collections::HashMap;

/// A ccMPT clue proof: counter proof + one global-accumulator proof per
/// journal (the linear-expansion cost the CM-Tree removes).
#[derive(Clone, Debug)]
pub struct CcMptProof {
    pub clue: String,
    /// MPT proof that the clue's counter is `entries.len()`.
    pub counter: MptProof,
    /// For each journal: (jsn, digest, proof against the ledger root).
    pub entries: Vec<(u64, Digest, TimProof)>,
}

impl CcMptProof {
    /// Total digests/nodes carried.
    pub fn len(&self) -> usize {
        self.counter.len() + self.entries.iter().map(|(_, _, p)| p.len()).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The clue-counter MPT baseline index.
#[derive(Clone, Debug, Default)]
pub struct CcMpt {
    mpt: Mpt,
    jsns: HashMap<String, Vec<u64>>,
}

fn counter_value(m: u64) -> Vec<u8> {
    m.to_be_bytes().to_vec()
}

impl CcMpt {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one journal for `clue` (write-intensive: only the counter
    /// and jsn list are touched).
    pub fn append(&mut self, clue: &str, jsn: u64) {
        let list = self.jsns.entry(clue.to_string()).or_default();
        list.push(jsn);
        let key = clue_key(clue);
        self.mpt.insert(key.as_bytes(), counter_value(list.len() as u64));
    }

    /// The MPT root (recorded per block, like CM-Tree1's).
    pub fn root(&self) -> Digest {
        self.mpt.root_hash()
    }

    /// Entry count for a clue.
    pub fn entry_count(&self, clue: &str) -> u64 {
        self.jsns.get(clue).map(|v| v.len() as u64).unwrap_or(0)
    }

    /// The jsns recorded for a clue.
    pub fn jsns(&self, clue: &str) -> &[u64] {
        self.jsns.get(clue).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Build the full clue proof: counter + per-journal ledger proofs.
    pub fn prove(
        &self,
        clue: &str,
        ledger: &TimAccumulator,
        journal_digest: impl Fn(u64) -> Option<Digest>,
    ) -> Result<CcMptProof, ClueError> {
        let jsns = self
            .jsns
            .get(clue)
            .ok_or_else(|| ClueError::UnknownClue(clue.to_string()))?;
        let key = clue_key(clue);
        let counter = self.mpt.prove(key.as_bytes())?;
        let mut entries = Vec::with_capacity(jsns.len());
        for &jsn in jsns {
            let digest =
                journal_digest(jsn).ok_or(ClueError::MalformedProof("missing journal digest"))?;
            let proof = ledger.prove(jsn)?;
            entries.push((jsn, digest, proof));
        }
        Ok(CcMptProof { clue: clue.to_string(), counter, entries })
    }

    /// Client-side verification: counter via `ccmpt_root`, then every
    /// journal against `ledger_root`.
    pub fn verify(
        ccmpt_root: &Digest,
        ledger_root: &Digest,
        proof: &CcMptProof,
    ) -> Result<(), ClueError> {
        let key = clue_key(&proof.clue);
        if proof.counter.key != key.as_bytes() {
            return Err(ClueError::MalformedProof("MPT key does not match clue"));
        }
        if proof.counter.value != counter_value(proof.entries.len() as u64) {
            return Err(ClueError::MalformedProof("counter does not match entry count"));
        }
        verify_proof(ccmpt_root, &proof.counter)?;
        for (_, digest, tim_proof) in &proof.entries {
            TimAccumulator::verify(ledger_root, digest, tim_proof)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerdb_crypto::hash_leaf;

    fn setup(clues: &[(&str, u64)]) -> (CcMpt, TimAccumulator, Vec<Digest>) {
        let mut cc = CcMpt::new();
        let mut ledger = TimAccumulator::new();
        let mut digests = Vec::new();
        let mut jsn = 0u64;
        for &(clue, n) in clues {
            for _ in 0..n {
                let d = hash_leaf(format!("j{jsn}").as_bytes());
                ledger.append(d);
                digests.push(d);
                cc.append(clue, jsn);
                jsn += 1;
            }
        }
        (cc, ledger, digests)
    }

    #[test]
    fn prove_verify_round_trip() {
        let (cc, ledger, ds) = setup(&[("a", 5), ("b", 3)]);
        for clue in ["a", "b"] {
            let proof = cc.prove(clue, &ledger, |j| ds.get(j as usize).copied()).unwrap();
            CcMpt::verify(&cc.root(), &ledger.root(), &proof).unwrap();
        }
    }

    #[test]
    fn dropped_journal_fails_counter() {
        let (cc, ledger, ds) = setup(&[("a", 5)]);
        let mut proof = cc.prove("a", &ledger, |j| ds.get(j as usize).copied()).unwrap();
        proof.entries.pop();
        assert!(CcMpt::verify(&cc.root(), &ledger.root(), &proof).is_err());
    }

    #[test]
    fn tampered_journal_fails() {
        let (cc, ledger, ds) = setup(&[("a", 5)]);
        let mut proof = cc.prove("a", &ledger, |j| ds.get(j as usize).copied()).unwrap();
        proof.entries[0].1 = hash_leaf(b"evil");
        assert!(CcMpt::verify(&cc.root(), &ledger.root(), &proof).is_err());
    }

    #[test]
    fn proof_cost_grows_with_ledger() {
        // ccMPT's weakness: the same 5-entry clue costs more to prove on a
        // bigger ledger.
        let (cc_small, ledger_small, ds_small) = setup(&[("a", 5)]);
        let (cc_big, ledger_big, ds_big) = setup(&[("a", 5), ("noise", 2000)]);
        let p_small = cc_small
            .prove("a", &ledger_small, |j| ds_small.get(j as usize).copied())
            .unwrap();
        let p_big = cc_big
            .prove("a", &ledger_big, |j| ds_big.get(j as usize).copied())
            .unwrap();
        assert!(p_big.len() > p_small.len());
    }

    #[test]
    fn unknown_clue_errors() {
        let (cc, ledger, ds) = setup(&[("a", 1)]);
        assert!(cc.prove("zzz", &ledger, |j| ds.get(j as usize).copied()).is_err());
    }
}
