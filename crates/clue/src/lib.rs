//! Verifiable N-lineage: clues and the structures that index them (§IV).
//!
//! A *clue* is a user-defined label ("DCI001") that threads a business
//! lineage through the ledger: every related journal is appended with the
//! clue, and clue-oriented verification validates *all* relevant journals
//! — including their count — in one shot.
//!
//! Three implementations are provided, matching the paper's evaluation:
//!
//! * [`cm_tree`] — the paper's contribution: a two-layer *clue merged
//!   tree*. `CM-Tree1` is an MPT keyed by `sha3(clue)`; each leaf value
//!   commits the clue's own `CM-Tree2` Shrubs accumulator. Verification
//!   cost is `O(m)` in the clue's entry count, independent of total
//!   ledger size (Fig 9).
//! * [`ccmpt`] — the earlier *clue-counter MPT* baseline: the MPT stores
//!   only a counter `m`; each of the `m` journals must additionally be
//!   proven against the global ledger accumulator, costing
//!   `O(m · log n)`.
//! * [`csl`] — the write-optimized clue SkipList index of the earlier
//!   paper: O(1) appends and `O(log n)` reads, no native verification.

pub mod ccmpt;
pub mod cm_tree;
pub mod csl;
pub mod error;
pub mod wire;

pub use ccmpt::{CcMpt, CcMptProof};
pub use cm_tree::{ClueProof, CmRoot, CmTree, VerifyLevel};
pub use csl::ClueSkipList;
pub use error::ClueError;

use ledgerdb_crypto::{sha3_256, Digest};

/// Scatter a client-specified clue string into a balanced 32-byte trie key
/// (the paper uses SHA-3 "to avoid excessive compression and keep the tree
/// balanced", §IV-B2).
pub fn clue_key(clue: &str) -> Digest {
    sha3_256(clue.as_bytes())
}
