//! The write-optimized clue SkipList (cSL) index from the earlier
//! LedgerDB paper — O(1) amortized insertion at the tail and O(log n)
//! reads. Kept as the third comparison point: fast writes, no native
//! verification (which is what motivated the CM-Tree).

use std::collections::HashMap;

const MAX_LEVEL: usize = 16;

/// A node in the skip list: a jsn plus forward pointers per level.
struct SkipNode {
    jsn: u64,
    forward: Vec<Option<usize>>,
}

/// An append-only skip list over monotonically increasing jsns.
pub struct JsnSkipList {
    nodes: Vec<SkipNode>,
    head: Vec<Option<usize>>,
    /// Per-level index of the current tail node (for O(1) appends).
    tails: Vec<Option<usize>>,
    /// Deterministic xorshift state for level selection.
    rng_state: u64,
    len: usize,
}

impl Default for JsnSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl JsnSkipList {
    pub fn new() -> Self {
        JsnSkipList {
            nodes: Vec::new(),
            head: vec![None; MAX_LEVEL],
            tails: vec![None; MAX_LEVEL],
            rng_state: 0x9e3779b97f4a7c15,
            len: 0,
        }
    }

    fn random_level(&mut self) -> usize {
        // xorshift64*; deterministic so the index is reproducible.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let bits = x.wrapping_mul(0x2545F4914F6CDD1D);
        ((bits.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    }

    /// Append a jsn (must exceed the current maximum). O(1) amortized:
    /// only tail pointers are touched.
    pub fn append(&mut self, jsn: u64) {
        debug_assert!(
            self.nodes.last().map(|n| n.jsn < jsn).unwrap_or(true),
            "jsns must be appended in increasing order"
        );
        let level = self.random_level();
        let idx = self.nodes.len();
        self.nodes.push(SkipNode { jsn, forward: vec![None; level] });
        for l in 0..level {
            match self.tails[l] {
                Some(tail) => self.nodes[tail].forward[l] = Some(idx),
                None => self.head[l] = Some(idx),
            }
            self.tails[l] = Some(idx);
        }
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(log n) search: does `jsn` exist in the list?
    pub fn contains(&self, jsn: u64) -> bool {
        self.seek(jsn).map(|i| self.nodes[i].jsn == jsn).unwrap_or(false)
    }

    /// Index of the last node with `node.jsn <= jsn`, using tower descent.
    fn seek(&self, jsn: u64) -> Option<usize> {
        let mut current: Option<usize> = None;
        for l in (0..MAX_LEVEL).rev() {
            let mut next = match current {
                Some(c) if l < self.nodes[c].forward.len() => self.nodes[c].forward[l],
                Some(_) => continue,
                None => self.head[l],
            };
            while let Some(n) = next {
                if self.nodes[n].jsn <= jsn {
                    current = Some(n);
                    next = self.nodes[n].forward.get(l).copied().flatten();
                } else {
                    break;
                }
            }
        }
        current
    }

    /// All jsns in `[lo, hi]`, ascending.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut out = Vec::new();
        // Find the first node >= lo by seeking lo-1 then stepping.
        let mut idx = if lo == 0 {
            self.head[0]
        } else {
            match self.seek(lo - 1) {
                Some(i) => self.nodes[i].forward.first().copied().flatten(),
                None => self.head[0],
            }
        };
        while let Some(i) = idx {
            let jsn = self.nodes[i].jsn;
            if jsn > hi {
                break;
            }
            if jsn >= lo {
                out.push(jsn);
            }
            idx = self.nodes[i].forward.first().copied().flatten();
        }
        out
    }

    /// All jsns, ascending.
    pub fn iter_all(&self) -> Vec<u64> {
        self.range(0, u64::MAX)
    }
}

/// The per-clue skip-list index.
#[derive(Default)]
pub struct ClueSkipList {
    lists: HashMap<String, JsnSkipList>,
}

impl ClueSkipList {
    pub fn new() -> Self {
        Self::default()
    }

    /// O(1) amortized insertion of a journal reference under a clue.
    pub fn append(&mut self, clue: &str, jsn: u64) {
        self.lists.entry(clue.to_string()).or_default().append(jsn);
    }

    /// Entry count for a clue.
    pub fn entry_count(&self, clue: &str) -> usize {
        self.lists.get(clue).map(|l| l.len()).unwrap_or(0)
    }

    /// O(log n) membership test.
    pub fn contains(&self, clue: &str, jsn: u64) -> bool {
        self.lists.get(clue).map(|l| l.contains(jsn)).unwrap_or(false)
    }

    /// All jsns for a clue within `[lo, hi]`.
    pub fn range(&self, clue: &str, lo: u64, hi: u64) -> Vec<u64> {
        self.lists.get(clue).map(|l| l.range(lo, hi)).unwrap_or_default()
    }

    /// All jsns for a clue (ListTx).
    pub fn list(&self, clue: &str) -> Vec<u64> {
        self.lists.get(clue).map(|l| l.iter_all()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_contains() {
        let mut sl = JsnSkipList::new();
        for j in [1u64, 5, 9, 100, 1000] {
            sl.append(j);
        }
        assert_eq!(sl.len(), 5);
        for j in [1u64, 5, 9, 100, 1000] {
            assert!(sl.contains(j), "{j}");
        }
        for j in [0u64, 2, 99, 999, 1001] {
            assert!(!sl.contains(j), "{j}");
        }
    }

    #[test]
    fn range_queries() {
        let mut sl = JsnSkipList::new();
        for j in (0..100u64).map(|i| i * 3) {
            sl.append(j);
        }
        assert_eq!(sl.range(0, 9), vec![0, 3, 6, 9]);
        assert_eq!(sl.range(10, 14), vec![12]);
        assert_eq!(sl.range(298, 500), vec![]);
        assert_eq!(sl.iter_all().len(), 100);
    }

    #[test]
    fn large_list_lookup() {
        let mut sl = JsnSkipList::new();
        for j in 0..10_000u64 {
            sl.append(j * 2);
        }
        assert!(sl.contains(9_998));
        assert!(!sl.contains(9_999));
        assert!(sl.contains(0));
        assert!(sl.contains(19_998));
    }

    #[test]
    fn clue_index() {
        let mut idx = ClueSkipList::new();
        idx.append("a", 1);
        idx.append("a", 7);
        idx.append("b", 3);
        assert_eq!(idx.entry_count("a"), 2);
        assert_eq!(idx.entry_count("b"), 1);
        assert_eq!(idx.entry_count("c"), 0);
        assert!(idx.contains("a", 7));
        assert!(!idx.contains("b", 7));
        assert_eq!(idx.list("a"), vec![1, 7]);
        assert_eq!(idx.range("a", 2, 10), vec![7]);
    }

    #[test]
    fn empty_list() {
        let sl = JsnSkipList::new();
        assert!(sl.is_empty());
        assert!(!sl.contains(0));
        assert!(sl.range(0, 100).is_empty());
    }
}
