//! Error type for clue-layer operations.

use ledgerdb_accumulator::AccumulatorError;
use ledgerdb_mpt::MptError;
use std::fmt;

/// Errors surfaced by clue indexes and their verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClueError {
    /// The clue has no entries on the ledger.
    UnknownClue(String),
    /// A requested version range was empty or out of bounds.
    BadRange { lo: u64, hi: u64, count: u64 },
    /// The CM-Tree1 (MPT) leg of a proof failed.
    Mpt(MptError),
    /// The CM-Tree2 (accumulator) leg of a proof failed.
    Accumulator(AccumulatorError),
    /// The committed CM-Tree2 root in CM-Tree1 did not match.
    SubtreeCommitMismatch,
    /// A proof was structurally malformed.
    MalformedProof(&'static str),
}

impl fmt::Display for ClueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClueError::UnknownClue(c) => write!(f, "clue '{c}' has no entries"),
            ClueError::BadRange { lo, hi, count } => {
                write!(f, "bad version range [{lo}, {hi}) for clue with {count} entries")
            }
            ClueError::Mpt(e) => write!(f, "CM-Tree1 proof failure: {e}"),
            ClueError::Accumulator(e) => write!(f, "CM-Tree2 proof failure: {e}"),
            ClueError::SubtreeCommitMismatch => {
                write!(f, "CM-Tree2 root does not match CM-Tree1 commitment")
            }
            ClueError::MalformedProof(w) => write!(f, "malformed clue proof: {w}"),
        }
    }
}

impl std::error::Error for ClueError {}

impl From<MptError> for ClueError {
    fn from(e: MptError) -> Self {
        ClueError::Mpt(e)
    }
}

impl From<AccumulatorError> for ClueError {
    fn from(e: AccumulatorError) -> Self {
        ClueError::Accumulator(e)
    }
}
