//! Crash-atomic checkpoint storage.
//!
//! A checkpoint is a set of **content-addressed segment files** (named by
//! the sha256 of their bytes), one **manifest** (also content-addressed —
//! its digest is the checkpoint's snapshot id), and a `HEAD` file naming
//! the current manifest. The commit protocol is the classic
//! tmp-write → fsync → atomic-rename ladder:
//!
//! 1. every segment: write `<hex>.seg.tmp`, fsync, rename to `<hex>.seg`;
//! 2. the manifest: write `<hex>.manifest.tmp`, fsync, rename;
//! 3. fsync the checkpoint directory (renames durable);
//! 4. `HEAD`: write `HEAD.tmp`, fsync, rename over `HEAD`, fsync the dir.
//!
//! Crash-atomicity argument: `HEAD` is only ever replaced by an atomic
//! rename of a fully-fsynced temporary, *after* everything it references
//! is itself durable — so at every kill point `HEAD` either still names
//! the previous complete checkpoint, names the new complete checkpoint,
//! or is absent (first checkpoint never committed). Torn segment or
//! manifest writes can only exist under `*.tmp` names or (never) under a
//! final name, because final names are reached by rename alone. Loaders
//! ignore temporaries and verify every content address on read.
//!
//! All durability-relevant operations route through [`CkptIo`], which
//! numbers them deterministically and can simulate a kill at any one —
//! the crash-point harness enumerates the ops of a dry run and replays
//! the workload once per op with a crash armed there.

use crate::StorageError;
use ledgerdb_crypto::sync::Mutex;
use ledgerdb_crypto::{sha256, Digest};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The kind of one checkpoint-path I/O operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoKind {
    /// Create-and-write of a whole file.
    Write,
    /// fdatasync of a file.
    Sync,
    /// Atomic rename.
    Rename,
    /// fsync of a directory (making renames durable).
    SyncDir,
}

/// A simulated kill at one numbered operation.
#[derive(Clone, Copy, Debug)]
pub struct CrashPoint {
    /// 1-based operation number at which the process "dies".
    pub op: u64,
    /// For [`IoKind::Write`] ops: leave this many bytes of the file on
    /// disk before dying (a torn write). `None` = die before any effect.
    pub torn_keep: Option<usize>,
}

/// Deterministic I/O router for the checkpoint path.
///
/// Every durability-relevant operation (write / fsync / rename /
/// dir-fsync) calls [`CkptIo`], which assigns it a 1-based sequence
/// number and records its kind. When a [`CrashPoint`] is armed, the
/// matching operation performs its partial effect (nothing, or a torn
/// prefix for writes) and returns an I/O error — the caller propagates
/// it without cleanup, exactly like a kill.
#[derive(Default)]
pub struct CkptIo {
    ops: AtomicU64,
    log: Mutex<Vec<IoKind>>,
    armed: Mutex<Option<CrashPoint>>,
}

impl CkptIo {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a crash at operation `op` (counting from the *current* count).
    pub fn arm(&self, point: CrashPoint) {
        *self.armed.lock() = Some(point);
    }

    pub fn disarm(&self) {
        *self.armed.lock() = None;
    }

    /// Operations performed so far.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Kinds of every operation performed so far, in order — the
    /// crash-point harness enumerates these after a dry run.
    pub fn op_kinds(&self) -> Vec<IoKind> {
        self.log.lock().clone()
    }

    fn crash_err() -> StorageError {
        StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::Other,
            "injected crash on checkpoint path",
        ))
    }

    /// Number the next op; `Some(point)` if the armed crash fires on it.
    fn step(&self, kind: IoKind) -> Option<CrashPoint> {
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        self.log.lock().push(kind);
        let armed = *self.armed.lock();
        armed.filter(|p| p.op == n)
    }

    /// Create `path` and write `bytes` (no fsync — that is its own op).
    pub fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        if let Some(point) = self.step(IoKind::Write) {
            if let Some(keep) = point.torn_keep {
                let mut f = File::create(path)?;
                f.write_all(&bytes[..keep.min(bytes.len())])?;
            }
            return Err(Self::crash_err());
        }
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        Ok(())
    }

    /// fdatasync `path`.
    pub fn sync_file(&self, path: &Path) -> Result<(), StorageError> {
        if self.step(IoKind::Sync).is_some() {
            return Err(Self::crash_err());
        }
        OpenOptions::new().read(true).open(path)?.sync_data()?;
        Ok(())
    }

    /// Atomically rename `from` to `to`.
    pub fn rename(&self, from: &Path, to: &Path) -> Result<(), StorageError> {
        if self.step(IoKind::Rename).is_some() {
            return Err(Self::crash_err());
        }
        fs::rename(from, to)?;
        Ok(())
    }

    /// fsync the directory itself, making completed renames durable.
    pub fn sync_dir(&self, dir: &Path) -> Result<(), StorageError> {
        if self.step(IoKind::SyncDir).is_some() {
            return Err(Self::crash_err());
        }
        File::open(dir)?.sync_all()?;
        Ok(())
    }
}

const HEAD_FILE: &str = "HEAD";

fn seg_name(digest: &Digest) -> String {
    format!("{}.seg", digest.to_hex())
}

fn manifest_name(digest: &Digest) -> String {
    format!("{}.manifest", digest.to_hex())
}

/// Content-addressed checkpoint directory (`<ledger dir>/checkpoints`).
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) the checkpoint directory.
    pub fn open(dir: &Path) -> Result<Self, StorageError> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointStore { dir: dir.to_path_buf() })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Commit one file under its final name: tmp-write → fsync → rename.
    /// Returns the bytes written (0 when the content-addressed file
    /// already exists from an earlier checkpoint and is reused).
    fn commit_file(&self, name: &str, bytes: &[u8], io: &CkptIo) -> Result<u64, StorageError> {
        let path = self.dir.join(name);
        if path.exists() {
            // Final names are only ever reached by renaming a fully
            // fsynced temporary, so an existing file is complete.
            return Ok(0);
        }
        let tmp = self.dir.join(format!("{name}.tmp"));
        io.write_file(&tmp, bytes)?;
        io.sync_file(&tmp)?;
        io.rename(&tmp, &path)?;
        Ok(bytes.len() as u64)
    }

    /// Publish a checkpoint: write every segment and the manifest
    /// content-addressed, then flip `HEAD`. The manifest bytes are built
    /// by `manifest` from the `(role, digest)` list of the segments just
    /// written. Returns `(snapshot id, bytes written)` — the snapshot id
    /// is the manifest's own digest.
    ///
    /// On error the partial state is left exactly as a kill would leave
    /// it; a later publish or [`CheckpointStore::gc`] cleans up.
    pub fn publish(
        &self,
        segments: &[(String, Vec<u8>)],
        manifest: impl FnOnce(&[(String, Digest)]) -> Vec<u8>,
        io: &CkptIo,
    ) -> Result<(Digest, u64), StorageError> {
        let mut refs = Vec::with_capacity(segments.len());
        let mut bytes_written = 0u64;
        for (role, bytes) in segments {
            let digest = sha256(bytes);
            bytes_written += self.commit_file(&seg_name(&digest), bytes, io)?;
            refs.push((role.clone(), digest));
        }
        let manifest_bytes = manifest(&refs);
        let snapshot_id = sha256(&manifest_bytes);
        bytes_written += self.commit_file(&manifest_name(&snapshot_id), &manifest_bytes, io)?;
        // One directory barrier covers every rename above.
        io.sync_dir(&self.dir)?;

        // Flip HEAD last: tmp-write → fsync → atomic rename → dir fsync.
        let head_tmp = self.dir.join("HEAD.tmp");
        io.write_file(&head_tmp, format!("{}\n", snapshot_id.to_hex()).as_bytes())?;
        io.sync_file(&head_tmp)?;
        io.rename(&head_tmp, &self.dir.join(HEAD_FILE))?;
        io.sync_dir(&self.dir)?;
        Ok((snapshot_id, bytes_written))
    }

    /// Read `HEAD` and the manifest it names. `Ok(None)` when no
    /// checkpoint was ever committed. Any complete-but-wrong content is
    /// corruption (`HEAD` only ever points at fully-fsynced manifests),
    /// never a recoverable torn state.
    pub fn load_head(&self) -> Result<Option<(Digest, Vec<u8>)>, StorageError> {
        let head = match fs::read_to_string(self.dir.join(HEAD_FILE)) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let snapshot_id = Digest::from_hex(head.trim())
            .ok_or(StorageError::Corrupt("checkpoint HEAD is not a digest"))?;
        let bytes = match fs::read(self.dir.join(manifest_name(&snapshot_id))) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::Corrupt("checkpoint HEAD names a missing manifest"))
            }
            Err(e) => return Err(e.into()),
        };
        if sha256(&bytes) != snapshot_id {
            return Err(StorageError::Corrupt("checkpoint manifest digest mismatch"));
        }
        Ok(Some((snapshot_id, bytes)))
    }

    /// Read one segment, verifying its content address.
    pub fn read_segment(&self, digest: &Digest) -> Result<Vec<u8>, StorageError> {
        let bytes = match fs::read(self.dir.join(seg_name(digest))) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::Corrupt("checkpoint segment missing"))
            }
            Err(e) => return Err(e.into()),
        };
        if sha256(&bytes) != *digest {
            return Err(StorageError::Corrupt("checkpoint segment digest mismatch"));
        }
        Ok(bytes)
    }

    /// Best-effort cleanup after a successful publish: drop temporaries
    /// and any segment/manifest the current checkpoint does not
    /// reference. Failures are ignored — a crash mid-gc leaves only
    /// orphans, which the next gc removes.
    pub fn gc(&self, keep_manifest: &Digest, keep_segments: &[Digest]) {
        let keep: std::collections::HashSet<String> = keep_segments
            .iter()
            .map(seg_name)
            .chain(std::iter::once(manifest_name(keep_manifest)))
            .chain(std::iter::once(HEAD_FILE.to_string()))
            .collect();
        let Ok(entries) = fs::read_dir(&self.dir) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !keep.contains(name) {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ledgerdb-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        dir
    }

    fn publish_two_segments(store: &CheckpointStore, io: &CkptIo) -> (Digest, u64) {
        store
            .publish(
                &[("alpha".into(), b"alpha bytes".to_vec()), ("beta".into(), b"beta".to_vec())],
                |refs| {
                    let mut m = Vec::new();
                    for (role, d) in refs {
                        m.extend_from_slice(role.as_bytes());
                        m.extend_from_slice(&d.0);
                    }
                    m
                },
                io,
            )
            .unwrap()
    }

    #[test]
    fn publish_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_head().unwrap().is_none());
        let io = CkptIo::new();
        let (id, bytes) = publish_two_segments(&store, &io);
        assert!(bytes > 0);
        let (loaded_id, manifest) = store.load_head().unwrap().unwrap();
        assert_eq!(loaded_id, id);
        assert_eq!(sha256(&manifest), id);
        let seg = store.read_segment(&sha256(b"alpha bytes")).unwrap();
        assert_eq!(seg, b"alpha bytes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn republish_reuses_content_addressed_files() {
        let dir = temp_dir("dedup");
        let store = CheckpointStore::open(&dir).unwrap();
        let io = CkptIo::new();
        let (id1, b1) = publish_two_segments(&store, &io);
        let (id2, b2) = publish_two_segments(&store, &io);
        assert_eq!(id1, id2);
        assert!(b1 > 0);
        assert_eq!(b2, 0, "identical content republished writes nothing");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_at_every_op_leaves_head_valid_or_absent() {
        // Dry run to count ops, then kill at each one: HEAD must always
        // load as the previous complete checkpoint or as absent.
        let dry_dir = temp_dir("chaos-dry");
        let dry = CheckpointStore::open(&dry_dir).unwrap();
        let io = CkptIo::new();
        publish_two_segments(&dry, &io);
        let total = io.op_count();
        let kinds = io.op_kinds();
        assert!(total >= 10, "expected segments+manifest+HEAD ladders, got {total}");
        std::fs::remove_dir_all(&dry_dir).ok();

        for op in 1..=total {
            let torn_variants: &[Option<usize>] = if kinds[(op - 1) as usize] == IoKind::Write {
                &[None, Some(0), Some(3)]
            } else {
                &[None]
            };
            for &torn in torn_variants {
                let dir = temp_dir(&format!("chaos-{op}-{}", torn.map_or(9999, |k| k)));
                std::fs::remove_dir_all(&dir).ok();
                let store = CheckpointStore::open(&dir).unwrap();
                let io = CkptIo::new();
                io.arm(CrashPoint { op, torn_keep: torn });
                let r = store.publish(
                    &[("alpha".into(), b"alpha bytes".to_vec()), ("beta".into(), b"beta".to_vec())],
                    |refs| {
                        let mut m = Vec::new();
                        for (role, d) in refs {
                            m.extend_from_slice(role.as_bytes());
                            m.extend_from_slice(&d.0);
                        }
                        m
                    },
                    &io,
                );
                assert!(r.is_err(), "armed crash at op {op} must surface as an error");
                // "Reboot": a fresh store over the same directory.
                let rebooted = CheckpointStore::open(&dir).unwrap();
                match rebooted.load_head().unwrap() {
                    None => {}
                    Some((id, manifest)) => {
                        assert_eq!(sha256(&manifest), id, "HEAD names a complete manifest");
                    }
                }
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }

    #[test]
    fn second_publish_crash_preserves_first_head() {
        let dir = temp_dir("preserve");
        std::fs::remove_dir_all(&dir).ok();
        let store = CheckpointStore::open(&dir).unwrap();
        let io = CkptIo::new();
        let (id1, _) = publish_two_segments(&store, &io);
        // Crash the very first op of a different second checkpoint.
        let io2 = CkptIo::new();
        io2.arm(CrashPoint { op: 1, torn_keep: Some(2) });
        let r = store.publish(
            &[("gamma".into(), b"new content".to_vec())],
            |refs| refs[0].1 .0.to_vec(),
            &io2,
        );
        assert!(r.is_err());
        let (id, _) = store.load_head().unwrap().unwrap();
        assert_eq!(id, id1, "old HEAD survives a crashed republish");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_drops_orphans_keeps_current() {
        let dir = temp_dir("gc");
        std::fs::remove_dir_all(&dir).ok();
        let store = CheckpointStore::open(&dir).unwrap();
        let io = CkptIo::new();
        let (id, _) = publish_two_segments(&store, &io);
        std::fs::write(dir.join("deadbeef.seg"), b"orphan").unwrap();
        std::fs::write(dir.join("junk.seg.tmp"), b"torn").unwrap();
        let keep = [sha256(b"alpha bytes"), sha256(b"beta")];
        store.gc(&id, &keep);
        assert!(!dir.join("deadbeef.seg").exists());
        assert!(!dir.join("junk.seg.tmp").exists());
        assert!(store.load_head().unwrap().is_some());
        for d in &keep {
            assert!(store.read_segment(d).is_ok());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_segment_reported() {
        let dir = temp_dir("tamper");
        std::fs::remove_dir_all(&dir).ok();
        let store = CheckpointStore::open(&dir).unwrap();
        let io = CkptIo::new();
        publish_two_segments(&store, &io);
        let d = sha256(b"alpha bytes");
        std::fs::write(dir.join(seg_name(&d)), b"tampered!").unwrap();
        assert!(matches!(store.read_segment(&d), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
