//! Cached telemetry handles for the storage layer.
//!
//! Handles are resolved once per store (cold path) and shared by every
//! store bound to the same registry, so two streams in one ledger
//! directory (payload + WAL) aggregate into the same counters —
//! recording stays a couple of relaxed atomic ops.

use ledgerdb_telemetry::{Counter, Histogram, Registry, Unit};
use std::sync::Arc;

#[derive(Debug, Clone)]
pub struct StoreMetrics {
    /// `storage_write_bytes_total` — framed record bytes written
    /// (appends, batch appends, in-place erase rewrites).
    pub write_bytes: Arc<Counter>,
    /// `storage_fsync_total` — fdatasync barriers actually issued.
    pub fsyncs: Arc<Counter>,
    /// `storage_fsync_seconds` — latency of each barrier.
    pub fsync_seconds: Arc<Histogram>,
    /// `storage_erase_total` — zeroizing erases performed.
    pub erases: Arc<Counter>,
    /// `storage_erased_bytes_total` — payload bytes zeroized.
    pub erased_bytes: Arc<Counter>,
    /// `storage_faults_injected_total` — faults fired by `FaultStore`.
    pub faults_injected: Arc<Counter>,
}

impl StoreMetrics {
    pub fn bind(registry: &Registry) -> Self {
        StoreMetrics {
            write_bytes: registry.counter("storage_write_bytes_total"),
            fsyncs: registry.counter("storage_fsync_total"),
            fsync_seconds: registry.histogram("storage_fsync_seconds", Unit::Seconds),
            erases: registry.counter("storage_erase_total"),
            erased_bytes: registry.counter("storage_erased_bytes_total"),
            faults_injected: registry.counter("storage_faults_injected_total"),
        }
    }
}

impl Default for StoreMetrics {
    fn default() -> Self {
        Self::bind(Registry::global())
    }
}
