//! Deterministic fault injection for stream stores.
//!
//! The durability layer's claims ("every fault is recovered or reported,
//! never silently absorbed") are only credible if we can *inject* the
//! faults the threat model worries about and watch the recovery path
//! handle them. [`FaultStore`] decorates a [`FileStreamStore`] and fires
//! pre-planned faults at exact points in the operation sequence:
//!
//! * [`Fault::AppendIoError`] — the Nth append fails cleanly (disk full,
//!   EIO) without writing anything;
//! * [`Fault::PartialAppend`] — the Nth append writes only the first K
//!   bytes of the record and then "crashes" (torn tail on disk);
//! * [`Fault::BitFlip`] — after record R lands, one byte of it is XORed
//!   on disk (bit rot / tampering);
//! * [`Fault::EraseNoSync`] — the Nth erase reports success but never
//!   reaches the disk (lying hardware / lost write), so a reopened store
//!   still holds the payload and recovery must redo the erasure.
//!
//! Fault plans are either given explicitly or derived from a seed via the
//! same xorshift generator the benches use, so torture runs are fully
//! reproducible from a single `u64`.

use crate::metrics::StoreMetrics;
use crate::stream::{encode_record, FileStreamStore, StreamStore};
use crate::StorageError;
use ledgerdb_crypto::sync::Mutex;
use ledgerdb_crypto::{sha256, Digest};

/// One planned fault. Operation counters (`nth`) are 1-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The `nth` append returns an I/O error; nothing reaches the disk.
    AppendIoError { nth: u64 },
    /// The `nth` append writes only the first `keep` bytes of the framed
    /// record, then fails — the on-disk result is a torn tail.
    PartialAppend { nth: u64, keep: u64 },
    /// After the append that creates record `record`, XOR `mask` into the
    /// byte at offset `byte` of that record on disk.
    BitFlip { record: u64, byte: u64, mask: u8 },
    /// The `nth` erase reports success without touching the disk.
    EraseNoSync { nth: u64 },
}

/// A fault that actually fired, for test assertions and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub fault: Fault,
    /// The record index the operation targeted.
    pub record: u64,
}

struct Counters {
    appends: u64,
    erases: u64,
    fired: Vec<FaultEvent>,
}

/// A [`StreamStore`] decorator that injects deterministic faults into a
/// [`FileStreamStore`].
pub struct FaultStore {
    inner: FileStreamStore,
    faults: Vec<Fault>,
    counters: Mutex<Counters>,
    metrics: StoreMetrics,
}

impl FaultStore {
    /// Wrap `inner` with an explicit fault plan.
    pub fn new(inner: FileStreamStore, faults: Vec<Fault>) -> Self {
        FaultStore {
            inner,
            faults,
            counters: Mutex::new(Counters { appends: 0, erases: 0, fired: Vec::new() }),
            metrics: StoreMetrics::default(),
        }
    }

    fn record_fired(&self, event: FaultEvent) {
        self.metrics.faults_injected.inc();
        self.counters.lock().fired.push(event);
    }

    /// Wrap `inner` with a fault plan derived deterministically from
    /// `seed`: one fault of each kind, scattered over the first
    /// `horizon` appends/erases. The same seed always yields the same
    /// plan, so a failing torture run is reproducible from its seed.
    pub fn with_seed(inner: FileStreamStore, seed: u64, horizon: u64) -> Self {
        Self::new(inner, Self::plan(seed, horizon))
    }

    /// The deterministic fault plan for a seed (exposed so tests can
    /// predict which operations will fail).
    pub fn plan(seed: u64, horizon: u64) -> Vec<Fault> {
        let mut state = seed.max(1);
        let mut next = move |below: u64| {
            // xorshift64 — matches the bench crate's generator.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % below.max(1)
        };
        let horizon = horizon.max(4);
        vec![
            Fault::AppendIoError { nth: 1 + next(horizon) },
            Fault::PartialAppend { nth: 1 + next(horizon), keep: 1 + next(40) },
            Fault::BitFlip { record: next(horizon), byte: next(64), mask: 1 << next(8) as u8 },
            Fault::EraseNoSync { nth: 1 + next(horizon.min(8)) },
        ]
    }

    /// Faults that have fired so far.
    pub fn fired(&self) -> Vec<FaultEvent> {
        self.counters.lock().fired.clone()
    }

    /// The wrapped store (for forensic access in tests).
    pub fn inner(&self) -> &FileStreamStore {
        &self.inner
    }

    fn io_err(msg: &'static str) -> StorageError {
        StorageError::Io(std::io::Error::new(std::io::ErrorKind::Other, msg))
    }

    fn append_with_digest(
        &self,
        digest: Digest,
        erased: bool,
        payload: &[u8],
    ) -> Result<u64, StorageError> {
        let n = {
            let mut c = self.counters.lock();
            c.appends += 1;
            c.appends
        };
        let next_record = self.inner.len();
        for f in &self.faults {
            match *f {
                Fault::AppendIoError { nth } if nth == n => {
                    self.record_fired(FaultEvent { fault: *f, record: next_record });
                    return Err(Self::io_err("injected append I/O error"));
                }
                Fault::PartialAppend { nth, keep } if nth == n => {
                    let record = encode_record(&digest, erased, payload);
                    let keep = (keep as usize).min(record.len().saturating_sub(1));
                    self.inner.raw_append(&record[..keep])?;
                    self.record_fired(FaultEvent { fault: *f, record: next_record });
                    return Err(Self::io_err("injected crash mid-append"));
                }
                _ => {}
            }
        }
        let index = if erased {
            self.inner.append_erased(digest)?
        } else {
            self.inner.append(payload)?
        };
        for f in &self.faults {
            if let Fault::BitFlip { record, byte, mask } = *f {
                if record == index {
                    self.inner.corrupt_byte(index, byte, mask)?;
                    self.record_fired(FaultEvent { fault: *f, record: index });
                }
            }
        }
        Ok(index)
    }
}

impl StreamStore for FaultStore {
    fn append(&self, payload: &[u8]) -> Result<u64, StorageError> {
        self.append_with_digest(sha256(payload), false, payload)
    }

    fn append_erased(&self, digest: Digest) -> Result<u64, StorageError> {
        self.append_with_digest(digest, true, &[])
    }

    fn read(&self, index: u64) -> Result<Vec<u8>, StorageError> {
        self.inner.read(index)
    }

    fn digest(&self, index: u64) -> Result<Digest, StorageError> {
        self.inner.digest(index)
    }

    fn erase(&self, index: u64) -> Result<(), StorageError> {
        let n = {
            let mut c = self.counters.lock();
            c.erases += 1;
            c.erases
        };
        for f in &self.faults {
            if let Fault::EraseNoSync { nth } = *f {
                if nth == n {
                    // Lie: report success, touch nothing. A reopened
                    // store will still hold the payload; recovery must
                    // notice and redo the erasure.
                    self.record_fired(FaultEvent { fault: *f, record: index });
                    return Ok(());
                }
            }
        }
        self.inner.erase(index)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn is_erased(&self, index: u64) -> Result<bool, StorageError> {
        self.inner.is_erased(index)
    }

    fn sync(&self) -> Result<(), StorageError> {
        self.inner.sync()
    }

    fn truncated_bytes(&self) -> u64 {
        self.inner.truncated_bytes()
    }

    fn truncate_records(&self, new_len: u64) -> Result<(), StorageError> {
        self.inner.truncate_records(new_len)
    }

    fn reset(&self, io: &crate::checkpoint::CkptIo) -> Result<(), StorageError> {
        self.inner.reset(io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::FsyncPolicy;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ledgerdb-fault-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_io_error_leaves_no_trace() {
        let dir = temp_dir("ioerr");
        let path = dir.join("s.dat");
        let store = FaultStore::new(
            FileStreamStore::create(&path).unwrap(),
            vec![Fault::AppendIoError { nth: 2 }],
        );
        store.append(b"one").unwrap();
        assert!(matches!(store.append(b"two"), Err(StorageError::Io(_))));
        store.append(b"three").unwrap();
        assert_eq!(store.len(), 2);
        drop(store);
        let reopened = FileStreamStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.read(1).unwrap(), b"three");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_append_leaves_recoverable_torn_tail() {
        let dir = temp_dir("partial");
        let path = dir.join("s.dat");
        let store = FaultStore::new(
            FileStreamStore::create(&path).unwrap(),
            vec![Fault::PartialAppend { nth: 2, keep: 17 }],
        );
        store.append(b"survivor").unwrap();
        assert!(store.append(b"torn away by the crash").is_err());
        assert_eq!(store.fired().len(), 1);
        drop(store);
        let reopened = FileStreamStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.truncated_bytes(), 17);
        assert_eq!(reopened.read(0).unwrap(), b"survivor");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_detected_on_reopen() {
        let dir = temp_dir("flip");
        let path = dir.join("s.dat");
        let store = FaultStore::new(
            FileStreamStore::create(&path).unwrap(),
            vec![Fault::BitFlip { record: 0, byte: 40, mask: 0x10 }],
        );
        store.append(b"about to rot").unwrap();
        drop(store);
        assert!(matches!(
            FileStreamStore::open(&path),
            Err(StorageError::Corrupt("record crc mismatch"))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn erase_no_sync_lies_and_reopen_exposes_it() {
        let dir = temp_dir("nosync");
        let path = dir.join("s.dat");
        let store = FaultStore::new(
            FileStreamStore::create(&path).unwrap(),
            vec![Fault::EraseNoSync { nth: 1 }],
        );
        store.append(b"should have been purged").unwrap();
        store.erase(0).unwrap(); // Lies.
        drop(store);
        let reopened = FileStreamStore::open_with(&path, FsyncPolicy::Never).unwrap();
        assert!(!reopened.is_erased(0).unwrap(), "lost erase visible after reopen");
        assert_eq!(reopened.read(0).unwrap(), b"should have been purged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seeded_plan_is_deterministic_and_complete() {
        let a = FaultStore::plan(42, 16);
        let b = FaultStore::plan(42, 16);
        assert_eq!(a, b);
        let c = FaultStore::plan(43, 16);
        assert_ne!(a, c);
        assert!(matches!(a[0], Fault::AppendIoError { .. }));
        assert!(matches!(a[1], Fault::PartialAppend { .. }));
        assert!(matches!(a[2], Fault::BitFlip { .. }));
        assert!(matches!(a[3], Fault::EraseNoSync { .. }));
    }
}
