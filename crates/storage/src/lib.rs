//! Storage substrate: the journal stream store and mutation indexes.
//!
//! LedgerDB "implements a stream file system … to manage journals"
//! (§II-C). This crate provides:
//!
//! * [`stream`] — an append-only payload stream with in-memory and
//!   file-backed implementations behind one trait; journal payloads live
//!   here while the ledger server keeps only digests.
//! * [`occult_index`] — the occult bitmap index (§III-A3): journals are
//!   first *marked* occulted (retrieval blocked immediately), with the
//!   physical erase deferred to the reorganization utility in the
//!   asynchronous variant.
//! * [`survival`] — the survival stream (§III-A2): milestone journals the
//!   user pins so they outlive a purge.
//! * [`crc32`] — the checksum framing every on-disk stream record.
//! * [`fault`] — a deterministic fault-injection decorator used by the
//!   recovery torture tests.
//! * [`checkpoint`] — the crash-atomic checkpoint store (content-addressed
//!   segments + manifest + `HEAD`), and the counted/injectable I/O router
//!   the crash-point harness drives.

pub mod checkpoint;
pub mod crc32;
pub mod fault;
pub mod metrics;
pub mod occult_index;
pub mod stream;
pub mod survival;

pub use checkpoint::{CheckpointStore, CkptIo, CrashPoint, IoKind};
pub use fault::{Fault, FaultStore};
pub use metrics::StoreMetrics;
pub use occult_index::{OccultBits, OccultIndex};
pub use stream::{FileStreamStore, FsyncPolicy, MemoryStreamStore, StreamStore};
pub use survival::SurvivalStream;

use std::fmt;

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// A slot was out of range for the stream.
    OutOfRange { index: u64, len: u64 },
    /// The payload was erased (purged or occulted).
    Erased(u64),
    /// An underlying I/O failure (file-backed store).
    Io(std::io::Error),
    /// On-disk data failed integrity validation.
    Corrupt(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfRange { index, len } => {
                write!(f, "stream index {index} out of range (len {len})")
            }
            StorageError::Erased(i) => write!(f, "payload {i} has been erased"),
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(w) => write!(f, "corrupt stream data: {w}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}
