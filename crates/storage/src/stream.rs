//! Append-only payload streams.
//!
//! The ledger proxy ships transaction payloads to shared storage and only
//! the payload digest travels to the ledger server (Fig 1). A
//! [`StreamStore`] is that shared storage: slots are addressed by the jsn
//! they belong to, appends are strictly sequential, and erasure (for purge
//! and occult) tombstones a slot without renumbering.

use crate::StorageError;
use ledgerdb_crypto::{sha256, Digest};
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The stream-store interface shared by memory and file backends.
pub trait StreamStore: Send + Sync {
    /// Append a payload; returns its slot index.
    fn append(&self, payload: &[u8]) -> Result<u64, StorageError>;

    /// Append an already-erased slot carrying only a digest tombstone —
    /// used when restoring a snapshot whose payload was purged/occulted.
    fn append_erased(&self, digest: Digest) -> Result<u64, StorageError>;

    /// Read the payload at `index` (fails if erased).
    fn read(&self, index: u64) -> Result<Vec<u8>, StorageError>;

    /// Digest of the payload at `index` (retained even after erasure, as
    /// Protocol 2 requires for occulted journals).
    fn digest(&self, index: u64) -> Result<Digest, StorageError>;

    /// Physically erase the payload, keeping the digest tombstone.
    fn erase(&self, index: u64) -> Result<(), StorageError>;

    /// Number of slots (erased slots included).
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the slot's payload has been erased.
    fn is_erased(&self, index: u64) -> Result<bool, StorageError>;
}

enum Slot {
    Live { payload: Vec<u8>, digest: Digest },
    Erased { digest: Digest },
}

/// An in-memory stream store (the default for tests and benches).
#[derive(Default)]
pub struct MemoryStreamStore {
    slots: RwLock<Vec<Slot>>,
}

impl MemoryStreamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total live payload bytes — the storage-overhead metric purge
    /// experiments report.
    pub fn live_bytes(&self) -> u64 {
        self.slots
            .read()
            .iter()
            .map(|s| match s {
                Slot::Live { payload, .. } => payload.len() as u64,
                Slot::Erased { .. } => 0,
            })
            .sum()
    }
}

impl StreamStore for MemoryStreamStore {
    fn append(&self, payload: &[u8]) -> Result<u64, StorageError> {
        let mut slots = self.slots.write();
        let index = slots.len() as u64;
        slots.push(Slot::Live { payload: payload.to_vec(), digest: sha256(payload) });
        Ok(index)
    }

    fn append_erased(&self, digest: Digest) -> Result<u64, StorageError> {
        let mut slots = self.slots.write();
        let index = slots.len() as u64;
        slots.push(Slot::Erased { digest });
        Ok(index)
    }

    fn read(&self, index: u64) -> Result<Vec<u8>, StorageError> {
        let slots = self.slots.read();
        match slots.get(index as usize) {
            Some(Slot::Live { payload, .. }) => Ok(payload.clone()),
            Some(Slot::Erased { .. }) => Err(StorageError::Erased(index)),
            None => Err(StorageError::OutOfRange { index, len: slots.len() as u64 }),
        }
    }

    fn digest(&self, index: u64) -> Result<Digest, StorageError> {
        let slots = self.slots.read();
        match slots.get(index as usize) {
            Some(Slot::Live { digest, .. }) | Some(Slot::Erased { digest }) => Ok(*digest),
            None => Err(StorageError::OutOfRange { index, len: slots.len() as u64 }),
        }
    }

    fn erase(&self, index: u64) -> Result<(), StorageError> {
        let mut slots = self.slots.write();
        let len = slots.len() as u64;
        match slots.get_mut(index as usize) {
            Some(slot @ Slot::Live { .. }) => {
                let digest = match slot {
                    Slot::Live { digest, .. } => *digest,
                    Slot::Erased { .. } => unreachable!(),
                };
                *slot = Slot::Erased { digest };
                Ok(())
            }
            Some(Slot::Erased { .. }) => Ok(()), // Idempotent.
            None => Err(StorageError::OutOfRange { index, len }),
        }
    }

    fn len(&self) -> u64 {
        self.slots.read().len() as u64
    }

    fn is_erased(&self, index: u64) -> Result<bool, StorageError> {
        let slots = self.slots.read();
        match slots.get(index as usize) {
            Some(Slot::Live { .. }) => Ok(false),
            Some(Slot::Erased { .. }) => Ok(true),
            None => Err(StorageError::OutOfRange { index, len: slots.len() as u64 }),
        }
    }
}

/// Record header on disk: digest (32) + erased flag (1) + length (8).
const REC_HEADER: usize = 41;

/// A file-backed stream store: one data file, an in-memory offset index.
///
/// Layout per record: `digest || erased || len || payload-or-zeros`.
/// Erase zeroes the payload region and flips the flag, keeping the digest
/// tombstone addressable.
pub struct FileStreamStore {
    file: RwLock<File>,
    /// Byte offset of each record.
    offsets: RwLock<Vec<u64>>,
}

impl FileStreamStore {
    /// Create (or truncate) a store at `path`.
    pub fn create(path: &Path) -> Result<Self, StorageError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStreamStore { file: RwLock::new(file), offsets: RwLock::new(Vec::new()) })
    }

    /// Reopen an existing store, rebuilding the offset index by scanning.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut offsets = Vec::new();
        let end = file.seek(SeekFrom::End(0))?;
        let mut pos = 0u64;
        let mut header = [0u8; REC_HEADER];
        while pos < end {
            file.seek(SeekFrom::Start(pos))?;
            file.read_exact(&mut header)
                .map_err(|_| StorageError::Corrupt("truncated record header"))?;
            let len = u64::from_be_bytes(header[33..41].try_into().expect("fixed width"));
            offsets.push(pos);
            pos += REC_HEADER as u64 + len;
        }
        if pos != end {
            return Err(StorageError::Corrupt("trailing bytes after last record"));
        }
        Ok(FileStreamStore { file: RwLock::new(file), offsets: RwLock::new(offsets) })
    }

    fn read_record(&self, index: u64) -> Result<(Digest, bool, Vec<u8>), StorageError> {
        let offsets = self.offsets.read();
        let &off = offsets
            .get(index as usize)
            .ok_or(StorageError::OutOfRange { index, len: offsets.len() as u64 })?;
        let mut file = self.file.write();
        file.seek(SeekFrom::Start(off))?;
        let mut header = [0u8; REC_HEADER];
        file.read_exact(&mut header)?;
        let digest = Digest(header[..32].try_into().expect("fixed width"));
        let erased = header[32] != 0;
        let len = u64::from_be_bytes(header[33..41].try_into().expect("fixed width"));
        let mut payload = vec![0u8; len as usize];
        file.read_exact(&mut payload)?;
        Ok((digest, erased, payload))
    }
}

impl StreamStore for FileStreamStore {
    fn append(&self, payload: &[u8]) -> Result<u64, StorageError> {
        let digest = sha256(payload);
        let mut file = self.file.write();
        let off = file.seek(SeekFrom::End(0))?;
        {
            let mut w = BufWriter::new(&mut *file);
            w.write_all(&digest.0)?;
            w.write_all(&[0u8])?;
            w.write_all(&(payload.len() as u64).to_be_bytes())?;
            w.write_all(payload)?;
            w.flush()?;
        }
        let mut offsets = self.offsets.write();
        offsets.push(off);
        Ok(offsets.len() as u64 - 1)
    }

    fn append_erased(&self, digest: Digest) -> Result<u64, StorageError> {
        let mut file = self.file.write();
        let off = file.seek(SeekFrom::End(0))?;
        {
            let mut w = BufWriter::new(&mut *file);
            w.write_all(&digest.0)?;
            w.write_all(&[1u8])?;
            w.write_all(&0u64.to_be_bytes())?;
            w.flush()?;
        }
        let mut offsets = self.offsets.write();
        offsets.push(off);
        Ok(offsets.len() as u64 - 1)
    }

    fn read(&self, index: u64) -> Result<Vec<u8>, StorageError> {
        let (_, erased, payload) = self.read_record(index)?;
        if erased {
            return Err(StorageError::Erased(index));
        }
        Ok(payload)
    }

    fn digest(&self, index: u64) -> Result<Digest, StorageError> {
        let (digest, _, _) = self.read_record(index)?;
        Ok(digest)
    }

    fn erase(&self, index: u64) -> Result<(), StorageError> {
        let offsets = self.offsets.read();
        let &off = offsets
            .get(index as usize)
            .ok_or(StorageError::OutOfRange { index, len: offsets.len() as u64 })?;
        drop(offsets);
        let mut file = self.file.write();
        // Flip the erased flag.
        file.seek(SeekFrom::Start(off + 32))?;
        file.write_all(&[1u8])?;
        // Zero the payload region.
        file.seek(SeekFrom::Start(off + 33))?;
        let mut len_bytes = [0u8; 8];
        file.read_exact(&mut len_bytes)?;
        let len = u64::from_be_bytes(len_bytes);
        file.seek(SeekFrom::Start(off + REC_HEADER as u64))?;
        let zeros = vec![0u8; len as usize];
        file.write_all(&zeros)?;
        file.flush()?;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.offsets.read().len() as u64
    }

    fn is_erased(&self, index: u64) -> Result<bool, StorageError> {
        let (_, erased, _) = self.read_record(index)?;
        Ok(erased)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn StreamStore) {
        let a = store.append(b"payload-a").unwrap();
        let b = store.append(b"payload-b").unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.read(0).unwrap(), b"payload-a");
        assert_eq!(store.read(1).unwrap(), b"payload-b");
        assert_eq!(store.digest(0).unwrap(), sha256(b"payload-a"));
        assert_eq!(store.len(), 2);
        assert!(!store.is_erased(0).unwrap());

        store.erase(0).unwrap();
        assert!(store.is_erased(0).unwrap());
        assert!(matches!(store.read(0), Err(StorageError::Erased(0))));
        // Digest tombstone survives erasure (Protocol 2's requirement).
        assert_eq!(store.digest(0).unwrap(), sha256(b"payload-a"));
        // Erase is idempotent.
        store.erase(0).unwrap();

        assert!(matches!(store.read(9), Err(StorageError::OutOfRange { .. })));
    }

    #[test]
    fn memory_store() {
        let store = MemoryStreamStore::new();
        exercise(&store);
        assert_eq!(store.live_bytes(), "payload-b".len() as u64);
    }

    #[test]
    fn file_store() {
        let dir = std::env::temp_dir().join(format!("ledgerdb-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.dat");
        {
            let store = FileStreamStore::create(&path).unwrap();
            exercise(&store);
        }
        // Reopen: index rebuilt by scan; erasure and digests persist.
        let store = FileStreamStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.is_erased(0).unwrap());
        assert_eq!(store.read(1).unwrap(), b"payload-b");
        assert_eq!(store.digest(0).unwrap(), sha256(b"payload-a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("ledgerdb-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.dat");
        {
            let store = FileStreamStore::create(&path).unwrap();
            store.append(b"data").unwrap();
        }
        // Truncate mid-record.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(REC_HEADER as u64 + 1).unwrap();
        drop(f);
        assert!(matches!(FileStreamStore::open(&path), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_payload_round_trip() {
        let store = MemoryStreamStore::new();
        let i = store.append(b"").unwrap();
        assert_eq!(store.read(i).unwrap(), b"");
    }
}
