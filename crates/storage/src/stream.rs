//! Append-only payload streams.
//!
//! The ledger proxy ships transaction payloads to shared storage and only
//! the payload digest travels to the ledger server (Fig 1). A
//! [`StreamStore`] is that shared storage: slots are addressed by the jsn
//! they belong to, appends are strictly sequential, and erasure (for purge
//! and occult) tombstones a slot without renumbering.
//!
//! # On-disk format (version 2)
//!
//! The file-backed store is a crash-consistent record log:
//!
//! ```text
//! file   := magic record*
//! magic  := "LDBSTRM2"                                 (8 bytes)
//! record := len:u32 flags:u8 digest:[u8;32] payload:[u8;len] crc:u32
//! ```
//!
//! `crc` is CRC32 (IEEE) over everything before it in the record, so a
//! torn or bit-flipped record never yields garbage payloads. Opening a
//! store re-scans the log verifying every CRC:
//!
//! * a **partial final record** (the file ends before the record does) is
//!   the signature of a crash mid-append — it is *trimmed* and reported
//!   via [`StreamStore::truncated_bytes`], not treated as corruption;
//! * a **complete record with a bad CRC** means bit rot or tampering and
//!   fails the open with [`StorageError::Corrupt`].
//!
//! Durability of appends is governed by [`FsyncPolicy`]. Erasure always
//! zeroes the payload bytes on disk, rewrites the CRC for the zeroed
//! form, and syncs — occult (§III-A3) promises *physical* erasure.

use crate::checkpoint::CkptIo;
use crate::crc32::{crc32, Crc32};
use crate::metrics::StoreMetrics;
use crate::StorageError;
use ledgerdb_crypto::sync::RwLock;
use ledgerdb_crypto::{sha256, Digest};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The stream-store interface shared by memory and file backends.
pub trait StreamStore: Send + Sync {
    /// Append a payload; returns its slot index.
    fn append(&self, payload: &[u8]) -> Result<u64, StorageError>;

    /// Append an already-erased slot carrying only a digest tombstone —
    /// used when restoring a snapshot whose payload was purged/occulted.
    fn append_erased(&self, digest: Digest) -> Result<u64, StorageError>;

    /// Read the payload at `index` (fails if erased).
    fn read(&self, index: u64) -> Result<Vec<u8>, StorageError>;

    /// Digest of the payload at `index` (retained even after erasure, as
    /// Protocol 2 requires for occulted journals).
    fn digest(&self, index: u64) -> Result<Digest, StorageError>;

    /// Physically erase the payload, keeping the digest tombstone.
    fn erase(&self, index: u64) -> Result<(), StorageError>;

    /// Number of slots (erased slots included).
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the slot's payload has been erased.
    fn is_erased(&self, index: u64) -> Result<bool, StorageError>;

    /// Force buffered appends to stable storage (no-op for memory).
    fn sync(&self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Group-commit append: write every payload, then force the whole
    /// batch to stable storage with a *single* sync, regardless of the
    /// per-append [`FsyncPolicy`]. Returns the slot index of the first
    /// payload (the rest follow sequentially). This is the primitive the
    /// service layer's group-commit batcher amortizes its fsync cost
    /// with: one durable-write barrier per batch window instead of one
    /// per append.
    fn append_batch(&self, payloads: &[Vec<u8>]) -> Result<u64, StorageError> {
        let first = self.len();
        for payload in payloads {
            self.append(payload)?;
        }
        self.sync()?;
        Ok(first)
    }

    /// Bytes trimmed from a torn tail when the store was opened (0 for
    /// memory stores and freshly created files).
    fn truncated_bytes(&self) -> u64 {
        0
    }

    /// Drop every slot at index `new_len` and beyond. Recovery uses this
    /// to discard orphan payloads whose journal metadata never became
    /// durable.
    fn truncate_records(&self, new_len: u64) -> Result<(), StorageError>;

    /// Atomically reset the store to empty — the checkpoint engine calls
    /// this after committing a checkpoint that covers every record, so
    /// the log becomes a pure post-checkpoint tail. File backends must
    /// make the reset crash-atomic (tmp-write → fsync → rename via the
    /// injectable [`CkptIo`]): at every kill point the log is either the
    /// full old log or a valid empty one, never torn in a way the opener
    /// would misread. Memory backends just truncate.
    fn reset(&self, _io: &CkptIo) -> Result<(), StorageError> {
        self.truncate_records(0)
    }
}

enum Slot {
    Live { payload: Vec<u8>, digest: Digest },
    Erased { digest: Digest },
}

/// An in-memory stream store (the default for tests and benches).
#[derive(Default)]
pub struct MemoryStreamStore {
    slots: RwLock<Vec<Slot>>,
}

impl MemoryStreamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total live payload bytes — the storage-overhead metric purge
    /// experiments report.
    pub fn live_bytes(&self) -> u64 {
        self.slots
            .read()
            .iter()
            .map(|s| match s {
                Slot::Live { payload, .. } => payload.len() as u64,
                Slot::Erased { .. } => 0,
            })
            .sum()
    }
}

impl StreamStore for MemoryStreamStore {
    fn append(&self, payload: &[u8]) -> Result<u64, StorageError> {
        let mut slots = self.slots.write();
        let index = slots.len() as u64;
        slots.push(Slot::Live { payload: payload.to_vec(), digest: sha256(payload) });
        Ok(index)
    }

    fn append_erased(&self, digest: Digest) -> Result<u64, StorageError> {
        let mut slots = self.slots.write();
        let index = slots.len() as u64;
        slots.push(Slot::Erased { digest });
        Ok(index)
    }

    fn read(&self, index: u64) -> Result<Vec<u8>, StorageError> {
        let slots = self.slots.read();
        match slots.get(index as usize) {
            Some(Slot::Live { payload, .. }) => Ok(payload.clone()),
            Some(Slot::Erased { .. }) => Err(StorageError::Erased(index)),
            None => Err(StorageError::OutOfRange { index, len: slots.len() as u64 }),
        }
    }

    fn digest(&self, index: u64) -> Result<Digest, StorageError> {
        let slots = self.slots.read();
        match slots.get(index as usize) {
            Some(Slot::Live { digest, .. }) | Some(Slot::Erased { digest }) => Ok(*digest),
            None => Err(StorageError::OutOfRange { index, len: slots.len() as u64 }),
        }
    }

    fn erase(&self, index: u64) -> Result<(), StorageError> {
        let mut slots = self.slots.write();
        let len = slots.len() as u64;
        match slots.get_mut(index as usize) {
            Some(slot @ Slot::Live { .. }) => {
                let digest = match slot {
                    Slot::Live { digest, .. } => *digest,
                    Slot::Erased { .. } => unreachable!(),
                };
                *slot = Slot::Erased { digest };
                Ok(())
            }
            Some(Slot::Erased { .. }) => Ok(()), // Idempotent.
            None => Err(StorageError::OutOfRange { index, len }),
        }
    }

    fn len(&self) -> u64 {
        self.slots.read().len() as u64
    }

    fn is_erased(&self, index: u64) -> Result<bool, StorageError> {
        let slots = self.slots.read();
        match slots.get(index as usize) {
            Some(Slot::Live { .. }) => Ok(false),
            Some(Slot::Erased { .. }) => Ok(true),
            None => Err(StorageError::OutOfRange { index, len: slots.len() as u64 }),
        }
    }

    fn truncate_records(&self, new_len: u64) -> Result<(), StorageError> {
        let mut slots = self.slots.write();
        if new_len > slots.len() as u64 {
            return Err(StorageError::OutOfRange { index: new_len, len: slots.len() as u64 });
        }
        slots.truncate(new_len as usize);
        Ok(())
    }
}

/// When appends reach stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append — the crash window is a single
    /// (recoverable) torn record.
    Always,
    /// `fdatasync` every N appends — bounds loss to the last N-1 records.
    EveryN(u64),
    /// Never sync on the append path; the OS flushes when it pleases.
    /// `erase` still syncs (physical erasure is a promise, not a hint).
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Always
    }
}

/// Stream file magic ("version 2" = CRC-framed records).
const STREAM_MAGIC: &[u8; 8] = b"LDBSTRM2";
/// Record header: len (4) + flags (1) + digest (32).
pub const REC_HEADER: usize = 37;
/// CRC32 trailer.
pub const REC_TRAILER: usize = 4;
/// Flags values.
const FLAG_LIVE: u8 = 0;
const FLAG_ERASED: u8 = 1;

/// Serialize one record (header + payload + CRC trailer). Public so the
/// fault-injection store can write deliberately truncated prefixes of a
/// valid record, simulating a crash mid-append.
pub fn encode_record(digest: &Digest, erased: bool, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(REC_HEADER + payload.len() + REC_TRAILER);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.push(if erased { FLAG_ERASED } else { FLAG_LIVE });
    out.extend_from_slice(&digest.0);
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

#[derive(Clone, Copy)]
struct RecordMeta {
    off: u64,
    len: u32,
    erased: bool,
    digest: Digest,
}

struct Inner {
    file: File,
    /// Cached end-of-file offset (avoids a seek per append).
    end: u64,
    /// Appends since the last fdatasync (for `FsyncPolicy::EveryN`).
    since_sync: u64,
}

/// A file-backed stream store: one CRC-framed record log plus an
/// in-memory record index.
pub struct FileStreamStore {
    inner: RwLock<Inner>,
    meta: RwLock<Vec<RecordMeta>>,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Torn-tail bytes trimmed at open (0 for created stores).
    truncated: u64,
    /// Telemetry handles (global registry unless rebound).
    metrics: StoreMetrics,
}

impl FileStreamStore {
    /// Create (or truncate) a store at `path` with the default
    /// (`Always`) fsync policy.
    pub fn create(path: &Path) -> Result<Self, StorageError> {
        Self::create_with(path, FsyncPolicy::default())
    }

    /// Create (or truncate) a store at `path`.
    pub fn create_with(path: &Path, policy: FsyncPolicy) -> Result<Self, StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(STREAM_MAGIC)?;
        file.sync_data()?;
        Ok(FileStreamStore {
            inner: RwLock::new(Inner { file, end: STREAM_MAGIC.len() as u64, since_sync: 0 }),
            meta: RwLock::new(Vec::new()),
            path: path.to_path_buf(),
            policy,
            truncated: 0,
            metrics: StoreMetrics::default(),
        })
    }

    /// Reopen an existing store with the default (`Always`) policy.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        Self::open_with(path, FsyncPolicy::default())
    }

    /// Reopen an existing store: verify the magic, re-scan every record
    /// (checking each CRC), and trim a torn tail if the file ends inside
    /// a record. A complete record that fails its CRC is corruption and
    /// fails the open.
    pub fn open_with(path: &Path, policy: FsyncPolicy) -> Result<Self, StorageError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let end = file.seek(SeekFrom::End(0))?;
        let magic_len = STREAM_MAGIC.len() as u64;

        // A file shorter than the magic can only be a crash during
        // creation: restore the empty store.
        if end < magic_len {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(STREAM_MAGIC)?;
            file.sync_data()?;
            return Ok(FileStreamStore {
                inner: RwLock::new(Inner { file, end: magic_len, since_sync: 0 }),
                meta: RwLock::new(Vec::new()),
                path: path.to_path_buf(),
                policy,
                truncated: end,
                metrics: StoreMetrics::default(),
            });
        }

        file.seek(SeekFrom::Start(0))?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != STREAM_MAGIC {
            return Err(StorageError::Corrupt("bad stream magic"));
        }

        let mut meta = Vec::new();
        let mut pos = magic_len;
        let mut header = [0u8; REC_HEADER];
        let mut torn = false;
        while pos < end {
            let remaining = end - pos;
            if remaining < (REC_HEADER + REC_TRAILER) as u64 {
                torn = true;
                break;
            }
            file.seek(SeekFrom::Start(pos))?;
            file.read_exact(&mut header)?;
            let len = u32::from_be_bytes(header[0..4].try_into().expect("fixed width"));
            let flags = header[4];
            let total = (REC_HEADER + REC_TRAILER) as u64 + len as u64;
            if remaining < total {
                torn = true;
                break;
            }
            let mut body = vec![0u8; len as usize + REC_TRAILER];
            file.read_exact(&mut body)?;
            let stored_crc =
                u32::from_be_bytes(body[len as usize..].try_into().expect("fixed width"));
            let mut crc = Crc32::new();
            crc.update(&header);
            crc.update(&body[..len as usize]);
            if crc.finalize() != stored_crc {
                // The record is complete on disk, so this is not a torn
                // write — it is bit rot or tampering.
                return Err(StorageError::Corrupt("record crc mismatch"));
            }
            if flags > FLAG_ERASED {
                return Err(StorageError::Corrupt("bad record flags"));
            }
            meta.push(RecordMeta {
                off: pos,
                len,
                erased: flags == FLAG_ERASED,
                digest: Digest(header[5..37].try_into().expect("fixed width")),
            });
            pos += total;
        }
        let truncated = if torn {
            file.set_len(pos)?;
            file.sync_data()?;
            end - pos
        } else {
            0
        };
        Ok(FileStreamStore {
            inner: RwLock::new(Inner { file, end: pos, since_sync: 0 }),
            meta: RwLock::new(meta),
            path: path.to_path_buf(),
            policy,
            truncated,
            metrics: StoreMetrics::default(),
        })
    }

    /// Rebind telemetry to `registry` (default: the global registry).
    /// Call before the store is shared across threads.
    pub fn bind_metrics(&mut self, registry: &ledgerdb_telemetry::Registry) {
        self.metrics = StoreMetrics::bind(registry);
    }

    /// Issue an fdatasync barrier, counting it and its latency.
    fn barrier(&self, file: &File) -> Result<(), StorageError> {
        let _span = ledgerdb_telemetry::trace::StageSpan::begin("fsync");
        let start = Instant::now();
        file.sync_data()?;
        self.metrics.fsyncs.inc();
        self.metrics.fsync_seconds.observe_duration(start.elapsed());
        Ok(())
    }

    /// Byte span `(offset, length)` of record `index` in the file —
    /// exposed for fault injection and forensic tests.
    pub fn record_span(&self, index: u64) -> Option<(u64, u64)> {
        let meta = self.meta.read();
        meta.get(index as usize)
            .map(|m| (m.off, (REC_HEADER + REC_TRAILER) as u64 + m.len as u64))
    }

    /// Append raw bytes at the end of the log *without* registering a
    /// record, then sync. This simulates the on-disk effect of a crash
    /// mid-append (the process died; its in-memory index never learned
    /// about the bytes). Used by the fault-injection store.
    pub fn raw_append(&self, bytes: &[u8]) -> Result<(), StorageError> {
        let mut inner = self.inner.write();
        let end = inner.end;
        inner.file.seek(SeekFrom::Start(end))?;
        inner.file.write_all(bytes)?;
        inner.file.sync_data()?;
        inner.end += bytes.len() as u64;
        Ok(())
    }

    /// XOR `mask` into one byte of record `index` on disk (fault
    /// injection: simulated bit rot). The in-memory index is untouched.
    pub fn corrupt_byte(&self, index: u64, byte: u64, mask: u8) -> Result<(), StorageError> {
        let (off, total) = self
            .record_span(index)
            .ok_or(StorageError::OutOfRange { index, len: self.len() })?;
        let target = off + byte.min(total - 1);
        let mut inner = self.inner.write();
        inner.file.seek(SeekFrom::Start(target))?;
        let mut b = [0u8; 1];
        inner.file.read_exact(&mut b)?;
        b[0] ^= mask;
        inner.file.seek(SeekFrom::Start(target))?;
        inner.file.write_all(&b)?;
        inner.file.sync_data()?;
        Ok(())
    }

    fn append_record(
        &self,
        digest: Digest,
        erased: bool,
        payload: &[u8],
    ) -> Result<u64, StorageError> {
        if payload.len() as u64 > u32::MAX as u64 {
            return Err(StorageError::Corrupt("payload exceeds record size limit"));
        }
        let record = encode_record(&digest, erased, payload);
        let mut inner = self.inner.write();
        let off = inner.end;
        inner.file.seek(SeekFrom::Start(off))?;
        inner.file.write_all(&record)?;
        self.metrics.write_bytes.add(record.len() as u64);
        inner.end += record.len() as u64;
        inner.since_sync += 1;
        let do_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => inner.since_sync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if do_sync {
            self.barrier(&inner.file)?;
            inner.since_sync = 0;
        }
        let mut meta = self.meta.write();
        meta.push(RecordMeta { off, len: payload.len() as u32, erased, digest });
        Ok(meta.len() as u64 - 1)
    }

    fn read_record(&self, index: u64) -> Result<(Digest, bool, Vec<u8>), StorageError> {
        let m = {
            let meta = self.meta.read();
            *meta
                .get(index as usize)
                .ok_or(StorageError::OutOfRange { index, len: meta.len() as u64 })?
        };
        let total = REC_HEADER + m.len as usize + REC_TRAILER;
        let mut buf = vec![0u8; total];
        {
            let mut inner = self.inner.write();
            inner.file.seek(SeekFrom::Start(m.off))?;
            inner.file.read_exact(&mut buf)?;
        }
        let stored_crc =
            u32::from_be_bytes(buf[total - REC_TRAILER..].try_into().expect("fixed width"));
        if crc32(&buf[..total - REC_TRAILER]) != stored_crc {
            return Err(StorageError::Corrupt("record crc mismatch"));
        }
        let erased = buf[4] == FLAG_ERASED;
        let digest = Digest(buf[5..37].try_into().expect("fixed width"));
        let payload = buf[REC_HEADER..total - REC_TRAILER].to_vec();
        Ok((digest, erased, payload))
    }
}

impl StreamStore for FileStreamStore {
    fn append(&self, payload: &[u8]) -> Result<u64, StorageError> {
        self.append_record(sha256(payload), false, payload)
    }

    fn append_erased(&self, digest: Digest) -> Result<u64, StorageError> {
        self.append_record(digest, true, &[])
    }

    fn read(&self, index: u64) -> Result<Vec<u8>, StorageError> {
        let (_, erased, payload) = self.read_record(index)?;
        if erased {
            return Err(StorageError::Erased(index));
        }
        Ok(payload)
    }

    fn digest(&self, index: u64) -> Result<Digest, StorageError> {
        let meta = self.meta.read();
        meta.get(index as usize)
            .map(|m| m.digest)
            .ok_or(StorageError::OutOfRange { index, len: meta.len() as u64 })
    }

    /// Physically erase: zero the payload bytes, flip the flag, rewrite
    /// the CRC for the zeroed form, and sync — regardless of the append
    /// fsync policy.
    fn erase(&self, index: u64) -> Result<(), StorageError> {
        let mut inner = self.inner.write();
        let mut meta = self.meta.write();
        let m = *meta
            .get(index as usize)
            .ok_or(StorageError::OutOfRange { index, len: meta.len() as u64 })?;
        if m.erased {
            return Ok(()); // Idempotent.
        }
        // Rewrite the record in its erased form: same len field, erased
        // flag, same digest tombstone, zeroed payload, fresh CRC.
        let mut record = Vec::with_capacity(REC_HEADER + m.len as usize + REC_TRAILER);
        record.extend_from_slice(&m.len.to_be_bytes());
        record.push(FLAG_ERASED);
        record.extend_from_slice(&m.digest.0);
        record.resize(REC_HEADER + m.len as usize, 0);
        let crc = crc32(&record);
        record.extend_from_slice(&crc.to_be_bytes());
        inner.file.seek(SeekFrom::Start(m.off))?;
        inner.file.write_all(&record)?;
        self.barrier(&inner.file)?;
        self.metrics.write_bytes.add(record.len() as u64);
        self.metrics.erases.inc();
        self.metrics.erased_bytes.add(m.len as u64);
        meta[index as usize].erased = true;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.meta.read().len() as u64
    }

    fn is_erased(&self, index: u64) -> Result<bool, StorageError> {
        let meta = self.meta.read();
        meta.get(index as usize)
            .map(|m| m.erased)
            .ok_or(StorageError::OutOfRange { index, len: meta.len() as u64 })
    }

    fn sync(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.write();
        // Skip the fdatasync when no append landed since the last one
        // (erase/truncate sync inline, so `since_sync == 0` means the
        // file is already stable). The group-commit barrier calls sync
        // on both streams right after `append_batch` synced one of them
        // — this makes the redundant half free.
        if inner.since_sync == 0 {
            return Ok(());
        }
        self.barrier(&inner.file)?;
        inner.since_sync = 0;
        Ok(())
    }

    /// Batched append: every record is encoded into one contiguous
    /// buffer, written with a single `write_all`, and made durable with
    /// a single `fdatasync` — the group-commit fast path. Slot indexes
    /// are assigned exactly as repeated [`StreamStore::append`] calls
    /// would assign them.
    fn append_batch(&self, payloads: &[Vec<u8>]) -> Result<u64, StorageError> {
        if payloads.is_empty() {
            return Ok(self.len());
        }
        for payload in payloads {
            if payload.len() as u64 > u32::MAX as u64 {
                return Err(StorageError::Corrupt("payload exceeds record size limit"));
            }
        }
        let mut buf = Vec::new();
        let mut spans = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let digest = sha256(payload);
            let rec = encode_record(&digest, false, payload);
            spans.push((buf.len() as u64, payload.len() as u32, digest));
            buf.extend_from_slice(&rec);
        }
        let mut inner = self.inner.write();
        let base = inner.end;
        inner.file.seek(SeekFrom::Start(base))?;
        inner.file.write_all(&buf)?;
        self.metrics.write_bytes.add(buf.len() as u64);
        self.barrier(&inner.file)?;
        inner.end += buf.len() as u64;
        inner.since_sync = 0;
        let mut meta = self.meta.write();
        let first = meta.len() as u64;
        for (rel, len, digest) in spans {
            meta.push(RecordMeta { off: base + rel, len, erased: false, digest });
        }
        Ok(first)
    }

    fn truncated_bytes(&self) -> u64 {
        self.truncated
    }

    fn truncate_records(&self, new_len: u64) -> Result<(), StorageError> {
        let mut inner = self.inner.write();
        let mut meta = self.meta.write();
        if new_len > meta.len() as u64 {
            return Err(StorageError::OutOfRange { index: new_len, len: meta.len() as u64 });
        }
        if new_len == meta.len() as u64 {
            return Ok(());
        }
        let new_end = meta[new_len as usize].off;
        inner.file.set_len(new_end)?;
        inner.file.sync_data()?;
        inner.end = new_end;
        meta.truncate(new_len as usize);
        Ok(())
    }

    /// Crash-atomic reset to an empty log. A magic-only replacement file
    /// is written beside the log, fsynced, and renamed over it; the
    /// rename is the commit point. A kill before the rename leaves the
    /// old log fully intact (the checkpoint loader skips its covered
    /// records by watermark); a kill after leaves a valid empty log.
    /// The `.reset.tmp` residue of a pre-rename kill is clobbered by the
    /// next reset and never opened as a store.
    fn reset(&self, io: &CkptIo) -> Result<(), StorageError> {
        let mut inner = self.inner.write();
        let mut meta = self.meta.write();
        let tmp = {
            let mut os = self.path.clone().into_os_string();
            os.push(".reset.tmp");
            PathBuf::from(os)
        };
        io.write_file(&tmp, STREAM_MAGIC)?;
        io.sync_file(&tmp)?;
        io.rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            io.sync_dir(dir)?;
        }
        // The old fd still points at the unlinked inode; swap in a
        // handle on the fresh file.
        let file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        *inner = Inner { file, end: STREAM_MAGIC.len() as u64, since_sync: 0 };
        meta.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ledgerdb-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn exercise(store: &dyn StreamStore) {
        let a = store.append(b"payload-a").unwrap();
        let b = store.append(b"payload-b").unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.read(0).unwrap(), b"payload-a");
        assert_eq!(store.read(1).unwrap(), b"payload-b");
        assert_eq!(store.digest(0).unwrap(), sha256(b"payload-a"));
        assert_eq!(store.len(), 2);
        assert!(!store.is_erased(0).unwrap());

        store.erase(0).unwrap();
        assert!(store.is_erased(0).unwrap());
        assert!(matches!(store.read(0), Err(StorageError::Erased(0))));
        // Digest tombstone survives erasure (Protocol 2's requirement).
        assert_eq!(store.digest(0).unwrap(), sha256(b"payload-a"));
        // Erase is idempotent.
        store.erase(0).unwrap();

        assert!(matches!(store.read(9), Err(StorageError::OutOfRange { .. })));
    }

    #[test]
    fn memory_store() {
        let store = MemoryStreamStore::new();
        exercise(&store);
        assert_eq!(store.live_bytes(), "payload-b".len() as u64);
    }

    #[test]
    fn file_store() {
        let dir = temp_dir("stream");
        let path = dir.join("stream.dat");
        {
            let store = FileStreamStore::create(&path).unwrap();
            exercise(&store);
        }
        // Reopen: index rebuilt by scan; erasure and digests persist.
        let store = FileStreamStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.truncated_bytes(), 0);
        assert!(store.is_erased(0).unwrap());
        assert_eq!(store.read(1).unwrap(), b"payload-b");
        assert_eq!(store.digest(0).unwrap(), sha256(b"payload-a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_trimmed_not_fatal() {
        let dir = temp_dir("torntail");
        let path = dir.join("stream.dat");
        let (off, full) = {
            let store = FileStreamStore::create(&path).unwrap();
            store.append(b"first record").unwrap();
            store.append(b"second record, about to be torn").unwrap();
            let (off, _) = store.record_span(1).unwrap();
            (off, std::fs::metadata(&path).unwrap().len())
        };
        // Cut into the middle of the second record.
        let cut = off + 10;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let store = FileStreamStore::open(&path).unwrap();
        assert_eq!(store.len(), 1, "clean prefix recovered");
        assert_eq!(store.truncated_bytes(), cut - off);
        assert_eq!(store.read(0).unwrap(), b"first record");
        // The trim is durable: a second reopen sees a clean log.
        drop(store);
        let store = FileStreamStore::open(&path).unwrap();
        assert_eq!(store.truncated_bytes(), 0);
        assert!(std::fs::metadata(&path).unwrap().len() < full);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_is_corruption_not_torn_tail() {
        let dir = temp_dir("bitflip");
        let path = dir.join("stream.dat");
        {
            let store = FileStreamStore::create(&path).unwrap();
            store.append(b"data that must stay intact").unwrap();
            // Flip a payload byte after the record is fully on disk.
            store.corrupt_byte(0, REC_HEADER as u64 + 3, 0x40).unwrap();
        }
        assert!(matches!(
            FileStreamStore::open(&path),
            Err(StorageError::Corrupt("record crc mismatch"))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_verifies_crc() {
        let dir = temp_dir("readcrc");
        let path = dir.join("stream.dat");
        let store = FileStreamStore::create(&path).unwrap();
        store.append(b"verified on every read").unwrap();
        assert!(store.read(0).is_ok());
        store.corrupt_byte(0, REC_HEADER as u64, 0x80).unwrap();
        assert!(matches!(store.read(0), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn erase_zeroizes_bytes_on_disk() {
        let dir = temp_dir("zeroize");
        let path = dir.join("stream.dat");
        let secret = b"extremely sensitive payload bytes";
        let store = FileStreamStore::create(&path).unwrap();
        store.append(secret).unwrap();
        let (off, total) = store.record_span(0).unwrap();
        store.erase(0).unwrap();
        drop(store);

        let raw = std::fs::read(&path).unwrap();
        let payload_region =
            &raw[(off as usize + REC_HEADER)..(off as usize + total as usize - REC_TRAILER)];
        assert!(payload_region.iter().all(|&b| b == 0), "payload bytes zeroed on disk");
        assert!(
            !raw.windows(secret.len()).any(|w| w == secret),
            "no trace of the secret anywhere in the file"
        );
        // The erased record still round-trips its CRC on reopen.
        let store = FileStreamStore::open(&path).unwrap();
        assert!(store.is_erased(0).unwrap());
        assert_eq!(store.digest(0).unwrap(), sha256(secret));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policies_accept_appends() {
        for (tag, policy) in [
            ("always", FsyncPolicy::Always),
            ("every3", FsyncPolicy::EveryN(3)),
            ("never", FsyncPolicy::Never),
        ] {
            let dir = temp_dir(&format!("policy-{tag}"));
            let path = dir.join("stream.dat");
            let store = FileStreamStore::create_with(&path, policy).unwrap();
            for i in 0..10u64 {
                store.append(&i.to_be_bytes()).unwrap();
            }
            store.sync().unwrap();
            drop(store);
            let store = FileStreamStore::open(&path).unwrap();
            assert_eq!(store.len(), 10);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn kill_at_every_offset_recovers_or_reports() {
        // Satellite: truncate a valid stream at EVERY byte boundary; open
        // must either recover a clean prefix or (never here, since pure
        // truncation is always a torn tail) return Corrupt — and never
        // panic or return garbage.
        let dir = temp_dir("killatoffset");
        let golden = dir.join("golden.dat");
        let payloads: Vec<Vec<u8>> = vec![
            b"alpha".to_vec(),
            Vec::new(), // empty payload record
            vec![0xEE; 100],
            b"delta-journal".to_vec(),
        ];
        let mut ends = Vec::new();
        {
            let store = FileStreamStore::create(&golden).unwrap();
            for p in &payloads {
                let i = store.append(p).unwrap();
                let (off, total) = store.record_span(i).unwrap();
                ends.push(off + total);
            }
        }
        let bytes = std::fs::read(&golden).unwrap();
        let victim = dir.join("victim.dat");
        for cut in 0..=bytes.len() as u64 {
            std::fs::write(&victim, &bytes[..cut as usize]).unwrap();
            let store = match FileStreamStore::open_with(&victim, FsyncPolicy::Never) {
                Ok(s) => s,
                Err(StorageError::Corrupt(_)) => continue, // acceptable: reported, not silent
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            };
            let expect = ends.iter().filter(|&&e| e <= cut).count() as u64;
            assert_eq!(store.len(), expect, "clean prefix at cut {cut}");
            for i in 0..expect {
                assert_eq!(
                    store.read(i).unwrap(),
                    payloads[i as usize],
                    "record {i} at cut {cut}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_records_drops_tail_slots() {
        let dir = temp_dir("truncrec");
        let path = dir.join("stream.dat");
        let store = FileStreamStore::create(&path).unwrap();
        for i in 0..5u64 {
            store.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        store.truncate_records(3).unwrap();
        assert_eq!(store.len(), 3);
        assert!(store.read(3).is_err());
        // New appends land after the truncation point and survive reopen.
        store.append(b"rec-3-replacement").unwrap();
        drop(store);
        let store = FileStreamStore::open(&path).unwrap();
        assert_eq!(store.len(), 4);
        assert_eq!(store.read(3).unwrap(), b"rec-3-replacement");
        assert!(store.truncate_records(9).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_empties_log_atomically() {
        use crate::checkpoint::{CkptIo, CrashPoint};
        let dir = temp_dir("reset");
        let path = dir.join("stream.dat");
        let store = FileStreamStore::create(&path).unwrap();
        for i in 0..4u64 {
            store.append(format!("covered-{i}").as_bytes()).unwrap();
        }
        let io = CkptIo::new();
        store.reset(&io).unwrap();
        assert_eq!(store.len(), 0);
        // Appends after reset start at slot 0 and survive reopen.
        store.append(b"tail-0").unwrap();
        drop(store);
        let store = FileStreamStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.read(0).unwrap(), b"tail-0");

        // Crash at each of the reset's 4 ops: the log must reopen as
        // either the full old log or a valid empty one.
        for op in 1..=4u64 {
            let crash_path = dir.join(format!("crash-{op}.dat"));
            let victim = FileStreamStore::create(&crash_path).unwrap();
            victim.append(b"old-record").unwrap();
            let io = CkptIo::new();
            io.arm(CrashPoint { op, torn_keep: Some(3) });
            assert!(victim.reset(&io).is_err());
            drop(victim);
            let reopened = FileStreamStore::open(&crash_path).unwrap();
            assert!(
                reopened.len() == 0
                    || (reopened.len() == 1 && reopened.read(0).unwrap() == b"old-record"),
                "crash at reset op {op}: log must be old-or-empty, got len {}",
                reopened.len()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_batch_matches_sequential_appends() {
        let dir = temp_dir("batch");
        let seq_path = dir.join("seq.dat");
        let batch_path = dir.join("batch.dat");
        let payloads: Vec<Vec<u8>> =
            vec![b"a".to_vec(), Vec::new(), vec![0x5A; 300], b"final".to_vec()];
        {
            let seq = FileStreamStore::create(&seq_path).unwrap();
            for p in &payloads {
                seq.append(p).unwrap();
            }
            let batch = FileStreamStore::create_with(&batch_path, FsyncPolicy::Never).unwrap();
            let first = batch.append_batch(&payloads).unwrap();
            assert_eq!(first, 0);
            // Mixed mode: batches and single appends interleave cleanly.
            batch.append(b"tail").unwrap();
            let first2 = batch.append_batch(&[b"x".to_vec(), b"y".to_vec()]).unwrap();
            assert_eq!(first2, 5);
        }
        // Byte-identical record stream for the shared prefix.
        let seq_bytes = std::fs::read(&seq_path).unwrap();
        let batch_bytes = std::fs::read(&batch_path).unwrap();
        assert_eq!(&batch_bytes[..seq_bytes.len()], &seq_bytes[..]);
        // Reopen: the batched file scans clean, all slots readable.
        let store = FileStreamStore::open(&batch_path).unwrap();
        assert_eq!(store.len(), 7);
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(store.read(i as u64).unwrap(), *p);
        }
        assert_eq!(store.read(4).unwrap(), b"tail");
        assert_eq!(store.read(6).unwrap(), b"y");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_batch_durable_under_never_policy() {
        // The whole point of the batched path: records are durable when
        // it returns even when the per-append policy never syncs.
        let dir = temp_dir("batchdur");
        let path = dir.join("stream.dat");
        let store = FileStreamStore::create_with(&path, FsyncPolicy::Never).unwrap();
        store.append_batch(&[b"one".to_vec(), b"two".to_vec()]).unwrap();
        // Empty batch is a no-op.
        assert_eq!(store.append_batch(&[]).unwrap(), 2);
        drop(store);
        let store = FileStreamStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.read(1).unwrap(), b"two");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_append_batch_default_impl() {
        let store = MemoryStreamStore::new();
        store.append(b"solo").unwrap();
        let first = store.append_batch(&[b"b0".to_vec(), b"b1".to_vec()]).unwrap();
        assert_eq!(first, 1);
        assert_eq!(store.read(2).unwrap(), b"b1");
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn empty_payload_round_trip() {
        let store = MemoryStreamStore::new();
        let i = store.append(b"").unwrap();
        assert_eq!(store.read(i).unwrap(), b"");
    }

    #[test]
    fn old_format_rejected_loudly() {
        let dir = temp_dir("oldfmt");
        let path = dir.join("stream.dat");
        std::fs::write(&path, b"not-a-stream-file-at-all").unwrap();
        assert!(matches!(
            FileStreamStore::open(&path),
            Err(StorageError::Corrupt("bad stream magic"))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
