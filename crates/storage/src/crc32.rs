//! CRC32 (IEEE 802.3 polynomial) for stream-record framing.
//!
//! The durability layer frames every on-disk record with a CRC32 trailer
//! so that torn writes and bit rot are detected on open and on read. A
//! table-driven implementation is plenty fast relative to the SHA-256
//! digests computed on the same payloads.

/// Reflected polynomial for CRC-32/ISO-HDLC (the zlib/PNG variant).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC32 hasher.
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.0;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    pub fn finalize(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello crc32 world, split across updates";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..20]);
        c.update(&data[20..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn sensitive_to_single_bit() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut tampered = data.clone();
            tampered[i] ^= 0x01;
            assert_ne!(crc32(&tampered), base, "bit flip at byte {i} undetected");
        }
    }
}
