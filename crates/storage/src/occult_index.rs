//! The occult bitmap index (§III-A3).
//!
//! Occulting a journal first sets its bit here — from that moment the
//! journal "is marked as deleted and can not be retrieved anymore" — while
//! the physical payload erase can be synchronous or deferred to the data
//! reorganization utility, which scans from the *occulted anchor* during
//! idle batches.

use ledgerdb_crypto::sync::RwLock;

/// A growable bitmap over jsns with an erase anchor.
#[derive(Default)]
pub struct OccultIndex {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    bits: Vec<u64>,
    /// Every jsn below this has already been physically reorganized.
    erase_anchor: u64,
    /// Count of set bits.
    marked: u64,
}

/// An immutable point-in-time copy of the occult bitmap, captured into
/// read snapshots so retrieval blocking can be enforced without touching
/// the live index's lock.
#[derive(Clone, Debug, Default)]
pub struct OccultBits {
    bits: Vec<u64>,
    marked: u64,
}

impl OccultBits {
    /// Was `jsn` occulted as of the capture point?
    pub fn is_marked(&self, jsn: u64) -> bool {
        let word = (jsn / 64) as usize;
        self.bits.get(word).map(|w| w & (1 << (jsn % 64)) != 0).unwrap_or(false)
    }

    /// Occulted journal count as of the capture point.
    pub fn marked_count(&self) -> u64 {
        self.marked
    }
}

impl OccultIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy the bitmap out for a read snapshot (one word per 64 jsns).
    pub fn snapshot(&self) -> OccultBits {
        let inner = self.inner.read();
        OccultBits { bits: inner.bits.clone(), marked: inner.marked }
    }

    /// Mark `jsn` occulted. Returns true when newly marked.
    pub fn mark(&self, jsn: u64) -> bool {
        let mut inner = self.inner.write();
        let word = (jsn / 64) as usize;
        let bit = jsn % 64;
        if inner.bits.len() <= word {
            inner.bits.resize(word + 1, 0);
        }
        let newly = inner.bits[word] & (1 << bit) == 0;
        inner.bits[word] |= 1 << bit;
        if newly {
            inner.marked += 1;
        }
        newly
    }

    /// Is `jsn` occulted?
    pub fn is_marked(&self, jsn: u64) -> bool {
        let inner = self.inner.read();
        let word = (jsn / 64) as usize;
        inner
            .bits
            .get(word)
            .map(|w| w & (1 << (jsn % 64)) != 0)
            .unwrap_or(false)
    }

    /// Number of occulted journals.
    pub fn marked_count(&self) -> u64 {
        self.inner.read().marked
    }

    /// The occulted anchor: jsns below it are already physically erased.
    pub fn erase_anchor(&self) -> u64 {
        self.inner.read().erase_anchor
    }

    /// Export the raw bitmap words and the erase anchor for checkpoint
    /// serialization.
    pub fn export_parts(&self) -> (Vec<u64>, u64) {
        let inner = self.inner.read();
        (inner.bits.clone(), inner.erase_anchor)
    }

    /// Rebuild an index from exported parts; the set-bit count is
    /// recomputed from the words rather than trusted.
    pub fn from_parts(bits: Vec<u64>, erase_anchor: u64) -> OccultIndex {
        let marked = bits.iter().map(|w| w.count_ones() as u64).sum();
        OccultIndex { inner: RwLock::new(Inner { bits, erase_anchor, marked }) }
    }

    /// Reorganization pass: returns the marked jsns in `[anchor, upto)`
    /// whose payloads should now be erased, and advances the anchor.
    /// Mirrors the paper's "data erasing performed by data reorganization
    /// utility during system idle batch from the occulted anchor".
    pub fn reorganize(&self, upto: u64) -> Vec<u64> {
        let mut inner = self.inner.write();
        let from = inner.erase_anchor;
        let mut out = Vec::new();
        for jsn in from..upto {
            let word = (jsn / 64) as usize;
            if inner
                .bits
                .get(word)
                .map(|w| w & (1 << (jsn % 64)) != 0)
                .unwrap_or(false)
            {
                out.push(jsn);
            }
        }
        if upto > inner.erase_anchor {
            inner.erase_anchor = upto;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let idx = OccultIndex::new();
        assert!(!idx.is_marked(5));
        assert!(idx.mark(5));
        assert!(idx.is_marked(5));
        assert!(!idx.mark(5)); // Idempotent.
        assert_eq!(idx.marked_count(), 1);
    }

    #[test]
    fn bitmap_growth_across_words() {
        let idx = OccultIndex::new();
        for jsn in [0u64, 63, 64, 127, 128, 1000] {
            idx.mark(jsn);
        }
        for jsn in [0u64, 63, 64, 127, 128, 1000] {
            assert!(idx.is_marked(jsn), "{jsn}");
        }
        assert!(!idx.is_marked(65));
        assert_eq!(idx.marked_count(), 6);
    }

    #[test]
    fn reorganize_advances_anchor() {
        let idx = OccultIndex::new();
        idx.mark(3);
        idx.mark(10);
        idx.mark(20);
        let first = idx.reorganize(15);
        assert_eq!(first, vec![3, 10]);
        assert_eq!(idx.erase_anchor(), 15);
        // Second pass only sees the remainder.
        let second = idx.reorganize(30);
        assert_eq!(second, vec![20]);
        assert_eq!(idx.erase_anchor(), 30);
    }

    #[test]
    fn snapshot_is_a_frozen_view() {
        let idx = OccultIndex::new();
        idx.mark(7);
        let frozen = idx.snapshot();
        idx.mark(8);
        assert!(frozen.is_marked(7));
        assert!(!frozen.is_marked(8), "snapshot must not see later marks");
        assert_eq!(frozen.marked_count(), 1);
        assert_eq!(idx.marked_count(), 2);
    }

    #[test]
    fn reorganize_never_regresses() {
        let idx = OccultIndex::new();
        idx.mark(1);
        idx.reorganize(10);
        assert!(idx.reorganize(5).is_empty());
        assert_eq!(idx.erase_anchor(), 10);
    }
}
