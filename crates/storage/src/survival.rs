//! The survival stream (§III-A2).
//!
//! Before a purge, users may pin milestone journals; their payloads are
//! copied into this side stream so they can still be retrieved and
//! verified afterwards ("keep historical block trades only").

use crate::StorageError;
use ledgerdb_crypto::{sha256, Digest};
use ledgerdb_crypto::sync::RwLock;
use std::collections::BTreeMap;

/// A pinned milestone journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Milestone {
    pub jsn: u64,
    pub payload: Vec<u8>,
    pub digest: Digest,
}

/// The survival stream: milestone journals keyed by jsn.
#[derive(Default)]
pub struct SurvivalStream {
    entries: RwLock<BTreeMap<u64, Milestone>>,
}

impl SurvivalStream {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin a journal's payload before purge.
    pub fn pin(&self, jsn: u64, payload: &[u8]) {
        let milestone = Milestone { jsn, payload: payload.to_vec(), digest: sha256(payload) };
        self.entries.write().insert(jsn, milestone);
    }

    /// Retrieve a pinned milestone.
    pub fn get(&self, jsn: u64) -> Result<Milestone, StorageError> {
        self.entries
            .read()
            .get(&jsn)
            .cloned()
            .ok_or(StorageError::OutOfRange { index: jsn, len: 0 })
    }

    /// Is `jsn` pinned?
    pub fn contains(&self, jsn: u64) -> bool {
        self.entries.read().contains_key(&jsn)
    }

    /// Verify a milestone's payload still matches its digest.
    pub fn verify(&self, jsn: u64) -> Result<bool, StorageError> {
        let m = self.get(jsn)?;
        Ok(sha256(&m.payload) == m.digest)
    }

    /// All pinned milestones in jsn order (checkpoint serialization).
    pub fn milestones(&self) -> Vec<Milestone> {
        self.entries.read().values().cloned().collect()
    }

    /// All pinned jsns (ascending).
    pub fn pinned_jsns(&self) -> Vec<u64> {
        self.entries.read().keys().copied().collect()
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_and_retrieve() {
        let s = SurvivalStream::new();
        s.pin(42, b"block trade #42");
        assert!(s.contains(42));
        assert!(!s.contains(43));
        let m = s.get(42).unwrap();
        assert_eq!(m.payload, b"block trade #42");
        assert!(s.verify(42).unwrap());
    }

    #[test]
    fn missing_milestone_errors() {
        let s = SurvivalStream::new();
        assert!(s.get(1).is_err());
        assert!(s.verify(1).is_err());
    }

    #[test]
    fn pinned_jsns_sorted() {
        let s = SurvivalStream::new();
        for j in [9u64, 1, 5] {
            s.pin(j, b"p");
        }
        assert_eq!(s.pinned_jsns(), vec![1, 5, 9]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn repin_overwrites() {
        let s = SurvivalStream::new();
        s.pin(1, b"v1");
        s.pin(1, b"v2");
        assert_eq!(s.get(1).unwrap().payload, b"v2");
        assert_eq!(s.len(), 1);
    }
}
