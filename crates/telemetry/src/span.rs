//! RAII spans: time a scope into a histogram, optionally flagging
//! slow operations with a structured log line on stderr.

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// 0 = disabled.
static SLOW_OP_NS: AtomicU64 = AtomicU64::new(0);

/// Spans slower than `threshold` emit one structured line on stderr
/// (`telemetry: slow_op span=<name> elapsed_us=<n>`); `None` disables
/// slow-op logging (the default).
pub fn set_slow_op_threshold(threshold: Option<Duration>) {
    let ns = threshold.map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64);
    SLOW_OP_NS.store(ns, Ordering::Relaxed);
}

/// Current slow-op threshold in nanoseconds (0 = disabled).
pub fn slow_op_threshold_ns() -> u64 {
    SLOW_OP_NS.load(Ordering::Relaxed)
}

/// RAII guard: records the elapsed time into its histogram on drop.
/// Construct via [`Histogram::time`], [`Span::enter`], or the
/// [`span!`](crate::span!) macro.
#[must_use = "a span records on drop; binding it to _ measures nothing"]
pub struct Span<'a> {
    hist: &'a Histogram,
    name: &'static str,
    start: Instant,
}

impl<'a> Span<'a> {
    pub fn enter(hist: &'a Histogram, name: &'static str) -> Self {
        Span { hist, name, start: Instant::now() }
    }

    /// Elapsed time so far, without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// The slow-op log line for `name`/`elapsed`, enriched with the
/// current thread's trace context when one is installed — the
/// `trace=<16-hex-id>` token makes the line joinable with
/// `/trace/<id>` and `GetTrace`. Factored out so tests can pin the
/// format without scraping stderr.
pub fn slow_op_line(name: &str, elapsed: Duration) -> String {
    match crate::trace::current() {
        Some(ctx) => format!(
            "telemetry: slow_op span={} elapsed_us={} trace={:016x} stage={}",
            name,
            elapsed.as_micros(),
            ctx.trace.0,
            name,
        ),
        None => format!(
            "telemetry: slow_op span={} elapsed_us={}",
            name,
            elapsed.as_micros()
        ),
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.hist.observe_duration(elapsed);
        let threshold = SLOW_OP_NS.load(Ordering::Relaxed);
        if threshold > 0 && elapsed.as_nanos() as u64 >= threshold {
            eprintln!("{}", slow_op_line(self.name, elapsed));
        }
    }
}

/// `span!("fsync_barrier")` — time the rest of the enclosing scope into
/// a `Unit::Seconds` histogram of that name in the global registry.
/// The handle is resolved once per call site and cached in a static.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        let hist: &'static $crate::Histogram =
            &**HIST.get_or_init(|| $crate::Registry::global().histogram($name, $crate::Unit::Seconds));
        $crate::Span::enter(hist, $name)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Unit;

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new(Unit::Seconds);
        {
            let _span = h.time("test_span");
            std::thread::sleep(Duration::from_millis(2));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 2_000_000, "recorded at least 2ms, got {}ns", s.max);
    }

    #[test]
    fn span_macro_registers_globally() {
        {
            let _span = crate::span!("span_macro_test_seconds");
        }
        let h = crate::Registry::global().histogram("span_macro_test_seconds", Unit::Seconds);
        assert!(h.snapshot().count >= 1);
    }

    #[test]
    fn slow_op_line_carries_the_trace_context() {
        use crate::trace::{install, TraceContext, TraceId, TraceScope};
        let bare = slow_op_line("fsync", Duration::from_micros(1234));
        assert_eq!(bare, "telemetry: slow_op span=fsync elapsed_us=1234");
        let ctx = TraceContext::root(TraceId(0xabcd));
        let _g = install(TraceScope::Single(ctx));
        let traced = slow_op_line("fsync", Duration::from_micros(1234));
        assert_eq!(
            traced,
            "telemetry: slow_op span=fsync elapsed_us=1234 trace=000000000000abcd stage=fsync"
        );
    }

    #[test]
    fn slow_op_threshold_round_trips() {
        set_slow_op_threshold(Some(Duration::from_millis(3)));
        assert_eq!(slow_op_threshold_ns(), 3_000_000);
        // Exercise the slow branch (output goes to captured stderr).
        let h = Histogram::new(Unit::Seconds);
        {
            let _span = h.time("slow_test");
            std::thread::sleep(Duration::from_millis(5));
        }
        set_slow_op_threshold(None);
        assert_eq!(slow_op_threshold_ns(), 0);
    }
}
