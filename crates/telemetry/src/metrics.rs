//! Atomic metric primitives: counters, gauges, and fixed-bucket
//! log-scale histograms with percentile extraction.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Each metric carries its registry's kill switch: disabled, every
/// record call is one relaxed load + return (the "no-op registry"
/// used for overhead measurement). Standalone metrics built with
/// `new()` are always enabled.
pub(crate) fn always_enabled() -> Arc<AtomicBool> {
    Arc::new(AtomicBool::new(true))
}

/// Monotonic event counter.
#[derive(Debug)]
pub struct Counter {
    v: AtomicU64,
    enabled: Arc<AtomicBool>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    pub fn new() -> Self {
        Self::with_flag(always_enabled())
    }

    pub(crate) fn with_flag(enabled: Arc<AtomicBool>) -> Self {
        Counter { v: AtomicU64::new(0), enabled }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depth, active connections,
/// sticky error state).
#[derive(Debug)]
pub struct Gauge {
    v: AtomicI64,
    enabled: Arc<AtomicBool>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    pub fn new() -> Self {
        Self::with_flag(always_enabled())
    }

    pub(crate) fn with_flag(enabled: Arc<AtomicBool>) -> Self {
        Gauge { v: AtomicI64::new(0), enabled }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.v.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// What a histogram's raw `u64` samples mean; controls exposition
/// scaling only (`Seconds` samples are recorded as nanoseconds and
/// divided out to seconds when rendered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Samples are nanoseconds; rendered as seconds.
    Seconds,
    /// Samples are byte counts.
    Bytes,
    /// Samples are plain counts (e.g. batch sizes).
    Count,
}

impl Unit {
    pub(crate) fn scale(self, raw: u64) -> f64 {
        match self {
            Unit::Seconds => raw as f64 / 1e9,
            Unit::Bytes | Unit::Count => raw as f64,
        }
    }
}

/// Bucket layout: values 0..=3 get exact buckets; above that, each
/// power-of-two octave is split into 4 log-linear sub-buckets (worst
/// case ~25% relative error on a reported quantile). Octaves 2..=63
/// cover the full `u64` range.
pub const NUM_BUCKETS: usize = 4 + 62 * 4;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize; // 2..=63
        let sub = ((v >> (octave - 2)) & 3) as usize;
        4 + (octave - 2) * 4 + sub
    }
}

/// Inclusive upper bound of a bucket (the Prometheus `le` edge).
pub(crate) fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < 4 {
        idx as u64
    } else {
        let octave = 2 + (idx - 4) / 4;
        let sub = ((idx - 4) % 4) as u64;
        let step = 1u64 << (octave - 2);
        let lower = (1u64 << octave) + sub * step;
        // The final bucket's upper edge is 2^64, which does not fit.
        match lower.checked_add(step) {
            Some(upper) => upper - 1,
            None => u64::MAX,
        }
    }
}

/// Fixed-bucket log-scale histogram. Recording is a bucket index
/// computation (bit ops) plus four relaxed atomic RMWs; no locks, no
/// allocation. 252 buckets ≈ 2 KiB per histogram.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    unit: Unit,
    enabled: Arc<AtomicBool>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("unit", &self.unit)
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p99", &s.p99)
            .field("max", &s.max)
            .finish()
    }
}

/// Point-in-time view of a histogram: counts plus extracted quantiles,
/// in raw units (nanoseconds for `Unit::Seconds`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl Histogram {
    pub fn new(unit: Unit) -> Self {
        Self::with_flag(unit, always_enabled())
    }

    pub(crate) fn with_flag(unit: Unit, enabled: Arc<AtomicBool>) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            unit,
            enabled,
        }
    }

    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Record one raw sample (nanoseconds for `Unit::Seconds`).
    #[inline]
    pub fn observe(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record an elapsed duration (for `Unit::Seconds` histograms).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Start an RAII span that records its elapsed time on drop.
    pub fn time<'a>(&'a self, name: &'static str) -> crate::Span<'a> {
        crate::Span::enter(self, name)
    }

    /// Raw per-bucket counts (used by the encoder; relaxed reads).
    pub(crate) fn bucket_counts(&self) -> [u64; NUM_BUCKETS] {
        let mut out = [0u64; NUM_BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            out[i] = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Extract count/sum/max and p50/p95/p99. Quantiles report the
    /// upper bound of the bucket containing the target rank, clamped
    /// to the observed maximum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts = self.bucket_counts();
        // Derive totals from the bucket array itself so the snapshot is
        // internally consistent even while writers race.
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let q = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((p * count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return bucket_upper_bound(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot { count, sum, max, p50: q(0.50), p95: q(0.95), p99: q(0.99) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "index in range for {v}");
            let upper = bucket_upper_bound(idx);
            assert!(v <= upper, "{v} <= upper bound {upper}");
            if idx > 0 {
                let prev_upper = bucket_upper_bound(idx - 1);
                assert!(v > prev_upper, "{v} > previous bucket upper {prev_upper}");
            }
        }
    }

    #[test]
    fn upper_bounds_strictly_increase() {
        for i in 1..NUM_BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1), "bucket {i}");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new(Unit::Count);
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // Log-scale buckets: quantile error bounded by one sub-bucket
        // (~25% relative).
        assert!((400..=640).contains(&s.p50), "p50 = {}", s.p50);
        assert!((900..=1000).contains(&s.p95), "p95 = {}", s.p95);
        assert!((950..=1000).contains(&s.p99), "p99 = {}", s.p99);
    }

    #[test]
    fn single_sample_quantiles_collapse_to_it() {
        let h = Histogram::new(Unit::Seconds);
        h.observe_duration(Duration::from_micros(750));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, s.max);
        assert_eq!(s.p99, s.max);
        assert_eq!(s.max, 750_000);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }
}
