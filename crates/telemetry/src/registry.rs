//! Named metric registry with a lock-free scrape path.
//!
//! Entries live in an append-only intrusive linked list: registration
//! (cold path) serializes writers through a mutex purely for name
//! dedup and publishes the new head with a release store; iteration —
//! the exposition path called from the request thread pool — walks the
//! list with acquire loads and takes **no lock**. Metrics are never
//! removed; a `Registry` frees its nodes on drop, when no reader can
//! still hold `&self`.

use crate::metrics::{Counter, Gauge, Histogram, Unit};
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A registered metric handle.
#[derive(Debug, Clone)]
pub enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Node {
    name: String,
    metric: Metric,
    next: *const Node,
}

pub struct Registry {
    head: AtomicPtr<Node>,
    /// Serializes registration only; never touched by readers.
    reg: Mutex<()>,
    /// Kill switch shared with every metric this registry hands out.
    enabled: Arc<AtomicBool>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut n = 0usize;
        self.for_each(|_, _| n += 1);
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

// SAFETY: nodes are immutable once published (release store of the new
// head; readers use acquire loads), and only `drop` — with exclusive
// access — frees them.
unsafe impl Send for Registry {}
unsafe impl Sync for Registry {}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            head: AtomicPtr::new(std::ptr::null_mut()),
            reg: Mutex::new(()),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Enable or disable recording for every metric handed out by this
    /// registry (including handles already resolved). Disabled, each
    /// record call is one relaxed load + early return.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The process-wide default registry; bins and default constructors
    /// record here.
    pub fn global() -> &'static Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Registry::new()))
    }

    fn find(&self, name: &str) -> Option<Metric> {
        let mut cur = self.head.load(Ordering::Acquire) as *const Node;
        while !cur.is_null() {
            // SAFETY: published nodes stay alive for the registry's
            // lifetime; we hold `&self`.
            let node = unsafe { &*cur };
            if node.name == name {
                return Some(node.metric.clone());
            }
            cur = node.next;
        }
        None
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.find(name) {
            return m;
        }
        let _guard = self.reg.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the registration lock: another writer may have
        // registered the name between our lock-free probe and the lock.
        if let Some(m) = self.find(name) {
            return m;
        }
        let metric = make();
        let node = Box::into_raw(Box::new(Node {
            name: name.to_string(),
            metric: metric.clone(),
            next: self.head.load(Ordering::Relaxed),
        }));
        self.head.store(node, Ordering::Release);
        metric
    }

    /// Get or create a counter. Panics if `name` is already registered
    /// as a different metric kind (programmer error).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let flag = self.enabled.clone();
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::with_flag(flag)))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let flag = self.enabled.clone();
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::with_flag(flag)))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create a histogram. The unit of an existing histogram
    /// wins; it is a programmer error to re-register with another unit.
    pub fn histogram(&self, name: &str, unit: Unit) -> Arc<Histogram> {
        let flag = self.enabled.clone();
        match self
            .get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::with_flag(unit, flag))))
        {
            Metric::Histogram(h) => {
                assert_eq!(h.unit(), unit, "metric {name:?} registered with a different unit");
                h
            }
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Visit every registered metric, newest first. Lock-free: safe to
    /// call from any thread, including while registrations race.
    pub fn for_each(&self, mut f: impl FnMut(&str, &Metric)) {
        let mut cur = self.head.load(Ordering::Acquire) as *const Node;
        while !cur.is_null() {
            // SAFETY: as in `find`.
            let node = unsafe { &*cur };
            f(&node.name, &node.metric);
            cur = node.next;
        }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        let mut cur = self.head.swap(std::ptr::null_mut(), Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: exclusive access in drop; nodes came from Box.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next as *mut Node;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.inc();
        assert_eq!(b.get(), 1);
        let mut names = Vec::new();
        reg.for_each(|n, _| names.push(n.to_string()));
        assert_eq!(names, ["x_total"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("dual");
        let _ = reg.gauge("dual");
    }

    #[test]
    fn concurrent_registration_dedups() {
        let reg = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for i in 0..64 {
                        reg.counter(&format!("metric_{i}")).inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        reg.for_each(|name, m| {
            count += 1;
            if let Metric::Counter(c) = m {
                assert_eq!(c.get(), 8, "{name} incremented once per thread");
            } else {
                panic!("unexpected kind");
            }
        });
        assert_eq!(count, 64, "no duplicate nodes despite racing registration");
    }
}
