//! Request-scoped tracing: trace ids, span contexts, and RAII stage
//! spans.
//!
//! A [`TraceId`] is minted once per request at the server edge (or
//! supplied by a version-2 wire frame) and carried through the layers
//! by a thread-local [`TraceScope`]. Code on the request path opens a
//! [`StageSpan`] wherever a stage begins — batcher queue, locked
//! structural window, seal legs, fsync barrier — and the span records
//! one [`crate::recorder::SpanEvent`] into the flight recorder on drop.
//! Everything is keyed off thread-local state, so layers that know
//! nothing about requests (storage fsync, checkpoint ladder) still
//! attribute their work to the right trace: if no scope is installed,
//! a `StageSpan` is inert and costs two thread-local reads.
//!
//! Two scope shapes exist because the group committer amortizes one
//! fsync barrier across a *window* of requests:
//!
//! * [`TraceScope::Single`] — one request on this thread; nested spans
//!   re-parent the scope so the span tree gets real depth;
//! * [`TraceScope::Window`] — the committer thread acting for every
//!   job in the current commit window; a span records one event per
//!   member trace (the shared fsync barrier appears in each tree).
//!
//! Cross-thread stages (pool workers computing ECDSA precompute or
//! seal legs) capture [`current_scope`] before the fan-out and install
//! it inside the worker closure, so worker spans land in the
//! submitting request's tree.
//!
//! The whole subsystem has a kill switch ([`set_trace_enabled`]) used
//! by the overhead A/B harness; disabled, minting still yields unique
//! ids but no events are recorded.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process-wide recording switch (tracing is always-on by default; the
/// loadgen A/B harness turns it off to measure overhead).
static TRACE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Monotonic source for span/trace id allocation.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Enable or disable span recording process-wide.
pub fn set_trace_enabled(enabled: bool) {
    TRACE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is enabled.
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process's trace epoch (first use). All span
/// timestamps share this base, so cross-thread ordering is meaningful.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A process-unique, nonzero request trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mint a fresh id. Ids are well-mixed (not sequential) so a
    /// client-supplied id colliding with a server-minted one requires
    /// guessing, not luck.
    pub fn mint() -> TraceId {
        let raw = splitmix64(NEXT_ID.fetch_add(1, Ordering::Relaxed));
        TraceId(if raw == 0 { 1 } else { raw })
    }

    /// Wrap a wire-supplied id; zero (the wire's "absent") mints fresh.
    pub fn from_wire(raw: u64) -> TraceId {
        if raw == 0 {
            TraceId::mint()
        } else {
            TraceId(raw)
        }
    }
}

/// A position inside one trace: the trace id plus the span id that new
/// child spans parent under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace: TraceId,
    pub span: u64,
}

impl TraceContext {
    /// A root context: children of this parent to span id 0 — the tree
    /// root is the span *named* by this context's `span` id.
    pub fn root(trace: TraceId) -> TraceContext {
        TraceContext { trace, span: next_span_id() }
    }
}

/// Allocate a process-unique span id.
pub fn next_span_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// What the current thread is working for.
#[derive(Debug, Clone)]
pub enum TraceScope {
    /// One request; nested [`StageSpan`]s re-parent this.
    Single(TraceContext),
    /// A commit window acting for many requests at once; spans record
    /// one event per member and nesting stays flat.
    Window(Arc<[TraceContext]>),
}

thread_local! {
    static CURRENT: RefCell<Option<TraceScope>> = const { RefCell::new(None) };
}

/// The current thread's single-request context, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| match &*c.borrow() {
        Some(TraceScope::Single(ctx)) => Some(*ctx),
        _ => None,
    })
}

/// The current thread's scope (single or window), if any.
pub fn current_scope() -> Option<TraceScope> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install `scope` on this thread until the guard drops (the previous
/// scope is restored — guards nest).
#[must_use = "the scope is uninstalled when the guard drops"]
pub fn install(scope: TraceScope) -> ScopeGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(scope));
    ScopeGuard { prev, restored: false }
}

/// Install a window scope over `members` (no-op guard when empty).
#[must_use = "the scope is uninstalled when the guard drops"]
pub fn install_window(members: &[TraceContext]) -> Option<ScopeGuard> {
    if members.is_empty() {
        return None;
    }
    Some(install(TraceScope::Window(members.into())))
}

/// Restores the previously installed scope on drop.
pub struct ScopeGuard {
    prev: Option<TraceScope>,
    restored: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.restored {
            let prev = self.prev.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
            self.restored = true;
        }
    }
}

/// Record a completed span with explicit timestamps under `ctx` (used
/// when the measured interval started on another thread — e.g. the
/// batcher queue wait measured from the submit instant). Returns the
/// new span's id.
pub fn record_span(ctx: TraceContext, name: &'static str, start_ns: u64, end_ns: u64) -> u64 {
    let span = next_span_id();
    if trace_enabled() {
        crate::recorder::record(crate::recorder::SpanEvent {
            trace: ctx.trace.0,
            span,
            parent: ctx.span,
            name_id: crate::recorder::name_id(name),
            start_ns,
            end_ns,
        });
    }
    span
}

/// Record the same interval into every member of a window (the shared
/// fsync barrier / whole-window commit).
pub fn record_span_multi(
    members: &[TraceContext],
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
) {
    if !trace_enabled() {
        return;
    }
    let name_id = crate::recorder::name_id(name);
    for ctx in members {
        crate::recorder::record(crate::recorder::SpanEvent {
            trace: ctx.trace.0,
            span: next_span_id(),
            parent: ctx.span,
            name_id,
            start_ns,
            end_ns,
        });
    }
}

enum StageState {
    /// Single-request scope: we re-parented the TLS to our span; the
    /// guard restores the parent when the stage ends.
    Single { ctx: TraceContext, span: u64, _guard: ScopeGuard },
    /// Window scope: record one event per member on drop.
    Window(Arc<[TraceContext]>),
}

/// RAII stage span: opens at construction, records on drop. Inert
/// (two TLS reads) when no scope is installed or tracing is disabled.
/// Under a single-request scope, child `StageSpan`s opened while this
/// one is alive become its children in the span tree.
#[must_use = "a stage span records on drop; binding it to _ measures nothing"]
pub struct StageSpan {
    name: &'static str,
    start_ns: u64,
    state: Option<StageState>,
}

impl StageSpan {
    pub fn begin(name: &'static str) -> StageSpan {
        if !trace_enabled() {
            return StageSpan { name, start_ns: 0, state: None };
        }
        let state = match current_scope() {
            Some(TraceScope::Single(ctx)) => {
                let span = next_span_id();
                let guard = install(TraceScope::Single(TraceContext { trace: ctx.trace, span }));
                Some(StageState::Single { ctx, span, _guard: guard })
            }
            Some(TraceScope::Window(members)) => Some(StageState::Window(members)),
            None => None,
        };
        let start_ns = if state.is_some() { now_ns() } else { 0 };
        StageSpan { name, start_ns, state }
    }

    /// Is this span actually recording?
    pub fn active(&self) -> bool {
        self.state.is_some()
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else { return };
        let end_ns = now_ns();
        match state {
            StageState::Single { ctx, span, _guard } => {
                crate::recorder::record(crate::recorder::SpanEvent {
                    trace: ctx.trace.0,
                    span,
                    parent: ctx.span,
                    name_id: crate::recorder::name_id(self.name),
                    start_ns: self.start_ns,
                    end_ns,
                });
            }
            StageState::Window(members) => {
                record_span_multi(&members, self.name, self.start_ns, end_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder;

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        assert_ne!(b.0, 0);
        assert_eq!(TraceId::from_wire(7).0, 7);
        assert_ne!(TraceId::from_wire(0).0, 0, "zero mints fresh");
    }

    #[test]
    fn stage_spans_nest_under_single_scope() {
        let trace = TraceId::mint();
        let root = TraceContext::root(trace);
        {
            let _g = install(TraceScope::Single(root));
            let outer = StageSpan::begin("outer_stage");
            assert!(outer.active());
            {
                let _inner = StageSpan::begin("inner_stage");
            }
            drop(outer);
        }
        assert!(current_scope().is_none(), "guard restored the empty scope");
        let events = recorder::events_for(trace.0);
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| recorder::name_of(e.name_id) == "inner_stage").unwrap();
        let outer = events.iter().find(|e| recorder::name_of(e.name_id) == "outer_stage").unwrap();
        assert_eq!(inner.parent, outer.span, "inner is a child of outer");
        assert_eq!(outer.parent, root.span, "outer is a child of the root context");
        assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn window_scope_records_one_event_per_member() {
        let members: Vec<TraceContext> =
            (0..3).map(|_| TraceContext::root(TraceId::mint())).collect();
        {
            let _g = install_window(&members).unwrap();
            let _span = StageSpan::begin("window_stage");
        }
        for ctx in &members {
            let events = recorder::events_for(ctx.trace.0);
            assert_eq!(events.len(), 1, "each member trace got the shared span");
            assert_eq!(recorder::name_of(events[0].name_id), "window_stage");
            assert_eq!(events[0].parent, ctx.span);
        }
    }

    #[test]
    fn spans_are_inert_without_scope_and_when_disabled() {
        {
            let span = StageSpan::begin("orphan_stage");
            assert!(!span.active(), "no scope installed");
        }
        let trace = TraceId::mint();
        set_trace_enabled(false);
        {
            let _g = install(TraceScope::Single(TraceContext::root(trace)));
            let span = StageSpan::begin("disabled_stage");
            assert!(!span.active(), "kill switch wins");
        }
        set_trace_enabled(true);
        assert!(recorder::events_for(trace.0).is_empty());
    }

    #[test]
    fn explicit_time_spans_attach_to_the_context() {
        let ctx = TraceContext::root(TraceId::mint());
        let t0 = now_ns();
        record_span(ctx, "queue_wait_stage", t0, t0 + 1_000);
        let events = recorder::events_for(ctx.trace.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].end_ns - events[0].start_ns, 1_000);
        assert_eq!(events[0].parent, ctx.span);
    }
}
