//! # ledgerdb-telemetry
//!
//! std-only observability for the ledgerdb stack: a lock-free metrics
//! registry (atomic counters, gauges, and log-scale latency histograms
//! with p50/p95/p99/max extraction), a lightweight RAII span API, and a
//! Prometheus-style text exposition encoder.
//!
//! Design constraints (see DESIGN.md §8):
//!
//! * **Hot path = a handful of relaxed atomic ops.** Recording into a
//!   counter, gauge, or histogram never locks, never allocates, and
//!   never syscalls. Handles (`Arc<Counter>` …) are resolved once at
//!   component construction and cached in per-component metric structs.
//! * **Scrape path holds no lock.** The registry keeps its entries in
//!   an append-only lock-free linked list; registration (cold path)
//!   serializes writers through a mutex for name dedup, but iteration —
//!   the text exposition called from the request thread pool — walks
//!   the list with plain `Acquire` loads and takes no lock at all, so
//!   it cannot allocate *while holding a registry lock* (there is no
//!   lock to hold) and cannot block writers.
//! * **Kill switch.** `set_enabled(false)` turns every recording
//!   operation into a single relaxed load + early return, which is the
//!   "no-op registry build" used to measure telemetry overhead.
//!
//! Values recorded into `Unit::Seconds` histograms are nanoseconds;
//! the encoder scales them to seconds at exposition time.

mod dump;
mod encode;
mod metrics;
pub mod recorder;
mod registry;
mod span;
pub mod trace;

pub use dump::Dumper;
pub use encode::{parse_value, render, EXPOSITION_CONTENT_TYPE};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Unit, NUM_BUCKETS};
pub use registry::{Metric, Registry};
pub use span::{set_slow_op_threshold, slow_op_threshold_ns, Span};
pub use trace::{
    set_trace_enabled, trace_enabled, StageSpan, TraceContext, TraceId, TraceScope,
};

/// Enable or disable recording on the **global** registry. Disabled,
/// every record call is one relaxed load + return: the "no-op
/// registry" used for overhead measurement. Scraping still works and
/// reports whatever was recorded while enabled. Per-registry control
/// is on [`Registry::set_enabled`].
pub fn set_enabled(enabled: bool) {
    Registry::global().set_enabled(enabled);
}

/// Whether recording on the global registry is currently enabled.
pub fn enabled() -> bool {
    Registry::global().enabled()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        let c = reg.counter("kill_switch_total");
        let h = reg.histogram("kill_switch_seconds", Unit::Seconds);
        reg.set_enabled(false);
        c.inc();
        c.add(41);
        h.observe_duration(Duration::from_millis(5));
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        // Re-enabling revives handles resolved while disabled.
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn concurrent_scrape_never_blocks_writers() {
        // Writers hammer a histogram + counter while scrapers render the
        // full exposition in a tight loop; the registry must stay
        // consistent and lock-free throughout.
        let reg = Arc::new(Registry::new());
        let c = reg.counter("scrape_total");
        let h = reg.histogram("scrape_seconds", Unit::Seconds);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (c, h) = (c.clone(), h.clone());
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    c.inc();
                    h.observe(i * 100);
                }
            }));
        }
        // Scrapers race registration of *new* metrics too.
        for t in 0..2 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let text = render(&reg);
                    assert!(text.contains("scrape_total"));
                    if i % 50 == 0 {
                        reg.counter(if t == 0 { "late_a_total" } else { "late_b_total" }).inc();
                    }
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.snapshot().count, 40_000);
    }
}
