//! The flight recorder: always-on, bounded-memory span storage.
//!
//! Every [`SpanEvent`] lands in a per-thread ring buffer owned by the
//! recording thread — recording is a handful of atomic stores into
//! slots only that thread writes, so the hot path takes no lock and
//! never allocates after the thread's first event. Readers (the
//! `/trace/<id>` endpoints, the Chrome-trace dumper) scan the rings
//! with a seqlock protocol: each slot carries a version counter the
//! writer bumps to odd before rewriting and even after, and a reader
//! that observes an odd or changed version discards the slot. All slot
//! accesses are atomics, so a torn read is *detected*, never undefined.
//!
//! A ring holds [`RING_CAPACITY`] events; old events are overwritten.
//! That alone would lose exactly the traces worth keeping (a slow
//! request's spans age out while it is still interesting), so when a
//! root span ends slow (≥ the [`crate::slow_op_threshold_ns`] used by
//! slow-op logging) or with an error response, [`finish_root`]
//! *tail-captures* the whole trace into a pinned buffer of the last
//! [`PINNED_TRACES`] interesting traces. `events_for` consults both,
//! so `/trace/<id>` keeps answering for slow/error traces long after
//! the rings have wrapped.
//!
//! Stage names are `&'static str` interned to small ids so a slot is
//! seven words of atomics and carries no pointers.

use crate::trace::{now_ns, trace_enabled, TraceContext};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events retained per recording thread before overwrite (~112 KiB).
pub const RING_CAPACITY: usize = 2048;

/// Slow or error-terminated traces retained in full after their rings
/// wrap.
pub const PINNED_TRACES: usize = 64;

/// One completed span. `name_id` indexes the interned name table
/// ([`name_of`]); timestamps are [`now_ns`] nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    pub trace: u64,
    pub span: u64,
    pub parent: u64,
    pub name_id: u32,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// A span event plus the recorder-thread id that produced it (the
/// Chrome-trace `tid`).
#[derive(Debug, Clone, Copy)]
pub struct ThreadedEvent {
    pub tid: u32,
    pub event: SpanEvent,
}

// ---------------------------------------------------------------------
// Stage-name interning
// ---------------------------------------------------------------------

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Intern a stage name; stable for the process lifetime. The table is
/// tiny (one entry per distinct stage), so a linear probe suffices.
pub fn name_id(name: &'static str) -> u32 {
    let mut table = names().lock().unwrap_or_else(|e| e.into_inner());
    for (i, n) in table.iter().enumerate() {
        // Pointer equality catches the common case (same literal) before
        // falling back to a content compare across codegen units.
        if std::ptr::eq(n.as_ptr(), name.as_ptr()) || *n == name {
            return i as u32;
        }
    }
    table.push(name);
    (table.len() - 1) as u32
}

/// The interned name for `id` (empty string for an unknown id).
pub fn name_of(id: u32) -> &'static str {
    let table = names().lock().unwrap_or_else(|e| e.into_inner());
    table.get(id as usize).copied().unwrap_or("")
}

// ---------------------------------------------------------------------
// Per-thread seqlock rings
// ---------------------------------------------------------------------

/// Seven atomics: a version word plus the six event fields. The owning
/// thread is the only writer; version parity marks in-progress writes.
struct Slot {
    version: AtomicU64,
    trace: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    name_id: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
}

impl Slot {
    const fn empty() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            span: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            name_id: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
        }
    }

    /// Writer side (owning thread only).
    fn write(&self, e: &SpanEvent) {
        let v = self.version.load(Ordering::Relaxed);
        self.version.store(v + 1, Ordering::Release); // odd: in progress
        self.trace.store(e.trace, Ordering::Release);
        self.span.store(e.span, Ordering::Release);
        self.parent.store(e.parent, Ordering::Release);
        self.name_id.store(e.name_id as u64, Ordering::Release);
        self.start_ns.store(e.start_ns, Ordering::Release);
        self.end_ns.store(e.end_ns, Ordering::Release);
        self.version.store(v + 2, Ordering::Release); // even: published
    }

    /// Reader side: `None` when the slot is empty, mid-write, or was
    /// rewritten underneath us (version changed across the copy).
    fn read(&self) -> Option<SpanEvent> {
        let v1 = self.version.load(Ordering::Acquire);
        if v1 == 0 || v1 % 2 == 1 {
            return None;
        }
        let event = SpanEvent {
            trace: self.trace.load(Ordering::Acquire),
            span: self.span.load(Ordering::Acquire),
            parent: self.parent.load(Ordering::Acquire),
            name_id: self.name_id.load(Ordering::Acquire) as u32,
            start_ns: self.start_ns.load(Ordering::Acquire),
            end_ns: self.end_ns.load(Ordering::Acquire),
        };
        if self.version.load(Ordering::Acquire) == v1 {
            Some(event)
        } else {
            None
        }
    }
}

struct ThreadRing {
    tid: u32,
    /// Total events ever written; the write cursor is `head % CAPACITY`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    fn new(tid: u32) -> ThreadRing {
        ThreadRing {
            tid,
            head: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| Slot::empty()).collect(),
        }
    }

    fn push(&self, e: &SpanEvent) {
        let h = self.head.load(Ordering::Relaxed);
        self.slots[(h % RING_CAPACITY as u64) as usize].write(e);
        self.head.store(h + 1, Ordering::Release);
    }

    fn scan(&self, mut f: impl FnMut(ThreadedEvent)) {
        let filled = self.head.load(Ordering::Acquire).min(RING_CAPACITY as u64) as usize;
        for slot in &self.slots[..filled] {
            if let Some(event) = slot.read() {
                f(ThreadedEvent { tid: self.tid, event });
            }
        }
    }
}

/// A pinned (tail-captured) slow or error-terminated trace.
#[derive(Debug, Clone)]
pub struct PinnedTrace {
    pub trace: u64,
    pub root_name_id: u32,
    pub dur_ns: u64,
    pub error: bool,
    pub events: Vec<SpanEvent>,
}

struct Recorder {
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    pinned: Mutex<std::collections::VecDeque<PinnedTrace>>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        rings: Mutex::new(Vec::new()),
        pinned: Mutex::new(std::collections::VecDeque::new()),
    })
}

thread_local! {
    static MY_RING: OnceLock<Arc<ThreadRing>> = const { OnceLock::new() };
}

fn with_ring(f: impl FnOnce(&ThreadRing)) {
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let global = recorder();
            let mut rings = global.rings.lock().unwrap_or_else(|e| e.into_inner());
            let ring = Arc::new(ThreadRing::new(rings.len() as u32 + 1));
            rings.push(ring.clone());
            ring
        });
        f(ring);
    });
}

/// Record one completed span into this thread's ring.
pub fn record(event: SpanEvent) {
    with_ring(|ring| ring.push(&event));
}

/// Finish a request's root span: records the root event (parent 0) and
/// tail-captures the whole trace into the pinned buffer when the
/// request was slow (≥ the slow-op threshold, when one is set) or
/// ended in an error response. Returns the root duration in ns.
pub fn finish_root(ctx: TraceContext, name: &'static str, start_ns: u64, error: bool) -> u64 {
    let end_ns = now_ns();
    let dur_ns = end_ns.saturating_sub(start_ns);
    if !trace_enabled() {
        return dur_ns;
    }
    let root_name = name_id(name);
    record(SpanEvent {
        trace: ctx.trace.0,
        span: ctx.span,
        parent: 0,
        name_id: root_name,
        start_ns,
        end_ns,
    });
    let threshold = crate::slow_op_threshold_ns();
    if error || (threshold > 0 && dur_ns >= threshold) {
        pin_trace(ctx.trace.0, root_name, dur_ns, error);
    }
    dur_ns
}

fn pin_trace(trace: u64, root_name_id: u32, dur_ns: u64, error: bool) {
    let events = scan_trace(trace);
    let mut pinned = recorder().pinned.lock().unwrap_or_else(|e| e.into_inner());
    pinned.retain(|p| p.trace != trace);
    pinned.push_back(PinnedTrace { trace, root_name_id, dur_ns, error, events });
    while pinned.len() > PINNED_TRACES {
        pinned.pop_front();
    }
}

/// Scan the live rings for a trace's events (no pinned consultation).
fn scan_trace(trace: u64) -> Vec<SpanEvent> {
    let mut out = Vec::new();
    for_each_ring_event(|te| {
        if te.event.trace == trace {
            out.push(te.event);
        }
    });
    out.sort_by_key(|e| (e.start_ns, e.span));
    out.dedup_by_key(|e| e.span);
    out
}

fn for_each_ring_event(mut f: impl FnMut(ThreadedEvent)) {
    // Clone the ring handles out so the scan itself holds no lock.
    let rings: Vec<Arc<ThreadRing>> = {
        let rings = recorder().rings.lock().unwrap_or_else(|e| e.into_inner());
        rings.clone()
    };
    for ring in rings {
        ring.scan(&mut f);
    }
}

/// Every event currently retained for `trace`: pinned capture merged
/// with whatever still lives in the rings, deduped by span id and
/// ordered by start time. Empty when the trace is unknown (or fully
/// aged out of an unpinned ring).
pub fn events_for(trace: u64) -> Vec<SpanEvent> {
    let mut out: Vec<SpanEvent> = {
        let pinned = recorder().pinned.lock().unwrap_or_else(|e| e.into_inner());
        pinned
            .iter()
            .find(|p| p.trace == trace)
            .map(|p| p.events.clone())
            .unwrap_or_default()
    };
    out.extend(scan_trace(trace));
    out.sort_by_key(|e| (e.span, std::cmp::Reverse(e.end_ns)));
    out.dedup_by_key(|e| e.span);
    out.sort_by_key(|e| (e.start_ns, e.span));
    out
}

/// Summaries of the pinned (slow / error) traces, newest first.
pub fn slow_traces() -> Vec<PinnedTrace> {
    let pinned = recorder().pinned.lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<PinnedTrace> = pinned.iter().cloned().collect();
    out.reverse();
    out
}

/// Every event the recorder currently retains (rings + pinned traces,
/// deduped by span id), with thread attribution. The Chrome-trace dump
/// feeds from this.
pub fn all_events() -> Vec<ThreadedEvent> {
    let mut out: Vec<ThreadedEvent> = Vec::new();
    for_each_ring_event(|te| out.push(te));
    {
        let pinned = recorder().pinned.lock().unwrap_or_else(|e| e.into_inner());
        for p in pinned.iter() {
            for event in &p.events {
                out.push(ThreadedEvent { tid: 0, event: *event });
            }
        }
    }
    // Ring copies (with a real tid) outrank tid-0 pinned copies.
    out.sort_by_key(|te| (te.event.span, std::cmp::Reverse(te.tid)));
    out.dedup_by_key(|te| te.event.span);
    out.sort_by_key(|te| (te.event.start_ns, te.event.span));
    out
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render events as a Chrome-trace JSON document (`chrome://tracing` /
/// Perfetto): an object with a `traceEvents` array of "X" (complete)
/// events, timestamps and durations in microseconds.
pub fn chrome_trace_json(events: &[ThreadedEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, te) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let e = &te.event;
        out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&te.tid.to_string());
        out.push_str(",\"name\":\"");
        push_json_escaped(&mut out, name_of(e.name_id));
        out.push_str("\",\"ts\":");
        out.push_str(&(e.start_ns / 1_000).to_string());
        out.push_str(",\"dur\":");
        out.push_str(&(e.end_ns.saturating_sub(e.start_ns) / 1_000).max(1).to_string());
        out.push_str(",\"args\":{\"trace\":\"");
        out.push_str(&format!("{:016x}", e.trace));
        out.push_str("\",\"span\":");
        out.push_str(&e.span.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&e.parent.to_string());
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceContext, TraceId};

    fn event(trace: u64, span: u64, parent: u64, name: &'static str) -> SpanEvent {
        let t = now_ns();
        SpanEvent { trace, span, parent, name_id: name_id(name), start_ns: t, end_ns: t + 100 }
    }

    #[test]
    fn name_interning_round_trips() {
        let a = name_id("ring_test_stage_a");
        let b = name_id("ring_test_stage_b");
        assert_ne!(a, b);
        assert_eq!(name_id("ring_test_stage_a"), a, "stable on re-intern");
        assert_eq!(name_of(a), "ring_test_stage_a");
        assert_eq!(name_of(u32::MAX), "", "unknown id is empty, not a panic");
    }

    #[test]
    fn ring_overwrites_but_pinned_survives() {
        let slow = TraceContext::root(TraceId::mint());
        let t0 = now_ns();
        record(event(slow.trace.0, crate::trace::next_span_id(), slow.span, "pin_stage"));
        // Error-terminated → pinned regardless of threshold.
        finish_root(slow, "pin_root", t0, true);
        assert_eq!(events_for(slow.trace.0).len(), 2);

        // Wrap this thread's ring completely.
        let filler = TraceId::mint();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            record(event(filler.0, crate::trace::next_span_id(), 0, "filler_stage"));
            let _ = i;
        }
        let after = events_for(slow.trace.0);
        assert_eq!(after.len(), 2, "pinned capture outlives the ring");
        assert!(slow_traces().iter().any(|p| p.trace == slow.trace.0 && p.error));
    }

    #[test]
    fn finish_root_pins_slow_traces_by_threshold() {
        crate::set_slow_op_threshold(Some(std::time::Duration::from_nanos(1)));
        let ctx = TraceContext::root(TraceId::mint());
        // `now_ns` counts from a process-wide epoch initialized on first
        // use; give it room so the 5ms back-date below doesn't saturate
        // to 0 when this test is the first caller.
        while now_ns() < 5_000_000 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let t0 = now_ns().saturating_sub(5_000_000);
        finish_root(ctx, "slow_root", t0, false);
        crate::set_slow_op_threshold(None);
        let pinned = slow_traces();
        let hit = pinned.iter().find(|p| p.trace == ctx.trace.0).expect("pinned as slow");
        assert!(!hit.error);
        assert!(hit.dur_ns >= 5_000_000);
        assert_eq!(name_of(hit.root_name_id), "slow_root");
    }

    #[test]
    fn fast_ok_roots_are_recorded_but_not_pinned() {
        let ctx = TraceContext::root(TraceId::mint());
        finish_root(ctx, "fast_root", now_ns(), false);
        assert_eq!(events_for(ctx.trace.0).len(), 1, "ring has it");
        assert!(
            slow_traces().iter().all(|p| p.trace != ctx.trace.0),
            "fast+ok is not pinned"
        );
    }

    #[test]
    fn concurrent_writers_and_scanners_stay_consistent() {
        let trace = TraceId::mint();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..3)
            .map(|w| {
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        record(event(
                            trace.0,
                            crate::trace::next_span_id(),
                            w,
                            "torture_stage",
                        ));
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for _ in 0..50 {
            for e in events_for(trace.0) {
                // A torn read would show impossible field mixes; the
                // seqlock must never surface one.
                assert_eq!(e.trace, trace.0);
                assert_eq!(e.end_ns - e.start_ns, 100);
                assert_eq!(name_of(e.name_id), "torture_stage");
            }
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(total > 0);
    }

    #[test]
    fn chrome_trace_json_is_wellformed() {
        let ctx = TraceContext::root(TraceId::mint());
        record(event(ctx.trace.0, crate::trace::next_span_id(), ctx.span, "chrome_stage"));
        let all = all_events();
        let json = chrome_trace_json(&all);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("chrome_stage"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
