//! Prometheus-style text exposition: encoder and a small line parser
//! (used by `ledgerd-stats` assertions and `loadgen` scrapes).

use crate::metrics::{bucket_upper_bound, NUM_BUCKETS};
use crate::registry::{Metric, Registry};
use std::fmt::Write as _;

/// The `Content-Type` an HTTP scrape endpoint should declare for
/// [`render`]'s output (Prometheus text exposition format 0.0.4).
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Render every metric in `registry` as Prometheus-style text.
///
/// Deterministic (sorted by name). Histograms emit cumulative
/// `_bucket{le="…"}` lines for non-empty buckets only (plus `+Inf`),
/// `_sum`/`_count`, extracted `{quantile="…"}` lines, and `_max`.
/// The walk over the registry is lock-free — see module docs — so this
/// can allocate and format freely without ever holding a registry lock.
pub fn render(registry: &Registry) -> String {
    let mut entries: Vec<(String, Metric)> = Vec::new();
    registry.for_each(|name, metric| entries.push((name.to_string(), metric.clone())));
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::with_capacity(entries.len() * 64);
    for (name, metric) in &entries {
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", g.get());
            }
            Metric::Histogram(h) => {
                let unit = h.unit();
                let counts = h.bucket_counts();
                let snap = h.snapshot();
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for i in 0..NUM_BUCKETS {
                    if counts[i] == 0 {
                        continue;
                    }
                    cumulative += counts[i];
                    let le = unit.scale(bucket_upper_bound(i));
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_sum {}", unit.scale(snap.sum));
                let _ = writeln!(out, "{name}_count {}", snap.count);
                for (q, v) in
                    [("0.5", snap.p50), ("0.95", snap.p95), ("0.99", snap.p99)]
                {
                    let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", unit.scale(v));
                }
                let _ = writeln!(out, "{name}_max {}", unit.scale(snap.max));
            }
        }
    }
    out
}

/// Find the sample whose full name token equals `token` in a rendered
/// exposition and return its value. `token` includes any label set:
/// `parse_value(text, "ledger_appends_total")`,
/// `parse_value(text, "server_req_append_seconds{quantile=\"0.99\"}")`.
pub fn parse_value(text: &str, token: &str) -> Option<f64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if name == token {
                return value.trim().parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unit;

    #[test]
    fn render_and_parse_round_trip() {
        let reg = Registry::new();
        reg.counter("enc_total").add(42);
        reg.gauge("enc_depth").set(-3);
        let h = reg.histogram("enc_seconds", Unit::Seconds);
        h.observe_duration(std::time::Duration::from_millis(1));
        h.observe_duration(std::time::Duration::from_millis(4));

        let text = render(&reg);
        assert!(text.contains("# TYPE enc_total counter"));
        assert!(text.contains("# TYPE enc_seconds histogram"));
        assert!(text.contains("enc_seconds_bucket{le=\"+Inf\"} 2"));
        assert_eq!(parse_value(&text, "enc_total"), Some(42.0));
        assert_eq!(parse_value(&text, "enc_depth"), Some(-3.0));
        assert_eq!(parse_value(&text, "enc_seconds_count"), Some(2.0));
        let p99 = parse_value(&text, "enc_seconds{quantile=\"0.99\"}").unwrap();
        assert!((0.003..=0.005).contains(&p99), "p99 = {p99}");
        let sum = parse_value(&text, "enc_seconds_sum").unwrap();
        assert!((0.004..=0.006).contains(&sum), "sum = {sum}");
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let reg = Registry::new();
        reg.counter("b_total").inc();
        reg.counter("a_total").inc();
        let text = render(&reg);
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b, "entries sorted by name");
        assert_eq!(text, render(&reg), "stable output");
    }

    #[test]
    fn histogram_exposition_format_is_scraper_correct() {
        // External scrapers (Prometheus `rate()`/`avg` over `_sum`/
        // `_count`) need: a `histogram` TYPE line, monotone cumulative
        // `_bucket` counts ending in a `+Inf` bucket equal to `_count`,
        // and a `_sum` consistent with the observations. Pin all of it.
        let reg = Registry::new();
        let h = reg.histogram("expo_seconds", Unit::Seconds);
        let samples_ns: [u64; 5] = [1_000_000, 2_000_000, 2_000_000, 40_000_000, 900_000_000];
        for ns in samples_ns {
            h.observe(ns);
        }
        let text = render(&reg);
        assert!(text.contains("# TYPE expo_seconds histogram"));

        // Every _bucket line parses, `le` bounds ascend, counts are
        // cumulative (non-decreasing), and +Inf closes the series.
        let mut last_le = f64::NEG_INFINITY;
        let mut last_count = 0.0f64;
        let mut saw_inf = false;
        for line in text.lines().filter(|l| l.starts_with("expo_seconds_bucket{")) {
            let le_raw = line
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .expect("le label present");
            let le = if le_raw == "+Inf" {
                saw_inf = true;
                f64::INFINITY
            } else {
                le_raw.parse::<f64>().expect("numeric le bound")
            };
            assert!(le > last_le, "bucket bounds ascend: {line}");
            last_le = le;
            let count: f64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(count >= last_count, "cumulative counts never decrease: {line}");
            last_count = count;
        }
        assert!(saw_inf, "+Inf bucket terminates the series");

        let count = parse_value(&text, "expo_seconds_count").expect("_count series present");
        let sum = parse_value(&text, "expo_seconds_sum").expect("_sum series present");
        assert_eq!(count, samples_ns.len() as f64);
        assert_eq!(last_count, count, "+Inf bucket equals _count");
        let expected_sum: f64 = samples_ns.iter().map(|ns| *ns as f64 / 1e9).sum();
        assert!(
            (sum - expected_sum).abs() < 1e-9,
            "_sum is the unit-scaled exact total: {sum} vs {expected_sum}"
        );
        // Average derived the scraper way is sane.
        let avg = sum / count;
        assert!((0.1..=0.2).contains(&avg), "avg = {avg}");
    }

    #[test]
    fn parse_value_ignores_comments_and_misses() {
        let text = "# TYPE x counter\nx 5\n";
        assert_eq!(parse_value(text, "x"), Some(5.0));
        assert_eq!(parse_value(text, "y"), None);
    }
}
