//! Prometheus-style text exposition: encoder and a small line parser
//! (used by `ledgerd-stats` assertions and `loadgen` scrapes).

use crate::metrics::{bucket_upper_bound, NUM_BUCKETS};
use crate::registry::{Metric, Registry};
use std::fmt::Write as _;

/// The `Content-Type` an HTTP scrape endpoint should declare for
/// [`render`]'s output (Prometheus text exposition format 0.0.4).
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Split a registered metric name into its base name and an optional
/// label set: `ledger_proof_bytes{backend="bin"}` →
/// (`ledger_proof_bytes`, `Some("backend=\"bin\"")`). Labeled names let
/// one logical metric fan out per dimension (e.g. per state backend)
/// while scrapers still group every series under one base name.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}')),
        None => (name, None),
    }
}

/// Render every metric in `registry` as Prometheus-style text.
///
/// Deterministic (sorted by name). Histograms emit cumulative
/// `_bucket{le="…"}` lines for non-empty buckets only (plus `+Inf`),
/// `_sum`/`_count`, extracted `{quantile="…"}` lines, and `_max`.
/// A metric registered with a label set in its name (see
/// [`split_labels`]) has the labels spliced into every derived series —
/// `base_bucket{backend="bin",le="…"}`, `base_sum{backend="bin"}` —
/// and shares one `# TYPE` line per base name with its siblings.
/// The walk over the registry is lock-free — see module docs — so this
/// can allocate and format freely without ever holding a registry lock.
pub fn render(registry: &Registry) -> String {
    let mut entries: Vec<(String, Metric)> = Vec::new();
    registry.for_each(|name, metric| entries.push((name.to_string(), metric.clone())));
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::with_capacity(entries.len() * 64);
    let mut typed: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for (name, metric) in &entries {
        let (base, labels) = split_labels(name);
        // One TYPE line per base name: labeled siblings (sorted
        // adjacent) are a single logical metric to a scraper.
        let mut type_line = |kind: &str, out: &mut String| {
            if typed.insert(base) {
                let _ = writeln!(out, "# TYPE {base} {kind}");
            }
        };
        match metric {
            Metric::Counter(c) => {
                type_line("counter", &mut out);
                let _ = writeln!(out, "{name} {}", c.get());
            }
            Metric::Gauge(g) => {
                type_line("gauge", &mut out);
                let _ = writeln!(out, "{name} {}", g.get());
            }
            Metric::Histogram(h) => {
                let unit = h.unit();
                let counts = h.bucket_counts();
                let snap = h.snapshot();
                type_line("histogram", &mut out);
                // `backend="bin",` — spliced before le/quantile; empty
                // for unlabeled metrics, preserving their exact format.
                let inner = labels.map(|l| format!("{l},")).unwrap_or_default();
                let series = |suffix: &str| match labels {
                    Some(l) => format!("{base}{suffix}{{{l}}}"),
                    None => format!("{base}{suffix}"),
                };
                let mut cumulative = 0u64;
                for i in 0..NUM_BUCKETS {
                    if counts[i] == 0 {
                        continue;
                    }
                    cumulative += counts[i];
                    let le = unit.scale(bucket_upper_bound(i));
                    let _ = writeln!(out, "{base}_bucket{{{inner}le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{base}_bucket{{{inner}le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{} {}", series("_sum"), unit.scale(snap.sum));
                let _ = writeln!(out, "{} {}", series("_count"), snap.count);
                for (q, v) in
                    [("0.5", snap.p50), ("0.95", snap.p95), ("0.99", snap.p99)]
                {
                    let _ =
                        writeln!(out, "{base}{{{inner}quantile=\"{q}\"}} {}", unit.scale(v));
                }
                let _ = writeln!(out, "{} {}", series("_max"), unit.scale(snap.max));
            }
        }
    }
    out
}

/// Find the sample whose full name token equals `token` in a rendered
/// exposition and return its value. `token` includes any label set:
/// `parse_value(text, "ledger_appends_total")`,
/// `parse_value(text, "server_req_append_seconds{quantile=\"0.99\"}")`.
pub fn parse_value(text: &str, token: &str) -> Option<f64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if name == token {
                return value.trim().parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unit;

    #[test]
    fn render_and_parse_round_trip() {
        let reg = Registry::new();
        reg.counter("enc_total").add(42);
        reg.gauge("enc_depth").set(-3);
        let h = reg.histogram("enc_seconds", Unit::Seconds);
        h.observe_duration(std::time::Duration::from_millis(1));
        h.observe_duration(std::time::Duration::from_millis(4));

        let text = render(&reg);
        assert!(text.contains("# TYPE enc_total counter"));
        assert!(text.contains("# TYPE enc_seconds histogram"));
        assert!(text.contains("enc_seconds_bucket{le=\"+Inf\"} 2"));
        assert_eq!(parse_value(&text, "enc_total"), Some(42.0));
        assert_eq!(parse_value(&text, "enc_depth"), Some(-3.0));
        assert_eq!(parse_value(&text, "enc_seconds_count"), Some(2.0));
        let p99 = parse_value(&text, "enc_seconds{quantile=\"0.99\"}").unwrap();
        assert!((0.003..=0.005).contains(&p99), "p99 = {p99}");
        let sum = parse_value(&text, "enc_seconds_sum").unwrap();
        assert!((0.004..=0.006).contains(&sum), "sum = {sum}");
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let reg = Registry::new();
        reg.counter("b_total").inc();
        reg.counter("a_total").inc();
        let text = render(&reg);
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b, "entries sorted by name");
        assert_eq!(text, render(&reg), "stable output");
    }

    #[test]
    fn histogram_exposition_format_is_scraper_correct() {
        // External scrapers (Prometheus `rate()`/`avg` over `_sum`/
        // `_count`) need: a `histogram` TYPE line, monotone cumulative
        // `_bucket` counts ending in a `+Inf` bucket equal to `_count`,
        // and a `_sum` consistent with the observations. Pin all of it.
        let reg = Registry::new();
        let h = reg.histogram("expo_seconds", Unit::Seconds);
        let samples_ns: [u64; 5] = [1_000_000, 2_000_000, 2_000_000, 40_000_000, 900_000_000];
        for ns in samples_ns {
            h.observe(ns);
        }
        let text = render(&reg);
        assert!(text.contains("# TYPE expo_seconds histogram"));

        // Every _bucket line parses, `le` bounds ascend, counts are
        // cumulative (non-decreasing), and +Inf closes the series.
        let mut last_le = f64::NEG_INFINITY;
        let mut last_count = 0.0f64;
        let mut saw_inf = false;
        for line in text.lines().filter(|l| l.starts_with("expo_seconds_bucket{")) {
            let le_raw = line
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .expect("le label present");
            let le = if le_raw == "+Inf" {
                saw_inf = true;
                f64::INFINITY
            } else {
                le_raw.parse::<f64>().expect("numeric le bound")
            };
            assert!(le > last_le, "bucket bounds ascend: {line}");
            last_le = le;
            let count: f64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(count >= last_count, "cumulative counts never decrease: {line}");
            last_count = count;
        }
        assert!(saw_inf, "+Inf bucket terminates the series");

        let count = parse_value(&text, "expo_seconds_count").expect("_count series present");
        let sum = parse_value(&text, "expo_seconds_sum").expect("_sum series present");
        assert_eq!(count, samples_ns.len() as f64);
        assert_eq!(last_count, count, "+Inf bucket equals _count");
        let expected_sum: f64 = samples_ns.iter().map(|ns| *ns as f64 / 1e9).sum();
        assert!(
            (sum - expected_sum).abs() < 1e-9,
            "_sum is the unit-scaled exact total: {sum} vs {expected_sum}"
        );
        // Average derived the scraper way is sane.
        let avg = sum / count;
        assert!((0.1..=0.2).contains(&avg), "avg = {avg}");
    }

    #[test]
    fn labeled_names_splice_into_every_derived_series() {
        // A name registered as `base{labels}` fans out per label set:
        // suffixes land before the braces, inner labels (le/quantile)
        // merge after the registered ones, and the siblings share one
        // TYPE line keyed by base name. `parse_value` keeps working on
        // the full labeled tokens.
        let reg = Registry::new();
        let mpt = reg.histogram("lbl_proof_bytes{backend=\"mpt\"}", Unit::Bytes);
        let bin = reg.histogram("lbl_proof_bytes{backend=\"bin\"}", Unit::Bytes);
        mpt.observe(4096);
        mpt.observe(4096);
        bin.observe(512);
        reg.counter("lbl_hits_total{backend=\"bin\"}").add(3);

        let text = render(&reg);
        assert_eq!(
            text.matches("# TYPE lbl_proof_bytes histogram").count(),
            1,
            "one TYPE line per base name:\n{text}"
        );
        assert!(text.contains("# TYPE lbl_hits_total counter"));
        assert!(
            text.contains("lbl_proof_bytes_bucket{backend=\"bin\",le=\"+Inf\"} 1"),
            "labels merge with le:\n{text}"
        );
        assert!(text.contains("lbl_proof_bytes{backend=\"mpt\",quantile=\"0.5\"}"));
        assert_eq!(
            parse_value(&text, "lbl_proof_bytes_count{backend=\"mpt\"}"),
            Some(2.0)
        );
        assert_eq!(
            parse_value(&text, "lbl_proof_bytes_sum{backend=\"bin\"}"),
            Some(512.0)
        );
        assert_eq!(
            parse_value(&text, "lbl_proof_bytes_max{backend=\"mpt\"}"),
            Some(4096.0)
        );
        assert_eq!(parse_value(&text, "lbl_hits_total{backend=\"bin\"}"), Some(3.0));
    }

    #[test]
    fn parse_value_ignores_comments_and_misses() {
        let text = "# TYPE x counter\nx 5\n";
        assert_eq!(parse_value(text, "x"), Some(5.0));
        assert_eq!(parse_value(text, "y"), None);
    }
}
