//! Periodic dump-to-file for post-mortem analysis: a background thread
//! renders the registry every interval and atomically replaces the
//! target file (write temp + rename), plus one final dump on shutdown.

use crate::registry::Registry;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub struct Dumper {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

fn dump_once(registry: &Registry, path: &Path) -> std::io::Result<()> {
    let text = crate::render(registry);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
    }
    std::fs::rename(&tmp, path)
}

impl Dumper {
    /// Start dumping `registry` to `path` every `interval`. The dumper
    /// stops (after one final dump) when dropped.
    pub fn start(registry: Arc<Registry>, path: PathBuf, interval: Duration) -> Dumper {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("telemetry-dump".into())
            .spawn(move || {
                let (lock, cvar) = &*stop2;
                let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if *stopped {
                        break;
                    }
                    let (guard, _timeout) = cvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if let Err(e) = dump_once(&registry, &path) {
                        eprintln!("telemetry: dump to {} failed: {e}", path.display());
                    }
                }
                drop(stopped);
                // Unconditional final dump: if Drop set the flag before
                // this thread ever reached the wait (spawn racing a
                // short-lived Dumper), the loop above exited without
                // dumping at all.
                if let Err(e) = dump_once(&registry, &path) {
                    eprintln!("telemetry: final dump to {} failed: {e}", path.display());
                }
            })
            .expect("spawn telemetry-dump thread");
        Dumper { stop, handle: Some(handle) }
    }
}

impl Drop for Dumper {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cvar.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumper_writes_final_snapshot_on_drop() {
        let reg = Arc::new(Registry::new());
        reg.counter("dump_total").add(3);
        let dir = std::env::temp_dir()
            .join(format!("ledgerdb-telemetry-dump-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        {
            let _dumper = Dumper::start(reg.clone(), path.clone(), Duration::from_secs(60));
            // Long interval: only the final on-drop dump fires.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::parse_value(&text, "dump_total"), Some(3.0));
        std::fs::remove_dir_all(&dir).ok();
    }
}
