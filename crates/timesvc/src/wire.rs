//! Wire encodings for time-service objects: attestations and notary
//! receipts travel from the T-Ledger to ledgers and on to auditors.

use crate::clock::Timestamp;
use crate::tledger::{NotaryEntry, NotaryReceipt};
use crate::tsa::TimeAttestation;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::ecdsa::Signature;
use ledgerdb_crypto::keys::PublicKey;
use ledgerdb_crypto::wire::{Reader, Wire, WireError, Writer};

impl Wire for Timestamp {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Timestamp(r.get_u64()?))
    }
}

impl Wire for TimeAttestation {
    fn encode(&self, w: &mut Writer) {
        self.digest.encode(w);
        self.timestamp.encode(w);
        self.tsa_key.encode(w);
        self.signature.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TimeAttestation {
            digest: Digest::decode(r)?,
            timestamp: Timestamp::decode(r)?,
            tsa_key: PublicKey::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

impl Wire for NotaryEntry {
    fn encode(&self, w: &mut Writer) {
        self.ledger_id.encode(w);
        self.digest.encode(w);
        self.client_ts.encode(w);
        self.notary_ts.encode(w);
        w.put_u64(self.seq);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NotaryEntry {
            ledger_id: Digest::decode(r)?,
            digest: Digest::decode(r)?,
            client_ts: Timestamp::decode(r)?,
            notary_ts: Timestamp::decode(r)?,
            seq: r.get_u64()?,
        })
    }
}

impl Wire for NotaryReceipt {
    fn encode(&self, w: &mut Writer) {
        self.entry.encode(w);
        self.tledger_key.encode(w);
        self.signature.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NotaryReceipt {
            entry: NotaryEntry::decode(r)?,
            tledger_key: PublicKey::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, SimClock};
    use crate::tledger::{TLedger, TLedgerConfig};
    use crate::tsa::{Tsa, TsaPool};
    use ledgerdb_crypto::hash_leaf;
    use std::sync::Arc;

    #[test]
    fn attestation_round_trip_verifies() {
        let clock = SimClock::new();
        clock.advance(123_456);
        let tsa = Tsa::new("w-tsa", Arc::new(clock));
        let att = tsa.endorse(hash_leaf(b"digest"));
        let decoded = TimeAttestation::from_wire(&att.to_wire()).unwrap();
        assert_eq!(decoded, att);
        decoded.verify().unwrap();
    }

    #[test]
    fn receipt_round_trip_verifies() {
        let clock = SimClock::new();
        let arc: Arc<dyn Clock> = Arc::new(clock.clone());
        let pool = Arc::new(TsaPool::new(1, Arc::clone(&arc)));
        let tl = TLedger::new(TLedgerConfig::default(), arc, pool);
        let receipt = tl
            .submit(hash_leaf(b"lid"), hash_leaf(b"d"), clock.now())
            .unwrap();
        let decoded = NotaryReceipt::from_wire(&receipt.to_wire()).unwrap();
        decoded.verify().unwrap();
        assert_eq!(decoded.entry, receipt.entry);
    }

    #[test]
    fn tampered_attestation_bytes_fail() {
        let clock = SimClock::new();
        let tsa = Tsa::new("w-tsa2", Arc::new(clock));
        let mut bytes = tsa.endorse(hash_leaf(b"d")).to_wire();
        bytes[40] ^= 0x01; // inside the timestamp
        match TimeAttestation::from_wire(&bytes) {
            Ok(decoded) => assert!(decoded.verify().is_err()),
            Err(_) => {}
        }
    }
}
