//! The Time Stamp Authority (TSA).
//!
//! The paper's only trusted third party (§II-B): "we only trust TSA …
//! that can attach a credible and verifiable timestamp to a given piece of
//! data". A [`Tsa`] holds a CA-certifiable key pair and signs
//! digest–timestamp pairs; a [`TsaPool`] rotates across independent TSAs
//! so no single authority is a point of failure (§III-B2).

use crate::clock::{Clock, Timestamp};
use crate::TimeError;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::ecdsa::Signature;
use ledgerdb_crypto::keys::{KeyPair, PublicKey};
use ledgerdb_crypto::sha256::Sha256;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A TSA-signed digest–timestamp pair: the proof π_t of Fig 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeAttestation {
    /// The submitted digest.
    pub digest: Digest,
    /// The TSA-assigned universal timestamp.
    pub timestamp: Timestamp,
    /// The endorsing TSA's public key.
    pub tsa_key: PublicKey,
    /// Signature over the digest–timestamp pair.
    pub signature: Signature,
}

impl TimeAttestation {
    /// The digest a TSA signs.
    pub fn signing_digest(digest: &Digest, timestamp: Timestamp) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.tsa.attest.v1");
        h.update(&digest.0);
        h.update(&timestamp.0.to_be_bytes());
        Digest(h.finalize())
    }

    /// Verify the attestation's signature.
    pub fn verify(&self) -> Result<(), TimeError> {
        let msg = Self::signing_digest(&self.digest, self.timestamp);
        if self.tsa_key.verify(&msg, &self.signature) {
            Ok(())
        } else {
            Err(TimeError::BadAttestation)
        }
    }
}

/// A single timestamp authority.
pub struct Tsa {
    name: String,
    keys: KeyPair,
    clock: Arc<dyn Clock>,
}

impl Tsa {
    /// Create a TSA with a deterministic key seed and a clock.
    pub fn new(name: &str, clock: Arc<dyn Clock>) -> Self {
        Tsa { name: name.to_string(), keys: KeyPair::from_seed(name.as_bytes()), clock }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The TSA's public key (certified by the CA in a full deployment).
    pub fn public_key(&self) -> &PublicKey {
        self.keys.public()
    }

    /// Protocol 3 step 1: assign the current timestamp to `digest` and
    /// sign the pair.
    pub fn endorse(&self, digest: Digest) -> TimeAttestation {
        let timestamp = self.clock.now();
        let msg = TimeAttestation::signing_digest(&digest, timestamp);
        TimeAttestation {
            digest,
            timestamp,
            tsa_key: *self.keys.public(),
            signature: self.keys.sign(&msg),
        }
    }
}

/// A pool of independent TSAs, used round-robin for availability.
pub struct TsaPool {
    tsas: Vec<Tsa>,
    next: AtomicUsize,
}

impl TsaPool {
    /// Build a pool of `n` distinct TSAs sharing a clock.
    pub fn new(n: usize, clock: Arc<dyn Clock>) -> Self {
        assert!(n > 0, "pool needs at least one TSA");
        let tsas = (0..n)
            .map(|i| Tsa::new(&format!("tsa-{i}"), Arc::clone(&clock)))
            .collect();
        TsaPool { tsas, next: AtomicUsize::new(0) }
    }

    /// Number of member TSAs.
    pub fn len(&self) -> usize {
        self.tsas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tsas.is_empty()
    }

    /// Public keys of every member (the verifier's trust set).
    pub fn public_keys(&self) -> Vec<PublicKey> {
        self.tsas.iter().map(|t| *t.public_key()).collect()
    }

    /// Endorse via the next TSA in rotation.
    pub fn endorse(&self, digest: Digest) -> TimeAttestation {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.tsas.len();
        self.tsas[i].endorse(digest)
    }

    /// True when `att` was produced by a pool member and verifies.
    pub fn attestation_trusted(&self, att: &TimeAttestation) -> bool {
        self.tsas.iter().any(|t| t.public_key() == &att.tsa_key) && att.verify().is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use ledgerdb_crypto::hash_leaf;

    fn setup() -> (SimClock, Tsa) {
        let clock = SimClock::new();
        let tsa = Tsa::new("tsa-test", Arc::new(clock.clone()));
        (clock, tsa)
    }

    #[test]
    fn endorse_and_verify() {
        let (clock, tsa) = setup();
        clock.advance(1_000_000);
        let att = tsa.endorse(hash_leaf(b"ledger digest"));
        assert_eq!(att.timestamp, Timestamp(1_000_000));
        att.verify().unwrap();
    }

    #[test]
    fn tampered_timestamp_detected() {
        let (_, tsa) = setup();
        let mut att = tsa.endorse(hash_leaf(b"d"));
        att.timestamp = Timestamp(99);
        assert_eq!(att.verify(), Err(TimeError::BadAttestation));
    }

    #[test]
    fn tampered_digest_detected() {
        let (_, tsa) = setup();
        let mut att = tsa.endorse(hash_leaf(b"d"));
        att.digest = hash_leaf(b"other");
        assert!(att.verify().is_err());
    }

    #[test]
    fn pool_round_robin_and_trust() {
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        let pool = TsaPool::new(3, clock.clone());
        let a1 = pool.endorse(hash_leaf(b"1"));
        let a2 = pool.endorse(hash_leaf(b"2"));
        assert_ne!(a1.tsa_key, a2.tsa_key);
        assert!(pool.attestation_trusted(&a1));
        assert!(pool.attestation_trusted(&a2));
    }

    #[test]
    fn foreign_attestation_not_trusted() {
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        let pool = TsaPool::new(2, clock.clone());
        let rogue = Tsa::new("rogue", clock);
        let att = rogue.endorse(hash_leaf(b"x"));
        assert!(att.verify().is_ok());
        assert!(!pool.attestation_trusted(&att));
    }
}
