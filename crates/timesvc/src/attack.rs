//! Timestamp attack simulations (§III-B1, Fig 5).
//!
//! These simulations drive an adversarial LSP against both pegging
//! protocols on a simulated clock and *measure* the malicious time window
//! — the interval during which a journal's content can still be changed
//! without any verifier being able to tell. The tests (and the
//! `time_attacks` bench harness) assert the paper's two claims:
//!
//! * one-way pegging: the window equals whatever delay the adversary
//!   chooses — unbounded (*infinite time amplification*, Fig 5a);
//! * two-way pegging through the T-Ledger: the window is capped by
//!   `2·Δτ` (Fig 5b), and Protocol 4 rejects any submission the adversary
//!   holds back longer than `τ_Δ`.

use crate::clock::{Clock, SimClock, Timestamp};
use crate::pegging::OneWayPegging;
use crate::tledger::{TLedger, TLedgerConfig};
use crate::tsa::TsaPool;
use crate::TimeError;
use ledgerdb_crypto::{hash_leaf, Digest};
use std::sync::Arc;

/// Outcome of an attack simulation.
#[derive(Clone, Copy, Debug)]
pub struct AttackOutcome {
    /// Time the journal was genuinely created.
    pub created_at: Timestamp,
    /// Last instant the adversary could still alter the journal without
    /// detection.
    pub last_tamper_at: Option<Timestamp>,
    /// The malicious window in microseconds (None = attack rejected).
    pub window_us: Option<u64>,
}

/// Fig 5(a): the adversary creates a journal, silently rewrites it, and
/// anchors only the final version after `delay_us`. The notary accepts —
/// the window equals the chosen delay, for *any* delay.
pub fn one_way_amplification(delay_us: u64) -> AttackOutcome {
    let clock = SimClock::new();
    let mut notary = OneWayPegging::new(Arc::new(clock.clone()));

    let created_at = clock.now();
    let _original = hash_leaf(b"journal payload v1");

    // The adversary sits on the journal; at any point before anchoring it
    // can swap the content.
    clock.advance(delay_us);
    let tampered = hash_leaf(b"journal payload v2 (tampered)");
    let last_tamper_at = clock.now();

    // Anchoring the tampered digest succeeds: the notary has no way to
    // know the data is older than its submission.
    let anchor = notary.anchor(tampered);
    debug_assert_eq!(anchor.anchored_at, last_tamper_at);

    AttackOutcome {
        created_at,
        last_tamper_at: Some(last_tamper_at),
        window_us: Some(last_tamper_at.saturating_sub(created_at)),
    }
}

/// The same adversary against a T-Ledger (Protocol 4): holding a journal
/// back longer than `τ_Δ` makes the submission *rejected*, so the only
/// accepted schedules have `window ≤ τ_Δ`; combined with the T-Ledger's
/// own `Δτ` TSA interval, content is pinned within `2·Δτ`-grade bounds.
pub fn two_way_attack(
    config: TLedgerConfig,
    hold_back_us: u64,
) -> Result<AttackOutcome, TimeError> {
    let clock = SimClock::new();
    let arc_clock: Arc<dyn Clock> = Arc::new(clock.clone());
    let pool = Arc::new(TsaPool::new(1, Arc::clone(&arc_clock)));
    let tledger = TLedger::new(config, arc_clock, pool);

    let ledger_id: Digest = hash_leaf(b"victim-ledger");
    let created_at = clock.now();
    let client_ts = created_at;

    // Adversary tampers during the hold-back, then submits with the
    // original (honest) local timestamp to masquerade the age.
    clock.advance(hold_back_us);
    let tampered = hash_leaf(b"tampered payload");
    let receipt = tledger.submit(ledger_id, tampered, client_ts)?;

    // Accepted: the residual window is bounded by the acceptance check.
    let window = receipt.entry.notary_ts.saturating_sub(created_at);
    Ok(AttackOutcome {
        created_at,
        last_tamper_at: Some(receipt.entry.notary_ts),
        window_us: Some(window),
    })
}

/// Measure the worst accepted malicious window under Protocol 4 by
/// sweeping hold-back delays: returns `(worst_accepted_us, first_rejected_us)`.
pub fn protocol4_window_sweep(config: TLedgerConfig, step_us: u64, max_us: u64) -> (u64, Option<u64>) {
    let mut worst_accepted = 0u64;
    let mut first_rejected = None;
    let mut delay = 0u64;
    while delay <= max_us {
        match two_way_attack(config, delay) {
            Ok(outcome) => {
                worst_accepted = worst_accepted.max(outcome.window_us.unwrap_or(0));
            }
            Err(_) => {
                first_rejected = Some(delay);
                break;
            }
        }
        delay += step_us;
    }
    (worst_accepted, first_rejected)
}

/// The end-to-end bound of Fig 5(b): a journal accepted at `τ` is covered
/// by the next TSA finalization at most `Δτ` later, and can claim at
/// earliest the previous finalization `Δτ` before — a `2·Δτ` confidence
/// window.
pub fn two_way_confidence_window(config: TLedgerConfig) -> u64 {
    2 * config.tsa_interval_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_window_is_unbounded() {
        // Whatever delay the adversary picks, the attack succeeds with a
        // window equal to that delay — including absurdly large ones.
        for delay in [1_000u64, 1_000_000, 1_000_000_000, 1_000_000_000_000] {
            let outcome = one_way_amplification(delay);
            assert_eq!(outcome.window_us, Some(delay));
        }
    }

    #[test]
    fn two_way_accepts_only_fresh_submissions() {
        let config = TLedgerConfig { submission_tolerance_us: 500_000, tsa_interval_us: 1_000_000 };
        // Fresh: within τ_Δ.
        let ok = two_way_attack(config, 499_999).unwrap();
        assert!(ok.window_us.unwrap() < config.submission_tolerance_us);
        // Stale: rejected outright.
        assert!(two_way_attack(config, 500_000).is_err());
        assert!(two_way_attack(config, 10_000_000).is_err());
    }

    #[test]
    fn protocol4_sweep_finds_tight_bound() {
        let config = TLedgerConfig { submission_tolerance_us: 200_000, tsa_interval_us: 1_000_000 };
        let (worst, rejected) = protocol4_window_sweep(config, 50_000, 1_000_000);
        assert!(worst < config.submission_tolerance_us);
        assert_eq!(rejected, Some(200_000));
    }

    #[test]
    fn confidence_window_is_two_delta_tau() {
        let config = TLedgerConfig { submission_tolerance_us: 500_000, tsa_interval_us: 1_000_000 };
        assert_eq!(two_way_confidence_window(config), 2_000_000);
    }

    #[test]
    fn shrinking_delta_tau_shrinks_window() {
        // The paper's practical point: T-Ledger keeps Δτ at one second so
        // tampering "within two seconds" is impractical.
        let tight = TLedgerConfig { submission_tolerance_us: 100_000, tsa_interval_us: 100_000 };
        let loose = TLedgerConfig { submission_tolerance_us: 100_000, tsa_interval_us: 10_000_000 };
        assert!(two_way_confidence_window(tight) < two_way_confidence_window(loose));
    }
}
