//! Clocks. Protocol experiments run on a shared simulated clock so attack
//! windows and anchoring intervals are deterministic and laptop-fast.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in simulated (or real) time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Hash)]
pub struct Timestamp(pub u64);

impl Timestamp {
    pub const ZERO: Timestamp = Timestamp(0);

    pub fn micros(self) -> u64 {
        self.0
    }

    pub fn saturating_sub(self, other: Timestamp) -> u64 {
        self.0.saturating_sub(other.0)
    }

    pub fn plus_micros(self, us: u64) -> Timestamp {
        Timestamp(self.0 + us)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

/// A source of the current time.
pub trait Clock: Send + Sync {
    fn now(&self) -> Timestamp;
}

/// A shared, manually advanced clock for deterministic experiments.
#[derive(Clone, Default)]
pub struct SimClock {
    inner: Arc<AtomicU64>,
}

impl SimClock {
    /// Start at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start at a given microsecond offset.
    pub fn starting_at(us: u64) -> Self {
        let c = Self::new();
        c.inner.store(us, Ordering::SeqCst);
        c
    }

    /// Advance by `us` microseconds; returns the new now.
    pub fn advance(&self, us: u64) -> Timestamp {
        Timestamp(self.inner.fetch_add(us, Ordering::SeqCst) + us)
    }

    /// Jump to an absolute time (must not go backwards).
    pub fn set(&self, ts: Timestamp) {
        let prev = self.inner.swap(ts.0, Ordering::SeqCst);
        debug_assert!(prev <= ts.0, "simulated time must not go backwards");
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.inner.load(Ordering::SeqCst))
    }
}

/// Wall-clock implementation (monotonic since process start).
pub struct SystemClock {
    origin: std::time::Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock { origin: std::time::Instant::now() }
    }
}

impl SystemClock {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.origin.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
        assert_eq!(c.advance(100), Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
    }

    #[test]
    fn sim_clock_is_shared() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance(50);
        assert_eq!(c2.now(), Timestamp(50));
    }

    #[test]
    fn timestamp_arithmetic() {
        let a = Timestamp(100);
        let b = Timestamp(30);
        assert_eq!(a.saturating_sub(b), 70);
        assert_eq!(b.saturating_sub(a), 0);
        assert_eq!(b.plus_micros(5), Timestamp(35));
    }

    #[test]
    fn system_clock_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
