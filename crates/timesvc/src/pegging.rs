//! Timestamp pegging protocols (§III-B1).
//!
//! [`OneWayPegging`] models the ProvenDB-style protocol: a ledger pushes
//! digests to an external notary (e.g. Bitcoin) at times of its own
//! choosing, constrained only by relative order. The notary never talks
//! back, so an adversarial LSP can delay anchoring arbitrarily.
//!
//! [`TwoWayPegging`] models Protocol 3: the TSA signs the digest–timestamp
//! pair, and the signed time journal is anchored back onto the ledger.
//! The ledger must exhibit the anchored time journal inside its own
//! journal sequence, which bounds how long any journal can float.

use crate::clock::{Clock, Timestamp};
use crate::tsa::{TimeAttestation, TsaPool};
use ledgerdb_crypto::digest::Digest;
use std::sync::Arc;

/// A digest anchored on a one-way notary, with the notary's timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OneWayAnchor {
    pub digest: Digest,
    /// When the notary recorded the digest (the only credible time bound).
    pub anchored_at: Timestamp,
}

/// One-way pegging: the notary records whatever arrives, whenever it
/// arrives, as long as arrival order is preserved.
pub struct OneWayPegging {
    clock: Arc<dyn Clock>,
    anchors: Vec<OneWayAnchor>,
}

impl OneWayPegging {
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        OneWayPegging { clock, anchors: Vec::new() }
    }

    /// Anchor a digest now. Nothing stops the caller from having created
    /// (or tampered with) the data long before this call — that gap is the
    /// attack surface.
    pub fn anchor(&mut self, digest: Digest) -> OneWayAnchor {
        let a = OneWayAnchor { digest, anchored_at: self.clock.now() };
        self.anchors.push(a);
        a
    }

    /// The notary's view: anchored digests in arrival order.
    pub fn anchors(&self) -> &[OneWayAnchor] {
        &self.anchors
    }

    /// What a verifier can conclude: the data existed *no later than*
    /// `anchored_at` — but nothing about how much earlier, nor whether it
    /// was modified before anchoring.
    pub fn existence_bound(&self, digest: &Digest) -> Option<Timestamp> {
        self.anchors.iter().find(|a| a.digest == *digest).map(|a| a.anchored_at)
    }
}

/// A two-way pegged time journal: TSA attestation plus the ledger position
/// where it was anchored back.
#[derive(Clone, Copy, Debug)]
pub struct TwoWayAnchor {
    pub attestation: TimeAttestation,
    /// The journal sequence number the anchored time journal received on
    /// the ledger it pegs.
    pub anchored_jsn: u64,
}

/// Two-way pegging (Protocol 3) against a TSA pool.
pub struct TwoWayPegging {
    tsa_pool: Arc<TsaPool>,
    anchors: Vec<TwoWayAnchor>,
}

impl TwoWayPegging {
    pub fn new(tsa_pool: Arc<TsaPool>) -> Self {
        TwoWayPegging { tsa_pool, anchors: Vec::new() }
    }

    /// Step 1: submit the ledger digest, receive the signed attestation.
    pub fn request_endorsement(&self, ledger_digest: Digest) -> TimeAttestation {
        self.tsa_pool.endorse(ledger_digest)
    }

    /// Step 2: record that the attestation was anchored back to the ledger
    /// at `anchored_jsn`.
    pub fn anchor_back(&mut self, attestation: TimeAttestation, anchored_jsn: u64) -> TwoWayAnchor {
        let a = TwoWayAnchor { attestation, anchored_jsn };
        self.anchors.push(a);
        a
    }

    /// Anchored time journals in order.
    pub fn anchors(&self) -> &[TwoWayAnchor] {
        &self.anchors
    }

    /// A journal between two consecutive time-journal anchors is bounded
    /// on both sides: it existed after the earlier attestation and before
    /// the later one. Returns `(lower, upper)` TSA timestamps for a jsn.
    pub fn time_bounds(&self, jsn: u64) -> (Option<Timestamp>, Option<Timestamp>) {
        let lower = self
            .anchors
            .iter()
            .rev()
            .find(|a| a.anchored_jsn < jsn)
            .map(|a| a.attestation.timestamp);
        let upper = self
            .anchors
            .iter()
            .find(|a| a.anchored_jsn > jsn)
            .map(|a| a.attestation.timestamp);
        (lower, upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use ledgerdb_crypto::hash_leaf;

    #[test]
    fn one_way_only_gives_upper_bound() {
        let clock = SimClock::new();
        let mut peg = OneWayPegging::new(Arc::new(clock.clone()));
        // Data "created" at t=0 but anchored much later — the notary can't
        // tell the difference.
        clock.advance(1_000_000_000);
        let d = hash_leaf(b"old data");
        peg.anchor(d);
        assert_eq!(peg.existence_bound(&d), Some(Timestamp(1_000_000_000)));
        assert_eq!(peg.existence_bound(&hash_leaf(b"unanchored")), None);
    }

    #[test]
    fn two_way_gives_both_bounds() {
        let clock = SimClock::new();
        let arc_clock: Arc<dyn Clock> = Arc::new(clock.clone());
        let pool = Arc::new(TsaPool::new(1, Arc::clone(&arc_clock)));
        let mut peg = TwoWayPegging::new(pool);

        clock.advance(100);
        let a1 = peg.request_endorsement(hash_leaf(b"root@jsn10"));
        peg.anchor_back(a1, 10);

        clock.advance(900);
        let a2 = peg.request_endorsement(hash_leaf(b"root@jsn20"));
        peg.anchor_back(a2, 20);

        // A journal at jsn 15 is sandwiched: after t=100, before t=1000.
        let (lo, hi) = peg.time_bounds(15);
        assert_eq!(lo, Some(Timestamp(100)));
        assert_eq!(hi, Some(Timestamp(1000)));

        // Journals before the first anchor only have an upper bound.
        let (lo, hi) = peg.time_bounds(5);
        assert_eq!(lo, None);
        assert_eq!(hi, Some(Timestamp(100)));

        // Journals after the last anchor only have a lower bound.
        let (lo, hi) = peg.time_bounds(25);
        assert_eq!(lo, Some(Timestamp(1000)));
        assert_eq!(hi, None);
    }

    #[test]
    fn attestations_verify() {
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        let pool = Arc::new(TsaPool::new(2, clock));
        let peg = TwoWayPegging::new(Arc::clone(&pool));
        let att = peg.request_endorsement(hash_leaf(b"root"));
        assert!(pool.attestation_trusted(&att));
    }
}
