//! Time verification (*when*, §III-B): TSA, pegging protocols, and the
//! Time Ledger (T-Ledger).
//!
//! The paper's argument in three steps, all reproduced here:
//!
//! 1. **One-way pegging is attackable** ([`attack`]): a ledger that merely
//!    pushes digests to a notary (ProvenDB-style) can delay anchoring
//!    arbitrarily, so a journal can be tampered in an *unbounded* window —
//!    the *infinite time amplification attack* (Fig 5a).
//! 2. **Two-way pegging bounds the window** ([`pegging`], Protocol 3): the
//!    TSA signs each digest-timestamp pair and the signed time journal is
//!    anchored *back* onto the ledger, shrinking the malicious window to
//!    `2·Δτ` (Fig 5b).
//! 3. **T-Ledger amortizes TSA cost** ([`tledger`], Protocol 4): an
//!    intermediate public ledger accepts digests from ordinary ledgers
//!    (rejecting any submission whose local timestamp is staler than
//!    `τ_Δ`) and itself two-way-pegs to the TSA every `Δτ`.
//!
//! All components run on a [`SimClock`], so experiments are deterministic.

pub mod attack;
pub mod clock;
pub mod pegging;
pub mod tledger;
pub mod tsa;
pub mod wire;

pub use clock::{Clock, SimClock, Timestamp};
pub use pegging::{OneWayPegging, TwoWayPegging};
pub use tledger::{NotaryReceipt, TLedger, TLedgerConfig};
pub use tsa::{TimeAttestation, Tsa, TsaPool};

use std::fmt;

/// Errors surfaced by the time services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeError {
    /// Protocol 4 rejection: the submission's local timestamp is staler
    /// than the tolerance `τ_Δ` against the T-Ledger clock.
    SubmissionTooStale {
        client_ts: Timestamp,
        notary_ts: Timestamp,
        tolerance_us: u64,
    },
    /// A TSA attestation failed signature verification.
    BadAttestation,
    /// A notary receipt failed verification.
    BadReceipt,
    /// The requested entry does not exist.
    UnknownEntry,
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::SubmissionTooStale { client_ts, notary_ts, tolerance_us } => write!(
                f,
                "submission stale: client ts {client_ts} vs notary ts {notary_ts} (tolerance {tolerance_us}us)"
            ),
            TimeError::BadAttestation => write!(f, "TSA attestation failed verification"),
            TimeError::BadReceipt => write!(f, "notary receipt failed verification"),
            TimeError::UnknownEntry => write!(f, "unknown notary entry"),
        }
    }
}

impl std::error::Error for TimeError {}
