//! The Time Ledger (T-Ledger, §III-B2): a two-layer time-notary anchoring
//! architecture.
//!
//! Bottom layer (Protocol 4): common ledgers submit `(digest, local
//! timestamp τ_c)` pairs; the T-Ledger accepts only when its own clock
//! `τ_t` satisfies `τ_t < τ_c + τ_Δ`, which eliminates the one-way-pegging
//! amplification attack — a submission cannot be held back.
//!
//! Top layer (Protocol 3): every `Δτ` the T-Ledger commits its running
//! accumulator root to a TSA and anchors the signed attestation back onto
//! itself as a *time journal*. The TSA interval bounds the residual
//! malicious window to `2·Δτ` for every registered ledger at the cost of
//! one TSA interaction per interval instead of one per ledger.

use crate::clock::{Clock, Timestamp};
use crate::tsa::{TimeAttestation, TsaPool};
use crate::TimeError;
use ledgerdb_accumulator::shrubs::{Shrubs, ShrubsProof};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::ecdsa::Signature;
use ledgerdb_crypto::keys::{KeyPair, PublicKey};
use ledgerdb_crypto::sha256::Sha256;
use ledgerdb_crypto::sync::Mutex;
use std::sync::Arc;

/// T-Ledger tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct TLedgerConfig {
    /// Protocol 4 staleness tolerance `τ_Δ` (microseconds).
    pub submission_tolerance_us: u64,
    /// Protocol 3 TSA anchoring interval `Δτ` (microseconds). The paper's
    /// deployment uses one second.
    pub tsa_interval_us: u64,
}

impl Default for TLedgerConfig {
    fn default() -> Self {
        TLedgerConfig { submission_tolerance_us: 500_000, tsa_interval_us: 1_000_000 }
    }
}

/// One notarized submission recorded on the T-Ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotaryEntry {
    /// Identifier of the submitting ledger.
    pub ledger_id: Digest,
    /// The submitted digest.
    pub digest: Digest,
    /// The submitter's local timestamp τ_c.
    pub client_ts: Timestamp,
    /// The T-Ledger's acceptance timestamp τ_t.
    pub notary_ts: Timestamp,
    /// Sequence number on the T-Ledger.
    pub seq: u64,
}

impl NotaryEntry {
    /// Canonical digest of the entry (the T-Ledger accumulator leaf).
    pub fn leaf_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.tledger.entry.v1");
        h.update(&self.ledger_id.0);
        h.update(&self.digest.0);
        h.update(&self.client_ts.0.to_be_bytes());
        h.update(&self.notary_ts.0.to_be_bytes());
        h.update(&self.seq.to_be_bytes());
        Digest(h.finalize())
    }
}

/// The LSP-signed receipt a submitting ledger keeps: entry + signature.
#[derive(Clone, Copy, Debug)]
pub struct NotaryReceipt {
    pub entry: NotaryEntry,
    pub tledger_key: PublicKey,
    pub signature: Signature,
}

impl NotaryReceipt {
    /// Verify the receipt's signature.
    pub fn verify(&self) -> Result<(), TimeError> {
        if self.tledger_key.verify(&self.entry.leaf_digest(), &self.signature) {
            Ok(())
        } else {
            Err(TimeError::BadReceipt)
        }
    }
}

/// A time journal: a TSA attestation over the T-Ledger state, anchored
/// back with its position.
#[derive(Clone, Copy, Debug)]
pub struct TimeJournal {
    /// Attestation over the accumulator root at `upto_seq`.
    pub attestation: TimeAttestation,
    /// Entries `0..upto_seq` are covered by this attestation.
    pub upto_seq: u64,
}

struct TLedgerState {
    entries: Vec<NotaryEntry>,
    accumulator: Shrubs,
    time_journals: Vec<TimeJournal>,
    last_finalize: Timestamp,
}

/// The public time-notary ledger.
pub struct TLedger {
    config: TLedgerConfig,
    clock: Arc<dyn Clock>,
    keys: KeyPair,
    tsa_pool: Arc<TsaPool>,
    state: Mutex<TLedgerState>,
}

impl TLedger {
    /// Create a T-Ledger bound to a clock and TSA pool.
    pub fn new(config: TLedgerConfig, clock: Arc<dyn Clock>, tsa_pool: Arc<TsaPool>) -> Self {
        TLedger {
            config,
            clock,
            keys: KeyPair::from_seed(b"t-ledger-lsp"),
            tsa_pool,
            state: Mutex::new(TLedgerState {
                entries: Vec::new(),
                accumulator: Shrubs::new(),
                time_journals: Vec::new(),
                last_finalize: Timestamp::ZERO,
            }),
        }
    }

    /// The T-Ledger's signing key (published for receipt verification).
    pub fn public_key(&self) -> &PublicKey {
        self.keys.public()
    }

    pub fn config(&self) -> TLedgerConfig {
        self.config
    }

    /// Protocol 4: accept a submission when the delay from the submitter's
    /// local timestamp is within `τ_Δ`.
    pub fn submit(
        &self,
        ledger_id: Digest,
        digest: Digest,
        client_ts: Timestamp,
    ) -> Result<NotaryReceipt, TimeError> {
        let notary_ts = self.clock.now();
        if notary_ts.0 >= client_ts.0 + self.config.submission_tolerance_us {
            return Err(TimeError::SubmissionTooStale {
                client_ts,
                notary_ts,
                tolerance_us: self.config.submission_tolerance_us,
            });
        }
        let mut st = self.state.lock();
        let seq = st.entries.len() as u64;
        let entry = NotaryEntry { ledger_id, digest, client_ts, notary_ts, seq };
        st.accumulator.append(entry.leaf_digest());
        st.entries.push(entry);
        drop(st);
        let signature = self.keys.sign(&entry.leaf_digest());
        Ok(NotaryReceipt { entry, tledger_key: *self.keys.public(), signature })
    }

    /// Protocol 3: if `Δτ` has elapsed since the last finalization, submit
    /// the accumulator root to the TSA and anchor the attestation back.
    /// Returns the new time journal when one was produced.
    pub fn maybe_finalize(&self) -> Option<TimeJournal> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        if now.saturating_sub(st.last_finalize) < self.config.tsa_interval_us
            && !st.time_journals.is_empty()
        {
            return None;
        }
        if st.entries.is_empty() {
            return None;
        }
        let root = st.accumulator.root();
        let upto_seq = st.entries.len() as u64;
        let attestation = self.tsa_pool.endorse(root);
        let tj = TimeJournal { attestation, upto_seq };
        st.time_journals.push(tj);
        st.last_finalize = now;
        Some(tj)
    }

    /// Force a finalization regardless of interval (used by shutdown paths
    /// and tests).
    pub fn finalize_now(&self) -> Option<TimeJournal> {
        let mut st = self.state.lock();
        if st.entries.is_empty() {
            return None;
        }
        let root = st.accumulator.root();
        let upto_seq = st.entries.len() as u64;
        let attestation = self.tsa_pool.endorse(root);
        let tj = TimeJournal { attestation, upto_seq };
        st.time_journals.push(tj);
        st.last_finalize = self.clock.now();
        Some(tj)
    }

    /// Entries recorded so far.
    pub fn entry_count(&self) -> u64 {
        self.state.lock().entries.len() as u64
    }

    /// Time journals anchored so far.
    pub fn time_journal_count(&self) -> usize {
        self.state.lock().time_journals.len()
    }

    /// Fetch an entry by sequence number (public download, Prerequisite 4).
    pub fn entry(&self, seq: u64) -> Result<NotaryEntry, TimeError> {
        self.state
            .lock()
            .entries
            .get(seq as usize)
            .copied()
            .ok_or(TimeError::UnknownEntry)
    }

    /// The earliest time journal covering `seq`, i.e. the TSA-backed upper
    /// bound on when that entry existed.
    pub fn covering_time_journal(&self, seq: u64) -> Option<TimeJournal> {
        self.state
            .lock()
            .time_journals
            .iter()
            .find(|tj| tj.upto_seq > seq)
            .copied()
    }

    /// Produce an accumulator proof that entry `seq` is committed by the
    /// current T-Ledger root.
    pub fn prove_entry(&self, seq: u64) -> Result<(NotaryEntry, ShrubsProof, Digest), TimeError> {
        let st = self.state.lock();
        let entry = *st.entries.get(seq as usize).ok_or(TimeError::UnknownEntry)?;
        let proof = st.accumulator.prove(seq).map_err(|_| TimeError::UnknownEntry)?;
        Ok((entry, proof, st.accumulator.root()))
    }

    /// Full third-party verification of a receipt: signature, TSA coverage
    /// and (when available) the covering attestation's validity. Returns
    /// the TSA-backed timestamp upper bound for the entry.
    pub fn verify_receipt(&self, receipt: &NotaryReceipt) -> Result<Option<Timestamp>, TimeError> {
        receipt.verify()?;
        if receipt.tledger_key != *self.keys.public() {
            return Err(TimeError::BadReceipt);
        }
        let stored = self.entry(receipt.entry.seq)?;
        if stored != receipt.entry {
            return Err(TimeError::BadReceipt);
        }
        match self.covering_time_journal(receipt.entry.seq) {
            Some(tj) => {
                if !self.tsa_pool.attestation_trusted(&tj.attestation) {
                    return Err(TimeError::BadAttestation);
                }
                Ok(Some(tj.attestation.timestamp))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use ledgerdb_crypto::hash_leaf;

    fn setup() -> (SimClock, Arc<TLedger>) {
        let clock = SimClock::new();
        let arc_clock: Arc<dyn Clock> = Arc::new(clock.clone());
        let pool = Arc::new(TsaPool::new(2, Arc::clone(&arc_clock)));
        let tl = Arc::new(TLedger::new(TLedgerConfig::default(), arc_clock, pool));
        (clock, tl)
    }

    fn lid(name: &str) -> Digest {
        hash_leaf(name.as_bytes())
    }

    #[test]
    fn fresh_submission_accepted() {
        let (clock, tl) = setup();
        clock.advance(10_000);
        let receipt = tl
            .submit(lid("ledger-a"), hash_leaf(b"d1"), clock.now())
            .unwrap();
        receipt.verify().unwrap();
        assert_eq!(tl.entry_count(), 1);
    }

    #[test]
    fn stale_submission_rejected() {
        // Protocol 4: the adversary cannot hold a digest back past τ_Δ.
        let (clock, tl) = setup();
        let held_ts = clock.now();
        clock.advance(TLedgerConfig::default().submission_tolerance_us + 1);
        let err = tl.submit(lid("a"), hash_leaf(b"d"), held_ts).unwrap_err();
        assert!(matches!(err, TimeError::SubmissionTooStale { .. }));
    }

    #[test]
    fn finalize_produces_time_journal() {
        let (clock, tl) = setup();
        tl.submit(lid("a"), hash_leaf(b"d1"), clock.now()).unwrap();
        let tj = tl.maybe_finalize().expect("first finalize always fires");
        assert_eq!(tj.upto_seq, 1);
        tj.attestation.verify().unwrap();
    }

    #[test]
    fn finalize_respects_interval() {
        let (clock, tl) = setup();
        tl.submit(lid("a"), hash_leaf(b"d1"), clock.now()).unwrap();
        assert!(tl.maybe_finalize().is_some());
        tl.submit(lid("a"), hash_leaf(b"d2"), clock.now()).unwrap();
        // Too soon for another TSA interaction.
        assert!(tl.maybe_finalize().is_none());
        clock.advance(TLedgerConfig::default().tsa_interval_us);
        assert!(tl.maybe_finalize().is_some());
    }

    #[test]
    fn receipt_verification_full_path() {
        let (clock, tl) = setup();
        let receipt = tl.submit(lid("a"), hash_leaf(b"d"), clock.now()).unwrap();
        // Before a time journal exists, no TSA bound yet.
        assert_eq!(tl.verify_receipt(&receipt).unwrap(), None);
        clock.advance(2_000_000);
        tl.maybe_finalize().unwrap();
        let bound = tl.verify_receipt(&receipt).unwrap().unwrap();
        assert_eq!(bound, Timestamp(2_000_000));
    }

    #[test]
    fn forged_receipt_rejected() {
        let (clock, tl) = setup();
        let mut receipt = tl.submit(lid("a"), hash_leaf(b"d"), clock.now()).unwrap();
        receipt.entry.digest = hash_leaf(b"forged");
        assert!(tl.verify_receipt(&receipt).is_err());
    }

    #[test]
    fn entry_proof_against_root() {
        let (clock, tl) = setup();
        for i in 0..10u64 {
            tl.submit(lid("a"), hash_leaf(&i.to_be_bytes()), clock.now()).unwrap();
        }
        let (entry, proof, root) = tl.prove_entry(4).unwrap();
        Shrubs::verify(&root, &entry.leaf_digest(), &proof).unwrap();
    }

    #[test]
    fn covering_journal_selection() {
        let (clock, tl) = setup();
        tl.submit(lid("a"), hash_leaf(b"d0"), clock.now()).unwrap();
        tl.finalize_now().unwrap(); // covers seq 0
        clock.advance(1);
        tl.submit(lid("a"), hash_leaf(b"d1"), clock.now()).unwrap();
        let tj0 = tl.covering_time_journal(0).unwrap();
        assert_eq!(tj0.upto_seq, 1);
        assert!(tl.covering_time_journal(1).is_none());
        tl.finalize_now().unwrap();
        assert_eq!(tl.covering_time_journal(1).unwrap().upto_seq, 2);
    }
}
