//! Merkle accumulator models for the LedgerDB reproduction (§III-A).
//!
//! The paper contrasts two traditional data-organization models and then
//! proposes its own:
//!
//! * [`bim`] — the *block-intensive model* (Bitcoin-style): transactions are
//!   batched into blocks whose headers chain together; light clients keep
//!   headers as *block-oriented anchors* (boa) and verify transactions with
//!   SPV Merkle paths.
//! * [`tim`] — the *transaction-intensive model* (Diem/QLDB-style): every
//!   transaction is a leaf of one ever-growing accumulator; proofs are
//!   `O(log n)` in the full ledger size.
//! * [`shrubs`] — the Shrubs accumulator underlying both fam and the
//!   CM-Tree: an append-only post-order Merkle forest with O(1) amortized
//!   insertion and *node-set* (frontier) proofs for the latest cell.
//! * [`fam`] — the paper's *fractal accumulating model*: fixed fractal
//!   height δ, epochs of 2^δ leaves, Rule 1 ("a full tree's root becomes
//!   the first leaf of the next tree"), and *accumulator-oriented anchors*
//!   (fam-aoa) that bound verification to the epochs after the anchor.
//!
//! [`binary`] holds the plain perfect binary Merkle tree used inside bim
//! blocks and as a property-test reference.

pub mod binary;
pub mod bamt;
pub mod bim;
pub mod error;
pub mod fam;
pub mod shrubs;
pub mod tim;
pub mod wire;

pub use bamt::{Bamt, BamtProof};
pub use bim::{BimChain, BimProof, BlockHeader};
pub use error::AccumulatorError;
pub use fam::{FamParts, FamProof, FamTree, TrustedAnchor};
pub use shrubs::{Shrubs, ShrubsBatchProof, ShrubsProof};
pub use tim::{TimAccumulator, TimProof};
