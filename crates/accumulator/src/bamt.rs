//! bAMT — the *blocked accumulator Merkle tree* from the earlier LedgerDB
//! paper, which §III-A1 cites as having "the same prototypical
//! verification cost as tim".
//!
//! Transactions are batched into fixed-size blocks; each block forms a
//! binary Merkle tree, and the block roots are themselves accumulated in
//! a global Shrubs accumulator. A membership proof is therefore a
//! two-stage path: transaction → block root, then block root → global
//! root. Unlike fam there is no merged-leaf recursion, so the global
//! stage keeps growing as `O(log #blocks)` with ledger volume — the
//! behaviour fam's fixed fractal height eliminates.

use crate::binary::{merkle_prove, merkle_root, merkle_verify};
use crate::error::AccumulatorError;
use crate::shrubs::{ProofStep, Shrubs, ShrubsProof};
use ledgerdb_crypto::digest::Digest;

/// A bAMT membership proof: in-block path plus global accumulator path.
#[derive(Clone, Debug)]
pub struct BamtProof {
    /// Index of the block containing the transaction.
    pub block_index: u64,
    /// Root of that block's Merkle tree.
    pub block_root: Digest,
    /// Sibling path from the transaction to the block root.
    pub in_block: Vec<ProofStep>,
    /// Proof of the block root in the global accumulator.
    pub global: ShrubsProof,
}

impl BamtProof {
    /// Total digests carried.
    pub fn len(&self) -> usize {
        self.in_block.len() + self.global.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The blocked accumulator Merkle tree.
#[derive(Clone, Debug)]
pub struct Bamt {
    block_size: usize,
    /// Sealed blocks' transaction digests (needed for in-block proofs).
    blocks: Vec<Vec<Digest>>,
    /// Global accumulator over block roots.
    global: Shrubs,
    /// Transactions waiting for the next block seal.
    pending: Vec<Digest>,
}

impl Bamt {
    /// Create a bAMT sealing every `block_size` transactions.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Bamt { block_size, blocks: Vec::new(), global: Shrubs::new(), pending: Vec::new() }
    }

    /// Append a transaction digest; returns its global sequence number.
    pub fn append(&mut self, digest: Digest) -> u64 {
        let seq = self.tx_count();
        self.pending.push(digest);
        if self.pending.len() == self.block_size {
            self.seal_block();
        }
        seq
    }

    /// Force-seal the pending partial block.
    pub fn seal_block(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let txs = std::mem::take(&mut self.pending);
        self.global.append(merkle_root(&txs));
        self.blocks.push(txs);
    }

    /// Total transactions (sealed + pending).
    pub fn tx_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.len() as u64).sum::<u64>() + self.pending.len() as u64
    }

    /// Sealed block count.
    pub fn block_count(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// The global commitment.
    pub fn root(&self) -> Digest {
        self.global.root()
    }

    /// Prove a sealed transaction by global sequence number.
    pub fn prove(&self, seq: u64) -> Result<BamtProof, AccumulatorError> {
        let mut remaining = seq;
        for (block_index, block) in self.blocks.iter().enumerate() {
            if remaining < block.len() as u64 {
                let in_block = merkle_prove(block, remaining as usize)?;
                let block_root = merkle_root(block);
                let global = self.global.prove(block_index as u64)?;
                return Ok(BamtProof {
                    block_index: block_index as u64,
                    block_root,
                    in_block,
                    global,
                });
            }
            remaining -= block.len() as u64;
        }
        Err(AccumulatorError::LeafOutOfRange { index: seq, leaf_count: self.tx_count() })
    }

    /// Verify a proof against a trusted global root.
    pub fn verify(root: &Digest, tx: &Digest, proof: &BamtProof) -> Result<(), AccumulatorError> {
        if !merkle_verify(&proof.block_root, tx, &proof.in_block) {
            return Err(AccumulatorError::ProofMismatch);
        }
        Shrubs::verify(root, &proof.block_root, &proof.global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerdb_crypto::hash_leaf;

    fn build(n: u64, block_size: usize) -> (Bamt, Vec<Digest>) {
        let txs: Vec<Digest> = (0..n).map(|i| hash_leaf(&i.to_be_bytes())).collect();
        let mut b = Bamt::new(block_size);
        for t in &txs {
            b.append(*t);
        }
        b.seal_block();
        (b, txs)
    }

    #[test]
    fn prove_verify_all() {
        let (b, txs) = build(100, 16);
        let root = b.root();
        for (i, t) in txs.iter().enumerate() {
            let proof = b.prove(i as u64).unwrap();
            Bamt::verify(&root, t, &proof).unwrap_or_else(|e| panic!("tx {i}: {e}"));
        }
    }

    #[test]
    fn wrong_tx_rejected() {
        let (b, _) = build(32, 8);
        let proof = b.prove(5).unwrap();
        assert!(Bamt::verify(&b.root(), &hash_leaf(b"forged"), &proof).is_err());
    }

    #[test]
    fn global_path_grows_with_block_count() {
        // The structural weakness fam fixes: global proof length grows
        // with ledger volume.
        let (small, _) = build(64, 8);
        let (large, _) = build(4096, 8);
        let p_small = small.prove(3).unwrap();
        let p_large = large.prove(3).unwrap();
        assert!(p_large.global.len() > p_small.global.len());
        // In-block path is identical (same block size).
        assert_eq!(p_large.in_block.len(), p_small.in_block.len());
    }

    #[test]
    fn stale_proof_fails_after_growth() {
        let (mut b, txs) = build(16, 4);
        let proof = b.prove(1).unwrap();
        let old_root = b.root();
        Bamt::verify(&old_root, &txs[1], &proof).unwrap();
        b.append(hash_leaf(b"new"));
        b.seal_block();
        assert!(Bamt::verify(&b.root(), &txs[1], &proof).is_err());
    }

    #[test]
    fn unsealed_not_provable_and_out_of_range() {
        let mut b = Bamt::new(8);
        b.append(hash_leaf(b"t"));
        assert!(b.prove(0).is_err());
        b.seal_block();
        assert!(b.prove(0).is_ok());
        assert!(b.prove(1).is_err());
    }
}
