//! The Shrubs accumulator (§III-A1, Fig 3a).
//!
//! An append-only Merkle forest whose nodes are numbered in *post-order*:
//! each arriving leaf takes the next free position, and an internal node's
//! position is assigned the moment both of its children are complete. This
//! reproduces the paper's Fig 3(a) numbering exactly (1-based there,
//! 0-based here): leaves land at positions 0,1,3,4,7,8,10,11,… and parents
//! at 2,5,6,9,12,13,14,….
//!
//! Properties the paper relies on:
//!
//! * **O(1) amortized insertion** — appending a leaf triggers at most the
//!   cascade of parent-hash computations that complete subtrees, which
//!   amortizes to O(1) per append.
//! * **Node-set proof** — before the binary tree is full, the commitment to
//!   the latest cell is the *frontier*: the set of complete-subtree roots
//!   ("the proof for cell₉ is {cell₇, cell₁₀}"). [`Shrubs::frontier`]
//!   returns it and [`Shrubs::root`] bags it into a single digest.
//! * **Membership proofs** — any historical leaf can be proven against the
//!   current root with a sibling path plus the other frontier roots.

use crate::error::AccumulatorError;
use ledgerdb_crypto::digest::{hash_many, Digest};
use ledgerdb_crypto::hash_pair;

/// Height of the node at post-order position `pos` (0 = leaf).
///
/// Uses the classic "all-ones" jump: in 1-based numbering, positions whose
/// binary form is all ones are the rightmost nodes of perfect trees; any
/// other position maps into the left subtree by subtracting the size of a
/// full left sibling tree.
pub fn pos_height(pos: u64) -> u32 {
    let mut p = pos + 1;
    loop {
        let bits = 64 - p.leading_zeros();
        if p.count_ones() == bits {
            return bits - 1;
        }
        p -= (1u64 << (bits - 1)) - 1;
    }
}

/// Post-order position of the `i`-th leaf (0-based).
pub fn leaf_pos(i: u64) -> u64 {
    2 * i - i.count_ones() as u64
}

/// Number of nodes a forest of `n` leaves occupies.
pub fn node_count(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        2 * n - n.count_ones() as u64
    }
}

/// Positions of the forest peaks (complete-subtree roots) for `n` leaves,
/// left to right.
pub fn peak_positions(n: u64) -> Vec<u64> {
    let mut peaks = Vec::new();
    let mut remaining = n;
    let mut offset = 0u64;
    while remaining > 0 {
        let height = 63 - remaining.leading_zeros() as u64;
        let leaves = 1u64 << height;
        let subtree_nodes = 2 * leaves - 1;
        peaks.push(offset + subtree_nodes - 1);
        offset += subtree_nodes;
        remaining -= leaves;
    }
    peaks
}

/// One sibling step in a membership proof.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProofStep {
    /// The sibling digest to combine with.
    pub sibling: Digest,
    /// True when the sibling sits on the left of the running hash.
    pub sibling_on_left: bool,
}

/// A membership proof for one leaf against a Shrubs root.
#[derive(Clone, Debug)]
pub struct ShrubsProof {
    /// Index of the proven leaf.
    pub leaf_index: u64,
    /// Leaf count of the accumulator snapshot the proof targets.
    pub leaf_count: u64,
    /// Sibling path from the leaf up to its peak.
    pub path: Vec<ProofStep>,
    /// The other peaks, with the proven peak's slot marked by `peak_slot`.
    pub other_peaks: Vec<Digest>,
    /// Position of the recomputed peak within the frontier.
    pub peak_slot: usize,
}

impl ShrubsProof {
    /// Total number of digests carried — the paper's verification-cost
    /// metric for Fig 8(b).
    pub fn len(&self) -> usize {
        self.path.len() + self.other_peaks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The Shrubs accumulator: all nodes stored densely in post-order.
#[derive(Clone, Debug, Default)]
pub struct Shrubs {
    nodes: Vec<Digest>,
    leaf_count: u64,
}

impl Shrubs {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of appended leaves.
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// Total stored nodes (leaves + internal).
    pub fn node_count(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Append a leaf digest; returns its leaf index.
    ///
    /// Cost: one push plus the parent cascade for newly completed subtrees —
    /// O(1) amortized, matching the Shrubs insertion bound the CM-Tree
    /// design leans on (§IV-B1).
    pub fn append(&mut self, leaf: Digest) -> u64 {
        let index = self.leaf_count;
        self.nodes.push(leaf);
        self.leaf_count += 1;
        // Cascade: while the node just placed completes a right subtree,
        // hash it with its left sibling into a parent.
        let mut pos = self.nodes.len() as u64 - 1;
        let mut height = 0u32;
        while pos_height(pos + 1) == height + 1 {
            let sibling_span = (1u64 << (height + 1)) - 1;
            let left = self.nodes[(pos - sibling_span) as usize];
            let right = self.nodes[pos as usize];
            self.nodes.push(hash_pair(&left, &right));
            pos += 1;
            height += 1;
        }
        index
    }

    /// Digest of a node by post-order position.
    pub fn node(&self, pos: u64) -> Option<Digest> {
        self.nodes.get(pos as usize).copied()
    }

    /// The dense post-order node storage — checkpoint serialization reads
    /// this directly so restoring an accumulator costs zero re-hashing.
    pub fn nodes(&self) -> &[Digest] {
        &self.nodes
    }

    /// Rebuild an accumulator from its serialized node storage.
    ///
    /// Structural validation only: the node count must be exactly what
    /// `leaf_count` leaves occupy. Digest integrity is the caller's
    /// problem (checkpoint loads verify the recomputed roots against the
    /// manifest and the sealed block headers).
    pub fn from_parts(nodes: Vec<Digest>, leaf_count: u64) -> Result<Self, AccumulatorError> {
        if nodes.len() as u64 != node_count(leaf_count) {
            return Err(AccumulatorError::MalformedProof("node storage does not match leaf count"));
        }
        Ok(Shrubs { nodes, leaf_count })
    }

    /// The frontier: complete-subtree roots left to right. This is the
    /// paper's *node-set proof* for the most recent cell.
    pub fn frontier(&self) -> Vec<Digest> {
        peak_positions(self.leaf_count)
            .into_iter()
            .map(|p| self.nodes[p as usize])
            .collect()
    }

    /// The accumulator root: the single peak when the tree is full, else
    /// the bagged frontier.
    pub fn root(&self) -> Digest {
        let peaks = self.frontier();
        match peaks.len() {
            0 => Digest::ZERO,
            1 => peaks[0],
            _ => hash_many(&peaks),
        }
    }

    /// Compute the root a frontier implies (for frontier-only verification).
    pub fn root_of_frontier(frontier: &[Digest]) -> Digest {
        match frontier.len() {
            0 => Digest::ZERO,
            1 => frontier[0],
            _ => hash_many(frontier),
        }
    }

    /// Produce a membership proof for `leaf_index` against the *current*
    /// root.
    pub fn prove(&self, leaf_index: u64) -> Result<ShrubsProof, AccumulatorError> {
        if leaf_index >= self.leaf_count {
            return Err(AccumulatorError::LeafOutOfRange {
                index: leaf_index,
                leaf_count: self.leaf_count,
            });
        }
        let peaks = peak_positions(self.leaf_count);
        let mut pos = leaf_pos(leaf_index);
        let mut height = 0u32;
        let mut path = Vec::new();
        while !peaks.contains(&pos) {
            let span = (1u64 << (height + 1)) - 1;
            if pos_height(pos + 1) == height + 1 {
                // `pos` is a right child; sibling sits `span` positions back.
                path.push(ProofStep {
                    sibling: self.nodes[(pos - span) as usize],
                    sibling_on_left: true,
                });
                pos += 1;
            } else {
                // Left child; the right sibling subtree follows ours.
                let sib = pos + span;
                debug_assert!((sib as usize) < self.nodes.len());
                path.push(ProofStep {
                    sibling: self.nodes[sib as usize],
                    sibling_on_left: false,
                });
                pos = sib + 1;
            }
            height += 1;
        }
        let peak_slot = peaks.iter().position(|&p| p == pos).expect("pos is a peak");
        let other_peaks = peaks
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != peak_slot)
            .map(|(_, &p)| self.nodes[p as usize])
            .collect();
        Ok(ShrubsProof {
            leaf_index,
            leaf_count: self.leaf_count,
            path,
            other_peaks,
            peak_slot,
        })
    }

    /// Verify `proof` shows `leaf` at `proof.leaf_index` under `root`.
    pub fn verify(root: &Digest, leaf: &Digest, proof: &ShrubsProof) -> Result<(), AccumulatorError> {
        if proof.leaf_index >= proof.leaf_count {
            return Err(AccumulatorError::MalformedProof("leaf index beyond leaf count"));
        }
        let mut acc = *leaf;
        for step in &proof.path {
            acc = if step.sibling_on_left {
                hash_pair(&step.sibling, &acc)
            } else {
                hash_pair(&acc, &step.sibling)
            };
        }
        let peak_count = peak_positions(proof.leaf_count).len();
        if proof.other_peaks.len() + 1 != peak_count {
            return Err(AccumulatorError::MalformedProof("wrong frontier size"));
        }
        if proof.peak_slot >= peak_count {
            return Err(AccumulatorError::MalformedProof("peak slot out of range"));
        }
        let mut frontier = Vec::with_capacity(peak_count);
        frontier.extend_from_slice(&proof.other_peaks[..proof.peak_slot]);
        frontier.push(acc);
        frontier.extend_from_slice(&proof.other_peaks[proof.peak_slot..]);
        if Self::root_of_frontier(&frontier) == *root {
            Ok(())
        } else {
            Err(AccumulatorError::ProofMismatch)
        }
    }
}

/// Does the sorted `targets` slice contain an index in `[lo, hi)`?
/// Binary search keeps batch proof generation at O((m + log n) · log m)
/// instead of the naive O(m²).
fn range_has_target(targets: &[u64], lo: u64, hi: u64) -> bool {
    let start = targets.partition_point(|&t| t < lo);
    targets.get(start).is_some_and(|&t| t < hi)
}

/// Peak decomposition of `n` leaves: `(position, height, first_leaf)` per
/// peak, left to right.
fn peak_spans(n: u64) -> Vec<(u64, u32, u64)> {
    let mut out = Vec::new();
    let mut remaining = n;
    let mut pos_offset = 0u64;
    let mut leaf_offset = 0u64;
    while remaining > 0 {
        let height = 63 - remaining.leading_zeros();
        let leaves = 1u64 << height;
        let nodes = 2 * leaves - 1;
        out.push((pos_offset + nodes - 1, height, leaf_offset));
        pos_offset += nodes;
        leaf_offset += leaves;
        remaining -= leaves;
    }
    out
}

/// A batch membership proof for a set of leaves.
///
/// This realizes the paper's §IV-C step 3: non-leaf cells derivable from
/// the target leaves themselves (`ℕ₂ ∩ ℕ₃`) are *omitted*; only the
/// minimal complement set of subtree roots is carried ("only {cell₃₂}
/// will be replied to the verifier" in the paper's example).
#[derive(Clone, Debug)]
pub struct ShrubsBatchProof {
    /// Leaf count of the snapshot proven against.
    pub leaf_count: u64,
    /// Sorted indices of the target leaves.
    pub indices: Vec<u64>,
    /// `(post-order position, digest)` of each non-derivable subtree root.
    pub provided: Vec<(u64, Digest)>,
}

impl ShrubsBatchProof {
    /// Number of digests carried — the Fig 9 verification-cost metric.
    pub fn len(&self) -> usize {
        self.provided.len()
    }

    pub fn is_empty(&self) -> bool {
        self.provided.is_empty()
    }
}

impl Shrubs {
    /// Produce a batch proof for `indices` (deduplicated and sorted).
    pub fn prove_batch(&self, indices: &[u64]) -> Result<ShrubsBatchProof, AccumulatorError> {
        let mut idx: Vec<u64> = indices.to_vec();
        idx.sort_unstable();
        idx.dedup();
        if idx.is_empty() {
            return Err(AccumulatorError::MalformedProof("empty index set"));
        }
        if let Some(&max) = idx.last() {
            if max >= self.leaf_count {
                return Err(AccumulatorError::LeafOutOfRange {
                    index: max,
                    leaf_count: self.leaf_count,
                });
            }
        }
        let mut provided = Vec::new();
        for (pos, height, first_leaf) in peak_spans(self.leaf_count) {
            self.collect_batch(pos, height, first_leaf, &idx, &mut provided);
        }
        Ok(ShrubsBatchProof { leaf_count: self.leaf_count, indices: idx, provided })
    }

    /// Recursive collector: emit the subtree root digest for any subtree
    /// containing no target leaf whose sibling branch does contain one.
    fn collect_batch(
        &self,
        pos: u64,
        height: u32,
        first_leaf: u64,
        targets: &[u64],
        out: &mut Vec<(u64, Digest)>,
    ) {
        let leaf_hi = first_leaf + (1u64 << height);
        let has_target = range_has_target(targets, first_leaf, leaf_hi);
        if !has_target {
            out.push((pos, self.nodes[pos as usize]));
            return;
        }
        if height == 0 {
            return; // Target leaf: the verifier supplies it.
        }
        let child_nodes = (1u64 << height) - 1;
        let right = pos - 1;
        let left = pos - 1 - child_nodes;
        let mid = first_leaf + (1u64 << (height - 1));
        self.collect_batch(left, height - 1, first_leaf, targets, out);
        self.collect_batch(right, height - 1, mid, targets, out);
    }

    /// Verify a batch proof: `entries` pairs each target index with the
    /// claimed leaf digest; all must be present exactly once.
    pub fn verify_batch(
        root: &Digest,
        entries: &[(u64, Digest)],
        proof: &ShrubsBatchProof,
    ) -> Result<(), AccumulatorError> {
        if entries.len() != proof.indices.len() {
            return Err(AccumulatorError::MalformedProof("entry/index count mismatch"));
        }
        let mut leaf_map = std::collections::HashMap::with_capacity(entries.len());
        for (i, d) in entries {
            if leaf_map.insert(*i, *d).is_some() {
                return Err(AccumulatorError::MalformedProof("duplicate entry index"));
            }
        }
        for idx in &proof.indices {
            if !leaf_map.contains_key(idx) {
                return Err(AccumulatorError::MalformedProof("entry missing for index"));
            }
        }
        let provided: std::collections::HashMap<u64, Digest> =
            proof.provided.iter().copied().collect();
        let mut frontier = Vec::new();
        for (pos, height, first_leaf) in peak_spans(proof.leaf_count) {
            let digest =
                Self::compute_batch(pos, height, first_leaf, &leaf_map, &provided, &proof.indices)
                    .ok_or(AccumulatorError::MalformedProof("underivable subtree"))?;
            frontier.push(digest);
        }
        if Self::root_of_frontier(&frontier) == *root {
            Ok(())
        } else {
            Err(AccumulatorError::ProofMismatch)
        }
    }

    fn compute_batch(
        pos: u64,
        height: u32,
        first_leaf: u64,
        leaves: &std::collections::HashMap<u64, Digest>,
        provided: &std::collections::HashMap<u64, Digest>,
        targets: &[u64],
    ) -> Option<Digest> {
        let leaf_hi = first_leaf + (1u64 << height);
        if !range_has_target(targets, first_leaf, leaf_hi) {
            return provided.get(&pos).copied();
        }
        if height == 0 {
            return leaves.get(&first_leaf).copied();
        }
        let child_nodes = (1u64 << height) - 1;
        let right_pos = pos - 1;
        let left_pos = pos - 1 - child_nodes;
        let mid = first_leaf + (1u64 << (height - 1));
        let l = Self::compute_batch(left_pos, height - 1, first_leaf, leaves, provided, targets)?;
        let r = Self::compute_batch(right_pos, height - 1, mid, leaves, provided, targets)?;
        Some(hash_pair(&l, &r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerdb_crypto::hash_leaf;

    fn leaves(n: u64) -> Vec<Digest> {
        (0..n).map(|i| hash_leaf(&i.to_be_bytes())).collect()
    }

    fn build(n: u64) -> (Shrubs, Vec<Digest>) {
        let ls = leaves(n);
        let mut s = Shrubs::new();
        for l in &ls {
            s.append(*l);
        }
        (s, ls)
    }

    #[test]
    fn paper_figure3_numbering() {
        // Cross-check positions against the paper's Fig 3(a) (1-based):
        // leaves at 1,2,4,5,8,9,11,12 → 0-based 0,1,3,4,7,8,10,11.
        let expect = [0u64, 1, 3, 4, 7, 8, 10, 11];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(leaf_pos(i as u64), e, "leaf {i}");
        }
        // Parents: cell3→pos2, cell7→pos6, cell15→pos14.
        assert_eq!(pos_height(2), 1);
        assert_eq!(pos_height(6), 2);
        assert_eq!(pos_height(14), 3);
    }

    #[test]
    fn frontier_matches_paper_example() {
        // After 5 leaves, frontier should be {cell7, cell8} (paper: proof
        // for cell5 is {cell7} plus itself once appended → positions 6, 7).
        let (s, _) = build(5);
        assert_eq!(peak_positions(5), vec![6, 7]);
        assert_eq!(s.frontier().len(), 2);
        // After 7 leaves: {cell7, cell10, cell11} → positions 6, 9, 10.
        let (s7, _) = build(7);
        assert_eq!(peak_positions(7), vec![6, 9, 10]);
        assert_eq!(s7.frontier().len(), 3);
        // After 8 leaves: single root at position 14 (paper cell15).
        let (s8, _) = build(8);
        assert_eq!(peak_positions(8), vec![14]);
        assert_eq!(s8.frontier().len(), 1);
        assert_eq!(s8.root(), s8.frontier()[0]);
    }

    #[test]
    fn node_count_formula() {
        let (s, _) = build(100);
        assert_eq!(s.node_count(), node_count(100));
    }

    #[test]
    fn prove_verify_all_leaves_various_sizes() {
        for n in [1u64, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33, 100] {
            let (s, ls) = build(n);
            let root = s.root();
            for i in 0..n {
                let proof = s.prove(i).unwrap();
                Shrubs::verify(&root, &ls[i as usize], &proof)
                    .unwrap_or_else(|e| panic!("n={n} i={i}: {e}"));
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let (s, _) = build(10);
        let root = s.root();
        let proof = s.prove(3).unwrap();
        let bogus = hash_leaf(b"bogus");
        assert_eq!(
            Shrubs::verify(&root, &bogus, &proof),
            Err(AccumulatorError::ProofMismatch)
        );
    }

    #[test]
    fn stale_root_fails() {
        let (mut s, ls) = build(10);
        let proof = s.prove(3).unwrap();
        s.append(hash_leaf(b"new"));
        let new_root = s.root();
        assert!(Shrubs::verify(&new_root, &ls[3], &proof).is_err());
    }

    #[test]
    fn out_of_range_prove() {
        let (s, _) = build(4);
        assert!(matches!(
            s.prove(4),
            Err(AccumulatorError::LeafOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_accumulator() {
        let s = Shrubs::new();
        assert_eq!(s.root(), Digest::ZERO);
        assert!(s.frontier().is_empty());
        assert_eq!(s.leaf_count(), 0);
    }

    #[test]
    fn frontier_commits_latest_cell() {
        // The node-set proof for the latest cell: bagging the frontier after
        // each append yields the running root.
        let ls = leaves(20);
        let mut s = Shrubs::new();
        for (i, l) in ls.iter().enumerate() {
            s.append(*l);
            let frontier = s.frontier();
            assert_eq!(Shrubs::root_of_frontier(&frontier), s.root(), "after {i}");
        }
    }

    #[test]
    fn proof_len_is_logarithmic() {
        let (s, _) = build(1 << 12);
        let proof = s.prove(123).unwrap();
        assert!(proof.len() <= 13, "proof length {} too large", proof.len());
    }

    #[test]
    fn batch_prove_verify_ranges() {
        for n in [1u64, 3, 8, 13, 32, 100] {
            let (s, ls) = build(n);
            let root = s.root();
            // Prefix ranges of several widths.
            for width in [1u64, 2, 4, n] {
                let w = width.min(n);
                let indices: Vec<u64> = (0..w).collect();
                let entries: Vec<(u64, Digest)> =
                    indices.iter().map(|&i| (i, ls[i as usize])).collect();
                let proof = s.prove_batch(&indices).unwrap();
                Shrubs::verify_batch(&root, &entries, &proof)
                    .unwrap_or_else(|e| panic!("n={n} w={w}: {e}"));
            }
        }
    }

    #[test]
    fn batch_proof_smaller_than_individual() {
        // The §IV-C step-3 point: proving the first 4 leaves together needs
        // fewer digests than 4 independent proofs.
        let (s, _) = build(16);
        let batch = s.prove_batch(&[0, 1, 2, 3]).unwrap();
        let individual: usize = (0..4).map(|i| s.prove(i).unwrap().len()).sum();
        assert!(batch.len() < individual, "{} vs {individual}", batch.len());
    }

    #[test]
    fn batch_paper_example_cell_count() {
        // Fig 6: verifying the first 4 of 8 entries needs only the sibling
        // subtree root (the paper's {cell32}) — one provided digest.
        let (s, _) = build(8);
        let proof = s.prove_batch(&[0, 1, 2, 3]).unwrap();
        assert_eq!(proof.len(), 1);
    }

    #[test]
    fn batch_with_wrong_entry_fails() {
        let (s, ls) = build(10);
        let root = s.root();
        let proof = s.prove_batch(&[2, 3]).unwrap();
        let entries = vec![(2u64, ls[2]), (3u64, hash_leaf(b"forged"))];
        assert_eq!(
            Shrubs::verify_batch(&root, &entries, &proof),
            Err(AccumulatorError::ProofMismatch)
        );
    }

    #[test]
    fn batch_with_missing_entry_fails() {
        let (s, ls) = build(10);
        let root = s.root();
        let proof = s.prove_batch(&[2, 3]).unwrap();
        let entries = vec![(2u64, ls[2])];
        assert!(Shrubs::verify_batch(&root, &entries, &proof).is_err());
    }

    #[test]
    fn batch_sparse_indices() {
        let (s, ls) = build(64);
        let root = s.root();
        let indices = [0u64, 17, 31, 32, 63];
        let entries: Vec<(u64, Digest)> =
            indices.iter().map(|&i| (i, ls[i as usize])).collect();
        let proof = s.prove_batch(&indices).unwrap();
        Shrubs::verify_batch(&root, &entries, &proof).unwrap();
    }

    #[test]
    fn batch_empty_and_out_of_range() {
        let (s, _) = build(4);
        assert!(s.prove_batch(&[]).is_err());
        assert!(s.prove_batch(&[4]).is_err());
    }

    #[test]
    fn tampered_peak_slot_rejected() {
        let (s, ls) = build(10);
        let root = s.root();
        let mut proof = s.prove(9).unwrap();
        proof.peak_slot = 5;
        assert!(Shrubs::verify(&root, &ls[9], &proof).is_err());
    }
}
