//! Error type for accumulator operations.

use std::fmt;

/// Errors surfaced by the accumulator structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccumulatorError {
    /// A leaf index was out of range for the structure.
    LeafOutOfRange { index: u64, leaf_count: u64 },
    /// A proof did not reproduce the expected root.
    ProofMismatch,
    /// A proof object was structurally malformed.
    MalformedProof(&'static str),
    /// A trusted anchor does not cover the requested verification.
    AnchorTooOld,
    /// A block height was out of range for the chain.
    BlockOutOfRange { height: u64, block_count: u64 },
    /// The epoch's node storage was erased by a purge; only its root
    /// digest remains (§III-A2's optional fam-node erasure).
    EpochErased(usize),
}

impl fmt::Display for AccumulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccumulatorError::LeafOutOfRange { index, leaf_count } => {
                write!(f, "leaf index {index} out of range (leaf count {leaf_count})")
            }
            AccumulatorError::ProofMismatch => write!(f, "proof does not match trusted root"),
            AccumulatorError::MalformedProof(what) => write!(f, "malformed proof: {what}"),
            AccumulatorError::AnchorTooOld => {
                write!(f, "trusted anchor does not cover the requested data")
            }
            AccumulatorError::BlockOutOfRange { height, block_count } => {
                write!(f, "block height {height} out of range (block count {block_count})")
            }
            AccumulatorError::EpochErased(e) => {
                write!(f, "fam epoch {e} node storage was erased by a purge")
            }
        }
    }
}

impl std::error::Error for AccumulatorError {}
