//! The fractal accumulating model (*fam*) — the paper's primary *what*
//! contribution (§III-A1, Fig 3b / Fig 4).
//!
//! fam partitions the accumulation into *epochs* of `2^δ` leaves (δ is the
//! *fractal height*). Within an epoch, leaves accumulate in a Shrubs tree.
//! **Rule 1**: when the current tree is full, its root becomes the first
//! leaf — the *merged leaf* (the paper's split cell `cell_E`) — of a fresh
//! tree. Every epoch root therefore transitively commits the entire history,
//! while insertion cost stays bounded by δ regardless of ledger size.
//!
//! *Trusted anchors* (fam-aoa): a verifier who has already validated the
//! ledger up to some point records the epoch roots it trusts. A later proof
//! only needs (a) the sibling path inside the target journal's epoch and
//! (b) the merged-leaf paths of epochs *after* the anchor, reproducing the
//! paper's `O(2)` vs `O(δ+2)` comparison for fresh anchors.

use crate::error::AccumulatorError;
use crate::shrubs::{Shrubs, ShrubsProof};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::hash_leaf;
use std::sync::Arc;

/// A trusted anchor: the verifier's record of already-verified prefix state.
///
/// `epoch_roots[k]` is the root of sealed epoch `k`; everything up to
/// `covered_epochs` is trusted without re-verification.
#[derive(Clone, Debug, Default)]
pub struct TrustedAnchor {
    pub epoch_roots: Vec<Digest>,
}

impl TrustedAnchor {
    /// Number of sealed epochs this anchor vouches for.
    pub fn covered_epochs(&self) -> usize {
        self.epoch_roots.len()
    }
}

/// A fam membership proof.
#[derive(Clone, Debug)]
pub struct FamProof {
    /// Epoch containing the proven journal.
    pub epoch: usize,
    /// Proof of the journal inside its epoch tree.
    pub in_epoch: ShrubsProof,
    /// Root of the journal's epoch at proving time (the value `in_epoch`
    /// resolves to; trusted directly when covered by the anchor).
    pub epoch_root: Digest,
    /// For each epoch after the target (up to and including the open one):
    /// a proof that the previous epoch's root is that epoch's merged first
    /// leaf, plus that epoch's root. Chain entries are ordered oldest first.
    pub chain: Vec<(ShrubsProof, Digest)>,
}

impl FamProof {
    /// Total digests carried — the Fig 8(b) verification-cost metric.
    pub fn len(&self) -> usize {
        self.in_epoch.len() + self.chain.iter().map(|(p, _)| p.len() + 1).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A sealed epoch: either the full node storage or — after a purge with
/// fam-node erasure (§III-A2) — just a placeholder (the root itself lives
/// in `sealed_roots`).
///
/// Full epochs are held behind `Arc`: a sealed Shrubs is never mutated
/// again, so frozen fam copies (the snapshot read path) share the node
/// storage instead of deep-copying history on every block seal.
#[derive(Clone, Debug)]
enum SealedEpoch {
    Full(Arc<Shrubs>),
    RootOnly,
}

/// Serialized form of a [`FamTree`] — the checkpoint engine's view.
///
/// Sealed epochs carry their full node storage (`Some`) unless a purge
/// erased them down to the root (`None`); either way the epoch root
/// itself lives in `sealed_roots`. Node digests are stored verbatim, so
/// a restore performs no hashing.
#[derive(Clone, Debug)]
pub struct FamParts {
    pub delta: u32,
    pub sealed_roots: Vec<Digest>,
    /// Per sealed epoch: the full Shrubs storage, or `None` if erased.
    pub epochs: Vec<Option<Shrubs>>,
    pub current: Shrubs,
    pub epoch_first_jsn: Vec<u64>,
    pub journal_count: u64,
}

/// The fam tree with fixed fractal height δ.
#[derive(Clone, Debug)]
pub struct FamTree {
    delta: u32,
    /// Sealed epoch trees (digests only — payloads live in the stream
    /// store, so retaining them is cheap; purge may erase them, §III-A2).
    sealed: Vec<SealedEpoch>,
    /// Roots of the sealed epochs, index-aligned with `sealed`.
    sealed_roots: Vec<Digest>,
    /// The open epoch.
    current: Shrubs,
    /// Global sequence numbers: jsn of the first journal in each epoch.
    epoch_first_jsn: Vec<u64>,
    /// Total journal (non-merged) leaves appended.
    journal_count: u64,
}

impl FamTree {
    /// Create a fam tree with epoch capacity `2^delta` leaves.
    ///
    /// Epoch 0 holds `2^δ` journals; later epochs hold the merged leaf plus
    /// `2^δ - 1` journals, matching Rule 1.
    pub fn new(delta: u32) -> Self {
        assert!((1..=40).contains(&delta), "fractal height must be in 1..=40");
        FamTree {
            delta,
            sealed: Vec::new(),
            sealed_roots: Vec::new(),
            current: Shrubs::new(),
            epoch_first_jsn: vec![0],
            journal_count: 0,
        }
    }

    /// The fractal height δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Leaves per epoch (`2^δ`).
    pub fn epoch_capacity(&self) -> u64 {
        1u64 << self.delta
    }

    /// Total journals appended (excluding merged leaves).
    pub fn journal_count(&self) -> u64 {
        self.journal_count
    }

    /// Sealed epoch count.
    pub fn sealed_epochs(&self) -> usize {
        self.sealed.len()
    }

    /// Roots of all sealed epochs (what an anchor snapshots).
    pub fn sealed_roots(&self) -> &[Digest] {
        &self.sealed_roots
    }

    /// The overall ledger commitment: the open epoch's root, which commits
    /// all history transitively through merged leaves.
    pub fn root(&self) -> Digest {
        if self.current.leaf_count() == 0 {
            // Open epoch empty: the last sealed root is the commitment.
            self.sealed_roots.last().copied().unwrap_or(Digest::ZERO)
        } else {
            self.current.root()
        }
    }

    /// Digest a merged leaf carries for a previous epoch root.
    fn merged_leaf(root: &Digest) -> Digest {
        hash_leaf(root.as_bytes())
    }

    /// Parallel-seal hook, uniform with the MPT/CM-Tree ones. Shrubs
    /// hashes eagerly at append — every parent node is computed the
    /// moment its children exist — so there is no deferred work to fan
    /// out and this is a no-op kept so the seal path treats all three
    /// commitment structures identically.
    pub fn hash_subtrees_with(&self, _pool: &ledgerdb_pool::Pool) {}

    /// Append a journal digest; returns its jsn.
    pub fn append(&mut self, digest: Digest) -> u64 {
        if self.current.leaf_count() == self.epoch_capacity() {
            self.roll_epoch();
        }
        self.current.append(digest);
        let jsn = self.journal_count;
        self.journal_count += 1;
        jsn
    }

    /// Rule 1: seal the full epoch and open a new one whose first leaf is
    /// the sealed root.
    fn roll_epoch(&mut self) {
        let root = self.current.root();
        let sealed = std::mem::take(&mut self.current);
        self.sealed.push(SealedEpoch::Full(Arc::new(sealed)));
        self.sealed_roots.push(root);
        self.current.append(Self::merged_leaf(&root));
        self.epoch_first_jsn.push(self.journal_count);
    }

    /// Capture a trusted anchor covering everything sealed so far.
    pub fn anchor(&self) -> TrustedAnchor {
        TrustedAnchor { epoch_roots: self.sealed_roots.clone() }
    }

    /// Capture an immutable frozen copy of the whole accumulator for the
    /// snapshot read path.
    ///
    /// Sealed epochs are shared by `Arc` (they never mutate again), so
    /// the cost is one pointer clone per epoch plus a deep copy of the
    /// open epoch only — at most `2^(δ+1)` digests, independent of
    /// ledger size. The frozen tree keeps proving and verifying exactly
    /// as of the freeze point even while the live tree moves on; if the
    /// live tree later erases purged epochs, the frozen copy retains its
    /// shared nodes until it is dropped.
    pub fn freeze(&self) -> FamTree {
        self.clone()
    }

    /// §III-A2's optional fam-node erasure on purge: drop the node storage
    /// of every sealed epoch that lies entirely below `purge_to` (by jsn),
    /// keeping only the epoch roots. Journals at or after `purge_to` stay
    /// provable: their own epoch is never erased, and chain links only
    /// traverse epochs *after* the target. Returns the number of digests
    /// released.
    pub fn erase_epochs_below(&mut self, purge_to: u64) -> u64 {
        let mut released = 0u64;
        for epoch in 0..self.sealed.len() {
            // The first jsn of the *next* epoch bounds this epoch's jsns.
            let epoch_end = self
                .epoch_first_jsn
                .get(epoch + 1)
                .copied()
                .unwrap_or(self.journal_count);
            if epoch_end > purge_to {
                break;
            }
            if let SealedEpoch::Full(tree) = &self.sealed[epoch] {
                released += tree.node_count();
                self.sealed[epoch] = SealedEpoch::RootOnly;
            }
        }
        released
    }

    /// Total digests currently held across sealed and open epochs — the
    /// storage-overhead metric for the purge ablation.
    pub fn retained_nodes(&self) -> u64 {
        let sealed: u64 = self
            .sealed
            .iter()
            .map(|e| match e {
                SealedEpoch::Full(t) => t.node_count(),
                SealedEpoch::RootOnly => 0,
            })
            .sum();
        sealed + self.current.node_count()
    }

    /// Export the accumulator for checkpoint serialization. Sealed-epoch
    /// storage is cloned out of its `Arc` (cheap relative to the I/O that
    /// follows, and only done on the checkpoint cadence).
    pub fn export_parts(&self) -> FamParts {
        FamParts {
            delta: self.delta,
            sealed_roots: self.sealed_roots.clone(),
            epochs: self
                .sealed
                .iter()
                .map(|e| match e {
                    SealedEpoch::Full(t) => Some(Shrubs::clone(t)),
                    SealedEpoch::RootOnly => None,
                })
                .collect(),
            current: self.current.clone(),
            epoch_first_jsn: self.epoch_first_jsn.clone(),
            journal_count: self.journal_count,
        }
    }

    /// Rebuild a fam tree from its serialized parts.
    ///
    /// Validates the structural invariants the live tree maintains:
    /// index alignment between `epochs` and `sealed_roots`, a monotonic
    /// `epoch_first_jsn` anchored at 0 with one entry per epoch, and —
    /// for every epoch whose storage survives — that the stored nodes
    /// actually bag to the recorded epoch root.
    pub fn from_parts(parts: FamParts) -> Result<FamTree, AccumulatorError> {
        let malformed = |what| Err(AccumulatorError::MalformedProof(what));
        if !(1..=40).contains(&parts.delta) {
            return malformed("fractal height out of range");
        }
        if parts.epochs.len() != parts.sealed_roots.len() {
            return malformed("epoch storage and root count differ");
        }
        if parts.epoch_first_jsn.len() != parts.epochs.len() + 1 {
            return malformed("epoch_first_jsn must have one entry per epoch");
        }
        if parts.epoch_first_jsn.first() != Some(&0) {
            return malformed("first epoch must start at jsn 0");
        }
        if parts.epoch_first_jsn.windows(2).any(|w| w[0] >= w[1]) {
            return malformed("epoch_first_jsn must be strictly increasing");
        }
        if parts.epoch_first_jsn.last().copied().unwrap_or(0) > parts.journal_count {
            return malformed("journal count behind last epoch start");
        }
        let mut sealed = Vec::with_capacity(parts.epochs.len());
        for (i, epoch) in parts.epochs.into_iter().enumerate() {
            match epoch {
                Some(tree) => {
                    if tree.root() != parts.sealed_roots[i] {
                        return malformed("sealed epoch nodes do not bag to recorded root");
                    }
                    sealed.push(SealedEpoch::Full(Arc::new(tree)));
                }
                None => sealed.push(SealedEpoch::RootOnly),
            }
        }
        Ok(FamTree {
            delta: parts.delta,
            sealed,
            sealed_roots: parts.sealed_roots,
            current: parts.current,
            epoch_first_jsn: parts.epoch_first_jsn,
            journal_count: parts.journal_count,
        })
    }

    /// Locate (epoch index, leaf offset within the epoch tree) for a jsn.
    fn locate(&self, jsn: u64) -> Result<(usize, u64), AccumulatorError> {
        if jsn >= self.journal_count {
            return Err(AccumulatorError::LeafOutOfRange {
                index: jsn,
                leaf_count: self.journal_count,
            });
        }
        // Binary search over epoch_first_jsn.
        let epoch = match self.epoch_first_jsn.binary_search(&jsn) {
            Ok(e) => e,
            Err(ins) => ins - 1,
        };
        let offset_in_epoch = jsn - self.epoch_first_jsn[epoch];
        // Epochs after the first carry the merged leaf at slot 0.
        let leaf = if epoch == 0 { offset_in_epoch } else { offset_in_epoch + 1 };
        Ok((epoch, leaf))
    }

    /// Produce a proof for `jsn` usable against `anchor` (or the zero
    /// anchor for full verification back to genesis epoch roots).
    pub fn prove(&self, jsn: u64, anchor: &TrustedAnchor) -> Result<FamProof, AccumulatorError> {
        let (epoch, leaf) = self.locate(jsn)?;
        let (in_epoch, epoch_root) = if epoch < self.sealed.len() {
            match &self.sealed[epoch] {
                SealedEpoch::Full(tree) => (tree.prove(leaf)?, self.sealed_roots[epoch]),
                SealedEpoch::RootOnly => return Err(AccumulatorError::EpochErased(epoch)),
            }
        } else {
            (self.current.prove(leaf)?, self.current.root())
        };

        // If the anchor already covers this epoch's root, no chain needed:
        // the verifier trusts epoch_root directly (the fam-aoa fast path).
        let mut chain = Vec::new();
        if epoch >= anchor.covered_epochs() {
            // Link epoch_root forward through each later epoch's merged
            // leaf until we reach the open epoch (whose root the verifier
            // holds as the ledger commitment).
            for k in (epoch + 1)..=self.sealed.len() {
                let (proof, root) = if k < self.sealed.len() {
                    match &self.sealed[k] {
                        SealedEpoch::Full(tree) => (tree.prove(0)?, self.sealed_roots[k]),
                        SealedEpoch::RootOnly => return Err(AccumulatorError::EpochErased(k)),
                    }
                } else {
                    if self.current.leaf_count() == 0 {
                        break;
                    }
                    (self.current.prove(0)?, self.current.root())
                };
                chain.push((proof, root));
            }
        }
        Ok(FamProof { epoch, in_epoch, epoch_root, chain })
    }

    /// Verify `proof` shows `leaf_digest` at some jsn, given the current
    /// ledger root `root` and the verifier's `anchor`.
    ///
    /// Anchored epochs resolve against the anchor's stored roots; otherwise
    /// the chain of merged-leaf proofs must connect the epoch root to the
    /// ledger root.
    pub fn verify(
        root: &Digest,
        anchor: &TrustedAnchor,
        leaf_digest: &Digest,
        proof: &FamProof,
    ) -> Result<(), AccumulatorError> {
        // 1. The journal is inside its epoch.
        Shrubs::verify(&proof.epoch_root, leaf_digest, &proof.in_epoch)?;

        // 2. The epoch root is trusted, either via the anchor...
        if proof.epoch < anchor.covered_epochs() {
            if anchor.epoch_roots[proof.epoch] != proof.epoch_root {
                return Err(AccumulatorError::ProofMismatch);
            }
            return Ok(());
        }

        // ... or via the merged-leaf chain up to the ledger root.
        let mut expected_leaf = Self::merged_leaf(&proof.epoch_root);
        let mut last_root = proof.epoch_root;
        for (link, link_root) in &proof.chain {
            if link.leaf_index != 0 {
                return Err(AccumulatorError::MalformedProof(
                    "chain link must prove the merged first leaf",
                ));
            }
            Shrubs::verify(link_root, &expected_leaf, link)?;
            expected_leaf = Self::merged_leaf(link_root);
            last_root = *link_root;
        }
        if last_root == *root {
            Ok(())
        } else {
            Err(AccumulatorError::ProofMismatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digests(n: u64) -> Vec<Digest> {
        (0..n).map(|i| hash_leaf(&i.to_be_bytes())).collect()
    }

    fn build(delta: u32, n: u64) -> (FamTree, Vec<Digest>) {
        let ds = digests(n);
        let mut fam = FamTree::new(delta);
        for d in &ds {
            fam.append(*d);
        }
        (fam, ds)
    }

    #[test]
    fn epoch_rolling_counts() {
        // δ=3 → capacity 8. Epoch 0: 8 journals. Epoch 1: merged + 7.
        let (fam, _) = build(3, 20);
        // 8 + 7 = 15 journals in two sealed epochs, 5 in the open one.
        assert_eq!(fam.sealed_epochs(), 2);
        assert_eq!(fam.journal_count(), 20);
    }

    #[test]
    fn prove_verify_no_anchor_all_journals() {
        let (fam, ds) = build(3, 30);
        let root = fam.root();
        let empty = TrustedAnchor::default();
        for (i, d) in ds.iter().enumerate() {
            let p = fam.prove(i as u64, &empty).unwrap();
            FamTree::verify(&root, &empty, d, &p).unwrap_or_else(|e| panic!("jsn {i}: {e}"));
        }
    }

    #[test]
    fn prove_verify_with_fresh_anchor() {
        let (fam, ds) = build(4, 100);
        let root = fam.root();
        let anchor = fam.anchor();
        for (i, d) in ds.iter().enumerate() {
            let p = fam.prove(i as u64, &anchor).unwrap();
            FamTree::verify(&root, &anchor, d, &p).unwrap();
        }
    }

    #[test]
    fn anchored_proofs_are_shorter() {
        // The fam-aoa claim: with a fresh anchor, historical proofs skip the
        // chain entirely.
        let (fam, _) = build(4, 200);
        let empty = TrustedAnchor::default();
        let anchor = fam.anchor();
        let p_unanchored = fam.prove(3, &empty).unwrap();
        let p_anchored = fam.prove(3, &anchor).unwrap();
        assert!(p_anchored.len() < p_unanchored.len());
        assert!(p_anchored.chain.is_empty());
    }

    #[test]
    fn stale_anchor_rejects_mismatched_root() {
        let (fam, ds) = build(3, 30);
        let mut anchor = fam.anchor();
        // Corrupt the anchor's record of epoch 0.
        anchor.epoch_roots[0] = hash_leaf(b"evil");
        let p = fam.prove(2, &anchor).unwrap();
        assert!(FamTree::verify(&fam.root(), &anchor, &ds[2], &p).is_err());
    }

    #[test]
    fn tampered_leaf_fails() {
        let (fam, _) = build(3, 30);
        let empty = TrustedAnchor::default();
        let p = fam.prove(5, &empty).unwrap();
        assert!(FamTree::verify(&fam.root(), &empty, &hash_leaf(b"fake"), &p).is_err());
    }

    #[test]
    fn out_of_range_jsn() {
        let (fam, _) = build(3, 10);
        assert!(fam.prove(10, &TrustedAnchor::default()).is_err());
    }

    #[test]
    fn root_changes_on_append() {
        let (mut fam, _) = build(3, 10);
        let r1 = fam.root();
        fam.append(hash_leaf(b"more"));
        assert_ne!(r1, fam.root());
    }

    #[test]
    fn proof_cost_bounded_by_delta_not_n() {
        // fam's point: recent-journal proof length is bounded by the epoch,
        // not the full ledger.
        let (small, _) = build(4, 1 << 6);
        let (large, _) = build(4, 1 << 12);
        let anchor_small = small.anchor();
        let anchor_large = large.anchor();
        let p_small = small.prove(small.journal_count() - 1, &anchor_small).unwrap();
        let p_large = large.prove(large.journal_count() - 1, &anchor_large).unwrap();
        // Both proofs live in the open epoch; length difference bounded by δ+1.
        assert!(p_large.len() <= p_small.len() + 5);
    }

    #[test]
    fn verify_journal_in_current_open_epoch() {
        let (fam, ds) = build(2, 9);
        let root = fam.root();
        let empty = TrustedAnchor::default();
        let last = fam.journal_count() - 1;
        let p = fam.prove(last, &empty).unwrap();
        FamTree::verify(&root, &empty, &ds[last as usize], &p).unwrap();
    }

    #[test]
    fn erase_epochs_frees_nodes_and_keeps_later_proofs() {
        // δ=3, 40 journals → epochs: 8 + 7 + 7 + 7 + 7 = 36 sealed-ish.
        let (mut fam, ds) = build(3, 40);
        let before = fam.retained_nodes();
        let released = fam.erase_epochs_below(20);
        assert!(released > 0);
        assert_eq!(fam.retained_nodes(), before - released);

        // Purged-range journals are no longer provable...
        let empty = TrustedAnchor::default();
        assert!(matches!(
            fam.prove(0, &empty),
            Err(AccumulatorError::EpochErased(_))
        ));
        // ...but journals at/after the purge point still are, even without
        // an anchor.
        let root = fam.root();
        for jsn in 20..40u64 {
            let p = fam.prove(jsn, &empty).unwrap();
            FamTree::verify(&root, &empty, &ds[jsn as usize], &p).unwrap();
        }
    }

    #[test]
    fn erase_is_idempotent_and_appends_continue() {
        let (mut fam, _) = build(3, 30);
        let r1 = fam.erase_epochs_below(16);
        let r2 = fam.erase_epochs_below(16);
        assert!(r1 > 0);
        assert_eq!(r2, 0);
        // The tree keeps accepting appends and stays provable.
        let d = hash_leaf(b"after-erase");
        let jsn = fam.append(d);
        let empty = TrustedAnchor::default();
        let p = fam.prove(jsn, &empty).unwrap();
        FamTree::verify(&fam.root(), &empty, &d, &p).unwrap();
    }

    #[test]
    fn frozen_tree_keeps_proving_while_live_tree_moves_on() {
        let (mut fam, ds) = build(3, 30);
        let frozen = fam.freeze();
        let frozen_root = frozen.root();
        assert_eq!(frozen_root, fam.root());

        // Live tree advances past an epoch boundary and erases history;
        // the frozen copy is unaffected.
        for i in 0..20u64 {
            fam.append(hash_leaf(&(1000 + i).to_be_bytes()));
        }
        fam.erase_epochs_below(16);
        assert_ne!(fam.root(), frozen_root);

        let empty = TrustedAnchor::default();
        for (i, d) in ds.iter().enumerate() {
            let p = frozen.prove(i as u64, &empty).unwrap();
            FamTree::verify(&frozen_root, &empty, d, &p)
                .unwrap_or_else(|e| panic!("frozen jsn {i}: {e}"));
        }
        // The live tree, by contrast, rejects the erased prefix.
        assert!(matches!(fam.prove(0, &empty), Err(AccumulatorError::EpochErased(_))));
    }

    #[test]
    fn freeze_shares_sealed_epoch_storage() {
        // Freezing must not deep-copy sealed history: the retained-node
        // accounting sees the full tree, but the open epoch is the only
        // part that costs a copy (bounded by epoch capacity).
        let (fam, _) = build(3, 1000);
        let frozen = fam.freeze();
        assert_eq!(frozen.retained_nodes(), fam.retained_nodes());
        assert_eq!(frozen.journal_count(), fam.journal_count());
        assert!(fam.current.node_count() <= 2 * fam.epoch_capacity());
    }

    #[test]
    fn exact_epoch_boundary() {
        // n exactly fills epochs: capacity 4, epoch0=4 journals,
        // epoch1 = merged + 3 journals → 7 journals seals epoch 1.
        let (fam, ds) = build(2, 7);
        // Appending one more rolls the epoch.
        let root_before = fam.root();
        let mut fam2 = fam.clone();
        fam2.append(hash_leaf(b"next"));
        assert_ne!(root_before, fam2.root());
        let empty = TrustedAnchor::default();
        for (i, d) in ds.iter().enumerate() {
            let p = fam2.prove(i as u64, &empty).unwrap();
            FamTree::verify(&fam2.root(), &empty, d, &p).unwrap();
        }
    }
}
