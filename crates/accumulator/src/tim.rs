//! The transaction-intensive model (*tim*) accumulator (§II-A).
//!
//! As in Diem and QLDB, every transaction is a leaf of one ever-growing
//! Merkle accumulator; verification always walks to the current global
//! root, so proof cost is `O(log n)` in the total ledger size and keeps
//! growing with the data volume — exactly the weakness Fig 8 quantifies
//! and the fam model fixes.

use crate::error::AccumulatorError;
use crate::shrubs::{Shrubs, ShrubsProof};
use ledgerdb_crypto::digest::Digest;

/// A membership proof in the tim model.
#[derive(Clone, Debug)]
pub struct TimProof(pub ShrubsProof);

impl TimProof {
    /// Digest count — the verification-cost metric used in Fig 8(b).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The tim accumulator: a single global Shrubs forest.
#[derive(Clone, Debug, Default)]
pub struct TimAccumulator {
    inner: Shrubs,
}

impl TimAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a transaction digest; returns its sequence number.
    pub fn append(&mut self, digest: Digest) -> u64 {
        self.inner.append(digest)
    }

    /// Total appended transactions.
    pub fn len(&self) -> u64 {
        self.inner.leaf_count()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.leaf_count() == 0
    }

    /// Current global root.
    pub fn root(&self) -> Digest {
        self.inner.root()
    }

    /// Prove transaction `seq` against the current root.
    pub fn prove(&self, seq: u64) -> Result<TimProof, AccumulatorError> {
        self.inner.prove(seq).map(TimProof)
    }

    /// Verify a proof against a trusted root.
    pub fn verify(root: &Digest, leaf: &Digest, proof: &TimProof) -> Result<(), AccumulatorError> {
        Shrubs::verify(root, leaf, &proof.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerdb_crypto::hash_leaf;

    #[test]
    fn append_prove_verify() {
        let mut acc = TimAccumulator::new();
        let leaves: Vec<Digest> = (0..50u64).map(|i| hash_leaf(&i.to_be_bytes())).collect();
        for l in &leaves {
            acc.append(*l);
        }
        let root = acc.root();
        for (i, l) in leaves.iter().enumerate() {
            let p = acc.prove(i as u64).unwrap();
            TimAccumulator::verify(&root, l, &p).unwrap();
        }
    }

    #[test]
    fn proof_grows_with_ledger_size() {
        // The defining tim weakness: proof size scales with total volume.
        let mut small = TimAccumulator::new();
        let mut large = TimAccumulator::new();
        for i in 0..16u64 {
            small.append(hash_leaf(&i.to_be_bytes()));
        }
        for i in 0..4096u64 {
            large.append(hash_leaf(&i.to_be_bytes()));
        }
        let p_small = small.prove(3).unwrap();
        let p_large = large.prove(3).unwrap();
        assert!(p_large.len() > p_small.len());
    }

    #[test]
    fn old_proofs_invalidate_on_growth() {
        let mut acc = TimAccumulator::new();
        let l0 = hash_leaf(b"tx0");
        acc.append(l0);
        let proof = acc.prove(0).unwrap();
        let root0 = acc.root();
        TimAccumulator::verify(&root0, &l0, &proof).unwrap();
        acc.append(hash_leaf(b"tx1"));
        assert!(TimAccumulator::verify(&acc.root(), &l0, &proof).is_err());
    }
}
