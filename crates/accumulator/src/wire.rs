//! Wire encodings for accumulator proof objects, so clients can verify
//! across a network/trust boundary.

use crate::fam::{FamProof, TrustedAnchor};
use crate::shrubs::{ProofStep, ShrubsBatchProof, ShrubsProof};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::wire::{Reader, Wire, WireError, Writer};

impl Wire for ProofStep {
    fn encode(&self, w: &mut Writer) {
        self.sibling.encode(w);
        w.put_bool(self.sibling_on_left);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ProofStep { sibling: Digest::decode(r)?, sibling_on_left: r.get_bool()? })
    }
}

impl Wire for ShrubsProof {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.leaf_index);
        w.put_u64(self.leaf_count);
        self.path.encode(w);
        self.other_peaks.encode(w);
        w.put_u64(self.peak_slot as u64);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShrubsProof {
            leaf_index: r.get_u64()?,
            leaf_count: r.get_u64()?,
            path: Vec::decode(r)?,
            other_peaks: Vec::decode(r)?,
            peak_slot: r.get_u64()? as usize,
        })
    }
}

impl Wire for ShrubsBatchProof {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.leaf_count);
        self.indices.encode(w);
        self.provided.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShrubsBatchProof {
            leaf_count: r.get_u64()?,
            indices: Vec::decode(r)?,
            provided: Vec::decode(r)?,
        })
    }
}

impl Wire for FamProof {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch as u64);
        self.in_epoch.encode(w);
        self.epoch_root.encode(w);
        self.chain.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FamProof {
            epoch: r.get_u64()? as usize,
            in_epoch: ShrubsProof::decode(r)?,
            epoch_root: Digest::decode(r)?,
            chain: Vec::decode(r)?,
        })
    }
}

impl Wire for TrustedAnchor {
    fn encode(&self, w: &mut Writer) {
        self.epoch_roots.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TrustedAnchor { epoch_roots: Vec::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fam::FamTree;
    use crate::shrubs::Shrubs;
    use ledgerdb_crypto::hash_leaf;

    fn sample_fam() -> (FamTree, Vec<Digest>) {
        let leaves: Vec<Digest> = (0..50u64).map(|i| hash_leaf(&i.to_be_bytes())).collect();
        let mut fam = FamTree::new(3);
        for l in &leaves {
            fam.append(*l);
        }
        (fam, leaves)
    }

    #[test]
    fn shrubs_proof_round_trip() {
        let mut s = Shrubs::new();
        for i in 0..20u64 {
            s.append(hash_leaf(&i.to_be_bytes()));
        }
        let proof = s.prove(7).unwrap();
        let decoded = ShrubsProof::from_wire(&proof.to_wire()).unwrap();
        Shrubs::verify(&s.root(), &hash_leaf(&7u64.to_be_bytes()), &decoded).unwrap();
    }

    #[test]
    fn batch_proof_round_trip() {
        let mut s = Shrubs::new();
        let leaves: Vec<Digest> = (0..16u64).map(|i| hash_leaf(&i.to_be_bytes())).collect();
        for l in &leaves {
            s.append(*l);
        }
        let proof = s.prove_batch(&[1, 5, 9]).unwrap();
        let decoded = ShrubsBatchProof::from_wire(&proof.to_wire()).unwrap();
        let entries = vec![(1u64, leaves[1]), (5, leaves[5]), (9, leaves[9])];
        Shrubs::verify_batch(&s.root(), &entries, &decoded).unwrap();
    }

    #[test]
    fn fam_proof_round_trip_and_still_verifies() {
        let (fam, leaves) = sample_fam();
        let anchor = TrustedAnchor::default();
        let proof = fam.prove(13, &anchor).unwrap();
        let decoded = FamProof::from_wire(&proof.to_wire()).unwrap();
        FamTree::verify(&fam.root(), &anchor, &leaves[13], &decoded).unwrap();
    }

    #[test]
    fn anchor_round_trip() {
        let (fam, _) = sample_fam();
        let anchor = fam.anchor();
        let decoded = TrustedAnchor::from_wire(&anchor.to_wire()).unwrap();
        assert_eq!(decoded.epoch_roots, anchor.epoch_roots);
    }

    #[test]
    fn corrupted_fam_proof_fails_verification_not_decode_panic() {
        let (fam, leaves) = sample_fam();
        let anchor = TrustedAnchor::default();
        let mut bytes = fam.prove(13, &anchor).unwrap().to_wire();
        // Flip a byte inside a digest: decodes fine, verification fails.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        if let Ok(decoded) = FamProof::from_wire(&bytes) {
            assert!(FamTree::verify(&fam.root(), &anchor, &leaves[13], &decoded).is_err());
        }
    }

    #[test]
    fn truncation_is_an_error() {
        let (fam, _) = sample_fam();
        let bytes = fam.prove(3, &TrustedAnchor::default()).unwrap().to_wire();
        for cut in [0usize, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(FamProof::from_wire(&bytes[..cut]).is_err());
        }
    }
}
