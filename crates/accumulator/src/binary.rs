//! A plain binary Merkle tree over a fixed leaf set.
//!
//! Used for the per-block transaction trees of the *bim* model (§II-A) and
//! as the property-test reference for the fancier accumulators. Odd levels
//! promote the unpaired node (no duplication), so the root of a single
//! leaf is the leaf itself.

use crate::error::AccumulatorError;
use crate::shrubs::ProofStep;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::hash_pair;

/// Compute the Merkle root of a leaf slice.
pub fn merkle_root(leaves: &[Digest]) -> Digest {
    if leaves.is_empty() {
        return Digest::ZERO;
    }
    let mut level: Vec<Digest> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(hash_pair(&pair[0], &pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// Produce a sibling path proving `index` within `leaves`.
pub fn merkle_prove(leaves: &[Digest], index: usize) -> Result<Vec<ProofStep>, AccumulatorError> {
    if index >= leaves.len() {
        return Err(AccumulatorError::LeafOutOfRange {
            index: index as u64,
            leaf_count: leaves.len() as u64,
        });
    }
    let mut path = Vec::new();
    let mut level: Vec<Digest> = leaves.to_vec();
    let mut idx = index;
    while level.len() > 1 {
        let sibling = idx ^ 1;
        if sibling < level.len() {
            path.push(ProofStep {
                sibling: level[sibling],
                sibling_on_left: sibling < idx,
            });
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(hash_pair(&pair[0], &pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        idx /= 2;
    }
    Ok(path)
}

/// Verify a sibling path from `leaf` to `root`.
pub fn merkle_verify(root: &Digest, leaf: &Digest, path: &[ProofStep]) -> bool {
    let mut acc = *leaf;
    for step in path {
        acc = if step.sibling_on_left {
            hash_pair(&step.sibling, &acc)
        } else {
            hash_pair(&acc, &step.sibling)
        };
    }
    acc == *root
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerdb_crypto::hash_leaf;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n).map(|i| hash_leaf(&(i as u64).to_be_bytes())).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let ls = leaves(1);
        assert_eq!(merkle_root(&ls), ls[0]);
    }

    #[test]
    fn empty_root_is_zero() {
        assert_eq!(merkle_root(&[]), Digest::ZERO);
    }

    #[test]
    fn prove_verify_all_indices() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 31] {
            let ls = leaves(n);
            let root = merkle_root(&ls);
            for i in 0..n {
                let path = merkle_prove(&ls, i).unwrap();
                assert!(merkle_verify(&root, &ls[i], &path), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_rejected() {
        let ls = leaves(8);
        let root = merkle_root(&ls);
        let path = merkle_prove(&ls, 2).unwrap();
        assert!(!merkle_verify(&root, &hash_leaf(b"evil"), &path));
    }

    #[test]
    fn out_of_range_errors() {
        let ls = leaves(4);
        assert!(merkle_prove(&ls, 4).is_err());
    }

    #[test]
    fn order_matters() {
        let mut ls = leaves(4);
        let r1 = merkle_root(&ls);
        ls.swap(0, 1);
        assert_ne!(r1, merkle_root(&ls));
    }
}
