//! The block-intensive model (*bim*) — a Bitcoin-style chain (§II-A).
//!
//! Transactions are batched into blocks; each block carries a Merkle root
//! over its transactions and a link to the previous header. A light client
//! keeps all headers as *block-oriented anchors* (boa) — O(n) space in the
//! number of blocks — and verifies a transaction with an SPV sibling path
//! against the stored header, which is what makes bim verification fast
//! but header storage heavy (the trade-off fam resolves).

use crate::binary::{merkle_prove, merkle_root, merkle_verify};
use crate::error::AccumulatorError;
use crate::shrubs::ProofStep;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::sha256::Sha256;

/// A block header: the light client's per-block anchor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockHeader {
    pub height: u64,
    pub prev_hash: Digest,
    pub merkle_root: Digest,
    pub tx_count: u32,
}

impl BlockHeader {
    /// Digest of the header (what the next block links to).
    pub fn hash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.bim.header.v1");
        h.update(&self.height.to_be_bytes());
        h.update(&self.prev_hash.0);
        h.update(&self.merkle_root.0);
        h.update(&self.tx_count.to_be_bytes());
        Digest(h.finalize())
    }
}

/// An SPV proof: block height plus the in-block sibling path.
#[derive(Clone, Debug)]
pub struct BimProof {
    pub height: u64,
    pub tx_index: u32,
    pub path: Vec<ProofStep>,
}

impl BimProof {
    /// Digest count carried by the proof.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }
}

/// The full chain, holding blocks and derived headers.
#[derive(Clone, Debug)]
pub struct BimChain {
    block_size: usize,
    headers: Vec<BlockHeader>,
    blocks: Vec<Vec<Digest>>,
    /// Transactions accumulated toward the next block.
    pending: Vec<Digest>,
}

impl BimChain {
    /// Create a chain sealing a block every `block_size` transactions.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        BimChain { block_size, headers: Vec::new(), blocks: Vec::new(), pending: Vec::new() }
    }

    /// Append a transaction digest; seals a block when full. Returns the
    /// global transaction sequence number.
    pub fn append(&mut self, digest: Digest) -> u64 {
        let seq = self.tx_count();
        self.pending.push(digest);
        if self.pending.len() == self.block_size {
            self.seal_block();
        }
        seq
    }

    /// Force-seal the pending partial block (end-of-interval commit).
    pub fn seal_block(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let txs = std::mem::take(&mut self.pending);
        let prev_hash = self.headers.last().map(|h| h.hash()).unwrap_or(Digest::ZERO);
        let header = BlockHeader {
            height: self.headers.len() as u64,
            prev_hash,
            merkle_root: merkle_root(&txs),
            tx_count: txs.len() as u32,
        };
        self.headers.push(header);
        self.blocks.push(txs);
    }

    /// Total transactions (sealed + pending).
    pub fn tx_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.len() as u64).sum::<u64>() + self.pending.len() as u64
    }

    /// Number of sealed blocks (the light client's header count — the bim
    /// storage-overhead metric).
    pub fn block_count(&self) -> u64 {
        self.headers.len() as u64
    }

    /// The headers a light client would store (boa anchors).
    pub fn headers(&self) -> &[BlockHeader] {
        &self.headers
    }

    /// Validate the header chain links (what a light client does once at
    /// download time, §II-A).
    pub fn validate_header_chain(headers: &[BlockHeader]) -> bool {
        headers.iter().enumerate().all(|(i, h)| {
            h.height == i as u64
                && if i == 0 {
                    h.prev_hash == Digest::ZERO
                } else {
                    h.prev_hash == headers[i - 1].hash()
                }
        })
    }

    /// Produce an SPV proof for global transaction `seq` (must be sealed).
    pub fn prove(&self, seq: u64) -> Result<BimProof, AccumulatorError> {
        let mut remaining = seq;
        for (height, block) in self.blocks.iter().enumerate() {
            if remaining < block.len() as u64 {
                let idx = remaining as usize;
                let path = merkle_prove(block, idx)?;
                return Ok(BimProof { height: height as u64, tx_index: idx as u32, path });
            }
            remaining -= block.len() as u64;
        }
        Err(AccumulatorError::LeafOutOfRange { index: seq, leaf_count: self.tx_count() })
    }

    /// SPV verification against the light client's stored headers.
    pub fn verify(
        headers: &[BlockHeader],
        leaf: &Digest,
        proof: &BimProof,
    ) -> Result<(), AccumulatorError> {
        let header = headers.get(proof.height as usize).ok_or(
            AccumulatorError::BlockOutOfRange {
                height: proof.height,
                block_count: headers.len() as u64,
            },
        )?;
        if merkle_verify(&header.merkle_root, leaf, &proof.path) {
            Ok(())
        } else {
            Err(AccumulatorError::ProofMismatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerdb_crypto::hash_leaf;

    fn chain(n: u64, block_size: usize) -> (BimChain, Vec<Digest>) {
        let mut c = BimChain::new(block_size);
        let txs: Vec<Digest> = (0..n).map(|i| hash_leaf(&i.to_be_bytes())).collect();
        for t in &txs {
            c.append(*t);
        }
        c.seal_block();
        (c, txs)
    }

    #[test]
    fn prove_verify_across_blocks() {
        let (c, txs) = chain(100, 16);
        for (i, t) in txs.iter().enumerate() {
            let p = c.prove(i as u64).unwrap();
            BimChain::verify(c.headers(), t, &p).unwrap();
        }
    }

    #[test]
    fn header_chain_links() {
        let (c, _) = chain(64, 8);
        assert_eq!(c.block_count(), 8);
        assert!(BimChain::validate_header_chain(c.headers()));
    }

    #[test]
    fn broken_link_detected() {
        let (c, _) = chain(64, 8);
        let mut headers = c.headers().to_vec();
        headers[3].merkle_root = hash_leaf(b"tampered");
        assert!(!BimChain::validate_header_chain(&headers));
    }

    #[test]
    fn partial_final_block() {
        let (c, txs) = chain(10, 8);
        assert_eq!(c.block_count(), 2);
        let p = c.prove(9).unwrap();
        BimChain::verify(c.headers(), &txs[9], &p).unwrap();
    }

    #[test]
    fn storage_overhead_scales_with_blocks() {
        let (small_blocks, _) = chain(1024, 4);
        let (large_blocks, _) = chain(1024, 256);
        assert!(small_blocks.block_count() > large_blocks.block_count());
    }

    #[test]
    fn wrong_tx_rejected() {
        let (c, _) = chain(32, 8);
        let p = c.prove(5).unwrap();
        assert!(BimChain::verify(c.headers(), &hash_leaf(b"forged"), &p).is_err());
    }

    #[test]
    fn unsealed_tx_not_provable() {
        let mut c = BimChain::new(8);
        c.append(hash_leaf(b"t"));
        assert!(c.prove(0).is_err());
    }
}
