//! A std-only work-stealing worker pool for the append/proof pipeline.
//!
//! The write path of a verifiable ledger is CPU-bound in three places —
//! admission ECDSA, journal digesting, and subtree hashing at seal time
//! — and all three decompose into independent units whose *results* are
//! order-insensitive (digests are pure functions of their inputs). This
//! pool gives the rest of the workspace one primitive for all of them:
//!
//! * [`Pool::scope`] — structured fork/join over borrowed data: every
//!   task spawned inside the scope completes before `scope` returns,
//!   even when the scope body or a task panics;
//! * [`Pool::map`] / [`Pool::try_map`] — deterministic parallel map:
//!   results land by index, so output order never depends on execution
//!   order, and `try_map` converts a per-item panic into a typed
//!   [`TaskPanic`] instead of poisoning the batch;
//! * helping joins — a thread waiting on its scope *executes queued
//!   tasks* instead of sleeping, so nested scopes (a seal fan-out whose
//!   legs fan out again inside the tree crates) cannot deadlock even on
//!   a single-worker pool.
//!
//! Tasks are pushed round-robin across per-worker queues and idle
//! workers steal from their siblings, so one long task (a 256-leaf
//! subtree rehash) does not strand the short ones queued behind it.
//!
//! Telemetry: `ledger_pool_tasks_total`, `ledger_pool_queue_depth`,
//! `ledger_pool_panics_total`, `ledger_pool_workers`.

use ledgerdb_telemetry::{Counter, Gauge, Registry};
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A task panicked inside [`Pool::try_map`]; carries the panic message
/// so the failure is attributable per item instead of batch-wide.
#[derive(Debug, Clone)]
pub struct TaskPanic {
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Ignore lock poisoning: every task runs under `catch_unwind`, so a
/// panicking task never leaves shared pool state torn.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Inner {
    /// One queue per worker; pushes rotate, idle workers steal.
    queues: Vec<Mutex<VecDeque<Task>>>,
    push_cursor: AtomicUsize,
    /// Paired with `wake`. A pusher notifies under this lock and a
    /// worker re-checks the queues under it before sleeping, so a push
    /// can never slip between the check and the wait (no lost wakeup).
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    tasks_total: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    panics_total: Arc<Counter>,
}

impl Inner {
    fn push(&self, task: Task) {
        let i = self.push_cursor.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        lock(&self.queues[i]).push_back(task);
        self.queue_depth.add(1);
        let _guard = lock(&self.sleep);
        self.wake.notify_one();
    }

    /// Pop from `start`'s own queue, else steal from a sibling.
    fn try_pop(&self, start: usize) -> Option<Task> {
        let n = self.queues.len();
        for k in 0..n {
            if let Some(task) = lock(&self.queues[(start + k) % n]).pop_front() {
                self.queue_depth.add(-1);
                return Some(task);
            }
        }
        None
    }

    fn has_queued(&self) -> bool {
        self.queues.iter().any(|q| !lock(q).is_empty())
    }

    /// Execute one task; a panic is contained here so the worker thread
    /// survives (scope-spawned tasks additionally record their payload
    /// for propagation to the scope owner).
    fn run(&self, task: Task) {
        self.tasks_total.inc();
        if catch_unwind(AssertUnwindSafe(task)).is_err() {
            self.panics_total.inc();
        }
    }
}

fn worker_loop(inner: Arc<Inner>, me: usize) {
    loop {
        if let Some(task) = inner.try_pop(me) {
            inner.run(task);
            continue;
        }
        let guard = lock(&inner.sleep);
        // Drain-then-exit: queued work outranks the shutdown flag.
        if inner.shutdown.load(Ordering::Acquire) {
            if inner.has_queued() {
                continue;
            }
            return;
        }
        if inner.has_queued() {
            continue; // a push raced our empty-queue check
        }
        // The timeout is a belt-and-braces backstop only; the
        // notify-under-lock protocol above makes wakeups reliable.
        let _ = inner.wake.wait_timeout(guard, Duration::from_millis(50));
    }
}

/// Fork/join state for one [`Pool::scope`] call.
struct ScopeState {
    pending: AtomicUsize,
    done: Mutex<()>,
    completed: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Handle for spawning borrowed tasks inside [`Pool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Queue a task that may borrow from the enclosing scope. The first
    /// panicking task's payload is re-raised by `scope` after the join.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let state = self.state.clone();
        let panics = self.pool.inner.panics_total.clone();
        // Before the push, so an instantly-finishing task can't race the
        // join to a false zero.
        state.pending.fetch_add(1, Ordering::AcqRel);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                panics.inc();
                let mut slot = lock(&state.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = lock(&state.done);
                state.completed.notify_all();
            }
        });
        // SAFETY: `Pool::scope` joins every spawned task before it
        // returns — including when the scope body panics (the join
        // guard's Drop waits) — so no borrow captured by `f` can outlive
        // its referent despite the erased lifetime.
        let task: Task = unsafe { std::mem::transmute(task) };
        self.pool.inner.push(task);
    }
}

/// Waits for the scope's tasks on all exits from `scope`, panicking or
/// not — the lifetime-erasure safety argument hangs on this Drop.
struct JoinGuard<'a> {
    pool: &'a Pool,
    state: &'a ScopeState,
}

impl Drop for JoinGuard<'_> {
    fn drop(&mut self) {
        self.pool.wait_scope(self.state);
    }
}

/// A fixed-size worker pool. Cheap to share (`Arc<Pool>`); dropping the
/// last handle drains the queues and joins the workers.
pub struct Pool {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("workers", &self.workers()).finish_non_exhaustive()
    }
}

impl Pool {
    /// Spawn `workers` (min 1) threads, recording into the process-global
    /// telemetry registry.
    pub fn new(workers: usize) -> Arc<Pool> {
        Self::with_registry(workers, Registry::global())
    }

    /// As [`Pool::new`] with an explicit registry (test isolation).
    pub fn with_registry(workers: usize, registry: &Registry) -> Arc<Pool> {
        let workers = workers.max(1);
        registry.gauge("ledger_pool_workers").set(workers as i64);
        let inner = Arc::new(Inner {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            push_cursor: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks_total: registry.counter("ledger_pool_tasks_total"),
            queue_depth: registry.gauge("ledger_pool_queue_depth"),
            panics_total: registry.counter("ledger_pool_panics_total"),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("ledger-pool-{i}"))
                    .spawn(move || worker_loop(inner, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(Pool { inner, handles: Mutex::new(handles) })
    }

    /// The process-wide pool, sized from `available_parallelism`.
    pub fn global() -> &'static Arc<Pool> {
        static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            Pool::new(n)
        })
    }

    /// Worker-thread count (the scope/map caller helps on top of this).
    pub fn workers(&self) -> usize {
        self.inner.queues.len()
    }

    /// Fire-and-forget execution of an owned task.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.inner.push(Box::new(f));
    }

    /// Structured fork/join: run `f` with a [`Scope`] whose spawned
    /// tasks may borrow anything alive across this call; all of them
    /// complete before `scope` returns. The calling thread *helps* —
    /// it executes queued tasks while waiting — so scopes nest without
    /// deadlock on any pool size. The first task panic is re-raised
    /// here after the join.
    pub fn scope<'env, R>(&self, f: impl for<'p> FnOnce(&Scope<'p, 'env>) -> R) -> R {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            done: Mutex::new(()),
            completed: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope { pool: self, state: state.clone(), _env: PhantomData };
        let out = {
            let _join = JoinGuard { pool: self, state: &state };
            f(&scope)
        };
        if let Some(payload) = lock(&state.panic).take() {
            resume_unwind(payload);
        }
        out
    }

    /// Helping join: execute queued tasks (any scope's — that's what
    /// unblocks nested fan-outs) until this scope's pending count hits
    /// zero.
    fn wait_scope(&self, state: &ScopeState) {
        while state.pending.load(Ordering::Acquire) > 0 {
            if let Some(task) = self.inner.try_pop(0) {
                self.inner.run(task);
                continue;
            }
            let guard = lock(&state.done);
            if state.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            // Short timeout: our remaining tasks may be *running* on
            // workers (nothing to steal), or new stealable work may
            // appear that the completion condvar won't announce.
            let _ = state.completed.wait_timeout(guard, Duration::from_millis(1));
        }
    }

    /// Deterministic parallel map: `out[i] = f(i, &items[i])`, with the
    /// caller participating. Output order is positional, never
    /// scheduling-dependent. A panicking item panics the whole map
    /// (use [`Pool::try_map`] for per-item containment).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_map(items, f)
            .into_iter()
            .map(|r| r.unwrap_or_else(|p| panic!("{p}")))
            .collect()
    }

    /// As [`Pool::map`], but a panicking item yields `Err(TaskPanic)`
    /// in its slot while every other item completes normally.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let slots: Vec<Mutex<Option<Result<R, TaskPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let work = |_worker: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let out = catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(|payload| {
                self.inner.panics_total.inc();
                TaskPanic { message: panic_message(payload.as_ref()) }
            });
            *lock(&slots[i]) = Some(out);
        };
        // The caller claims items too, so a 1-worker pool still makes
        // progress while its worker is busy elsewhere.
        let helpers = self.workers().min(n.saturating_sub(1));
        self.scope(|s| {
            let work = &work;
            for w in 0..helpers {
                s.spawn(move || work(w));
            }
            work(helpers);
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every map index is claimed exactly once")
            })
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _guard = lock(&self.inner.sleep);
            self.inner.wake.notify_all();
        }
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_borrowed_tasks_to_completion() {
        let pool = Pool::with_registry(3, &Registry::new());
        let mut results = vec![0u64; 8];
        pool.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = (i as u64 + 1) * 10);
            }
        });
        assert_eq!(results, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn map_is_deterministic_and_positional() {
        let pool = Pool::with_registry(4, &Registry::new());
        let items: Vec<u64> = (0..257).collect();
        let out = pool.map(&items, |i, v| {
            assert_eq!(i as u64, *v);
            v * v
        });
        let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
        assert_eq!(out, expected);
        // Repeat runs agree byte-for-byte regardless of scheduling.
        assert_eq!(pool.map(&items, |_, v| v * v), expected);
    }

    #[test]
    fn try_map_contains_per_item_panics() {
        let pool = Pool::with_registry(2, &Registry::new());
        let items: Vec<u64> = (0..16).collect();
        let out = pool.try_map(&items, |_, v| {
            if *v == 7 {
                panic!("item seven is cursed");
            }
            *v + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let e = r.as_ref().unwrap_err();
                assert!(e.message.contains("cursed"), "{e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64 + 1);
            }
        }
        // The pool is not wedged: later work still runs.
        assert_eq!(pool.map(&items, |_, v| *v), items);
    }

    #[test]
    fn scope_task_panic_propagates_after_join() {
        let pool = Pool::with_registry(2, &Registry::new());
        let finished = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..8 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "the task panic must reach the scope owner");
        // Join-before-unwind: every sibling completed despite the panic.
        assert_eq!(finished.load(Ordering::SeqCst), 8);
        assert_eq!(pool.map(&[1u64, 2, 3], |_, v| *v), vec![1, 2, 3]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock_even_single_worker() {
        let pool = Pool::with_registry(1, &Registry::new());
        let total = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..3 {
                let pool = &pool;
                let total = &total;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn torture_panicking_tasks_do_not_wedge_the_pool() {
        let registry = Registry::new();
        let pool = Pool::with_registry(3, &registry);
        let ok = AtomicU64::new(0);
        for round in 0..20u64 {
            // Swallow the propagated panic; the pool itself must stay up.
            let scoped = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for i in 0..10u64 {
                        let ok = &ok;
                        s.spawn(move || {
                            if (round + i) % 3 == 0 {
                                panic!("round {round} item {i}");
                            }
                            ok.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }));
            assert!(scoped.is_err(), "every round has a panicking item");
        }
        let expected: u64 = (0..20u64)
            .map(|round| (0..10u64).filter(|i| (round + i) % 3 != 0).count() as u64)
            .sum();
        assert_eq!(ok.load(Ordering::SeqCst), expected);
        let out = pool.map(&(0..100u64).collect::<Vec<_>>(), |_, v| v + 1);
        assert_eq!(out.len(), 100);
        assert!(pool.inner.panics_total.get() > 0);
        assert_eq!(pool.inner.queue_depth.get(), 0, "no task left behind");
    }

    #[test]
    fn telemetry_counts_tasks_and_settles_queue_depth() {
        let registry = Registry::new();
        let pool = Pool::with_registry(2, &registry);
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {});
            }
        });
        assert!(pool.inner.tasks_total.get() >= 1, "helping may run some tasks inline");
        assert_eq!(pool.inner.queue_depth.get(), 0);
        assert_eq!(registry.gauge("ledger_pool_workers").get(), 2);
    }

    #[test]
    fn spawn_fire_and_forget_runs() {
        let pool = Pool::with_registry(2, &Registry::new());
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = flag.clone();
        pool.spawn(move || {
            f2.store(7, Ordering::SeqCst);
        });
        for _ in 0..1000 {
            if flag.load(Ordering::SeqCst) == 7 {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("spawned task never ran");
    }
}
