//! A QLDB-style document ledger (§VI-D, Table II).
//!
//! Structure mirrors what QLDB discloses: documents are revisions in a
//! single journal committed to one global Merkle accumulator (*tim*).
//! `get_revision` verification fetches a proof to the *current* ledger
//! digest — `O(log n)` hashes plus a digest API call and a proof API call.
//! There is no native lineage: the paper's workaround schema
//! `[key, data, prehash, sig]` chains revisions manually, and verifying an
//! m-version lineage costs m independent `get_revision` round trips —
//! exactly the `155.9 s` blow-up Table II shows at 100 versions.

use crate::network::{measured, NetworkProfile, SimLatency};
use ledgerdb_accumulator::tim::{TimAccumulator, TimProof};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::ecdsa::Signature;
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_crypto::sha256::{sha256, Sha256};
use std::collections::HashMap;

/// QLDB simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct QldbConfig {
    pub network: NetworkProfile,
    /// Service-side overhead per verification API call. QLDB's
    /// GetDigest/GetRevision path is measured at ~1.5 s in the paper; the
    /// bulk is service-side journal traversal we model as a constant.
    pub verify_service_us: u64,
}

impl Default for QldbConfig {
    fn default() -> Self {
        QldbConfig { network: NetworkProfile::cloud(), verify_service_us: 1_500_000 }
    }
}

/// One stored document revision.
#[derive(Clone, Debug)]
pub struct Revision {
    pub key: String,
    pub data: Vec<u8>,
    /// SHA-256 of the previous revision's digest (lineage chaining).
    pub prehash: Digest,
    /// ECDSA signature over this revision's digest.
    pub sig: Signature,
    /// Sequence in the global journal.
    pub seq: u64,
}

impl Revision {
    /// The revision digest committed to the accumulator.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"qldbsim.revision.v1");
        h.update(&(self.key.len() as u64).to_be_bytes());
        h.update(self.key.as_bytes());
        h.update(&sha256(&self.data).0);
        h.update(&self.prehash.0);
        h.update(&self.sig.to_bytes());
        Digest(h.finalize())
    }
}

/// The QLDB-style ledger simulator.
pub struct QldbSim {
    config: QldbConfig,
    accumulator: TimAccumulator,
    revisions: Vec<Revision>,
    /// key → revision sequence numbers, oldest first.
    index: HashMap<String, Vec<u64>>,
    signer: KeyPair,
}

impl QldbSim {
    pub fn new(config: QldbConfig) -> Self {
        QldbSim {
            config,
            accumulator: TimAccumulator::new(),
            revisions: Vec::new(),
            index: HashMap::new(),
            signer: KeyPair::from_seed(b"qldb-app-signer"),
        }
    }

    /// Total revisions in the journal.
    pub fn len(&self) -> u64 {
        self.revisions.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.revisions.is_empty()
    }

    /// Insert a document revision. Returns the sequence number and the
    /// end-to-end simulated latency (one API round trip + commit work).
    pub fn insert(&mut self, key: &str, data: Vec<u8>) -> (u64, SimLatency) {
        let net = self.config.network.round_trip(data.len());
        let ((), compute) = measured(|| {
            let prehash = self
                .index
                .get(key)
                .and_then(|seqs| seqs.last())
                .map(|&s| self.revisions[s as usize].digest())
                .unwrap_or(Digest::ZERO);
            let seq = self.revisions.len() as u64;
            let body_digest = {
                let mut h = Sha256::new();
                h.update(key.as_bytes());
                h.update(&data);
                h.update(&prehash.0);
                Digest(h.finalize())
            };
            let sig = self.signer.sign(&body_digest);
            let rev = Revision { key: key.to_string(), data, prehash, sig, seq };
            self.accumulator.append(rev.digest());
            self.index.entry(key.to_string()).or_default().push(seq);
            self.revisions.push(rev);
        });
        (self.revisions.len() as u64 - 1, net.then(compute))
    }

    /// Retrieve the latest revision of `key`.
    pub fn retrieve(&self, key: &str) -> (Option<&Revision>, SimLatency) {
        let rev = self
            .index
            .get(key)
            .and_then(|seqs| seqs.last())
            .map(|&s| &self.revisions[s as usize]);
        let bytes = rev.map(|r| r.data.len()).unwrap_or(0);
        (rev, self.config.network.round_trip(bytes))
    }

    /// All revision seqs of a key, oldest first.
    pub fn revision_seqs(&self, key: &str) -> &[u64] {
        self.index.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// GetRevision-style verification of one revision: digest API call +
    /// proof API call + service-side traversal + client-side proof check.
    pub fn verify_revision(&self, seq: u64) -> (Result<(), String>, SimLatency) {
        let mut latency = self.config.network.round_trip(32); // GetDigest
        latency.add(self.config.verify_service_us); // service traversal
        latency = latency.then(self.config.network.round_trip(32 * 64)); // proof fetch
        let root = self.accumulator.root();
        let (result, compute) = measured(|| {
            let rev = self
                .revisions
                .get(seq as usize)
                .ok_or_else(|| format!("unknown revision {seq}"))?;
            let proof: TimProof = self
                .accumulator
                .prove(seq)
                .map_err(|e| format!("proof generation: {e}"))?;
            TimAccumulator::verify(&root, &rev.digest(), &proof)
                .map_err(|e| format!("proof verification: {e}"))
        });
        (result, latency.then(compute))
    }

    /// Lineage verification of all m versions of `key`: QLDB has no
    /// native lineage, so this is m sequential `verify_revision` calls
    /// plus prehash-chain and signature checks.
    pub fn verify_lineage(&self, key: &str) -> (Result<u64, String>, SimLatency) {
        let seqs = match self.index.get(key) {
            Some(s) if !s.is_empty() => s.clone(),
            _ => return (Err(format!("unknown key {key}")), SimLatency::ZERO),
        };
        let mut total = SimLatency::ZERO;
        let mut prev = Digest::ZERO;
        for &seq in &seqs {
            let (result, lat) = self.verify_revision(seq);
            total = total.then(lat);
            if let Err(e) = result {
                return (Err(e), total);
            }
            let rev = &self.revisions[seq as usize];
            if rev.prehash != prev {
                return (Err(format!("prehash chain broken at seq {seq}")), total);
            }
            prev = rev.digest();
        }
        (Ok(seqs.len() as u64), total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> QldbSim {
        QldbSim::new(QldbConfig::default())
    }

    #[test]
    fn insert_retrieve_round_trip() {
        let mut q = sim();
        let (seq, lat) = q.insert("doc-1", vec![7u8; 1024]);
        assert_eq!(seq, 0);
        assert!(lat.micros() >= 25_000);
        let (rev, _) = q.retrieve("doc-1");
        assert_eq!(rev.unwrap().data.len(), 1024);
    }

    #[test]
    fn verify_revision_passes() {
        let mut q = sim();
        for i in 0..20u64 {
            q.insert(&format!("k{i}"), vec![0u8; 64]);
        }
        let (result, lat) = q.verify_revision(5);
        result.unwrap();
        // Dominated by the modeled service traversal (~1.5 s).
        assert!(lat.seconds() > 1.0);
    }

    #[test]
    fn lineage_cost_scales_with_versions() {
        let mut q = sim();
        for i in 0..5u64 {
            q.insert("asset", vec![i as u8; 128]);
        }
        let (count, lat5) = q.verify_lineage("asset");
        assert_eq!(count.unwrap(), 5);
        for i in 0..5u64 {
            q.insert("asset", vec![i as u8; 128]);
        }
        let (count, lat10) = q.verify_lineage("asset");
        assert_eq!(count.unwrap(), 10);
        // Table II's shape: cost grows ~linearly in the version count.
        assert!(lat10.micros() > lat5.micros() * 3 / 2);
    }

    #[test]
    fn prehash_chain_links_revisions() {
        let mut q = sim();
        q.insert("a", b"v1".to_vec());
        q.insert("a", b"v2".to_vec());
        let seqs = q.revision_seqs("a").to_vec();
        let first = q.revisions[seqs[0] as usize].digest();
        assert_eq!(q.revisions[seqs[1] as usize].prehash, first);
    }

    #[test]
    fn unknown_key_and_revision_error() {
        let q = sim();
        assert!(q.verify_lineage("nope").0.is_err());
        assert!(q.verify_revision(0).0.is_err());
    }
}
