//! Deterministic latency model for cloud and consensus experiments.
//!
//! Instead of sleeping, simulated operations *account* latency: every
//! network interaction adds a deterministic cost to a [`SimLatency`]
//! accumulator, while compute (hashing, signatures, proof checks) is done
//! for real. Experiments therefore report `modeled network + measured
//! compute`, reproducible on any machine.

/// Accumulated latency of one simulated operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimLatency {
    micros: u64,
}

impl SimLatency {
    pub const ZERO: SimLatency = SimLatency { micros: 0 };

    pub fn from_micros(us: u64) -> Self {
        SimLatency { micros: us }
    }

    pub fn micros(self) -> u64 {
        self.micros
    }

    pub fn millis(self) -> f64 {
        self.micros as f64 / 1_000.0
    }

    pub fn seconds(self) -> f64 {
        self.micros as f64 / 1_000_000.0
    }

    /// Add a cost component.
    pub fn add(&mut self, us: u64) {
        self.micros += us;
    }

    /// Combine with another latency (sequential composition).
    pub fn then(self, other: SimLatency) -> SimLatency {
        SimLatency { micros: self.micros + other.micros }
    }

    /// Parallel composition: the slower branch dominates.
    pub fn parallel(self, other: SimLatency) -> SimLatency {
        SimLatency { micros: self.micros.max(other.micros) }
    }
}

/// Network/service latency constants for one deployment.
#[derive(Clone, Copy, Debug)]
pub struct NetworkProfile {
    /// One client↔service round trip (same-region cloud API).
    pub api_rtt_us: u64,
    /// Additional transfer cost per KiB of payload.
    pub per_kib_us: u64,
}

impl NetworkProfile {
    /// Same-region cloud API profile (the paper's QLDB/LedgerDB service
    /// deployments): tens of milliseconds per call.
    pub fn cloud() -> Self {
        NetworkProfile { api_rtt_us: 25_000, per_kib_us: 80 }
    }

    /// In-cluster 25 Gb Ethernet profile (the paper's Fabric deployment).
    pub fn lan() -> Self {
        NetworkProfile { api_rtt_us: 500, per_kib_us: 3 }
    }

    /// In-cluster *service* profile: one hop through a ledger service's
    /// proxy/server stack (the paper's ~2.5 ms end-to-end LedgerDB
    /// verification latency is dominated by this, Fig 10b).
    pub fn cluster_service() -> Self {
        NetworkProfile { api_rtt_us: 2_000, per_kib_us: 3 }
    }

    /// Latency of one round trip carrying `payload_bytes`.
    pub fn round_trip(&self, payload_bytes: usize) -> SimLatency {
        let kib = payload_bytes.div_ceil(1024) as u64;
        SimLatency::from_micros(self.api_rtt_us + kib * self.per_kib_us)
    }
}

/// Measure the wall-clock cost of a compute closure as a [`SimLatency`].
pub fn measured<T>(f: impl FnOnce() -> T) -> (T, SimLatency) {
    let start = std::time::Instant::now();
    let out = f();
    (out, SimLatency::from_micros(start.elapsed().as_micros() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_composition() {
        let a = SimLatency::from_micros(100);
        let b = SimLatency::from_micros(250);
        assert_eq!(a.then(b).micros(), 350);
        assert_eq!(a.parallel(b).micros(), 250);
        assert_eq!(b.millis(), 0.25);
    }

    #[test]
    fn round_trip_scales_with_payload() {
        let p = NetworkProfile::cloud();
        let small = p.round_trip(256);
        let large = p.round_trip(256 * 1024);
        assert!(large > small);
        assert_eq!(small.micros(), 25_000 + 80);
    }

    #[test]
    fn lan_faster_than_cloud() {
        assert!(NetworkProfile::lan().round_trip(1024) < NetworkProfile::cloud().round_trip(1024));
    }

    #[test]
    fn measured_captures_compute() {
        let (v, lat) = measured(|| (0..10_000u64).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(lat.micros() < 1_000_000);
    }
}
