//! Comparator systems for the application-level evaluation (§VI-D).
//!
//! The paper compares LedgerDB against Amazon QLDB (a closed cloud
//! service) and Hyperledger Fabric 2.2 (a permissioned blockchain). Both
//! are rebuilt here as *structural simulators*: the verification data
//! structures and signature flows are real (our own crypto and
//! accumulators), while network and consensus delays come from a
//! deterministic latency model calibrated to the paper's measured numbers
//! (see DESIGN.md §2 for the substitution rationale).
//!
//! * [`network`] — the latency model: cloud API round-trips, bandwidth
//!   cost per KB, consensus batching delays.
//! * [`qldb`] — document ledger over a single global Merkle accumulator
//!   (*tim*); `get_revision` verification walks to the global root, so
//!   cost grows with ledger size; lineage requires one verification per
//!   version (the [key, data, prehash, sig] schema of §VI-D).
//! * [`fabric`] — endorse → order → validate pipeline with real endorser
//!   signatures and Kafka-style batching delay; `GetState`-based
//!   verification gathers and checks all peer signatures.

pub mod fabric;
pub mod network;
pub mod qldb;

pub use fabric::{FabricConfig, FabricSim};
pub use network::{NetworkProfile, SimLatency};
pub use qldb::{QldbConfig, QldbSim};
