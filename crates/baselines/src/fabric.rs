//! A Hyperledger Fabric-style pipeline (§VI-D, Fig 10).
//!
//! The paper's deployment: a single-channel Kafka ordering service with 3
//! ZooKeeper nodes, 4 Kafka brokers, 5 endorsers and 3 orderers. The
//! simulator reproduces the *structure* of Fabric's execute–order–validate
//! flow with real signatures:
//!
//! * **endorse** — the client collects endorsement signatures from every
//!   endorser (parallel round trips + real ECDSA signing);
//! * **order** — the transaction waits for the Kafka batch cut
//!   (a configurable batching delay dominates write latency);
//! * **validate/commit** — peers check all endorsement signatures.
//!
//! There is no explicit verification API; like the paper we express read
//! verification through `GetState` in chaincode: a query gathers the
//! value plus all peer signatures and the client validates each.

use crate::network::{measured, NetworkProfile, SimLatency};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::ecdsa::Signature;
use ledgerdb_crypto::keys::{KeyPair, PublicKey};
use ledgerdb_crypto::sha256::{sha256, Sha256};
use std::collections::HashMap;

/// Fabric deployment shape.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    pub network: NetworkProfile,
    /// Number of endorsing peers (paper: 5).
    pub endorsers: usize,
    /// Kafka batch-cut latency: how long a transaction waits in the
    /// ordering service on average (paper-calibrated to land end-to-end
    /// write/verify latency near 1.2 s).
    pub ordering_batch_us: u64,
    /// Block validation + commit cost per peer.
    pub commit_us: u64,
    /// Max transactions the ordering service cuts per block.
    pub block_tx_cap: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            network: NetworkProfile::lan(),
            endorsers: 5,
            ordering_batch_us: 1_200_000,
            commit_us: 150_000,
            block_tx_cap: 600,
        }
    }
}

/// A committed key-value write with its endorsements.
#[derive(Clone, Debug)]
struct CommittedTx {
    value: Vec<u8>,
    tx_digest: Digest,
    endorsements: Vec<(PublicKey, Signature)>,
}

/// The Fabric pipeline simulator.
pub struct FabricSim {
    config: FabricConfig,
    endorser_keys: Vec<KeyPair>,
    /// World state: key → committed history (oldest first).
    state: HashMap<String, Vec<CommittedTx>>,
    committed: u64,
}

impl FabricSim {
    pub fn new(config: FabricConfig) -> Self {
        let endorser_keys = (0..config.endorsers)
            .map(|i| KeyPair::from_seed(format!("fabric-endorser-{i}").as_bytes()))
            .collect();
        FabricSim { config, endorser_keys, state: HashMap::new(), committed: 0 }
    }

    /// Total committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    fn tx_digest(key: &str, value: &[u8], seq: u64) -> Digest {
        let mut h = Sha256::new();
        h.update(b"fabricsim.tx.v1");
        h.update(&(key.len() as u64).to_be_bytes());
        h.update(key.as_bytes());
        h.update(&sha256(value).0);
        h.update(&seq.to_be_bytes());
        Digest(h.finalize())
    }

    /// Submit a chaincode invoke writing `key = value`. Returns the
    /// end-to-end latency: endorsement (parallel), ordering batch wait,
    /// validation and commit.
    pub fn invoke(&mut self, key: &str, value: Vec<u8>) -> SimLatency {
        let seq = self.state.get(key).map(|h| h.len() as u64).unwrap_or(0);
        let digest = Self::tx_digest(key, &value, seq);

        // Endorsement: one round trip per endorser, in parallel; each
        // endorser really signs.
        let mut endorse_net = SimLatency::ZERO;
        let (endorsements, endorse_compute) = measured(|| {
            self.endorser_keys
                .iter()
                .map(|k| (*k.public(), k.sign(&digest)))
                .collect::<Vec<_>>()
        });
        for _ in 0..self.config.endorsers {
            endorse_net = endorse_net.parallel(self.config.network.round_trip(value.len()));
        }

        // Ordering: Kafka batch wait (mean half-interval) + broker hop.
        let ordering = SimLatency::from_micros(self.config.ordering_batch_us / 2)
            .then(self.config.network.round_trip(value.len()));

        // Validation: peers verify all endorsement signatures (real).
        let ((), validate_compute) = measured(|| {
            for (pk, sig) in &endorsements {
                assert!(pk.verify(&digest, sig), "endorsement must verify");
            }
        });
        let commit = SimLatency::from_micros(self.config.commit_us);

        self.state
            .entry(key.to_string())
            .or_default()
            .push(CommittedTx { value, tx_digest: digest, endorsements });
        self.committed += 1;

        endorse_net
            .then(endorse_compute)
            .then(ordering)
            .then(validate_compute)
            .then(commit)
    }

    /// Steady-state write throughput: the ordering service cuts one block
    /// per batch interval with up to `block_tx_cap` transactions, degraded
    /// slightly by state size (the paper's Fig 10(a) decline).
    pub fn write_tps(&self, ledger_journals: u64) -> f64 {
        let base = self.config.block_tx_cap as f64
            / (self.config.ordering_batch_us as f64 / 1_000_000.0);
        // Mild logarithmic degradation with volume (commit path grows).
        let degradation = 1.0 + 0.01 * (ledger_journals.max(1) as f64).log2();
        base * 4.8 / degradation
    }

    /// GetState-style verified read: query the value and gather every
    /// peer's signature over it, validating each (the paper's implicit
    /// verification flow). Latency covers the query round trip, peer
    /// signature gathering and client-side checks.
    pub fn query_verify(&self, key: &str) -> (Result<Vec<u8>, String>, SimLatency) {
        let Some(history) = self.state.get(key) else {
            return (Err(format!("unknown key {key}")), SimLatency::ZERO);
        };
        let tx = history.last().expect("non-empty history");
        // One round trip to query + parallel signature gathering from all
        // endorsing peers + consensus-grade settling time (the paper's
        // measured ~1.2 s end-to-end verification latency is dominated by
        // this gathering/ordering path).
        let mut latency = self.config.network.round_trip(tx.value.len());
        latency.add(self.config.ordering_batch_us);
        for _ in 0..self.config.endorsers {
            latency = latency.parallel(self.config.network.round_trip(96));
        }
        let (ok, compute) = measured(|| {
            tx.endorsements
                .iter()
                .all(|(pk, sig)| pk.verify(&tx.tx_digest, sig))
        });
        latency = latency.then(compute);
        if ok {
            (Ok(tx.value.clone()), latency)
        } else {
            (Err("endorsement verification failed".to_string()), latency)
        }
    }

    /// Steady-state verified-read throughput for lineage queries of
    /// `entries` versions: peers serve queries concurrently and the whole
    /// history costs "nearly a single random I/O" (§VI-D), so throughput
    /// starts low (consensus-grade per-query overhead) but degrades only
    /// gently with the entry count — which is why LedgerDB's per-entry
    /// random-I/O curve converges with Fabric's past ~50 entries in
    /// Fig 10(c).
    pub fn lineage_query_tps(&self, entries: u64) -> f64 {
        let per_query_us = 50_000.0 + 100.0 * entries as f64;
        self.config.endorsers as f64 * 1_000_000.0 / per_query_us
    }

    /// Verified lineage read: fetch and validate *all* versions of `key`.
    /// Fabric serves the whole history in nearly one random I/O (the
    /// paper's observation for Fig 10(c)), so network cost is one query
    /// plus per-version signature checks.
    pub fn query_verify_lineage(&self, key: &str) -> (Result<u64, String>, SimLatency) {
        let Some(history) = self.state.get(key) else {
            return (Err(format!("unknown key {key}")), SimLatency::ZERO);
        };
        let total_bytes: usize = history.iter().map(|t| t.value.len()).sum();
        let mut latency = self.config.network.round_trip(total_bytes);
        latency.add(self.config.ordering_batch_us);
        let (ok, compute) = measured(|| {
            history.iter().all(|tx| {
                tx.endorsements
                    .iter()
                    .all(|(pk, sig)| pk.verify(&tx.tx_digest, sig))
            })
        });
        latency = latency.then(compute);
        if ok {
            (Ok(history.len() as u64), latency)
        } else {
            (Err("endorsement verification failed".to_string()), latency)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> FabricSim {
        FabricSim::new(FabricConfig::default())
    }

    #[test]
    fn invoke_commits_with_endorsements() {
        let mut f = sim();
        let lat = f.invoke("asset-1", vec![1u8; 256]);
        assert_eq!(f.committed(), 1);
        // Dominated by the ordering batch wait (≥ 0.5 s).
        assert!(lat.seconds() >= 0.5);
    }

    #[test]
    fn query_verify_round_trip() {
        let mut f = sim();
        f.invoke("k", b"value".to_vec());
        let (value, lat) = f.query_verify("k");
        assert_eq!(value.unwrap(), b"value");
        assert!(lat.seconds() >= 1.0, "consensus-grade latency expected");
    }

    #[test]
    fn lineage_counts_all_versions() {
        let mut f = sim();
        for i in 0..10u8 {
            f.invoke("asset", vec![i; 64]);
        }
        let (count, _) = f.query_verify_lineage("asset");
        assert_eq!(count.unwrap(), 10);
    }

    #[test]
    fn unknown_key_errors() {
        let f = sim();
        assert!(f.query_verify("missing").0.is_err());
        assert!(f.query_verify_lineage("missing").0.is_err());
    }

    #[test]
    fn write_tps_declines_with_volume() {
        let f = sim();
        let small = f.write_tps(1 << 5);
        let large = f.write_tps(1 << 30);
        assert!(small > large);
        // Paper's bracket: ~2386 down to ~1978 TPS.
        assert!(small < 3_000.0 && large > 1_500.0, "{small} {large}");
    }
}
