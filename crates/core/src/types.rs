//! Core ledger data types: journals, blocks, receipts, requests.

use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::ecdsa::Signature;
use ledgerdb_crypto::keys::{KeyPair, PublicKey};
use ledgerdb_crypto::multisig::MultiSignature;
use ledgerdb_crypto::sha256::Sha256;
use ledgerdb_timesvc::clock::Timestamp;
use ledgerdb_timesvc::tledger::NotaryReceipt;

/// Whether verification runs server-side (trusted LSP) or client-side
/// (self-contained proofs) — §II-C's two verification manners.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerifyLevel {
    Server,
    Client,
}

/// The kind of a journal entry.
///
/// Mutation variants are much larger than `Normal`, but journals are
/// heap-stored once and never moved in bulk, so boxing would only add
/// indirection on the audit path.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum JournalKind {
    /// An ordinary client transaction.
    Normal,
    /// A time journal: a T-Ledger notary receipt anchored back (π_t).
    Time(NotaryReceipt),
    /// A purge journal: erases journals `[prev_genesis, purge_to)`.
    Purge { purge_to: u64, approvals: MultiSignature },
    /// An occult journal: hides journal `target`, retaining its hash.
    Occult { target: u64, approvals: MultiSignature },
    /// An occult-by-clue journal: hides every journal recorded under
    /// `clue` at execution time (the paper's "occult by clue is a common
    /// case" for the asynchronous variant, §III-A3).
    OccultClue { clue: String, targets: Vec<u64>, approvals: MultiSignature },
}

impl JournalKind {
    fn tag(&self) -> u8 {
        match self {
            JournalKind::Normal => 0,
            JournalKind::Time(_) => 1,
            JournalKind::Purge { .. } => 2,
            JournalKind::Occult { .. } => 3,
            JournalKind::OccultClue { .. } => 4,
        }
    }
}

/// A journal entry: the server-side record of one transaction.
#[derive(Clone, Debug)]
pub struct Journal {
    /// Unique incremental journal sequence number.
    pub jsn: u64,
    pub kind: JournalKind,
    /// Clues this journal participates in (N-lineage labels).
    pub clues: Vec<String>,
    /// Digest of the payload held in the stream store.
    pub payload_digest: Digest,
    /// The client's request hash (what π_c signs).
    pub request_hash: Digest,
    /// Issuing member's public key (None for system journals).
    pub client_pk: Option<PublicKey>,
    /// The client's signature π_c over `request_hash`.
    pub client_sig: Option<Signature>,
    /// Server-assigned timestamp.
    pub timestamp: Timestamp,
    /// Slot in the payload stream store.
    pub stream_index: u64,
}

impl Journal {
    /// The server-side `tx-hash`: the digest accumulated into the fam tree
    /// and retained verbatim for occulted journals (Protocol 2).
    pub fn tx_hash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.journal.v1");
        h.update(&self.jsn.to_be_bytes());
        h.update(&[self.kind.tag()]);
        h.update(&(self.clues.len() as u32).to_be_bytes());
        for c in &self.clues {
            h.update(&(c.len() as u64).to_be_bytes());
            h.update(c.as_bytes());
        }
        h.update(&self.payload_digest.0);
        h.update(&self.request_hash.0);
        match &self.client_pk {
            Some(pk) => {
                h.update(&[1]);
                h.update(&pk.to_bytes());
            }
            None => h.update(&[0]),
        }
        match &self.client_sig {
            Some(sig) => {
                h.update(&[1]);
                h.update(&sig.to_bytes());
            }
            None => h.update(&[0]),
        }
        h.update(&self.timestamp.0.to_be_bytes());
        Digest(h.finalize())
    }
}

/// Per-block ledger snapshot: the roots a verifier pins (Fig 2's
/// LedgerInfo).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LedgerInfo {
    /// fam journal-accumulator root after the block's last journal.
    pub journal_root: Digest,
    /// CM-Tree1 root (clue accumulator snapshot).
    pub clue_root: Digest,
    /// World-state root.
    pub state_root: Digest,
}

/// A sealed block.
#[derive(Debug)]
pub struct Block {
    pub height: u64,
    /// jsn of the first journal in this block.
    pub first_jsn: u64,
    /// Number of journals in this block.
    pub journal_count: u64,
    pub info: LedgerInfo,
    pub prev_block_hash: Digest,
    pub timestamp: Timestamp,
    /// tx-hashes of the block's journals in order (for replay audits).
    pub tx_hashes: Vec<Digest>,
    /// Memoized [`Block::hash`]. A sealed block is immutable, so the
    /// digest is computed once on first demand — the seal path, the
    /// snapshot publisher and the block feed all read the same cell
    /// instead of re-walking `tx_hashes`.
    pub(crate) cached_hash: std::sync::OnceLock<Digest>,
}

/// Clone resets the memo: the fields are `pub`, so a clone may be
/// mutated (tests do exactly that) and must not inherit a stale digest.
impl Clone for Block {
    fn clone(&self) -> Block {
        Block {
            height: self.height,
            first_jsn: self.first_jsn,
            journal_count: self.journal_count,
            info: self.info,
            prev_block_hash: self.prev_block_hash,
            timestamp: self.timestamp,
            tx_hashes: self.tx_hashes.clone(),
            cached_hash: std::sync::OnceLock::new(),
        }
    }
}

/// Count of full block-header hash computations (cache misses) in this
/// process. Lets tests pin that a chain of N blocks hashes each header
/// exactly once no matter how many paths ask for the digest.
static BLOCK_HASH_COMPUTATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// See [`BLOCK_HASH_COMPUTATIONS`]. Process-global; single-process
/// tests only.
pub fn block_hash_computations() -> u64 {
    BLOCK_HASH_COMPUTATIONS.load(std::sync::atomic::Ordering::Relaxed)
}

impl Block {
    pub(crate) fn new(
        height: u64,
        first_jsn: u64,
        journal_count: u64,
        info: LedgerInfo,
        prev_block_hash: Digest,
        timestamp: Timestamp,
        tx_hashes: Vec<Digest>,
    ) -> Block {
        Block {
            height,
            first_jsn,
            journal_count,
            info,
            prev_block_hash,
            timestamp,
            tx_hashes,
            cached_hash: std::sync::OnceLock::new(),
        }
    }

    /// The block hash linking consecutive blocks (memoized).
    pub fn hash(&self) -> Digest {
        *self.cached_hash.get_or_init(|| self.compute_hash())
    }

    fn compute_hash(&self) -> Digest {
        BLOCK_HASH_COMPUTATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut h = Sha256::new();
        h.update(b"ledgerdb.block.v1");
        h.update(&self.height.to_be_bytes());
        h.update(&self.first_jsn.to_be_bytes());
        h.update(&self.journal_count.to_be_bytes());
        h.update(&self.info.journal_root.0);
        h.update(&self.info.clue_root.0);
        h.update(&self.info.state_root.0);
        h.update(&self.prev_block_hash.0);
        h.update(&self.timestamp.0.to_be_bytes());
        for t in &self.tx_hashes {
            h.update(&t.0);
        }
        Digest(h.finalize())
    }
}

/// A client transaction request (what arrives at the ledger proxy).
#[derive(Clone, Debug)]
pub struct TxRequest {
    pub payload: Vec<u8>,
    pub clues: Vec<String>,
    /// Anti-replay nonce chosen by the client.
    pub nonce: u64,
    pub client_pk: PublicKey,
    /// π_c: signature over [`TxRequest::request_hash`].
    pub signature: Signature,
}

impl TxRequest {
    /// The request hash covering payload + metadata (ledger URI analogue
    /// is the ledger id mixed in by the server).
    pub fn request_hash(payload: &[u8], clues: &[String], nonce: u64, pk: &PublicKey) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.request.v1");
        h.update(&(payload.len() as u64).to_be_bytes());
        h.update(payload);
        h.update(&(clues.len() as u32).to_be_bytes());
        for c in clues {
            h.update(&(c.len() as u64).to_be_bytes());
            h.update(c.as_bytes());
        }
        h.update(&nonce.to_be_bytes());
        h.update(&pk.to_bytes());
        Digest(h.finalize())
    }

    /// Build and sign a request with the member's key pair.
    pub fn signed(keys: &KeyPair, payload: Vec<u8>, clues: Vec<String>, nonce: u64) -> TxRequest {
        let hash = Self::request_hash(&payload, &clues, nonce, keys.public());
        TxRequest {
            payload,
            clues,
            nonce,
            client_pk: *keys.public(),
            signature: keys.sign(&hash),
        }
    }

    /// Recompute this request's hash.
    pub fn hash(&self) -> Digest {
        Self::request_hash(&self.payload, &self.clues, self.nonce, &self.client_pk)
    }

    /// Verify π_c.
    pub fn verify_signature(&self) -> bool {
        self.client_pk.verify(&self.hash(), &self.signature)
    }
}

/// The LSP-signed receipt π_s the client keeps externally (§III-C): all
/// three digests plus jsn and timestamp.
#[derive(Clone, Copy, Debug)]
pub struct Receipt {
    pub jsn: u64,
    pub request_hash: Digest,
    pub tx_hash: Digest,
    pub block_hash: Digest,
    pub timestamp: Timestamp,
    pub lsp_pk: PublicKey,
    pub signature: Signature,
}

impl Receipt {
    /// The digest the LSP signs.
    pub fn signing_digest(
        jsn: u64,
        request_hash: &Digest,
        tx_hash: &Digest,
        block_hash: &Digest,
        timestamp: Timestamp,
    ) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.receipt.v1");
        h.update(&jsn.to_be_bytes());
        h.update(&request_hash.0);
        h.update(&tx_hash.0);
        h.update(&block_hash.0);
        h.update(&timestamp.0.to_be_bytes());
        Digest(h.finalize())
    }

    /// Verify the LSP signature π_s.
    pub fn verify(&self) -> bool {
        let msg = Self::signing_digest(
            self.jsn,
            &self.request_hash,
            &self.tx_hash,
            &self.block_hash,
            self.timestamp,
        );
        self.lsp_pk.verify(&msg, &self.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerdb_crypto::sha256;

    #[test]
    fn request_sign_verify() {
        let keys = KeyPair::from_seed(b"member");
        let req = TxRequest::signed(&keys, b"payload".to_vec(), vec!["clue".into()], 7);
        assert!(req.verify_signature());
    }

    #[test]
    fn tampered_request_detected() {
        let keys = KeyPair::from_seed(b"member");
        let mut req = TxRequest::signed(&keys, b"payload".to_vec(), vec![], 7);
        req.payload = b"tampered".to_vec();
        assert!(!req.verify_signature());
    }

    #[test]
    fn journal_tx_hash_covers_fields() {
        let keys = KeyPair::from_seed(b"m");
        let base = Journal {
            jsn: 1,
            kind: JournalKind::Normal,
            clues: vec!["c".into()],
            payload_digest: sha256(b"p"),
            request_hash: sha256(b"r"),
            client_pk: Some(*keys.public()),
            client_sig: None,
            timestamp: Timestamp(5),
            stream_index: 0,
        };
        let mut changed = base.clone();
        changed.timestamp = Timestamp(6);
        assert_ne!(base.tx_hash(), changed.tx_hash());
        let mut changed2 = base.clone();
        changed2.clues = vec!["d".into()];
        assert_ne!(base.tx_hash(), changed2.tx_hash());
    }

    #[test]
    fn block_hash_links() {
        let info = LedgerInfo {
            journal_root: sha256(b"j"),
            clue_root: sha256(b"c"),
            state_root: sha256(b"s"),
        };
        let b1 = Block::new(
            0,
            0,
            2,
            info,
            Digest::ZERO,
            Timestamp(1),
            vec![sha256(b"t0"), sha256(b"t1")],
        );
        let mut b2 = b1.clone();
        b2.height = 1;
        b2.prev_block_hash = b1.hash();
        assert_ne!(b1.hash(), b2.hash());
        assert_eq!(b2.prev_block_hash, b1.hash());
    }

    #[test]
    fn receipt_round_trip() {
        let lsp = KeyPair::from_seed(b"lsp");
        let msg = Receipt::signing_digest(3, &sha256(b"r"), &sha256(b"t"), &sha256(b"b"), Timestamp(9));
        let receipt = Receipt {
            jsn: 3,
            request_hash: sha256(b"r"),
            tx_hash: sha256(b"t"),
            block_hash: sha256(b"b"),
            timestamp: Timestamp(9),
            lsp_pk: *lsp.public(),
            signature: lsp.sign(&msg),
        };
        assert!(receipt.verify());
        let mut forged = receipt;
        forged.jsn = 4;
        assert!(!forged.verify());
    }
}
