//! Wire encodings for core ledger types plus whole-ledger snapshots.
//!
//! A [`LedgerSnapshot`] serializes the durable part of a ledger — the
//! journal records, sealed blocks, occult marks and pseudo genesis — to a
//! single byte blob. Restoration *replays* the journals through a fresh
//! kernel (rebuilding the fam tree, CM-Tree, world state and indexes) and
//! then cross-checks every recorded block root, so a corrupted or
//! tampered snapshot is rejected rather than silently loaded. Payloads
//! are restored into the target stream store alongside.

use crate::state::StateCommitment;
use crate::ledger::LedgerDb;
use crate::types::{Block, Journal, JournalKind, LedgerInfo, Receipt};
use crate::LedgerError;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::ecdsa::Signature;
use ledgerdb_crypto::keys::PublicKey;
use ledgerdb_crypto::multisig::MultiSignature;
use ledgerdb_crypto::wire::{Reader, Wire, WireError, Writer};
use ledgerdb_timesvc::clock::Timestamp;
use ledgerdb_timesvc::tledger::NotaryReceipt;

impl Wire for JournalKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            JournalKind::Normal => w.put_u8(0),
            JournalKind::Time(receipt) => {
                w.put_u8(1);
                receipt.encode(w);
            }
            JournalKind::Purge { purge_to, approvals } => {
                w.put_u8(2);
                w.put_u64(*purge_to);
                approvals.encode(w);
            }
            JournalKind::Occult { target, approvals } => {
                w.put_u8(3);
                w.put_u64(*target);
                approvals.encode(w);
            }
            JournalKind::OccultClue { clue, targets, approvals } => {
                w.put_u8(4);
                clue.encode(w);
                targets.encode(w);
                approvals.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(JournalKind::Normal),
            1 => Ok(JournalKind::Time(NotaryReceipt::decode(r)?)),
            2 => Ok(JournalKind::Purge {
                purge_to: r.get_u64()?,
                approvals: MultiSignature::decode(r)?,
            }),
            3 => Ok(JournalKind::Occult {
                target: r.get_u64()?,
                approvals: MultiSignature::decode(r)?,
            }),
            4 => Ok(JournalKind::OccultClue {
                clue: String::decode(r)?,
                targets: Vec::decode(r)?,
                approvals: MultiSignature::decode(r)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Journal {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.jsn);
        self.kind.encode(w);
        self.clues.encode(w);
        self.payload_digest.encode(w);
        self.request_hash.encode(w);
        self.client_pk.encode(w);
        self.client_sig.encode(w);
        self.timestamp.encode(w);
        w.put_u64(self.stream_index);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Journal {
            jsn: r.get_u64()?,
            kind: JournalKind::decode(r)?,
            clues: Vec::decode(r)?,
            payload_digest: Digest::decode(r)?,
            request_hash: Digest::decode(r)?,
            client_pk: Option::<PublicKey>::decode(r)?,
            client_sig: Option::<Signature>::decode(r)?,
            timestamp: Timestamp::decode(r)?,
            stream_index: r.get_u64()?,
        })
    }
}

impl Wire for LedgerInfo {
    fn encode(&self, w: &mut Writer) {
        self.journal_root.encode(w);
        self.clue_root.encode(w);
        self.state_root.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LedgerInfo {
            journal_root: Digest::decode(r)?,
            clue_root: Digest::decode(r)?,
            state_root: Digest::decode(r)?,
        })
    }
}

impl Wire for Block {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.height);
        w.put_u64(self.first_jsn);
        w.put_u64(self.journal_count);
        self.info.encode(w);
        self.prev_block_hash.encode(w);
        self.timestamp.encode(w);
        self.tx_hashes.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Block::new(
            r.get_u64()?,
            r.get_u64()?,
            r.get_u64()?,
            LedgerInfo::decode(r)?,
            Digest::decode(r)?,
            Timestamp::decode(r)?,
            Vec::decode(r)?,
        ))
    }
}

impl Wire for Receipt {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.jsn);
        self.request_hash.encode(w);
        self.tx_hash.encode(w);
        self.block_hash.encode(w);
        self.timestamp.encode(w);
        self.lsp_pk.encode(w);
        self.signature.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Receipt {
            jsn: r.get_u64()?,
            request_hash: Digest::decode(r)?,
            tx_hash: Digest::decode(r)?,
            block_hash: Digest::decode(r)?,
            timestamp: Timestamp::decode(r)?,
            lsp_pk: PublicKey::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

impl Wire for crate::types::TxRequest {
    fn encode(&self, w: &mut Writer) {
        self.payload.encode(w);
        self.clues.encode(w);
        w.put_u64(self.nonce);
        self.client_pk.encode(w);
        self.signature.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::types::TxRequest {
            payload: Vec::<u8>::decode(r)?,
            clues: Vec::decode(r)?,
            nonce: r.get_u64()?,
            client_pk: PublicKey::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

/// Snapshot format version byte.
const SNAPSHOT_VERSION: u8 = 1;
/// Magic prefix for snapshot blobs.
const SNAPSHOT_MAGIC: &[u8; 8] = b"LDBSNAP\0";

/// The durable state of a ledger, detached from its kernel.
#[derive(Clone, Debug)]
pub struct LedgerSnapshot {
    /// Journal records, jsn order.
    pub journals: Vec<Journal>,
    /// Sealed blocks, height order.
    pub blocks: Vec<Block>,
    /// Payloads by stream index (`None` for erased slots).
    pub payloads: Vec<Option<Vec<u8>>>,
    /// Occulted jsns.
    pub occulted: Vec<u64>,
    /// Purge state: `(purge_to, purge_journal_jsn)` when a purge happened.
    pub purge: Option<(u64, u64)>,
}

impl Wire for LedgerSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(SNAPSHOT_MAGIC);
        w.put_u8(SNAPSHOT_VERSION);
        self.journals.encode(w);
        self.blocks.encode(w);
        self.payloads.encode(w);
        self.occulted.encode(w);
        self.purge.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let magic = r.get_raw(8)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(WireError::Invalid("bad snapshot magic"));
        }
        let version = r.get_u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(WireError::Invalid("unsupported snapshot version"));
        }
        Ok(LedgerSnapshot {
            journals: Vec::decode(r)?,
            blocks: Vec::decode(r)?,
            payloads: Vec::decode(r)?,
            occulted: Vec::decode(r)?,
            purge: Option::decode(r)?,
        })
    }
}

impl LedgerDb {
    /// Export the durable ledger state as a snapshot.
    pub fn export_snapshot(&self) -> Result<LedgerSnapshot, LedgerError> {
        let mut payloads = Vec::new();
        for journal in &self.journals {
            let idx = journal.stream_index;
            let slot = if self.store.is_erased(idx)? {
                None
            } else {
                Some(self.store.read(idx)?)
            };
            // Stream indexes are assigned sequentially by append order.
            debug_assert_eq!(payloads.len() as u64, idx);
            payloads.push(slot);
        }
        let occulted = (0..self.journals.len() as u64)
            .filter(|&jsn| self.occult_index.is_marked(jsn))
            .collect();
        Ok(LedgerSnapshot {
            journals: self.journals.clone(),
            blocks: self.blocks.clone(),
            payloads,
            occulted,
            purge: self.pseudo_genesis().map(|g| (g.purge_to, g.purge_journal_jsn)),
        })
    }

    /// Serialize the snapshot to bytes.
    pub fn export_bytes(&self) -> Result<Vec<u8>, LedgerError> {
        Ok(self.export_snapshot()?.to_wire())
    }

    /// Restore a ledger from a snapshot by *replaying* every journal
    /// through a fresh kernel and cross-checking each recorded block —
    /// tx-hashes, accumulator roots and the block-hash chain — so a
    /// corrupted snapshot fails loudly instead of loading silently.
    pub fn restore(
        snapshot: LedgerSnapshot,
        config: crate::ledger::LedgerConfig,
        registry: crate::member::MemberRegistry,
        store: std::sync::Arc<dyn ledgerdb_storage::stream::StreamStore>,
        clock: std::sync::Arc<dyn ledgerdb_timesvc::clock::Clock>,
    ) -> Result<LedgerDb, LedgerError> {
        let mut ledger = LedgerDb::with_parts(config, registry, store, clock);
        if snapshot.payloads.len() != snapshot.journals.len() {
            return Err(LedgerError::AuditFailed(
                "snapshot payload/journal count mismatch".to_string(),
            ));
        }

        // Replay journals block by block so the recorded roots can be
        // checked at every seal point.
        let mut block_iter = snapshot.blocks.iter().peekable();
        for (i, journal) in snapshot.journals.iter().enumerate() {
            let jsn = i as u64;
            if journal.jsn != jsn {
                return Err(LedgerError::AuditFailed(format!(
                    "snapshot journal {i} carries jsn {}",
                    journal.jsn
                )));
            }
            // Pseudo genesis must be captured *before* its purge journal
            // lands, mirroring the original purge() execution order.
            if let JournalKind::Purge { purge_to, .. } = &journal.kind {
                let snapshot_info = LedgerInfo {
                    journal_root: ledger.fam.root(),
                    clue_root: ledger.cm_tree.root(),
                    state_root: ledger.world_state.commitment_root(),
                };
                let genesis_hash = crate::ledger::pseudo_genesis_hash(
                    &ledger.id,
                    *purge_to,
                    &snapshot_info,
                );
                ledger.pseudo_genesis = Some(crate::ledger::PseudoGenesis {
                    purge_to: *purge_to,
                    purge_journal_jsn: jsn,
                    snapshot: snapshot_info,
                    genesis_hash,
                });
            }

            // Restore the payload slot.
            let stream_index = match &snapshot.payloads[i] {
                Some(payload) => {
                    if ledgerdb_crypto::sha256(payload) != journal.payload_digest {
                        return Err(LedgerError::AuditFailed(format!(
                            "snapshot payload {i} does not match its recorded digest"
                        )));
                    }
                    ledger.store.append(payload)?
                }
                None => ledger.store.append_erased(journal.payload_digest)?,
            };
            if stream_index != journal.stream_index {
                return Err(LedgerError::AuditFailed(format!(
                    "snapshot stream index mismatch at journal {i}"
                )));
            }

            // Rebuild the verification structures.
            let tx_hash = journal.tx_hash();
            ledger.tx_hashes.push(tx_hash);
            ledger.fam.append(tx_hash);
            for clue in &journal.clues {
                ledger.cm_tree.append(clue, jsn, tx_hash);
                ledger.csl.append(clue, jsn);
                ledger.world_state.insert_kv(
                    ledgerdb_clue::clue_key(clue).as_bytes(),
                    journal.payload_digest.0.to_vec(),
                );
            }
            ledger.journals.push(journal.clone());
            ledger.pending.push(jsn);

            // Seal (and verify) any block ending at this journal.
            if let Some(block) = block_iter.peek() {
                if block.first_jsn + block.journal_count == jsn + 1 {
                    let block = block_iter.next().expect("peeked");
                    let expected_roots = LedgerInfo {
                        journal_root: ledger.fam.root(),
                        clue_root: ledger.cm_tree.root(),
                        state_root: ledger.world_state.commitment_root(),
                    };
                    if block.info != expected_roots {
                        return Err(LedgerError::AuditFailed(format!(
                            "snapshot block {} roots do not replay",
                            block.height
                        )));
                    }
                    let prev = ledger
                        .blocks
                        .last()
                        .map(|b| b.hash())
                        .unwrap_or_else(|| {
                            ledger
                                .pseudo_genesis
                                .as_ref()
                                .map(|g| g.genesis_hash)
                                .unwrap_or(Digest::ZERO)
                        });
                    if block.prev_block_hash != prev {
                        return Err(LedgerError::AuditFailed(format!(
                            "snapshot block {} chain link broken",
                            block.height
                        )));
                    }
                    let pending = std::mem::take(&mut ledger.pending);
                    let tx_hashes: Vec<Digest> =
                        pending.iter().map(|&j| ledger.tx_hashes[j as usize]).collect();
                    if tx_hashes != block.tx_hashes {
                        return Err(LedgerError::AuditFailed(format!(
                            "snapshot block {} tx hashes do not replay",
                            block.height
                        )));
                    }
                    ledger.blocks.push(block.clone());
                }
            }
        }
        if block_iter.next().is_some() {
            return Err(LedgerError::AuditFailed(
                "snapshot contains blocks beyond its journals".to_string(),
            ));
        }

        // Restore occult marks and validate the purge record agrees.
        for &jsn in &snapshot.occulted {
            if jsn >= ledger.journals.len() as u64 {
                return Err(LedgerError::AuditFailed(format!(
                    "snapshot occults unknown jsn {jsn}"
                )));
            }
            ledger.occult_index.mark(jsn);
        }
        match (&snapshot.purge, &ledger.pseudo_genesis) {
            (None, None) => {}
            (Some((to, at)), Some(g)) if *to == g.purge_to && *at == g.purge_journal_jsn => {}
            _ => {
                return Err(LedgerError::AuditFailed(
                    "snapshot purge record inconsistent with purge journals".to_string(),
                ))
            }
        }
        Ok(ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::tests::fixture;
    use crate::types::TxRequest;

    #[test]
    fn journal_kinds_round_trip() {
        let keys = ledgerdb_crypto::keys::KeyPair::from_seed(b"codec");
        let msg = ledgerdb_crypto::sha256(b"m");
        let mut ms = MultiSignature::new();
        ms.add(&keys, &msg);
        let kinds = [
            JournalKind::Normal,
            JournalKind::Purge { purge_to: 7, approvals: ms.clone() },
            JournalKind::Occult { target: 3, approvals: ms.clone() },
            JournalKind::OccultClue { clue: "c".into(), targets: vec![1, 2], approvals: ms },
        ];
        for kind in kinds {
            let bytes = kind.to_wire();
            let decoded = JournalKind::from_wire(&bytes).unwrap();
            // Tags and re-encoding must agree (no PartialEq on the enum).
            assert_eq!(decoded.to_wire(), bytes);
        }
    }

    #[test]
    fn journal_and_block_round_trip() {
        let mut f = fixture(4);
        for i in 0..6u64 {
            let req = TxRequest::signed(&f.alice, vec![i as u8], vec!["c".into()], i);
            f.ledger.append(req).unwrap();
        }
        f.ledger.seal_block();
        let journal = f.ledger.get_tx(2).unwrap().clone();
        let decoded = Journal::from_wire(&journal.to_wire()).unwrap();
        assert_eq!(decoded.tx_hash(), journal.tx_hash());
        let block = f.ledger.blocks()[0].clone();
        let decoded = Block::from_wire(&block.to_wire()).unwrap();
        assert_eq!(decoded.hash(), block.hash());
    }

    #[test]
    fn receipt_round_trip() {
        let mut f = fixture(2);
        let req = TxRequest::signed(&f.alice, b"r".to_vec(), vec![], 0);
        let receipt = f.ledger.append_committed(req).unwrap();
        let decoded = Receipt::from_wire(&receipt.to_wire()).unwrap();
        assert!(decoded.verify());
    }

    #[test]
    fn snapshot_magic_and_version_enforced() {
        let f = fixture(4);
        let mut bytes = f.ledger.export_bytes().unwrap();
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(LedgerSnapshot::from_wire(&bad_magic).is_err());
        bytes[8] = 99; // version
        assert!(LedgerSnapshot::from_wire(&bytes).is_err());
    }
}
