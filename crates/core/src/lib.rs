//! The LedgerDB kernel: a centralized ledger database with *Dasein*
//! (what-when-who) verification.
//!
//! This crate composes the substrates into the system of §II-C:
//!
//! * journals with incremental jsns, accumulated in a [fam
//!   tree](ledgerdb_accumulator::fam) (*what*);
//! * a [CM-Tree](ledgerdb_clue::cm_tree) for clue-oriented N-lineage;
//! * three-phase signing — client proof π_c, LSP receipt π_s, TSA time
//!   journal π_t (*who* / *when*);
//! * verifiable mutations: [purge](ledger::LedgerDb::purge) and
//!   [occult](ledger::LedgerDb::occult) (§III-A2/3);
//! * the [Dasein-complete audit](audit) of §V.

pub mod audit;
pub mod checkpoint;
pub mod client;
pub mod codec;
pub mod error;
pub mod ledger;
pub mod member;
pub mod metrics;
pub mod recovery;
pub mod sharded;
pub mod shared;
pub mod state;
pub mod snapshot;
pub mod types;

pub use audit::{audit_ledger, AuditConfig, AuditReport};
pub use checkpoint::CheckpointManifest;
pub use client::{LedgerClient, SyncReport};
pub use codec::LedgerSnapshot;
pub use error::LedgerError;
pub use ledger::{AppendAck, CheckpointPolicy, LedgerConfig, LedgerDb, OccultMode, PreparedTx};
pub use metrics::{CoreMetrics, RecoveryMetrics};
pub use recovery::{
    open_durable, open_durable_with, recover, recover_with, recover_with_checkpoint,
    RecoveryReport, WalRecord, CHECKPOINT_DIR,
};
pub use member::{Member, MemberRegistry};
pub use sharded::{
    pack_jsn, route_clue_str, route_of, unpack_jsn, ComposedProof, EpochAnchor, ShardedClient,
    ShardedLedger, MAX_SHARDS,
};
pub use shared::SharedLedger;
pub use state::{verify_state_proof, StateBackend, StateCommitment, StateProof, WorldState};
pub use snapshot::{ReadSnapshot, SnapshotHub};
pub use types::{Block, Journal, JournalKind, LedgerInfo, Receipt, TxRequest, VerifyLevel};
