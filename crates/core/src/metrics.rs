//! Cached telemetry handles for the ledger kernel.
//!
//! One `CoreMetrics` per `LedgerDb`, resolved at construction (global
//! registry unless rebound via [`crate::LedgerDb::bind_metrics`]).
//! Recording is a couple of relaxed atomic ops on the append path.

use crate::state::StateBackend;
use ledgerdb_telemetry::{Counter, Gauge, Histogram, Registry, Unit};
use std::sync::Arc;

#[derive(Debug, Clone)]
pub struct CoreMetrics {
    /// `ledger_appends_total` — journals committed (single + batched).
    pub appends: Arc<Counter>,
    /// `ledger_append_seconds` — latency of a single append.
    pub append_seconds: Arc<Histogram>,
    /// `ledger_batch_commits_total` — batched commit calls.
    pub batch_commits: Arc<Counter>,
    /// `ledger_batch_commit_seconds` — latency of a whole batch commit.
    pub batch_commit_seconds: Arc<Histogram>,
    /// `ledger_seals_total` — blocks sealed.
    pub seals: Arc<Counter>,
    /// Per-stage seal timings. The three commitment structures are
    /// hashed independently at seal (serially or fanned out across the
    /// worker pool); these histograms attribute the seal cost either
    /// way, so an A/B run can compare stage shapes directly.
    /// `ledger_seal_fam_seconds` / `ledger_seal_clue_seconds` /
    /// `ledger_seal_state_seconds`.
    pub seal_fam_seconds: Arc<Histogram>,
    pub seal_clue_seconds: Arc<Histogram>,
    pub seal_state_seconds: Arc<Histogram>,
    /// `ledger_proofs_total` / `ledger_proof_seconds` — existence proofs.
    pub proofs: Arc<Counter>,
    pub proof_seconds: Arc<Histogram>,
    /// `ledger_verifies_total` / `ledger_verify_seconds` — existence
    /// verifications.
    pub verifies: Arc<Counter>,
    pub verify_seconds: Arc<Histogram>,
    /// `ledger_durability_error` — 1 while a durability failure is
    /// stashed (degraded but serving), 0 otherwise.
    pub durability_error: Arc<Gauge>,
    /// `ledger_checkpoints_total` — checkpoints committed.
    pub checkpoints: Arc<Counter>,
    /// `ledger_checkpoint_write_seconds` — serialize + fsync + publish
    /// latency of one checkpoint.
    pub checkpoint_write_seconds: Arc<Histogram>,
    /// `ledger_checkpoint_bytes` — bytes physically written per
    /// checkpoint (content-addressed segments dedup unchanged state, so
    /// this is usually far below the full serialized size).
    pub checkpoint_bytes: Arc<Histogram>,
    /// `ledger_snapshot_publish_total` — read snapshots published
    /// (block seals plus occult/purge republishes).
    pub snapshot_publishes: Arc<Counter>,
    /// `ledger_snapshot_hit_total` — reads served lock-free from the
    /// current snapshot.
    pub snapshot_hits: Arc<Counter>,
    /// `ledger_snapshot_fallback_total` — reads that reached into the
    /// unsealed tail and fell back to the locked path.
    pub snapshot_fallbacks: Arc<Counter>,
    /// `ledger_snapshot_age_ms` — age of the current snapshot at the
    /// last snapshot-served read (0 right after a publish).
    pub snapshot_age_ms: Arc<Gauge>,
    /// `ledger_proof_bytes{backend="…"}` — wire-encoded size of each
    /// state proof, labeled by the commitment backend that built it,
    /// and `ledger_verify_seconds{backend="…"}` — state-proof
    /// verification latency per backend. Indexed by
    /// [`StateBackend`] discriminant so an A/B sweep reads both series
    /// from one scrape.
    pub state_proof_bytes: [Arc<Histogram>; 2],
    pub state_verify_seconds: [Arc<Histogram>; 2],
}

impl CoreMetrics {
    pub fn bind(registry: &Registry) -> Self {
        let per_backend = |base: &str, unit: Unit| -> [Arc<Histogram>; 2] {
            [StateBackend::Mpt, StateBackend::Bin]
                .map(|b| registry.histogram(&format!("{base}{{backend=\"{b}\"}}"), unit))
        };
        CoreMetrics {
            appends: registry.counter("ledger_appends_total"),
            append_seconds: registry.histogram("ledger_append_seconds", Unit::Seconds),
            batch_commits: registry.counter("ledger_batch_commits_total"),
            batch_commit_seconds: registry.histogram("ledger_batch_commit_seconds", Unit::Seconds),
            seals: registry.counter("ledger_seals_total"),
            seal_fam_seconds: registry.histogram("ledger_seal_fam_seconds", Unit::Seconds),
            seal_clue_seconds: registry.histogram("ledger_seal_clue_seconds", Unit::Seconds),
            seal_state_seconds: registry.histogram("ledger_seal_state_seconds", Unit::Seconds),
            proofs: registry.counter("ledger_proofs_total"),
            proof_seconds: registry.histogram("ledger_proof_seconds", Unit::Seconds),
            verifies: registry.counter("ledger_verifies_total"),
            verify_seconds: registry.histogram("ledger_verify_seconds", Unit::Seconds),
            durability_error: registry.gauge("ledger_durability_error"),
            checkpoints: registry.counter("ledger_checkpoints_total"),
            checkpoint_write_seconds: registry
                .histogram("ledger_checkpoint_write_seconds", Unit::Seconds),
            checkpoint_bytes: registry.histogram("ledger_checkpoint_bytes", Unit::Bytes),
            snapshot_publishes: registry.counter("ledger_snapshot_publish_total"),
            snapshot_hits: registry.counter("ledger_snapshot_hit_total"),
            snapshot_fallbacks: registry.counter("ledger_snapshot_fallback_total"),
            snapshot_age_ms: registry.gauge("ledger_snapshot_age_ms"),
            state_proof_bytes: per_backend("ledger_proof_bytes", Unit::Bytes),
            state_verify_seconds: per_backend("ledger_verify_seconds", Unit::Seconds),
        }
    }

    /// The `(proof_bytes, verify_seconds)` histogram pair for one state
    /// backend's label.
    pub fn state_proof(&self, backend: StateBackend) -> (&Arc<Histogram>, &Arc<Histogram>) {
        let i = backend as usize;
        (&self.state_proof_bytes[i], &self.state_verify_seconds[i])
    }
}

impl Default for CoreMetrics {
    fn default() -> Self {
        Self::bind(Registry::global())
    }
}

/// Telemetry recorded by one recovery replay ([`crate::recovery`]).
#[derive(Debug, Clone)]
pub struct RecoveryMetrics {
    /// `ledger_recovery_seconds` — wall time of the replay.
    pub recovery_seconds: Arc<Histogram>,
    /// `ledger_recoveries_total` — recovery runs performed.
    pub recoveries: Arc<Counter>,
    /// Cumulative `RecoveryReport` counters across runs.
    pub journals_replayed: Arc<Counter>,
    pub blocks_verified: Arc<Counter>,
    pub rejected_wal_records: Arc<Counter>,
    pub orphan_payloads_dropped: Arc<Counter>,
    pub erases_redone: Arc<Counter>,
    pub wal_truncated_bytes: Arc<Counter>,
    pub payload_truncated_bytes: Arc<Counter>,
    /// `ledger_checkpoint_load_seconds` — checkpoint deserialize +
    /// verify latency during recovery.
    pub checkpoint_load_seconds: Arc<Histogram>,
    /// `ledger_recovery_replayed_records` — WAL records replayed by the
    /// *last* recovery (a gauge: this is the O(tail) bound the
    /// checkpoint engine exists to keep small).
    pub replayed_records: Arc<Gauge>,
}

impl RecoveryMetrics {
    pub fn bind(registry: &Registry) -> Self {
        RecoveryMetrics {
            recovery_seconds: registry.histogram("ledger_recovery_seconds", Unit::Seconds),
            recoveries: registry.counter("ledger_recoveries_total"),
            journals_replayed: registry.counter("ledger_recovery_journals_replayed_total"),
            blocks_verified: registry.counter("ledger_recovery_blocks_verified_total"),
            rejected_wal_records: registry.counter("ledger_recovery_rejected_wal_records_total"),
            orphan_payloads_dropped: registry
                .counter("ledger_recovery_orphan_payloads_dropped_total"),
            erases_redone: registry.counter("ledger_recovery_erases_redone_total"),
            wal_truncated_bytes: registry.counter("ledger_recovery_wal_truncated_bytes_total"),
            payload_truncated_bytes: registry
                .counter("ledger_recovery_payload_truncated_bytes_total"),
            checkpoint_load_seconds: registry
                .histogram("ledger_checkpoint_load_seconds", Unit::Seconds),
            replayed_records: registry.gauge("ledger_recovery_replayed_records"),
        }
    }

    /// Fold one finished replay's report into the counters.
    pub fn record(&self, report: &crate::recovery::RecoveryReport, elapsed: std::time::Duration) {
        self.recoveries.inc();
        self.recovery_seconds.observe_duration(elapsed);
        self.journals_replayed.add(report.journals_replayed);
        self.blocks_verified.add(report.blocks_verified);
        self.rejected_wal_records.add(report.rejected_wal_records);
        self.orphan_payloads_dropped.add(report.orphan_payloads_dropped);
        self.erases_redone.add(report.erases_redone);
        self.wal_truncated_bytes.add(report.wal_truncated_bytes);
        self.payload_truncated_bytes.add(report.payload_truncated_bytes);
        self.replayed_records
            .set((report.journals_replayed + report.blocks_verified) as i64);
    }
}

impl Default for RecoveryMetrics {
    fn default() -> Self {
        Self::bind(Registry::global())
    }
}
