//! Pluggable state commitment: the world-state layer behind a common
//! trait, with two interchangeable backends.
//!
//! * [`StateBackend::Mpt`] — the inherited 16-ary Merkle Patricia trie
//!   (`crates/mpt`). Fat witnesses (up to 15 sibling digests per
//!   level) but full-width internal links. **Default**: byte-identical
//!   roots, blocks and fingerprints to every pre-trait ledger.
//! * [`StateBackend::Bin`] — the binary Merkle-ized Patricia trie
//!   (`crates/bintrie`): one truncated sibling link per level, ~4-8x
//!   smaller witnesses, opt-in via `--state-backend bin`.
//!
//! Everything above this module speaks [`WorldState`] and
//! [`StateProof`]; nothing else in the kernel names a concrete trie.
//! The checkpoint segment format is backend-independent (canonical
//! sorted `(key, value)` pairs), so checkpoints migrate across
//! backends — only the committed roots differ.

use crate::LedgerError;
use ledgerdb_bintrie::{verify_bin_proof, BinProof, BinTrie};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::wire::{Reader, Wire, WireError, Writer};
use ledgerdb_mpt::{verify_absence, verify_proof, Mpt, MptAbsenceProof, MptProof};
use ledgerdb_pool::Pool;
use std::fmt;
use std::str::FromStr;

/// Which commitment structure anchors the world state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StateBackend {
    /// 16-ary Merkle Patricia trie (the pre-trait default).
    #[default]
    Mpt,
    /// Binary Merkle-ized Patricia trie with truncated sibling links.
    Bin,
}

impl StateBackend {
    /// Stable lowercase name — flag values, metric labels, JSON keys.
    pub fn as_str(&self) -> &'static str {
        match self {
            StateBackend::Mpt => "mpt",
            StateBackend::Bin => "bin",
        }
    }
}

impl fmt::Display for StateBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for StateBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mpt" => Ok(StateBackend::Mpt),
            "bin" => Ok(StateBackend::Bin),
            other => Err(format!("unknown state backend {other:?} (expected mpt|bin)")),
        }
    }
}

/// What a state commitment must provide to the ledger kernel: keyed
/// upserts, a root digest, inclusion *and* absence witnesses, the
/// dirty-frontier parallel hashing hook the seal pipeline fans out
/// over, and canonical entries for checkpoint segments.
pub trait StateCommitment {
    /// Insert or replace `key → value`; returns the previous value.
    fn insert_kv(&mut self, key: &[u8], value: Vec<u8>) -> Option<Vec<u8>>;
    /// Look up a key.
    fn get_kv(&self, key: &[u8]) -> Option<&[u8]>;
    /// The committed root ([`Digest::ZERO`] when empty).
    fn commitment_root(&self) -> Digest;
    /// Build a witness: inclusion if the key is present, absence
    /// otherwise. Wire-codable; verified by [`verify_state_proof`].
    fn prove_kv(&self, key: &[u8]) -> StateProof;
    /// Warm dirty-subtree hash memos across `pool` so the subsequent
    /// [`commitment_root`](Self::commitment_root) is cheap. Purely an
    /// optimization: roots are byte-identical whether or not this ran.
    fn warm_subtrees(&self, pool: &Pool);
    /// All `(key, value)` pairs sorted by key bytes — the canonical
    /// checkpoint-segment order, identical across backends.
    fn canonical_entries(&self) -> Vec<(Vec<u8>, Vec<u8>)>;
    /// Number of keys.
    fn key_count(&self) -> usize;
}

impl StateCommitment for Mpt {
    fn insert_kv(&mut self, key: &[u8], value: Vec<u8>) -> Option<Vec<u8>> {
        self.insert(key, value)
    }

    fn get_kv(&self, key: &[u8]) -> Option<&[u8]> {
        self.get(key)
    }

    fn commitment_root(&self) -> Digest {
        self.root_hash()
    }

    fn prove_kv(&self, key: &[u8]) -> StateProof {
        if self.get(key).is_some() {
            StateProof::MptPresent(self.prove(key).expect("present key must prove"))
        } else {
            StateProof::MptAbsent(self.prove_absence(key).expect("absent key must prove absence"))
        }
    }

    fn warm_subtrees(&self, pool: &Pool) {
        self.hash_subtrees_with(pool);
    }

    fn canonical_entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.entries()
    }

    fn key_count(&self) -> usize {
        self.len()
    }
}

impl StateCommitment for BinTrie {
    fn insert_kv(&mut self, key: &[u8], value: Vec<u8>) -> Option<Vec<u8>> {
        self.insert(key, value)
    }

    fn get_kv(&self, key: &[u8]) -> Option<&[u8]> {
        self.get(key)
    }

    fn commitment_root(&self) -> Digest {
        self.root_hash()
    }

    fn prove_kv(&self, key: &[u8]) -> StateProof {
        let proof = self.prove(key);
        if proof.is_inclusion() {
            StateProof::BinPresent(proof)
        } else {
            StateProof::BinAbsent(proof)
        }
    }

    fn warm_subtrees(&self, pool: &Pool) {
        self.hash_subtrees_with(pool);
    }

    fn canonical_entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.entries()
    }

    fn key_count(&self) -> usize {
        self.len()
    }
}

/// The ledger's world state: one of the two backends, chosen at
/// construction ([`crate::LedgerConfig::state_backend`]) and fixed for
/// the ledger's lifetime.
pub enum WorldState {
    Mpt(Mpt),
    Bin(BinTrie),
}

impl WorldState {
    /// An empty world state on the given backend.
    pub fn new(backend: StateBackend) -> Self {
        match backend {
            StateBackend::Mpt => WorldState::Mpt(Mpt::new()),
            StateBackend::Bin => WorldState::Bin(BinTrie::new()),
        }
    }

    /// Which backend this state runs on.
    pub fn backend(&self) -> StateBackend {
        match self {
            WorldState::Mpt(_) => StateBackend::Mpt,
            WorldState::Bin(_) => StateBackend::Bin,
        }
    }
}

impl StateCommitment for WorldState {
    fn insert_kv(&mut self, key: &[u8], value: Vec<u8>) -> Option<Vec<u8>> {
        match self {
            WorldState::Mpt(t) => t.insert_kv(key, value),
            WorldState::Bin(t) => t.insert_kv(key, value),
        }
    }

    fn get_kv(&self, key: &[u8]) -> Option<&[u8]> {
        match self {
            WorldState::Mpt(t) => t.get_kv(key),
            WorldState::Bin(t) => t.get_kv(key),
        }
    }

    fn commitment_root(&self) -> Digest {
        match self {
            WorldState::Mpt(t) => t.commitment_root(),
            WorldState::Bin(t) => t.commitment_root(),
        }
    }

    fn prove_kv(&self, key: &[u8]) -> StateProof {
        match self {
            WorldState::Mpt(t) => t.prove_kv(key),
            WorldState::Bin(t) => t.prove_kv(key),
        }
    }

    fn warm_subtrees(&self, pool: &Pool) {
        match self {
            WorldState::Mpt(t) => t.warm_subtrees(pool),
            WorldState::Bin(t) => t.warm_subtrees(pool),
        }
    }

    fn canonical_entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        match self {
            WorldState::Mpt(t) => t.canonical_entries(),
            WorldState::Bin(t) => t.canonical_entries(),
        }
    }

    fn key_count(&self) -> usize {
        match self {
            WorldState::Mpt(t) => t.key_count(),
            WorldState::Bin(t) => t.key_count(),
        }
    }
}

/// A backend-tagged world-state witness: inclusion or absence, MPT or
/// binary. Wire-transient (served per request, never persisted), so
/// the four-tag envelope can evolve without fingerprint impact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateProof {
    MptPresent(MptProof),
    MptAbsent(MptAbsenceProof),
    BinPresent(BinProof),
    BinAbsent(BinProof),
}

impl StateProof {
    /// Which backend produced this witness.
    pub fn backend(&self) -> StateBackend {
        match self {
            StateProof::MptPresent(_) | StateProof::MptAbsent(_) => StateBackend::Mpt,
            StateProof::BinPresent(_) | StateProof::BinAbsent(_) => StateBackend::Bin,
        }
    }

    /// The value this witness claims, without verifying anything:
    /// `Some` for inclusion shapes, `None` for absence shapes.
    pub fn claimed_value(&self) -> Option<&[u8]> {
        match self {
            StateProof::MptPresent(p) => Some(&p.value),
            StateProof::MptAbsent(_) => None,
            StateProof::BinPresent(p) => p.value(),
            StateProof::BinAbsent(_) => None,
        }
    }

    /// The key the witness speaks about.
    pub fn key(&self) -> &[u8] {
        match self {
            StateProof::MptPresent(p) => &p.key,
            StateProof::MptAbsent(p) => &p.key,
            StateProof::BinPresent(p) | StateProof::BinAbsent(p) => &p.key,
        }
    }
}

/// Verify a [`StateProof`] against a trusted state root. On success
/// returns the proven value (`None` = verified absence).
pub fn verify_state_proof<'a>(
    root: &Digest,
    proof: &'a StateProof,
) -> Result<Option<&'a [u8]>, LedgerError> {
    match proof {
        StateProof::MptPresent(p) => {
            verify_proof(root, p).map_err(|e| LedgerError::State(e.to_string()))?;
            Ok(Some(&p.value))
        }
        StateProof::MptAbsent(p) => {
            verify_absence(root, p).map_err(|e| LedgerError::State(e.to_string()))?;
            Ok(None)
        }
        StateProof::BinPresent(p) => {
            let value = verify_bin_proof(root, p)
                .map_err(|e| LedgerError::State(e.to_string()))?;
            match value {
                Some(v) => Ok(Some(v)),
                // The envelope claimed inclusion but the proof shape
                // demonstrates absence: structurally inconsistent.
                None => Err(LedgerError::State("inclusion tag on absence proof".to_string())),
            }
        }
        StateProof::BinAbsent(p) => {
            let value = verify_bin_proof(root, p)
                .map_err(|e| LedgerError::State(e.to_string()))?;
            match value {
                None => Ok(None),
                Some(_) => Err(LedgerError::State("absence tag on inclusion proof".to_string())),
            }
        }
    }
}

impl Wire for StateProof {
    fn encode(&self, w: &mut Writer) {
        match self {
            StateProof::MptPresent(p) => {
                w.put_u8(0);
                p.encode(w);
            }
            StateProof::MptAbsent(p) => {
                w.put_u8(1);
                p.encode(w);
            }
            StateProof::BinPresent(p) => {
                w.put_u8(2);
                p.encode(w);
            }
            StateProof::BinAbsent(p) => {
                w.put_u8(3);
                p.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(StateProof::MptPresent(MptProof::decode(r)?)),
            1 => Ok(StateProof::MptAbsent(MptAbsenceProof::decode(r)?)),
            2 => Ok(StateProof::BinPresent(BinProof::decode(r)?)),
            3 => Ok(StateProof::BinAbsent(BinProof::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated(backend: StateBackend) -> WorldState {
        let mut ws = WorldState::new(backend);
        for i in 0..200u64 {
            let key = ledgerdb_crypto::sha3_256(&i.to_be_bytes());
            ws.insert_kv(key.as_bytes(), format!("v{i}").into_bytes());
        }
        ws
    }

    #[test]
    fn both_backends_prove_and_verify() {
        for backend in [StateBackend::Mpt, StateBackend::Bin] {
            let ws = populated(backend);
            let root = ws.commitment_root();
            let present = ledgerdb_crypto::sha3_256(&7u64.to_be_bytes());
            let proof = ws.prove_kv(present.as_bytes());
            assert_eq!(proof.backend(), backend);
            let value = verify_state_proof(&root, &proof).unwrap();
            assert_eq!(value, Some(b"v7".as_slice()), "{backend}: inclusion");
            let absent = ledgerdb_crypto::sha3_256(&900u64.to_be_bytes());
            let proof = ws.prove_kv(absent.as_bytes());
            assert_eq!(verify_state_proof(&root, &proof).unwrap(), None, "{backend}: absence");
        }
    }

    #[test]
    fn state_proof_wire_round_trip() {
        for backend in [StateBackend::Mpt, StateBackend::Bin] {
            let ws = populated(backend);
            let root = ws.commitment_root();
            for probe in [7u64, 900] {
                let key = ledgerdb_crypto::sha3_256(&probe.to_be_bytes());
                let proof = ws.prove_kv(key.as_bytes());
                let decoded = StateProof::from_wire(&proof.to_wire()).unwrap();
                assert_eq!(decoded, proof);
                verify_state_proof(&root, &decoded).unwrap();
            }
        }
    }

    #[test]
    fn canonical_entries_identical_across_backends() {
        let a = populated(StateBackend::Mpt);
        let b = populated(StateBackend::Bin);
        assert_eq!(a.canonical_entries(), b.canonical_entries());
        assert_ne!(a.commitment_root(), b.commitment_root(), "roots are backend-specific");
    }

    #[test]
    fn backend_parses() {
        assert_eq!("mpt".parse::<StateBackend>().unwrap(), StateBackend::Mpt);
        assert_eq!("bin".parse::<StateBackend>().unwrap(), StateBackend::Bin);
        assert!("verkle".parse::<StateBackend>().is_err());
        assert_eq!(StateBackend::default(), StateBackend::Mpt);
    }

    #[test]
    fn mismatched_tag_rejected() {
        let ws = populated(StateBackend::Bin);
        let root = ws.commitment_root();
        let present = ledgerdb_crypto::sha3_256(&7u64.to_be_bytes());
        let StateProof::BinPresent(p) = ws.prove_kv(present.as_bytes()) else {
            panic!("expected inclusion shape");
        };
        // Re-tag the same proof as an absence claim: rejected even
        // though the hash chain verifies.
        let retagged = StateProof::BinAbsent(p);
        assert!(verify_state_proof(&root, &retagged).is_err());
    }
}
