//! Sharded multi-ledger scale-out with cross-shard proof composition.
//!
//! The single write lock + single WAL is the last scaling ceiling of
//! the one-ledger deployment. This module partitions the journal space
//! into K independent shard ledgers — each a full [`SharedLedger`] with
//! its own fam tree, CM-Tree, WAL, and checkpoint engine — and composes
//! them back into *one* verifiable commitment with a top-level
//! accumulator, in the spirit of the paper's *boa* anchors:
//!
//! * **Routing** is a stable hash of the request's first clue (falling
//!   back to the submitting member's key), so a clue's whole N-lineage
//!   lives in one shard and clue proofs stay single-shard.
//! * **Global jsns** pack the shard id into the high [`SHARD_BITS`]
//!   bits: `global = shard << 56 | local`. Shard 0's packing is the
//!   identity, so a K=1 deployment is bit-for-bit the unsharded ledger.
//! * **Epoch anchoring**: [`ShardedLedger::ensure_epoch`] snapshots
//!   every shard's newest *sealed* journal root and appends one leaf
//!   per shard to a top-level [`Shrubs`] tree. The tree's root is the
//!   deployment's single cross-shard commitment.
//! * **Composed proofs**: [`ShardedLedger::prove_composed`] returns a
//!   shard existence proof *plus* an anchor proof that the shard's
//!   sealed root is committed under the top root. The distrusting
//!   [`ShardedClient`] verifies the first against its own per-shard fam
//!   replica and the second against a top tree rebuilt from **its own**
//!   verified roots — the server contributes only proof paths, never
//!   trusted digests.

use crate::client::{LedgerClient, SyncReport};
use crate::shared::SharedLedger;
use crate::types::{Block, TxRequest};
use crate::LedgerError;
use ledgerdb_accumulator::fam::{FamProof, TrustedAnchor};
use ledgerdb_accumulator::shrubs::{Shrubs, ShrubsProof};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::keys::PublicKey;
use ledgerdb_crypto::sha256;
use ledgerdb_crypto::wire::{Reader, Wire, WireError, Writer};
use std::sync::{Arc, Mutex};

/// High bits of a global jsn reserved for the shard id.
pub const SHARD_BITS: u32 = 8;

/// Hard ceiling on K (the shard id must fit [`SHARD_BITS`]).
pub const MAX_SHARDS: usize = 1 << SHARD_BITS;

/// Bits left for the per-shard local jsn.
pub const LOCAL_JSN_BITS: u32 = 64 - SHARD_BITS;

/// Mask selecting the local-jsn bits of a global jsn.
pub const LOCAL_JSN_MASK: u64 = (1 << LOCAL_JSN_BITS) - 1;

/// Pack a (shard, local jsn) pair into a global jsn. Shard 0 packs to
/// the local jsn unchanged — the K=1 identity the differential suite
/// pins.
pub fn pack_jsn(shard: usize, local: u64) -> u64 {
    debug_assert!(shard < MAX_SHARDS);
    debug_assert!(local <= LOCAL_JSN_MASK);
    ((shard as u64) << LOCAL_JSN_BITS) | (local & LOCAL_JSN_MASK)
}

/// Split a global jsn into (shard, local). With `k == 1` this is the
/// identity on the full 64 bits: an unsharded deployment never
/// reinterprets (or truncates) the jsns it has always served.
pub fn unpack_jsn(global: u64, k: usize) -> (usize, u64) {
    if k <= 1 {
        return (0, global);
    }
    ((global >> LOCAL_JSN_BITS) as usize, global & LOCAL_JSN_MASK)
}

/// Stable shard routing: the first clue's hash when the request carries
/// clues (keeping a clue's lineage single-shard), else the submitting
/// member's key hash. Deterministic across processes and runs — the
/// differential suite depends on it.
pub fn route_of(clues: &[String], client_pk: &PublicKey, k: usize) -> usize {
    if k <= 1 {
        return 0;
    }
    match clues.first() {
        Some(clue) => route_clue_str(clue, k),
        None => {
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(b"ledgerdb.shard-route.member");
            buf.extend_from_slice(&client_pk.to_wire());
            shard_of_digest(&sha256(&buf), k)
        }
    }
}

/// Route a bare clue string (ListTx / GetClueProof take no member key).
pub fn route_clue_str(clue: &str, k: usize) -> usize {
    if k <= 1 {
        return 0;
    }
    let mut buf = Vec::with_capacity(25 + clue.len());
    buf.extend_from_slice(b"ledgerdb.shard-route.clue");
    buf.extend_from_slice(clue.as_bytes());
    shard_of_digest(&sha256(&buf), k)
}

fn shard_of_digest(digest: &Digest, k: usize) -> usize {
    let word = u64::from_be_bytes(digest.0[..8].try_into().expect("digest has 32 bytes"));
    (word % k as u64) as usize
}

/// The domain-separated top-tree leaf anchoring `root` as shard
/// `shard`'s sealed journal root at `epoch`. Both sides derive it
/// independently; the client from its **own** verified root.
pub fn anchor_leaf(epoch: u64, shard: u32, root: &Digest) -> Digest {
    let mut buf = Vec::with_capacity(24 + 8 + 4 + 32);
    buf.extend_from_slice(b"ledgerdb.shard-anchor.v1");
    buf.extend_from_slice(&epoch.to_be_bytes());
    buf.extend_from_slice(&shard.to_be_bytes());
    buf.extend_from_slice(&root.0);
    sha256(&buf)
}

/// One epoch cut: every shard's sealed block height and the journal
/// root its newest sealed block recorded (ZERO for a shard with no
/// sealed block yet). These are *claims* on the wire — a distrusting
/// client accepts a record only after matching every root against its
/// own verified chain ([`ShardedClient::ingest_epochs`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochAnchor {
    pub epoch: u64,
    pub heights: Vec<u64>,
    pub roots: Vec<Digest>,
}

impl Wire for EpochAnchor {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        self.heights.encode(w);
        self.roots.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(EpochAnchor {
            epoch: r.get_u64()?,
            heights: Vec::decode(r)?,
            roots: Vec::decode(r)?,
        })
    }
}

/// A shard existence proof composed with a top-level anchor proof.
///
/// Two linked claims, verified separately by [`ShardedClient::verify_composed`]:
/// 1. `tx_hash` exists in shard `shard` — the fam proof checks against
///    the client's **own** shard replica root;
/// 2. the shard's sealed root at `epoch` is committed under the
///    deployment's top root — the Shrubs proof checks against the top
///    tree the client rebuilt from its **own** verified roots.
#[derive(Clone, Debug)]
pub struct ComposedProof {
    pub shard: u32,
    pub local_jsn: u64,
    pub tx_hash: Digest,
    pub shard_proof: FamProof,
    pub epoch: u64,
    /// The sealed shard root the epoch anchored — carried for
    /// cross-checking; the client verifies against its own copy.
    pub anchored_root: Digest,
    pub anchor_proof: ShrubsProof,
}

impl Wire for ComposedProof {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.shard);
        w.put_u64(self.local_jsn);
        self.tx_hash.encode(w);
        self.shard_proof.encode(w);
        w.put_u64(self.epoch);
        self.anchored_root.encode(w);
        self.anchor_proof.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ComposedProof {
            shard: r.get_u32()?,
            local_jsn: r.get_u64()?,
            tx_hash: Digest::decode(r)?,
            shard_proof: FamProof::decode(r)?,
            epoch: r.get_u64()?,
            anchored_root: Digest::decode(r)?,
            anchor_proof: ShrubsProof::decode(r)?,
        })
    }
}

/// The top-level anchor accumulator: a Shrubs tree over per-shard
/// sealed roots, one leaf per shard per epoch (leaf index
/// `epoch * K + shard`), plus the epoch records that index it.
struct AnchorState {
    shrubs: Shrubs,
    epochs: Vec<EpochAnchor>,
}

/// K independent shard ledgers plus the top-level epoch accumulator.
/// Cloning shares all state (each shard is an `Arc` internally, as is
/// the anchor tree) — exactly like [`SharedLedger`].
#[derive(Clone)]
pub struct ShardedLedger {
    shards: Arc<Vec<SharedLedger>>,
    anchors: Arc<Mutex<AnchorState>>,
}

impl ShardedLedger {
    /// Compose K shard ledgers. K must be in `1..=MAX_SHARDS`.
    pub fn new(shards: Vec<SharedLedger>) -> Result<ShardedLedger, LedgerError> {
        if shards.is_empty() || shards.len() > MAX_SHARDS {
            return Err(LedgerError::Shard(format!(
                "shard count {} outside 1..={MAX_SHARDS}",
                shards.len()
            )));
        }
        Ok(ShardedLedger {
            shards: Arc::new(shards),
            anchors: Arc::new(Mutex::new(AnchorState { shrubs: Shrubs::new(), epochs: Vec::new() })),
        })
    }

    /// The K=1 wrapper: one shard, identity packing, no behavioral
    /// change to any existing path.
    pub fn single(shared: SharedLedger) -> ShardedLedger {
        Self::new(vec![shared]).expect("1 is a valid shard count")
    }

    pub fn k(&self) -> usize {
        self.shards.len()
    }

    pub fn shard(&self, i: usize) -> &SharedLedger {
        &self.shards[i]
    }

    pub fn shards(&self) -> &[SharedLedger] {
        &self.shards
    }

    /// Validate a wire shard id.
    pub fn check_shard(&self, shard: usize) -> Result<(), LedgerError> {
        if shard >= self.k() {
            return Err(LedgerError::Shard(format!("unknown shard {shard} (K={})", self.k())));
        }
        Ok(())
    }

    /// Route a request to its shard (stable clue/member hash).
    pub fn route(&self, tx: &TxRequest) -> usize {
        route_of(&tx.clues, &tx.client_pk, self.k())
    }

    /// Route a bare clue (ListTx / GetClueProof).
    pub fn route_clue(&self, clue: &str) -> usize {
        route_clue_str(clue, self.k())
    }

    /// Split a global jsn, rejecting ids that name a shard this
    /// deployment does not have.
    pub fn unpack(&self, global: u64) -> Result<(usize, u64), LedgerError> {
        let (shard, local) = unpack_jsn(global, self.k());
        self.check_shard(shard)?;
        Ok((shard, local))
    }

    /// Pack a shard-local jsn into the global space.
    pub fn pack(&self, shard: usize, local: u64) -> u64 {
        if self.k() <= 1 {
            return local;
        }
        pack_jsn(shard, local)
    }

    /// Seal the pending block of every shard (test/bench convenience).
    pub fn seal_all(&self) {
        for shard in self.shards.iter() {
            shard.seal_block();
        }
    }

    /// Cut a new epoch iff some shard sealed a block since the last cut.
    /// Appends one leaf per shard to the top tree and returns the new
    /// record; `None` when nothing advanced (epochs stay deduplicated,
    /// so the client-side mirror cost is bounded by actual progress).
    pub fn ensure_epoch(&self) -> Option<EpochAnchor> {
        let mut state = self.anchors.lock().expect("anchor lock poisoned");
        let heights: Vec<u64> = self.shards.iter().map(|s| s.block_count()).collect();
        if let Some(last) = state.epochs.last() {
            if last.heights == heights {
                return None;
            }
        }
        let roots: Vec<Digest> = self
            .shards
            .iter()
            .zip(&heights)
            .map(|(shard, &h)| sealed_root_at(shard, h))
            .collect();
        let epoch = state.epochs.len() as u64;
        for (i, root) in roots.iter().enumerate() {
            state.shrubs.append(anchor_leaf(epoch, i as u32, root));
        }
        let record = EpochAnchor { epoch, heights, roots };
        state.epochs.push(record.clone());
        Some(record)
    }

    /// The deployment's single cross-shard commitment.
    pub fn top_root(&self) -> Digest {
        self.anchors.lock().expect("anchor lock poisoned").shrubs.root()
    }

    pub fn epoch_count(&self) -> u64 {
        self.anchors.lock().expect("anchor lock poisoned").epochs.len() as u64
    }

    /// Epoch records from `from` (client mirror catch-up).
    pub fn epochs_from(&self, from: u64) -> Vec<EpochAnchor> {
        let state = self.anchors.lock().expect("anchor lock poisoned");
        state.epochs.iter().skip(from as usize).cloned().collect()
    }

    /// Compose a shard existence proof with the newest epoch's anchor
    /// proof for that shard. The caller supplies its *shard* anchor
    /// (fam-aoa), exactly as with an unsharded `GetProof`.
    pub fn prove_composed(
        &self,
        global_jsn: u64,
        anchor: &TrustedAnchor,
    ) -> Result<ComposedProof, LedgerError> {
        let (shard, local) = self.unpack(global_jsn)?;
        let (tx_hash, shard_proof) = self.shards[shard].prove_existence(local, anchor)?;
        let state = self.anchors.lock().expect("anchor lock poisoned");
        let record = state
            .epochs
            .last()
            .ok_or_else(|| LedgerError::Shard("no epoch anchor cut yet".into()))?;
        let leaf_index = record.epoch * self.k() as u64 + shard as u64;
        let anchor_proof =
            state.shrubs.prove(leaf_index).map_err(LedgerError::Accumulator)?;
        Ok(ComposedProof {
            shard: shard as u32,
            local_jsn: local,
            tx_hash,
            shard_proof,
            epoch: record.epoch,
            anchored_root: record.roots[shard],
            anchor_proof,
        })
    }
}

/// The journal root recorded in a shard's newest sealed block (ZERO
/// before the first seal). Sealed-block roots are what a distrusting
/// client can independently verify from the block feed, which is why
/// epochs anchor them rather than the live (unsealed-tail) root.
fn sealed_root_at(shard: &SharedLedger, height: u64) -> Digest {
    if height == 0 {
        return Digest::ZERO;
    }
    shard
        .blocks_from(height - 1, 1)
        .first()
        .map(|b| b.info.journal_root)
        .unwrap_or(Digest::ZERO)
}

/// The distrusting client across K shards: one [`LedgerClient`] fam
/// replica per shard, the verified per-height root history, and a
/// mirror of the top-level anchor tree built **only** from roots this
/// client verified itself.
pub struct ShardedClient {
    clients: Vec<LedgerClient>,
    /// Per shard: the verified journal root after each sealed block
    /// (index = height - 1). Grown during [`ShardedClient::sync_shard`].
    roots: Vec<Vec<Digest>>,
    shrubs: Shrubs,
    epochs: Vec<EpochAnchor>,
}

impl ShardedClient {
    pub fn new(lsp_pk: PublicKey, fam_delta: u32, k: usize) -> Result<ShardedClient, LedgerError> {
        if k == 0 || k > MAX_SHARDS {
            return Err(LedgerError::Shard(format!("shard count {k} outside 1..={MAX_SHARDS}")));
        }
        Ok(ShardedClient {
            clients: (0..k).map(|_| LedgerClient::new(lsp_pk, fam_delta)).collect(),
            roots: vec![Vec::new(); k],
            shrubs: Shrubs::new(),
            epochs: Vec::new(),
        })
    }

    pub fn k(&self) -> usize {
        self.clients.len()
    }

    pub fn client(&self, shard: usize) -> &LedgerClient {
        &self.clients[shard]
    }

    /// The client's fam-aoa anchor for one shard.
    pub fn anchor(&self, shard: usize) -> TrustedAnchor {
        self.clients[shard].anchor()
    }

    /// Verified block height of one shard's replica.
    pub fn height(&self, shard: usize) -> u64 {
        self.clients[shard].height()
    }

    pub fn epoch_count(&self) -> u64 {
        self.epochs.len() as u64
    }

    /// The top root this client derived from its own verified roots.
    pub fn top_root(&self) -> Digest {
        self.shrubs.root()
    }

    /// Sync one shard's block feed through its replica, recording the
    /// verified journal root at every accepted height. The roots come
    /// from blocks `LedgerClient::sync` just replayed and checked — a
    /// tampered root never reaches the history.
    pub fn sync_shard(&mut self, shard: usize, blocks: &[Block]) -> Result<SyncReport, LedgerError> {
        if shard >= self.k() {
            return Err(LedgerError::Shard(format!("unknown shard {shard} (K={})", self.k())));
        }
        let before = self.clients[shard].height();
        let report = self.clients[shard].sync(blocks)?;
        let after = self.clients[shard].height();
        for block in blocks.iter().filter(|b| b.height >= before && b.height < after) {
            debug_assert_eq!(block.height as usize, self.roots[shard].len());
            self.roots[shard].push(block.info.journal_root);
        }
        Ok(report)
    }

    /// Accept epoch records: each must extend the mirror contiguously,
    /// cover every shard, and claim exactly the roots this client
    /// verified at the claimed heights. Accepted records grow the
    /// client's own top tree. Returns how many records were ingested.
    pub fn ingest_epochs(&mut self, records: &[EpochAnchor]) -> Result<u64, LedgerError> {
        let k = self.k();
        let mut accepted = 0u64;
        for record in records {
            let next = self.epochs.len() as u64;
            if record.epoch < next {
                continue; // Already mirrored.
            }
            if record.epoch > next {
                return Err(LedgerError::Shard(format!(
                    "epoch gap: expected {next}, got {}",
                    record.epoch
                )));
            }
            if record.heights.len() != k || record.roots.len() != k {
                return Err(LedgerError::Shard(format!(
                    "epoch {} covers {} shards, expected {k}",
                    record.epoch,
                    record.heights.len()
                )));
            }
            // Validate every claim against our own verified history
            // before mutating anything: a half-ingested epoch would
            // desync the mirror.
            for shard in 0..k {
                let h = record.heights[shard] as usize;
                if h > self.roots[shard].len() {
                    return Err(LedgerError::Shard(format!(
                        "epoch {} anchors shard {shard} at height {h}, synced only {}",
                        record.epoch,
                        self.roots[shard].len()
                    )));
                }
                let own = if h == 0 { Digest::ZERO } else { self.roots[shard][h - 1] };
                if own != record.roots[shard] {
                    return Err(LedgerError::Shard(format!(
                        "epoch {} claims a shard-{shard} root this client never verified",
                        record.epoch
                    )));
                }
            }
            for shard in 0..k {
                self.shrubs.append(anchor_leaf(record.epoch, shard as u32, &record.roots[shard]));
            }
            self.epochs.push(record.clone());
            accepted += 1;
        }
        Ok(accepted)
    }

    /// Verify a composed proof wholly against this client's own state:
    /// the shard proof against its own shard replica, the anchor proof
    /// against the top tree built from its own verified roots.
    pub fn verify_composed(&self, proof: &ComposedProof) -> Result<(), LedgerError> {
        let shard = proof.shard as usize;
        if shard >= self.k() {
            return Err(LedgerError::Shard(format!("unknown shard {shard} (K={})", self.k())));
        }
        // Claim 1: the tx exists in the shard, relative to our replica.
        self.clients[shard].verify_existence(&proof.tx_hash, &proof.shard_proof)?;
        // Claim 2: the shard's sealed root at the proof's epoch is
        // committed under our own top root.
        let record = self.epochs.get(proof.epoch as usize).ok_or_else(|| {
            LedgerError::Shard(format!("epoch {} not mirrored by this client", proof.epoch))
        })?;
        let h = record.heights[shard] as usize;
        let own_root = if h == 0 { Digest::ZERO } else { self.roots[shard][h - 1] };
        if own_root != proof.anchored_root {
            return Err(LedgerError::Shard(format!(
                "composed proof anchors a shard-{shard} root this client never verified"
            )));
        }
        let expected_index = proof.epoch * self.k() as u64 + shard as u64;
        if proof.anchor_proof.leaf_index != expected_index {
            return Err(LedgerError::Shard(format!(
                "anchor proof names leaf {}, epoch/shard imply {expected_index}",
                proof.anchor_proof.leaf_index
            )));
        }
        let leaf = anchor_leaf(proof.epoch, proof.shard, &own_root);
        Shrubs::verify(&self.top_root(), &leaf, &proof.anchor_proof)
            .map_err(LedgerError::Accumulator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{LedgerConfig, LedgerDb};
    use crate::member::MemberRegistry;
    use ledgerdb_crypto::ca::{CertificateAuthority, Role};
    use ledgerdb_crypto::keys::KeyPair;

    fn fixture(k: usize, block_size: u64) -> (ShardedLedger, KeyPair) {
        let ca = CertificateAuthority::from_seed(b"shard-ca");
        let alice = KeyPair::from_seed(b"shard-alice");
        let shards = (0..k)
            .map(|_| {
                let mut registry = MemberRegistry::new(*ca.public_key());
                registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
                let config = LedgerConfig {
                    block_size,
                    fam_delta: 15,
                    name: "shard-test".into(),
                    state_backend: Default::default(),
                };
                SharedLedger::new(LedgerDb::new(config, registry))
            })
            .collect();
        (ShardedLedger::new(shards).unwrap(), alice)
    }

    fn tx(alice: &KeyPair, nonce: u64, clue: Option<&str>) -> TxRequest {
        let clues = clue.map(|c| vec![c.to_string()]).unwrap_or_default();
        TxRequest::signed(alice, format!("doc-{nonce}").into_bytes(), clues, nonce)
    }

    #[test]
    fn jsn_packing_is_identity_for_shard_zero_and_k1() {
        for jsn in [0u64, 1, 7, LOCAL_JSN_MASK] {
            assert_eq!(pack_jsn(0, jsn), jsn);
            assert_eq!(unpack_jsn(jsn, 1), (0, jsn));
        }
        // K=1 unpack never reinterprets high bits.
        assert_eq!(unpack_jsn(u64::MAX, 1), (0, u64::MAX));
        // K>1 round trip.
        for shard in [0usize, 1, 3, 255] {
            for local in [0u64, 9, LOCAL_JSN_MASK] {
                let global = pack_jsn(shard, local);
                assert_eq!(unpack_jsn(global, 4), (shard, local));
            }
        }
    }

    #[test]
    fn routing_is_deterministic_and_clue_stable() {
        let alice = KeyPair::from_seed(b"router");
        let pk = *alice.public();
        for k in [1usize, 2, 4, 16] {
            for clue in ["asset-1", "asset-2", "x"] {
                let a = route_of(&[clue.to_string()], &pk, k);
                let b = route_of(&[clue.to_string()], &pk, k);
                assert_eq!(a, b);
                assert!(a < k);
                // The second clue never affects the route.
                let c = route_of(&[clue.to_string(), "other".into()], &pk, k);
                assert_eq!(a, c);
            }
            assert!(route_of(&[], &pk, k) < k);
        }
        assert_eq!(route_of(&["anything".into()], &pk, 1), 0);
    }

    #[test]
    fn composed_proof_verifies_in_distrusting_client() {
        let (sharded, alice) = fixture(3, 2);
        for nonce in 0..12u64 {
            let req = tx(&alice, nonce, Some(&format!("asset-{}", nonce % 5)));
            let shard = sharded.route(&req);
            let ack = sharded.shard(shard).append(req).unwrap();
            let global = sharded.pack(shard, ack.jsn);
            assert_eq!(sharded.unpack(global).unwrap(), (shard, ack.jsn));
        }
        sharded.seal_all();
        assert!(sharded.ensure_epoch().is_some());
        // A second cut with no progress is deduplicated.
        assert!(sharded.ensure_epoch().is_none());
        assert_eq!(sharded.epoch_count(), 1);

        // Distrusting client: sync every shard, mirror the epoch.
        let lsp = sharded.shard(0).lsp_public_key();
        let delta = sharded.shard(0).fam_delta();
        let mut client = ShardedClient::new(lsp, delta, 3).unwrap();
        for shard in 0..3 {
            let blocks = sharded.shard(shard).blocks_from(0, u64::MAX);
            client.sync_shard(shard, &blocks).unwrap();
        }
        client.ingest_epochs(&sharded.epochs_from(0)).unwrap();
        assert_eq!(client.top_root(), sharded.top_root());

        // Every appended journal proves end-to-end.
        let mut verified = 0;
        for shard in 0..3usize {
            for local in 0..sharded.shard(shard).journal_count() {
                let global = sharded.pack(shard, local);
                let anchor = client.anchor(shard);
                let proof = sharded.prove_composed(global, &anchor).unwrap();
                client.verify_composed(&proof).unwrap();
                verified += 1;
            }
        }
        assert_eq!(verified, 12);
    }

    #[test]
    fn tampered_composed_proofs_are_rejected() {
        let (sharded, alice) = fixture(2, 2);
        for nonce in 0..8u64 {
            let req = tx(&alice, nonce, Some(&format!("a{nonce}")));
            let shard = sharded.route(&req);
            sharded.shard(shard).append(req).unwrap();
        }
        sharded.seal_all();
        sharded.ensure_epoch().unwrap();
        let lsp = sharded.shard(0).lsp_public_key();
        let delta = sharded.shard(0).fam_delta();
        let mut client = ShardedClient::new(lsp, delta, 2).unwrap();
        for shard in 0..2 {
            client.sync_shard(shard, &sharded.shard(shard).blocks_from(0, u64::MAX)).unwrap();
        }
        client.ingest_epochs(&sharded.epochs_from(0)).unwrap();

        let target = sharded.pack(0, 0);
        let good = sharded.prove_composed(target, &client.anchor(0)).unwrap();
        client.verify_composed(&good).unwrap();

        // A swapped tx hash fails the shard proof.
        let mut bad = good.clone();
        bad.tx_hash = sha256(b"forged");
        assert!(client.verify_composed(&bad).is_err());
        // A forged anchored root fails the root cross-check.
        let mut bad = good.clone();
        bad.anchored_root = sha256(b"other root");
        assert!(client.verify_composed(&bad).is_err());
        // An unknown epoch is refused outright.
        let mut bad = good.clone();
        bad.epoch = 7;
        assert!(client.verify_composed(&bad).is_err());
        // A proof re-pointed at the wrong leaf index is refused.
        let mut bad = good;
        bad.anchor_proof.leaf_index ^= 1;
        assert!(client.verify_composed(&bad).is_err());
    }

    #[test]
    fn lying_epoch_records_are_rejected_by_the_mirror() {
        let (sharded, alice) = fixture(2, 2);
        for nonce in 0..6u64 {
            let req = tx(&alice, nonce, Some(&format!("b{nonce}")));
            let shard = sharded.route(&req);
            sharded.shard(shard).append(req).unwrap();
        }
        sharded.seal_all();
        sharded.ensure_epoch().unwrap();
        let lsp = sharded.shard(0).lsp_public_key();
        let delta = sharded.shard(0).fam_delta();
        let mut client = ShardedClient::new(lsp, delta, 2).unwrap();
        for shard in 0..2 {
            client.sync_shard(shard, &sharded.shard(shard).blocks_from(0, u64::MAX)).unwrap();
        }
        let mut records = sharded.epochs_from(0);
        // Tamper with one claimed root: the client must refuse the record.
        let pristine = records.clone();
        records[0].roots[1] = sha256(b"lying root");
        assert!(client.ingest_epochs(&records).is_err());
        assert_eq!(client.epoch_count(), 0);
        // A record anchoring beyond the synced height is refused too.
        let mut ahead = pristine.clone();
        ahead[0].heights[0] += 10;
        assert!(client.ingest_epochs(&ahead).is_err());
        // The pristine record still ingests cleanly afterwards.
        client.ingest_epochs(&pristine).unwrap();
        assert_eq!(client.epoch_count(), 1);
    }

    /// The structural multi-core claim on a 1-CPU box (PR-5 precedent):
    /// shard write locks are disjoint, so holding shard 0's write lock
    /// hostage cannot block an append on shard 1.
    #[test]
    fn shard_lock_windows_are_independent() {
        let (sharded, alice) = fixture(2, 64);
        let hostage = sharded.shard(0).clone();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (held_tx, held_rx) = std::sync::mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            hostage.with_write(|_| {
                held_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
        });
        held_rx.recv().unwrap();
        // Shard 0's write lock is held right now. Find a request that
        // routes to shard 1 and append it — it must complete without
        // waiting on the hostage lock.
        let mut nonce = 0u64;
        let req = loop {
            let candidate = tx(&alice, nonce, Some(&format!("probe-{nonce}")));
            if sharded.route(&candidate) == 1 {
                break candidate;
            }
            nonce += 1;
        };
        let ack = sharded.shard(1).append(req).unwrap();
        assert_eq!(ack.jsn, 0);
        release_tx.send(()).unwrap();
        holder.join().unwrap();
    }
}
