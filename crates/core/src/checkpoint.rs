//! Checkpoint serialization: sealed-prefix state ⇄ content-addressed
//! segments.
//!
//! A checkpoint captures the **entire metadata state** of the ledger at a
//! seal boundary — journals, blocks, fam tree, CM-Tree, world state,
//! occult bitmap, pseudo genesis and survival milestones — as six
//! content-addressed segments plus a manifest carrying the covered
//! watermarks `(journal_count, block_count)` and the three roots. The
//! payload stream is *not* captured: it is an independent append-only
//! file whose slots the checkpointed journals reference by index.
//!
//! After a checkpoint commits, the metadata WAL is reset to empty
//! ([`ledgerdb_storage::StreamStore::reset`]), so a restart becomes
//! *load checkpoint + replay the post-checkpoint WAL tail* — O(tail)
//! replay work instead of O(history).
//!
//! Loading **re-derives every root from the deserialized structures**
//! and cross-checks them against the manifest and the last covered
//! block, so a corrupted or tampered checkpoint is rejected rather than
//! silently installed (the same posture as snapshot restore and WAL
//! replay). The skip list is not serialized at all — it is rebuilt from
//! the checkpointed journals, which is deterministic because each
//! per-clue list seeds its own generator.

use crate::ledger::{LedgerDb, PseudoGenesis};
use crate::types::{Block, Journal, LedgerInfo};
use crate::LedgerError;
use ledgerdb_accumulator::fam::{FamParts, FamTree};
use ledgerdb_accumulator::shrubs::Shrubs;
use ledgerdb_clue::cm_tree::CmTree;
use ledgerdb_clue::csl::ClueSkipList;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::sha256::Sha256;
use ledgerdb_crypto::wire::{Reader, Wire, WireError, Writer};
use crate::state::{StateBackend, StateCommitment, WorldState};
use ledgerdb_storage::checkpoint::{CheckpointStore, CkptIo};
use ledgerdb_storage::occult_index::OccultIndex;

/// Manifest format version.
const MANIFEST_VERSION: u32 = 1;

/// Segment role names, in canonical write order.
const ROLES: [&str; 6] = ["journals", "blocks", "fam", "cm", "state", "aux"];

/// The checkpoint manifest: what the snapshot id commits to.
#[derive(Clone, Debug)]
pub struct CheckpointManifest {
    /// Ledger identity the checkpoint belongs to.
    pub ledger_id: Digest,
    /// Journals covered (`jsn < journal_count` lives in the checkpoint).
    pub journal_count: u64,
    /// Blocks covered (`height < block_count`).
    pub block_count: u64,
    /// The three roots at the covered seal boundary.
    pub info: LedgerInfo,
    /// `(role, content digest)` of every segment.
    pub segments: Vec<(String, Digest)>,
}

impl Wire for CheckpointManifest {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(MANIFEST_VERSION);
        self.ledger_id.encode(w);
        w.put_u64(self.journal_count);
        w.put_u64(self.block_count);
        self.info.encode(w);
        self.segments.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        if r.get_u32()? != MANIFEST_VERSION {
            return Err(WireError::Invalid("unsupported checkpoint manifest version"));
        }
        Ok(CheckpointManifest {
            ledger_id: Digest::decode(r)?,
            journal_count: r.get_u64()?,
            block_count: r.get_u64()?,
            info: LedgerInfo::decode(r)?,
            segments: Vec::decode(r)?,
        })
    }
}

fn encode_shrubs(w: &mut Writer, s: &Shrubs) {
    w.put_u64(s.leaf_count());
    s.nodes().to_vec().encode(w);
}

fn decode_shrubs(r: &mut Reader<'_>) -> Result<Shrubs, WireError> {
    let leaf_count = r.get_u64()?;
    let nodes = Vec::<Digest>::decode(r)?;
    Shrubs::from_parts(nodes, leaf_count)
        .map_err(|_| WireError::Invalid("shrubs node storage does not match leaf count"))
}

fn encode_fam(parts: &FamParts) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(parts.delta);
    parts.sealed_roots.encode(&mut w);
    w.put_u64(parts.epochs.len() as u64);
    for epoch in &parts.epochs {
        match epoch {
            Some(tree) => {
                w.put_bool(true);
                encode_shrubs(&mut w, tree);
            }
            None => w.put_bool(false),
        }
    }
    encode_shrubs(&mut w, &parts.current);
    parts.epoch_first_jsn.encode(&mut w);
    w.put_u64(parts.journal_count);
    w.into_bytes()
}

fn decode_fam(bytes: &[u8]) -> Result<FamParts, WireError> {
    let mut r = Reader::new(bytes);
    let delta = r.get_u32()?;
    let sealed_roots = Vec::<Digest>::decode(&mut r)?;
    let n = r.get_seq_len(1)?;
    let mut epochs = Vec::with_capacity(n);
    for _ in 0..n {
        epochs.push(if r.get_bool()? { Some(decode_shrubs(&mut r)?) } else { None });
    }
    let current = decode_shrubs(&mut r)?;
    let epoch_first_jsn = Vec::<u64>::decode(&mut r)?;
    let journal_count = r.get_u64()?;
    r.finish()?;
    Ok(FamParts { delta, sealed_roots, epochs, current, epoch_first_jsn, journal_count })
}

fn encode_cm(parts: &[(String, Shrubs, Vec<u64>)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(parts.len() as u64);
    for (clue, subtree, refs) in parts {
        clue.encode(&mut w);
        encode_shrubs(&mut w, subtree);
        refs.encode(&mut w);
    }
    w.into_bytes()
}

fn decode_cm(bytes: &[u8]) -> Result<Vec<(String, Shrubs, Vec<u64>)>, WireError> {
    let mut r = Reader::new(bytes);
    let n = r.get_seq_len(1)?;
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let clue = String::decode(&mut r)?;
        let subtree = decode_shrubs(&mut r)?;
        let refs = Vec::<u64>::decode(&mut r)?;
        parts.push((clue, subtree, refs));
    }
    r.finish()?;
    Ok(parts)
}

/// Auxiliary state: pseudo genesis, occult bitmap, survival milestones.
struct Aux {
    pseudo_genesis: Option<(u64, u64, LedgerInfo, Digest)>,
    occult_bits: Vec<u64>,
    occult_anchor: u64,
    survival: Vec<(u64, Vec<u8>)>,
}

fn encode_aux(aux: &Aux) -> Vec<u8> {
    let mut w = Writer::new();
    match &aux.pseudo_genesis {
        Some((purge_to, jsn, info, hash)) => {
            w.put_bool(true);
            w.put_u64(*purge_to);
            w.put_u64(*jsn);
            info.encode(&mut w);
            hash.encode(&mut w);
        }
        None => w.put_bool(false),
    }
    aux.occult_bits.encode(&mut w);
    w.put_u64(aux.occult_anchor);
    aux.survival.encode(&mut w);
    w.into_bytes()
}

fn decode_aux(bytes: &[u8]) -> Result<Aux, WireError> {
    let mut r = Reader::new(bytes);
    let pseudo_genesis = if r.get_bool()? {
        Some((r.get_u64()?, r.get_u64()?, LedgerInfo::decode(&mut r)?, Digest::decode(&mut r)?))
    } else {
        None
    };
    let occult_bits = Vec::<u64>::decode(&mut r)?;
    let occult_anchor = r.get_u64()?;
    let survival = Vec::<(u64, Vec<u8>)>::decode(&mut r)?;
    r.finish()?;
    Ok(Aux { pseudo_genesis, occult_bits, occult_anchor, survival })
}

/// Serialize the ledger's sealed-prefix state and commit it to `store`.
///
/// The ledger must be at a seal boundary (`pending` empty) — the WAL
/// reset that follows a successful checkpoint assumes every WAL record
/// is covered. Returns `(snapshot id, bytes written, segment digests)`;
/// the digests feed [`CheckpointStore::gc`].
pub(crate) fn write_checkpoint(
    ledger: &LedgerDb,
    store: &CheckpointStore,
    io: &CkptIo,
) -> Result<(Digest, u64, Vec<Digest>), LedgerError> {
    if !ledger.pending.is_empty() {
        return Err(LedgerError::Recovery(
            "checkpoint requires a seal boundary (pending journals exist)".to_string(),
        ));
    }
    let aux = Aux {
        pseudo_genesis: ledger
            .pseudo_genesis
            .as_ref()
            .map(|g| (g.purge_to, g.purge_journal_jsn, g.snapshot, g.genesis_hash)),
        occult_bits: ledger.occult_index.export_parts().0,
        occult_anchor: ledger.occult_index.export_parts().1,
        survival: ledger
            .survival
            .milestones()
            .into_iter()
            .map(|m| (m.jsn, m.payload))
            .collect(),
    };
    let segments: Vec<(String, Vec<u8>)> = vec![
        ("journals".to_string(), ledger.journals.to_wire()),
        ("blocks".to_string(), ledger.blocks.to_wire()),
        ("fam".to_string(), encode_fam(&ledger.fam.export_parts())),
        ("cm".to_string(), encode_cm(&ledger.cm_tree.export_parts())),
        ("state".to_string(), ledger.world_state.canonical_entries().to_wire()),
        ("aux".to_string(), encode_aux(&aux)),
    ];
    let ledger_id = ledger.id;
    let journal_count = ledger.journals.len() as u64;
    let block_count = ledger.blocks.len() as u64;
    let info = LedgerInfo {
        journal_root: ledger.fam.root(),
        clue_root: ledger.cm_tree.root(),
        state_root: ledger.world_state.commitment_root(),
    };
    let (snapshot_id, bytes) = store.publish(
        &segments,
        |refs| {
            CheckpointManifest {
                ledger_id,
                journal_count,
                block_count,
                info,
                segments: refs.to_vec(),
            }
            .to_wire()
        },
        io,
    )?;
    let digests = segments.iter().map(|(_, b)| ledgerdb_crypto::sha256(b)).collect();
    Ok((snapshot_id, bytes, digests))
}

/// A checkpoint deserialized, verified, and ready to install into a
/// fresh kernel.
pub(crate) struct LoadedCheckpoint {
    pub snapshot_id: Digest,
    pub manifest: CheckpointManifest,
    pub journals: Vec<Journal>,
    pub blocks: Vec<Block>,
    pub tx_hashes: Vec<Digest>,
    pub fam: FamTree,
    pub cm_tree: CmTree,
    pub csl: ClueSkipList,
    pub world_state: WorldState,
    pub occult_index: OccultIndex,
    pub pseudo_genesis: Option<PseudoGenesis>,
    pub survival: Vec<(u64, Vec<u8>)>,
}

fn wire_err(what: &str, e: WireError) -> LedgerError {
    LedgerError::Recovery(format!("checkpoint {what} undecodable: {e}"))
}

/// Load and fully verify the current checkpoint, if one exists.
///
/// Every root is **re-derived** from the deserialized structures and
/// checked against the manifest; the block chain is re-linked; the fam,
/// CM-Tree and world-state roots must reproduce the manifest's
/// `LedgerInfo` exactly. `Ok(None)` means no checkpoint was ever
/// committed; any damaged state is a hard [`LedgerError::Recovery`].
pub(crate) fn load_checkpoint(
    store: &CheckpointStore,
    expected_id: &Digest,
    expected_delta: u32,
    state_backend: StateBackend,
) -> Result<Option<LoadedCheckpoint>, LedgerError> {
    let Some((snapshot_id, manifest_bytes)) = store.load_head()? else {
        return Ok(None);
    };
    let manifest = CheckpointManifest::from_wire(&manifest_bytes)
        .map_err(|e| wire_err("manifest", e))?;
    if manifest.ledger_id != *expected_id {
        return Err(LedgerError::Recovery(
            "checkpoint belongs to a different ledger".to_string(),
        ));
    }
    let seg = |role: &str| -> Result<Vec<u8>, LedgerError> {
        let (_, digest) = manifest
            .segments
            .iter()
            .find(|(r, _)| r == role)
            .ok_or_else(|| LedgerError::Recovery(format!("checkpoint missing segment '{role}'")))?;
        Ok(store.read_segment(digest)?)
    };
    for role in ROLES {
        // Every canonical role must be present (extra roles are ignored
        // for forward compatibility).
        if !manifest.segments.iter().any(|(r, _)| r == role) {
            return Err(LedgerError::Recovery(format!("checkpoint missing segment '{role}'")));
        }
    }

    let journals = Vec::<Journal>::from_wire(&seg("journals")?)
        .map_err(|e| wire_err("journals segment", e))?;
    let blocks =
        Vec::<Block>::from_wire(&seg("blocks")?).map_err(|e| wire_err("blocks segment", e))?;
    let fam_parts = decode_fam(&seg("fam")?).map_err(|e| wire_err("fam segment", e))?;
    let cm_parts = decode_cm(&seg("cm")?).map_err(|e| wire_err("cm segment", e))?;
    let state_entries = Vec::<(Vec<u8>, Vec<u8>)>::from_wire(&seg("state")?)
        .map_err(|e| wire_err("state segment", e))?;
    let aux = decode_aux(&seg("aux")?).map_err(|e| wire_err("aux segment", e))?;

    // --- Structural verification ---------------------------------------
    if journals.len() as u64 != manifest.journal_count {
        return Err(LedgerError::Recovery("checkpoint journal count mismatch".to_string()));
    }
    for (i, j) in journals.iter().enumerate() {
        if j.jsn != i as u64 {
            return Err(LedgerError::Recovery(format!(
                "checkpoint journal {i} carries jsn {}",
                j.jsn
            )));
        }
    }
    if blocks.len() as u64 != manifest.block_count {
        return Err(LedgerError::Recovery("checkpoint block count mismatch".to_string()));
    }
    let mut covered = 0u64;
    for (i, b) in blocks.iter().enumerate() {
        if b.height != i as u64 || b.first_jsn != covered {
            return Err(LedgerError::Recovery(format!(
                "checkpoint block {i} out of sequence"
            )));
        }
        covered += b.journal_count;
        if i > 0 && b.prev_block_hash != blocks[i - 1].hash() {
            return Err(LedgerError::Recovery(format!(
                "checkpoint block {i} chain link broken"
            )));
        }
    }
    // Seal-boundary invariant: the blocks cover every journal exactly.
    if covered != manifest.journal_count {
        return Err(LedgerError::Recovery(
            "checkpoint blocks do not cover its journals (not a seal boundary)".to_string(),
        ));
    }
    if fam_parts.delta != expected_delta {
        return Err(LedgerError::Recovery(format!(
            "checkpoint fam delta {} does not match configuration {expected_delta}",
            fam_parts.delta
        )));
    }
    if fam_parts.journal_count != manifest.journal_count {
        return Err(LedgerError::Recovery("checkpoint fam journal count mismatch".to_string()));
    }

    // --- Rebuild and re-derive -----------------------------------------
    let fam = FamTree::from_parts(fam_parts)
        .map_err(|e| LedgerError::Recovery(format!("checkpoint fam rejected: {e}")))?;
    let cm_tree = CmTree::from_parts(cm_parts)
        .map_err(|e| LedgerError::Recovery(format!("checkpoint cm-tree rejected: {e}")))?;
    // The segment is backend-independent (canonical sorted pairs);
    // the configured backend decides which commitment re-derives — and
    // must reproduce the manifest roots, so a checkpoint written under
    // a different backend is rejected rather than silently re-rooted.
    let mut world_state = WorldState::new(state_backend);
    for (key, value) in &state_entries {
        world_state.insert_kv(key, value.clone());
    }
    let info = LedgerInfo {
        journal_root: fam.root(),
        clue_root: cm_tree.root(),
        state_root: world_state.commitment_root(),
    };
    if info != manifest.info {
        return Err(LedgerError::Recovery(
            "checkpoint roots do not re-derive from its segments".to_string(),
        ));
    }
    if let Some(last) = blocks.last() {
        if last.info != manifest.info {
            return Err(LedgerError::Recovery(
                "checkpoint roots disagree with its last covered block".to_string(),
            ));
        }
    }

    // tx-hashes are recomputed from the journals (never trusted), and
    // the skip list is rebuilt the same way the commit path built it —
    // per-clue generators make this deterministic.
    let tx_hashes: Vec<Digest> = journals.iter().map(|j| j.tx_hash()).collect();
    let mut csl = ClueSkipList::new();
    for j in &journals {
        for clue in &j.clues {
            csl.append(clue, j.jsn);
        }
    }
    let pseudo_genesis = aux.pseudo_genesis.map(|(purge_to, purge_journal_jsn, snapshot, _)| {
        // The genesis hash is re-derived, not trusted from the segment.
        let genesis_hash = crate::ledger::pseudo_genesis_hash(expected_id, purge_to, &snapshot);
        PseudoGenesis { purge_to, purge_journal_jsn, snapshot, genesis_hash }
    });
    if let (Some(g), Some((_, _, _, stored))) = (&pseudo_genesis, &aux.pseudo_genesis) {
        if g.genesis_hash != *stored {
            return Err(LedgerError::Recovery(
                "checkpoint pseudo-genesis hash does not re-derive".to_string(),
            ));
        }
    }
    let occult_index = OccultIndex::from_parts(aux.occult_bits, aux.occult_anchor);

    Ok(Some(LoadedCheckpoint {
        snapshot_id,
        manifest,
        journals,
        blocks,
        tx_hashes,
        fam,
        cm_tree,
        csl,
        world_state,
        occult_index,
        pseudo_genesis,
        survival: aux.survival,
    }))
}

impl LedgerDb {
    /// A digest of the ledger's complete logical state — everything a
    /// recovered kernel must reproduce byte-for-byte. The crash-point
    /// harness compares this fingerprint between a recovered ledger and
    /// a never-crashed control.
    pub fn state_fingerprint(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.fingerprint.v1");
        h.update(&self.id.0);
        h.update(&(self.journals.len() as u64).to_be_bytes());
        h.update(&(self.blocks.len() as u64).to_be_bytes());
        for tx in &self.tx_hashes {
            h.update(&tx.0);
        }
        for (i, j) in self.journals.iter().enumerate() {
            let erased = self.store.is_erased(j.stream_index).unwrap_or(true);
            h.update(&[erased as u8, self.occult_index.is_marked(i as u64) as u8]);
        }
        for b in &self.blocks {
            h.update(&b.hash().0);
        }
        for &jsn in &self.pending {
            h.update(&jsn.to_be_bytes());
        }
        h.update(&self.fam.root().0);
        h.update(&self.cm_tree.root().0);
        h.update(&self.world_state.commitment_root().0);
        for root in self.fam.sealed_roots() {
            h.update(&root.0);
        }
        match &self.pseudo_genesis {
            Some(g) => {
                h.update(&[1]);
                h.update(&g.purge_to.to_be_bytes());
                h.update(&g.purge_journal_jsn.to_be_bytes());
                h.update(&g.genesis_hash.0);
            }
            None => h.update(&[0]),
        }
        let (bits, anchor) = self.occult_index.export_parts();
        for word in bits {
            h.update(&word.to_be_bytes());
        }
        h.update(&anchor.to_be_bytes());
        for m in self.survival.milestones() {
            h.update(&m.jsn.to_be_bytes());
            h.update(&m.digest.0);
        }
        Digest(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::MemberRegistry;
    use crate::recovery::{open_durable, CHECKPOINT_DIR, WAL_FILE};
    use crate::types::TxRequest;
    use crate::LedgerConfig;
    use ledgerdb_crypto::ca::{CertificateAuthority, Role};
    use ledgerdb_crypto::keys::KeyPair;
    use ledgerdb_crypto::multisig::MultiSignature;
    use ledgerdb_storage::stream::FsyncPolicy;
    use ledgerdb_timesvc::clock::SimClock;
    use std::sync::Arc;

    struct Members {
        dba: KeyPair,
        alice: KeyPair,
    }

    fn members() -> (MemberRegistry, Members) {
        let ca = CertificateAuthority::from_seed(b"ckpt-ca");
        let dba = KeyPair::from_seed(b"ckpt-dba");
        let regulator = KeyPair::from_seed(b"ckpt-reg");
        let alice = KeyPair::from_seed(b"ckpt-alice");
        let mut registry = MemberRegistry::new(*ca.public_key());
        registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
        registry.register(ca.issue("regulator", Role::Regulator, regulator.public())).unwrap();
        registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
        (registry, Members { dba, alice })
    }

    fn config(block_size: u64) -> LedgerConfig {
        LedgerConfig {
            block_size,
            fam_delta: 4,
            name: "ckpt-test".into(),
            state_backend: Default::default(),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ledgerdb-ckpt-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn tx(keys: &KeyPair, payload: &[u8], clues: &[&str], nonce: u64) -> TxRequest {
        TxRequest::signed(
            keys,
            payload.to_vec(),
            clues.iter().map(|s| s.to_string()).collect(),
            nonce,
        )
    }

    fn enable(ledger: &mut crate::LedgerDb, dir: &std::path::Path, every: u64) {
        let store = Arc::new(CheckpointStore::open(&dir.join(CHECKPOINT_DIR)).unwrap());
        ledger.enable_checkpoints(store, Arc::new(CkptIo::new()), every);
    }

    #[test]
    fn checkpointed_reopen_is_byte_identical_and_o_tail() {
        let dir = temp_dir("roundtrip");
        let (registry, m) = members();
        let fingerprint = {
            let (mut ledger, _) = open_durable(
                config(4),
                registry.clone(),
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap();
            enable(&mut ledger, &dir, 1);
            for i in 0..10u64 {
                ledger.append(tx(&m.alice, &i.to_be_bytes(), &["clue"], i)).unwrap();
            }
            assert!(ledger.durability_error().is_none(), "checkpoints committed cleanly");
            ledger.state_fingerprint()
        };
        // The WAL must have shrunk to the unsealed tail: 10 appends with
        // block size 4 leave exactly 2 journal records after the last
        // checkpoint (which covered the 8 sealed ones and both seals).
        let wal = ledgerdb_storage::stream::FileStreamStore::open(&dir.join(WAL_FILE)).unwrap();
        use ledgerdb_storage::stream::StreamStore as _;
        assert_eq!(wal.len(), 2, "WAL bounded by the post-checkpoint tail");
        drop(wal);

        let (ledger, report) = open_durable(
            config(4),
            registry,
            &dir,
            FsyncPolicy::Always,
            Arc::new(SimClock::new()),
        )
        .unwrap();
        assert!(report.checkpoint.is_some(), "reopen started from the checkpoint");
        assert_eq!(report.checkpoint_journals, 8);
        assert_eq!(report.checkpoint_blocks, 2);
        assert_eq!(report.journals_replayed, 2, "only the tail replayed");
        assert_eq!(report.skipped_wal_records, 0, "reset WAL holds no covered records");
        assert!(report.is_clean(), "clean checkpointed reopen: {report:?}");
        assert_eq!(ledger.state_fingerprint(), fingerprint);
        assert_eq!(ledger.journal_count(), 10);
        assert_eq!(ledger.get_payload(3).unwrap(), 3u64.to_be_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn purge_then_checkpoint_round_trips() {
        let dir = temp_dir("purge");
        let (registry, m) = members();
        let fingerprint = {
            let (mut ledger, _) = open_durable(
                config(4),
                registry.clone(),
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap();
            enable(&mut ledger, &dir, 2);
            for i in 0..8u64 {
                ledger.append(tx(&m.alice, &i.to_be_bytes(), &["c"], i)).unwrap();
            }
            let digest = ledger.purge_approval_digest(4);
            let mut ms = MultiSignature::new();
            ms.add(&m.dba, &digest);
            ms.add(&m.alice, &digest);
            ledger.purge(4, ms, &[2], false).unwrap();
            // The purge journal plus enough to reach the next seal → the
            // post-purge checkpoint the purge scheduled.
            for i in 8..11u64 {
                ledger.append(tx(&m.alice, &i.to_be_bytes(), &["c"], i + 10)).unwrap();
            }
            assert!(ledger.durability_error().is_none());
            ledger.state_fingerprint()
        };
        let (ledger, report) = open_durable(
            config(4),
            registry,
            &dir,
            FsyncPolicy::Always,
            Arc::new(SimClock::new()),
        )
        .unwrap();
        assert!(report.checkpoint.is_some());
        assert_eq!(ledger.state_fingerprint(), fingerprint);
        let genesis = ledger.pseudo_genesis().unwrap();
        assert_eq!(genesis.purge_to, 4);
        assert!(matches!(ledger.get_tx(0), Err(crate::LedgerError::Purged(0))));
        assert_eq!(ledger.survival().milestones().len(), 1, "pinned survivor restored");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_checkpoint_segment_refuses_to_load() {
        let dir = temp_dir("tamper");
        let (registry, m) = members();
        {
            let (mut ledger, _) = open_durable(
                config(2),
                registry.clone(),
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap();
            enable(&mut ledger, &dir, 1);
            for i in 0..4u64 {
                ledger.append(tx(&m.alice, &i.to_be_bytes(), &["c"], i)).unwrap();
            }
        }
        // Flip a byte in the largest segment file (the WAL is already
        // reset, so there is no replay fallback — load must fail loudly).
        let seg = std::fs::read_dir(dir.join(CHECKPOINT_DIR))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "seg"))
            .max_by_key(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();

        match open_durable(config(2), registry, &dir, FsyncPolicy::Always, Arc::new(SimClock::new()))
        {
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("corrupt") || msg.contains("checkpoint"),
                    "tamper surfaced as a checkpoint fault: {msg}"
                );
            }
            Ok(_) => panic!("tampered checkpoint must not load"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_wire_round_trip_rejects_bad_version() {
        let manifest = CheckpointManifest {
            ledger_id: ledgerdb_crypto::sha256(b"id"),
            journal_count: 7,
            block_count: 2,
            info: LedgerInfo {
                journal_root: ledgerdb_crypto::sha256(b"a"),
                clue_root: ledgerdb_crypto::sha256(b"b"),
                state_root: ledgerdb_crypto::sha256(b"c"),
            },
            segments: vec![("journals".to_string(), ledgerdb_crypto::sha256(b"s"))],
        };
        let bytes = manifest.to_wire();
        let back = CheckpointManifest::from_wire(&bytes).unwrap();
        assert_eq!(back.journal_count, 7);
        assert_eq!(back.segments, manifest.segments);
        let mut bad = bytes.clone();
        bad[3] = 9; // version little/big-endian byte — either way ≠ 1
        assert!(CheckpointManifest::from_wire(&bad).is_err());
    }
}
