//! The ledger kernel: append path, blocks, proofs, purge and occult.

use crate::member::MemberRegistry;
use crate::types::{Block, Journal, JournalKind, LedgerInfo, Receipt, TxRequest, VerifyLevel};
use crate::LedgerError;
use ledgerdb_accumulator::fam::{FamProof, FamTree, TrustedAnchor};
use ledgerdb_clue::cm_tree::{ClueProof, CmTree};
use ledgerdb_clue::csl::ClueSkipList;
use ledgerdb_crypto::ca::Role;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::keys::{KeyPair, PublicKey};
use ledgerdb_crypto::multisig::MultiSignature;
use ledgerdb_crypto::sha256::{sha256, Sha256};
use ledgerdb_crypto::Wire as _;
use crate::state::{StateBackend, StateCommitment, StateProof, WorldState};
use ledgerdb_storage::checkpoint::{CheckpointStore, CkptIo};
use ledgerdb_storage::occult_index::OccultIndex;
use ledgerdb_storage::stream::{MemoryStreamStore, StreamStore};
use ledgerdb_storage::survival::SurvivalStream;
use ledgerdb_timesvc::clock::{Clock, SimClock};
use ledgerdb_timesvc::tledger::TLedger;
use std::sync::Arc;

/// Ledger construction options.
pub struct LedgerConfig {
    /// Journals per sealed block.
    pub block_size: u64,
    /// fam fractal height δ (epoch capacity `2^δ`).
    pub fam_delta: u32,
    /// Human-readable ledger name (mixed into the ledger id).
    pub name: String,
    /// World-state commitment backend. The default ([`StateBackend::Mpt`])
    /// is byte-identical to pre-trait ledgers; `Bin` opts into the
    /// compact-witness binary trie. Never serialized: recovery re-reads
    /// it from the operator's configuration, and checkpoint segments are
    /// backend-independent.
    pub state_backend: StateBackend,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        LedgerConfig {
            block_size: 16,
            fam_delta: 15,
            name: "ledger".to_string(),
            state_backend: StateBackend::default(),
        }
    }
}

/// Synchronous vs asynchronous occult (§III-A3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OccultMode {
    /// Erase the payload immediately.
    Sync,
    /// Mark now; erase later via [`LedgerDb::reorganize`].
    Async,
}

/// Acknowledgement returned by `append` before block commitment.
#[derive(Clone, Copy, Debug)]
pub struct AppendAck {
    pub jsn: u64,
    pub tx_hash: Digest,
}

/// A request with its digests precomputed — the unit the pipelined
/// append path hands to the locked commit stage.
///
/// `payload_digest` and `request_hash` depend only on the request
/// bytes, so they can be computed (and π_c verified) on any thread
/// *before* the ledger write lock is taken. What remains in-lock is
/// purely structural: slot assignment, one canonical journal hash over
/// the lock-assigned `(jsn, timestamp)`, tree inserts and the WAL
/// write.
#[derive(Clone, Debug)]
pub struct PreparedTx {
    pub request: TxRequest,
    /// `sha256(request.payload)`.
    pub payload_digest: Digest,
    /// [`TxRequest::hash`] of the request.
    pub request_hash: Digest,
}

impl PreparedTx {
    /// Digest a request. Pure CPU work — safe to fan out across a pool.
    pub fn compute(request: TxRequest) -> PreparedTx {
        let payload_digest = sha256(&request.payload);
        let request_hash = request.hash();
        PreparedTx { request, payload_digest, request_hash }
    }
}

/// Snapshot taken by a purge: the pseudo genesis (§III-A2).
#[derive(Clone, Debug)]
pub struct PseudoGenesis {
    /// Journals below this jsn are purged.
    pub purge_to: u64,
    /// The jsn of the purge journal this genesis is doubly linked with.
    pub purge_journal_jsn: u64,
    /// Snapshot of the ledger roots at the purge point.
    pub snapshot: LedgerInfo,
    /// Hash binding the pseudo genesis (the audit's replay start datum).
    pub genesis_hash: Digest,
}

/// Automatic checkpoint policy: every `every_n_seals` sealed blocks,
/// serialize the sealed-prefix state into the store (crash-atomically)
/// and reset the metadata WAL, bounding restart replay to the
/// post-checkpoint tail.
pub struct CheckpointPolicy {
    pub(crate) store: Arc<CheckpointStore>,
    pub(crate) io: Arc<CkptIo>,
    pub(crate) every_n_seals: u64,
    /// Seals since the last committed checkpoint. A purge sets this to
    /// `every_n_seals` so the stale covering checkpoint is replaced at
    /// the next seal boundary.
    pub(crate) seals_since: u64,
    /// Coverage of the newest committed checkpoint, as
    /// `(journal_count, block_count)` — the manifest watermark. `None`
    /// until a checkpoint exists. Surfaced on the operator `/status`
    /// endpoint so drain/restart behavior is observable.
    pub(crate) last_watermark: Option<(u64, u64)>,
    /// Snapshot id of the newest committed checkpoint (the manifest
    /// HEAD names it). Surfaced on `/status` next to the watermark.
    pub(crate) last_snapshot_id: Option<Digest>,
}

/// The LedgerDB instance.
pub struct LedgerDb {
    pub(crate) id: Digest,
    pub(crate) config: LedgerConfig,
    pub(crate) lsp_keys: KeyPair,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) store: Arc<dyn StreamStore>,
    pub(crate) registry: MemberRegistry,

    pub(crate) journals: Vec<Journal>,
    pub(crate) blocks: Vec<Block>,
    /// Journals appended since the last sealed block.
    pub(crate) pending: Vec<u64>,

    pub(crate) fam: FamTree,
    pub(crate) cm_tree: CmTree,
    pub(crate) csl: ClueSkipList,
    pub(crate) world_state: WorldState,

    pub(crate) occult_index: OccultIndex,
    pub(crate) survival: SurvivalStream,
    pub(crate) pseudo_genesis: Option<PseudoGenesis>,

    /// Cached tx-hashes, index-aligned with `journals`.
    pub(crate) tx_hashes: Vec<Digest>,

    /// Metadata write-ahead log: every journal and every sealed block is
    /// appended here before the in-memory kernel mutates, so a crash can
    /// be recovered by replay ([`crate::recovery`]). `None` for purely
    /// in-memory ledgers.
    pub(crate) wal: Option<Arc<dyn StreamStore>>,
    /// A durability failure stashed by an infallible path (the auto-seal
    /// inside the append hot path). The next fallible operation surfaces
    /// it instead of silently dropping it.
    pub(crate) durability_error: Option<LedgerError>,
    /// Telemetry handles (global registry unless rebound).
    pub(crate) metrics: crate::metrics::CoreMetrics,
    /// The snapshot read path's publication hub, installed by
    /// [`crate::SharedLedger::new`]. `None` for standalone ledgers —
    /// every snapshot hook is then a no-op.
    pub(crate) snapshot_hub: Option<Arc<crate::snapshot::SnapshotHub>>,
    /// Compute pool for the seal fan-out. `None` (the default) keeps
    /// every path serial; installing a pool changes scheduling only —
    /// all digests are pure, so roots are byte-identical either way.
    pub(crate) pool: Option<Arc<ledgerdb_pool::Pool>>,
    /// Automatic checkpoint policy ([`LedgerDb::enable_checkpoints`]).
    pub(crate) checkpoints: Option<CheckpointPolicy>,
}

impl LedgerDb {
    /// Create a ledger with an in-memory stream store and simulated clock
    /// (the common test/bench configuration).
    pub fn new(config: LedgerConfig, registry: MemberRegistry) -> Self {
        Self::with_parts(
            config,
            registry,
            Arc::new(MemoryStreamStore::new()),
            Arc::new(SimClock::new()),
        )
    }

    /// Create a ledger over explicit storage and clock implementations.
    pub fn with_parts(
        config: LedgerConfig,
        registry: MemberRegistry,
        store: Arc<dyn StreamStore>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let id = sha256(format!("ledgerdb:{}", config.name).as_bytes());
        let fam = FamTree::new(config.fam_delta);
        let world_state = WorldState::new(config.state_backend);
        LedgerDb {
            id,
            config,
            lsp_keys: KeyPair::from_seed(b"ledgerdb-lsp"),
            clock,
            store,
            registry,
            journals: Vec::new(),
            blocks: Vec::new(),
            pending: Vec::new(),
            fam,
            cm_tree: CmTree::new(),
            csl: ClueSkipList::new(),
            world_state,
            occult_index: OccultIndex::new(),
            survival: SurvivalStream::new(),
            pseudo_genesis: None,
            tx_hashes: Vec::new(),
            wal: None,
            durability_error: None,
            metrics: crate::metrics::CoreMetrics::default(),
            snapshot_hub: None,
            pool: None,
            checkpoints: None,
        }
    }

    /// Install a compute pool: seal-time subtree hashing fans out across
    /// it. Pass `None` to return to the serial baseline. Determinism is
    /// unaffected (see [`ledgerdb_mpt::Mpt::hash_subtrees_with`]).
    pub fn set_pool(&mut self, pool: Option<Arc<ledgerdb_pool::Pool>>) {
        self.pool = pool;
    }

    /// The installed compute pool, if any.
    pub fn pool(&self) -> Option<&Arc<ledgerdb_pool::Pool>> {
        self.pool.as_ref()
    }

    /// Install (or fetch) the snapshot publication hub: captures the
    /// current sealed prefix as the initial snapshot and republishes on
    /// every seal, occult and purge from here on.
    pub fn install_snapshot_hub(&mut self) -> Arc<crate::snapshot::SnapshotHub> {
        if let Some(hub) = &self.snapshot_hub {
            return Arc::clone(hub);
        }
        let hub = Arc::new(crate::snapshot::SnapshotHub::new(
            crate::snapshot::ReadSnapshot::build(self, None),
        ));
        hub.note_journals(self.journal_count());
        self.snapshot_hub = Some(Arc::clone(&hub));
        hub
    }

    /// Publish a fresh read snapshot if a hub is installed.
    fn publish_snapshot(&self) {
        if let Some(hub) = &self.snapshot_hub {
            hub.publish(self);
        }
    }

    /// Create a ledger whose metadata is write-ahead logged to `wal`
    /// before any in-memory mutation. Use [`crate::recovery::recover`]
    /// (or [`crate::recovery::open_durable`]) to rebuild the kernel from
    /// the two streams after a crash.
    pub fn with_durability(
        config: LedgerConfig,
        registry: MemberRegistry,
        store: Arc<dyn StreamStore>,
        wal: Arc<dyn StreamStore>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let mut ledger = Self::with_parts(config, registry, store, clock);
        ledger.wal = Some(wal);
        ledger
    }

    /// A durability failure stashed by an infallible path (auto-seal),
    /// if any. The next fallible operation also surfaces it.
    pub fn durability_error(&self) -> Option<&LedgerError> {
        self.durability_error.as_ref()
    }

    /// Take (and clear) the stashed durability failure.
    pub fn take_durability_error(&mut self) -> Option<LedgerError> {
        self.clear_durability_error()
    }

    /// Internal take of the stashed durability failure; every `.take()`
    /// goes through here so the `ledger_durability_error` gauge tracks
    /// the sticky state exactly.
    fn clear_durability_error(&mut self) -> Option<LedgerError> {
        let e = self.durability_error.take();
        if e.is_some() {
            self.metrics.durability_error.set(0);
        }
        e
    }

    /// Rebind telemetry to `registry` (default: the global registry).
    pub fn bind_metrics(&mut self, registry: &ledgerdb_telemetry::Registry) {
        self.metrics = crate::metrics::CoreMetrics::bind(registry);
    }

    /// Enable automatic checkpointing: after every `every_n_seals`
    /// sealed blocks, the sealed-prefix state is committed to `store`
    /// (crash-atomically; see [`ledgerdb_storage::checkpoint`]) and the
    /// metadata WAL is reset, so restart replay is bounded by the
    /// post-checkpoint tail. `io` routes the checkpoint writes — the
    /// crash-point harness passes an armed router; production passes a
    /// plain `CkptIo::new()`.
    pub fn enable_checkpoints(
        &mut self,
        store: Arc<CheckpointStore>,
        io: Arc<CkptIo>,
        every_n_seals: u64,
    ) {
        // Seed the watermark from the store's current HEAD, so a ledger
        // reopened over an existing checkpoint reports it immediately.
        let head = store.load_head().ok().flatten();
        let last_snapshot_id = head.as_ref().map(|(id, _)| *id);
        let last_watermark = head.and_then(|(_, bytes)| {
            use ledgerdb_crypto::wire::Wire as _;
            crate::checkpoint::CheckpointManifest::from_wire(&bytes)
                .ok()
                .map(|m| (m.journal_count, m.block_count))
        });
        self.checkpoints = Some(CheckpointPolicy {
            store,
            io,
            every_n_seals: every_n_seals.max(1),
            seals_since: 0,
            last_watermark,
            last_snapshot_id,
        });
    }

    /// Coverage of the newest committed checkpoint as
    /// `(journal_count, block_count)`, or `None` when checkpoints are
    /// disabled or none has been committed yet.
    pub fn checkpoint_watermark(&self) -> Option<(u64, u64)> {
        self.checkpoints.as_ref().and_then(|p| p.last_watermark)
    }

    /// The installed checkpoint store, if any.
    pub fn checkpoint_store(&self) -> Option<&Arc<CheckpointStore>> {
        self.checkpoints.as_ref().map(|p| &p.store)
    }

    /// Snapshot id of the newest committed checkpoint, or `None` when
    /// checkpoints are disabled or none has been committed yet.
    pub fn checkpoint_snapshot_id(&self) -> Option<Digest> {
        self.checkpoints.as_ref().and_then(|p| p.last_snapshot_id)
    }

    /// Seals since the last committed checkpoint (`None` when the
    /// policy is disabled) — together with the watermark, the operator's
    /// view of how much WAL tail the next restart would replay.
    pub fn checkpoint_seals_since(&self) -> Option<u64> {
        self.checkpoints.as_ref().map(|p| p.seals_since)
    }

    /// Commit a checkpoint immediately, then reset the WAL.
    ///
    /// Returns `Ok(None)` when checkpoints are not enabled or the
    /// ledger is not at a seal boundary (checkpoints only cover sealed
    /// state — a mid-block checkpoint would strand the pending tail's
    /// WAL records). On success the returned snapshot id names the
    /// committed manifest and obsolete checkpoint files are garbage
    /// collected best-effort.
    ///
    /// On error the ledger keeps serving: a crash mid-checkpoint leaves
    /// either the old HEAD or the new one, never an unreadable mix, and
    /// the (possibly longer) WAL still replays the full history.
    pub fn checkpoint_now(&mut self) -> Result<Option<Digest>, LedgerError> {
        let Some(policy) = &self.checkpoints else {
            return Ok(None);
        };
        if !self.pending.is_empty() {
            return Ok(None);
        }
        let store = Arc::clone(&policy.store);
        let io = Arc::clone(&policy.io);
        let start = std::time::Instant::now();
        let _span = ledgerdb_telemetry::trace::StageSpan::begin("checkpoint");
        let (snapshot_id, bytes, segments) =
            crate::checkpoint::write_checkpoint(self, &store, &io)?;
        // Only after HEAD durably names the new checkpoint may the WAL
        // shrink: a crash between the two leaves checkpoint + full WAL,
        // and recovery skips the covered records by watermark.
        if let Some(wal) = &self.wal {
            wal.reset(io.as_ref())?;
        }
        store.gc(&snapshot_id, &segments);
        self.metrics.checkpoints.inc();
        self.metrics.checkpoint_bytes.observe(bytes);
        self.metrics.checkpoint_write_seconds.observe_duration(start.elapsed());
        let watermark = (self.journals.len() as u64, self.blocks.len() as u64);
        if let Some(policy) = &mut self.checkpoints {
            policy.seals_since = 0;
            policy.last_watermark = Some(watermark);
            policy.last_snapshot_id = Some(snapshot_id);
        }
        Ok(Some(snapshot_id))
    }

    /// Seal-path checkpoint hook: count the seal and, when the policy
    /// says one is due, checkpoint. A failure must not fail the seal —
    /// the block is already committed — so it is stashed as the sticky
    /// durability error exactly like an auto-seal WAL failure.
    fn maybe_checkpoint_after_seal(&mut self) {
        let due = match &mut self.checkpoints {
            Some(p) => {
                p.seals_since += 1;
                p.seals_since >= p.every_n_seals
            }
            None => false,
        };
        if !due {
            return;
        }
        if let Err(e) = self.checkpoint_now() {
            self.stash_durability_error(e);
        }
    }

    /// Stash a failure from an infallible path as the sticky durability
    /// error (gauge up until [`LedgerDb::take_durability_error`]).
    pub(crate) fn stash_durability_error(&mut self, e: LedgerError) {
        self.durability_error = Some(e);
        self.metrics.durability_error.set(1);
    }

    /// The ledger's identity digest (its `ledger_uri` analogue).
    pub fn id(&self) -> Digest {
        self.id
    }

    /// The LSP's public key (receipt verification).
    pub fn lsp_public_key(&self) -> &PublicKey {
        self.lsp_keys.public()
    }

    /// The member registry.
    pub fn registry(&self) -> &MemberRegistry {
        &self.registry
    }

    /// Mutable registry access (member onboarding).
    pub fn registry_mut(&mut self) -> &mut MemberRegistry {
        &mut self.registry
    }

    /// Total journals (all kinds).
    pub fn journal_count(&self) -> u64 {
        self.journals.len() as u64
    }

    /// Sealed blocks.
    pub fn block_count(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Current ledger commitment (fam root).
    pub fn journal_root(&self) -> Digest {
        self.fam.root()
    }

    /// Current CM-Tree1 root.
    pub fn clue_root(&self) -> Digest {
        self.cm_tree.root()
    }

    /// Current world-state root.
    pub fn state_root(&self) -> Digest {
        self.world_state.commitment_root()
    }

    /// The pseudo genesis, if a purge has happened (Protocol 1's datum).
    pub fn pseudo_genesis(&self) -> Option<&PseudoGenesis> {
        self.pseudo_genesis.as_ref()
    }

    /// A trusted anchor snapshot of the fam tree (fam-aoa).
    pub fn anchor(&self) -> TrustedAnchor {
        self.fam.anchor()
    }

    /// Sealed blocks (audit input).
    /// Journals appended since the last sealed block.
    pub fn pending_journals(&self) -> u64 {
        self.pending.len() as u64
    }

    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    // ------------------------------------------------------------------
    // Append path (journal-level transaction commitment, Fig 1)
    // ------------------------------------------------------------------

    /// Append a client transaction. Verifies π_c (threat-A defence),
    /// stores the payload, creates the journal, feeds fam + CM-Tree +
    /// world state, and returns the jsn acknowledgement. The receipt π_s
    /// becomes available once the journal's block seals.
    pub fn append(&mut self, request: TxRequest) -> Result<AppendAck, LedgerError> {
        self.verify_request(&request)?;
        let ack = self.append_journal(
            JournalKind::Normal,
            request.clues.clone(),
            &request.payload,
            request.hash(),
            Some(request.client_pk),
            Some(request.signature),
        )?;
        Ok(ack)
    }

    /// Append and immediately seal, returning the full receipt (the
    /// convenience used by latency-sensitive notarization flows).
    pub fn append_committed(&mut self, request: TxRequest) -> Result<Receipt, LedgerError> {
        let ack = self.append(request)?;
        self.seal_block();
        Ok(self.receipt(ack.jsn)?.expect("sealed block issues receipts"))
    }

    /// Admission check for a client transaction: membership and π_c.
    /// Read-only, so a proxy/service tier can run it under a shared
    /// read lock — in parallel across client threads — before handing
    /// the request to a (serial) commit path that skips re-verifying.
    pub fn verify_request(&self, request: &TxRequest) -> Result<(), LedgerError> {
        if !self.registry.is_registered(&request.client_pk) {
            return Err(LedgerError::UnknownMember);
        }
        if !request.verify_signature() {
            return Err(LedgerError::BadClientSignature);
        }
        Ok(())
    }

    /// Append a request whose signature was already verified by the ledger
    /// proxy tier (Fig 1 separates proxy and server; production deployments
    /// offload π_c checks to the proxy fleet). Membership is still
    /// enforced. Used by the throughput harness to measure the kernel
    /// append path the way the paper's TPS numbers do.
    pub fn append_preverified(&mut self, request: TxRequest) -> Result<AppendAck, LedgerError> {
        if !self.registry.is_registered(&request.client_pk) {
            return Err(LedgerError::UnknownMember);
        }
        self.append_journal(
            JournalKind::Normal,
            request.clues.clone(),
            &request.payload,
            request.hash(),
            Some(request.client_pk),
            Some(request.signature),
        )
    }

    /// Group-commit append (the service layer's batched entry point).
    ///
    /// Every request is verified up front (rejections are reported in
    /// the inner results and never consume a payload slot), all accepted
    /// payloads are written to the payload stream behind a **single**
    /// sync ([`StreamStore::append_batch`]), each journal (and any
    /// auto-seal) is WAL-logged in order, and the batch finishes with
    /// one [`LedgerDb::sync_durable`] barrier — so N appends become
    /// durable behind O(1) fsyncs instead of O(N).
    ///
    /// An outer `Err` aborts the batch: requests not yet committed were
    /// not appended (their payload slots are rolled back), and none of
    /// the batch should be acknowledged as durable.
    pub fn append_batch(
        &mut self,
        requests: Vec<TxRequest>,
    ) -> Result<Vec<Result<AppendAck, LedgerError>>, LedgerError> {
        if let Some(e) = self.clear_durability_error() {
            return Err(e);
        }
        // Verify π_c and membership before any slot is assigned.
        let validated: Vec<Result<PreparedTx, LedgerError>> = requests
            .into_iter()
            .map(|request| self.verify_request(&request).map(|()| PreparedTx::compute(request)))
            .collect();
        self.commit_batch_prepared(validated)
    }

    /// Group-commit append for requests whose π_c was already verified
    /// by the service tier (see [`LedgerDb::verify_request`] — run in
    /// parallel under read locks, it moves the dominant ECDSA cost out
    /// of this serial commit path). Membership is still enforced, as in
    /// [`LedgerDb::append_preverified`]. Durability contract identical
    /// to [`LedgerDb::append_batch`].
    pub fn append_batch_preverified(
        &mut self,
        requests: Vec<TxRequest>,
    ) -> Result<Vec<Result<AppendAck, LedgerError>>, LedgerError> {
        if let Some(e) = self.clear_durability_error() {
            return Err(e);
        }
        let validated: Vec<Result<PreparedTx, LedgerError>> = requests
            .into_iter()
            .map(|request| {
                if self.registry.is_registered(&request.client_pk) {
                    Ok(PreparedTx::compute(request))
                } else {
                    Err(LedgerError::UnknownMember)
                }
            })
            .collect();
        self.commit_batch_prepared(validated)
    }

    /// Group-commit append for requests whose digests (and, per the
    /// caller's admission policy, π_c) were computed *off-lock* — the
    /// pipelined entry point. Membership is re-checked here (a hash-map
    /// lookup, no hashing): prepared requests may have queued while the
    /// registry changed. Per-item `Err`s (e.g. a pool task panic mapped
    /// to [`LedgerError::TaskFailed`]) pass through without consuming a
    /// payload slot. Durability contract identical to
    /// [`LedgerDb::append_batch`].
    pub fn append_batch_prepared(
        &mut self,
        prepared: Vec<Result<PreparedTx, LedgerError>>,
    ) -> Result<Vec<Result<AppendAck, LedgerError>>, LedgerError> {
        if let Some(e) = self.clear_durability_error() {
            return Err(e);
        }
        let validated: Vec<Result<PreparedTx, LedgerError>> = prepared
            .into_iter()
            .map(|item| {
                let tx = item?;
                if self.registry.is_registered(&tx.request.client_pk) {
                    Ok(tx)
                } else {
                    Err(LedgerError::UnknownMember)
                }
            })
            .collect();
        self.commit_batch_prepared(validated)
    }

    /// Shared tail of the batched append paths: write all accepted
    /// payloads behind one sync, commit each journal in order (WAL +
    /// trees), auto-seal at block boundaries, and finish with one
    /// durability barrier. All request digests arrive precomputed in the
    /// [`PreparedTx`]s — this loop performs no payload or request
    /// hashing of its own.
    fn commit_batch_prepared(
        &mut self,
        validated: Vec<Result<PreparedTx, LedgerError>>,
    ) -> Result<Vec<Result<AppendAck, LedgerError>>, LedgerError> {
        let start = std::time::Instant::now();
        let payloads: Vec<Vec<u8>> = validated
            .iter()
            .filter_map(|v| v.as_ref().ok().map(|t| t.request.payload.clone()))
            .collect();
        // Covers the payload batch write and every journal's WAL record;
        // auto-seals at block boundaries open their own "seal" span
        // inside this one, and the closing durability barrier follows
        // as "fsync_barrier" (inside sync_durable).
        let wal_span = ledgerdb_telemetry::trace::StageSpan::begin("wal_write");
        let mut slot = self.store.append_batch(&payloads)?;
        let mut results = Vec::with_capacity(validated.len());
        for v in validated {
            let tx = match v {
                Ok(tx) => tx,
                Err(e) => {
                    results.push(Err(e));
                    continue;
                }
            };
            let stream_index = slot;
            slot += 1;
            let committed = self.commit_journal(
                JournalKind::Normal,
                tx.request.clues.clone(),
                tx.payload_digest,
                tx.request_hash,
                Some(tx.request.client_pk),
                Some(tx.request.signature),
                stream_index,
            );
            let ack = match committed {
                Ok(ack) => ack,
                Err(e) => {
                    // Roll back this and every still-unprocessed payload
                    // so stream indexes stay aligned with jsns.
                    let _ = self.store.truncate_records(stream_index);
                    return Err(e);
                }
            };
            if self.pending.len() as u64 >= self.config.block_size {
                if let Err(e) = self.try_seal_block() {
                    let _ = self.store.truncate_records(slot);
                    return Err(e);
                }
            }
            results.push(Ok(ack));
        }
        drop(wal_span);
        self.sync_durable()?;
        self.metrics.batch_commits.inc();
        self.metrics.batch_commit_seconds.observe_duration(start.elapsed());
        Ok(results)
    }

    /// Flush both durable streams (payload + WAL) to stable storage —
    /// the group-commit barrier. No-op for in-memory ledgers.
    pub fn sync_durable(&self) -> Result<(), LedgerError> {
        // Under the committer's window scope this barrier is shared by
        // the whole commit window: one interval, one span per member.
        let _span = ledgerdb_telemetry::trace::StageSpan::begin("fsync_barrier");
        self.store.sync()?;
        if let Some(wal) = &self.wal {
            wal.sync()?;
        }
        Ok(())
    }

    /// Internal: append any journal kind.
    fn append_journal(
        &mut self,
        kind: JournalKind,
        clues: Vec<String>,
        payload: &[u8],
        request_hash: Digest,
        client_pk: Option<PublicKey>,
        client_sig: Option<ledgerdb_crypto::ecdsa::Signature>,
    ) -> Result<AppendAck, LedgerError> {
        // Surface a durability failure stashed by an earlier auto-seal
        // before accepting new writes on top of it.
        if let Some(e) = self.clear_durability_error() {
            return Err(e);
        }
        let start = std::time::Instant::now();
        let stream_index = self.store.append(payload)?;
        // WAL order: payload → journal record → in-memory mutation. A
        // crash between the first two leaves an orphan payload that
        // recovery trims; a WAL failure here rolls the payload back so
        // stream indexes stay aligned with jsns.
        let committed = self.commit_journal(
            kind,
            clues,
            sha256(payload),
            request_hash,
            client_pk,
            client_sig,
            stream_index,
        );
        let ack = match committed {
            Ok(ack) => ack,
            Err(e) => {
                let _ = self.store.truncate_records(stream_index);
                return Err(e);
            }
        };
        if self.pending.len() as u64 >= self.config.block_size {
            self.seal_block();
        }
        self.metrics.append_seconds.observe_duration(start.elapsed());
        Ok(ack)
    }

    /// WAL-log and apply one journal whose payload already occupies
    /// `stream_index`. Does not auto-seal and does not roll the payload
    /// slot back on failure — callers own both.
    fn commit_journal(
        &mut self,
        kind: JournalKind,
        clues: Vec<String>,
        payload_digest: Digest,
        request_hash: Digest,
        client_pk: Option<PublicKey>,
        client_sig: Option<ledgerdb_crypto::ecdsa::Signature>,
        stream_index: u64,
    ) -> Result<AppendAck, LedgerError> {
        let jsn = self.journals.len() as u64;
        let journal = Journal {
            jsn,
            kind,
            clues: clues.clone(),
            payload_digest,
            request_hash,
            client_pk,
            client_sig,
            timestamp: self.clock.now(),
            stream_index,
        };
        if let Some(wal) = &self.wal {
            let record = crate::recovery::WalRecord::Journal(journal.clone());
            wal.append(&ledgerdb_crypto::wire::Wire::to_wire(&record))?;
        }
        let tx_hash = journal.tx_hash();
        self.tx_hashes.push(tx_hash);
        self.fam.append(tx_hash);
        for clue in &clues {
            self.cm_tree.append(clue, jsn, tx_hash);
            self.csl.append(clue, jsn);
            self.world_state.insert_kv(
                ledgerdb_clue::clue_key(clue).as_bytes(),
                journal.payload_digest.0.to_vec(),
            );
        }
        self.journals.push(journal);
        self.pending.push(jsn);
        if let Some(hub) = &self.snapshot_hub {
            hub.note_journals(self.journals.len() as u64);
        }
        self.metrics.appends.inc();
        Ok(AppendAck { jsn, tx_hash })
    }

    /// Seal the pending journals into a block. Receipts become derivable
    /// (and are signed on demand by [`LedgerDb::receipt`]).
    ///
    /// Infallible wrapper over [`LedgerDb::try_seal_block`]: a WAL
    /// failure is stashed as the [`LedgerDb::durability_error`] and
    /// surfaced by the next fallible operation (never silently lost).
    /// The pending journals remain pending, so the seal is retryable.
    pub fn seal_block(&mut self) {
        if let Err(e) = self.try_seal_block() {
            self.durability_error = Some(e);
            self.metrics.durability_error.set(1);
        }
    }

    /// Seal the pending journals into a block, reporting WAL failures.
    /// On error nothing is mutated: the journals stay pending and the
    /// seal can be retried.
    pub fn try_seal_block(&mut self) -> Result<(), LedgerError> {
        if let Some(e) = self.clear_durability_error() {
            return Err(e);
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        let _seal_span = ledgerdb_telemetry::trace::StageSpan::begin("seal");
        let first_jsn = self.pending[0];
        let tx_hashes: Vec<Digest> =
            self.pending.iter().map(|&j| self.tx_hashes[j as usize]).collect();
        // Memoized: hashing the previous header is a cache read on every
        // seal after its first (the first computed it when *it* sealed).
        let prev_block_hash = self.blocks.last().map(|b| b.hash()).unwrap_or_else(|| {
            self.pseudo_genesis
                .as_ref()
                .map(|g| g.genesis_hash)
                .unwrap_or(Digest::ZERO)
        });
        let info = self.seal_roots();
        let block = Block::new(
            self.blocks.len() as u64,
            first_jsn,
            self.pending.len() as u64,
            info,
            prev_block_hash,
            self.clock.now(),
            tx_hashes,
        );
        // The seal record hits the WAL before the block exists in
        // memory; a crash in between replays the seal idempotently.
        // Borrowed encode: the block is serialized in place, not cloned
        // into a `WalRecord` first (see `recovery::seal_wire`).
        if let Some(wal) = &self.wal {
            wal.append(&crate::recovery::seal_wire(&block))?;
        }
        self.pending.clear();
        self.blocks.push(block);
        self.metrics.seals.inc();
        // Prime the memo while the seal owns the block: the WAL bytes
        // above did not need the hash, but the next seal's chain link,
        // the snapshot publisher and the block feed all will.
        self.blocks.last().expect("just pushed").hash();
        // Publish-on-seal: `pending` is empty, so the frozen fam covers
        // exactly the sealed journals and its root equals the block's
        // `info.journal_root` — the snapshot names a consistent LedgerInfo.
        self.publish_snapshot();
        self.maybe_checkpoint_after_seal();
        Ok(())
    }

    /// Compute the three `LedgerInfo` roots for a seal, timing each
    /// stage.
    ///
    /// With a pool installed, the three commitment structures hash
    /// concurrently: fam, CM-Tree and world state share no nodes, so
    /// their digest work is independent until this function combines
    /// the roots. Each leg only *warms* memo cells with pure,
    /// order-independent values (`hash_subtrees_with`), then reads its
    /// root — byte-identical to the serial path by construction. The
    /// world-state leg additionally fans its own dirty subtrees out
    /// across the pool (a nested scope; the pool's helping join makes
    /// that safe on any worker count).
    fn seal_roots(&self) -> LedgerInfo {
        use ledgerdb_telemetry::trace::{self, StageSpan};
        let m = &self.metrics;
        let fam = &self.fam;
        let cm = &self.cm_tree;
        let ws = &self.world_state;
        let mut journal_root = Digest::ZERO;
        let mut clue_root = Digest::ZERO;
        let mut state_root = Digest::ZERO;
        // Each leg may run on a pool worker whose thread-local scope is
        // empty; re-install the sealing request's scope inside the
        // closure so the leg spans land in the right trace(s).
        let scope = trace::current_scope();
        match &self.pool {
            Some(pool) => pool.scope(|s| {
                s.spawn(|| {
                    let _scope = scope.clone().map(trace::install);
                    let _leg = StageSpan::begin("seal_fam");
                    let t = std::time::Instant::now();
                    fam.hash_subtrees_with(pool);
                    journal_root = fam.root();
                    m.seal_fam_seconds.observe_duration(t.elapsed());
                });
                s.spawn(|| {
                    let _scope = scope.clone().map(trace::install);
                    let _leg = StageSpan::begin("seal_clue");
                    let t = std::time::Instant::now();
                    cm.hash_subtrees_with(pool);
                    clue_root = cm.root();
                    m.seal_clue_seconds.observe_duration(t.elapsed());
                });
                s.spawn(|| {
                    let _scope = scope.clone().map(trace::install);
                    let _leg = StageSpan::begin("seal_state");
                    let t = std::time::Instant::now();
                    ws.warm_subtrees(pool);
                    state_root = ws.commitment_root();
                    m.seal_state_seconds.observe_duration(t.elapsed());
                });
            }),
            None => {
                {
                    let _leg = StageSpan::begin("seal_fam");
                    let t = std::time::Instant::now();
                    journal_root = fam.root();
                    m.seal_fam_seconds.observe_duration(t.elapsed());
                }
                {
                    let _leg = StageSpan::begin("seal_clue");
                    let t = std::time::Instant::now();
                    clue_root = cm.root();
                    m.seal_clue_seconds.observe_duration(t.elapsed());
                }
                {
                    let _leg = StageSpan::begin("seal_state");
                    let t = std::time::Instant::now();
                    state_root = ws.commitment_root();
                    m.seal_state_seconds.observe_duration(t.elapsed());
                }
            }
        }
        LedgerInfo { journal_root, clue_root, state_root }
    }

    // ------------------------------------------------------------------
    // Retrieval
    // ------------------------------------------------------------------

    /// Fetch a journal record (fails for occulted journals, §III-A3).
    pub fn get_tx(&self, jsn: u64) -> Result<&Journal, LedgerError> {
        if self.occult_index.is_marked(jsn) {
            return Err(LedgerError::Occulted(jsn));
        }
        if let Some(g) = &self.pseudo_genesis {
            if jsn < g.purge_to {
                return Err(LedgerError::Purged(jsn));
            }
        }
        self.journals.get(jsn as usize).ok_or(LedgerError::UnknownJournal(jsn))
    }

    /// Fetch a journal's payload from the stream store.
    pub fn get_payload(&self, jsn: u64) -> Result<Vec<u8>, LedgerError> {
        let journal = self.get_tx(jsn)?;
        Ok(self.store.read(journal.stream_index)?)
    }

    /// jsns recorded under a clue (ListTx).
    pub fn list_tx(&self, clue: &str) -> Vec<u64> {
        self.csl.list(clue)
    }

    /// The receipt π_s for a journal (None until its block seals).
    ///
    /// Receipts are derived and LSP-signed on demand: deterministic ECDSA
    /// makes repeated calls return byte-identical receipts, and the append
    /// hot path stays free of signing work (the proxy tier hands receipts
    /// to clients asynchronously after block commitment, Fig 1).
    pub fn receipt(&self, jsn: u64) -> Result<Option<Receipt>, LedgerError> {
        let journal = self
            .journals
            .get(jsn as usize)
            .ok_or(LedgerError::UnknownJournal(jsn))?;
        // Locate the sealed block containing this jsn.
        let idx = self.blocks.partition_point(|b| b.first_jsn + b.journal_count <= jsn);
        let Some(block) = self.blocks.get(idx) else {
            return Ok(None); // Not yet sealed.
        };
        if jsn < block.first_jsn {
            return Ok(None);
        }
        let block_hash = block.hash();
        let tx_hash = self.tx_hashes[jsn as usize];
        let msg = Receipt::signing_digest(
            jsn,
            &journal.request_hash,
            &tx_hash,
            &block_hash,
            journal.timestamp,
        );
        Ok(Some(Receipt {
            jsn,
            request_hash: journal.request_hash,
            tx_hash,
            block_hash,
            timestamp: journal.timestamp,
            lsp_pk: *self.lsp_keys.public(),
            signature: self.lsp_keys.sign(&msg),
        }))
    }

    // ------------------------------------------------------------------
    // Existence verification (what, §III-A)
    // ------------------------------------------------------------------

    /// Produce an existence proof (GetProof): the journal's tx-hash path
    /// in the fam tree relative to `anchor`.
    pub fn prove_existence(
        &self,
        jsn: u64,
        anchor: &TrustedAnchor,
    ) -> Result<(Digest, FamProof), LedgerError> {
        let _span = self.metrics.proof_seconds.time("ledger_proof");
        self.metrics.proofs.inc();
        if jsn as usize >= self.journals.len() {
            return Err(LedgerError::UnknownJournal(jsn));
        }
        let tx_hash = self.tx_hashes[jsn as usize];
        let proof = self.fam.prove(jsn, anchor)?;
        Ok((tx_hash, proof))
    }

    /// Verify a journal's existence. Server level recomputes locally;
    /// client level checks the proof against the supplied trusted root.
    pub fn verify_existence(
        &self,
        jsn: u64,
        tx_hash: &Digest,
        proof: &FamProof,
        anchor: &TrustedAnchor,
        level: VerifyLevel,
    ) -> Result<(), LedgerError> {
        let _span = self.metrics.verify_seconds.time("ledger_verify");
        self.metrics.verifies.inc();
        match level {
            VerifyLevel::Server => {
                let journal = self
                    .journals
                    .get(jsn as usize)
                    .ok_or(LedgerError::UnknownJournal(jsn))?;
                if journal.tx_hash() == *tx_hash {
                    Ok(())
                } else {
                    Err(LedgerError::Accumulator(
                        ledgerdb_accumulator::AccumulatorError::ProofMismatch,
                    ))
                }
            }
            VerifyLevel::Client => {
                FamTree::verify(&self.fam.root(), anchor, tx_hash, proof)?;
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Clue verification (N-lineage, §IV)
    // ------------------------------------------------------------------

    /// Produce a clue-oriented proof for the entire lineage.
    pub fn prove_clue(&self, clue: &str) -> Result<ClueProof, LedgerError> {
        Ok(self.cm_tree.prove_all(clue)?)
    }

    /// Verify a clue proof against the latest block's recorded clue root.
    pub fn verify_clue(
        &self,
        proof: &ClueProof,
        level: VerifyLevel,
    ) -> Result<(), LedgerError> {
        let root = self.cm_tree.root();
        match level {
            VerifyLevel::Server => {
                self.cm_tree
                    .verify(&root, proof, ledgerdb_clue::cm_tree::VerifyLevel::Server)?;
            }
            VerifyLevel::Client => {
                CmTree::verify_client(&root, proof)?;
            }
        }
        Ok(())
    }

    /// Direct read access to the CM-Tree (benchmarks, ablations).
    pub fn cm_tree(&self) -> &CmTree {
        &self.cm_tree
    }

    // ------------------------------------------------------------------
    // Time anchoring (when, §III-B)
    // ------------------------------------------------------------------

    /// Submit the current ledger commitment to the T-Ledger (Protocol 4)
    /// and anchor the notary receipt back as a time journal.
    pub fn anchor_time(&mut self, tledger: &TLedger) -> Result<AppendAck, LedgerError> {
        let digest = self.fam.root();
        let receipt = tledger.submit(self.id, digest, self.clock.now())?;
        let payload = {
            let mut h = Sha256::new();
            h.update(b"ledgerdb.timejournal.payload.v1");
            h.update(&receipt.entry.leaf_digest().0);
            h.finalize().to_vec()
        };
        let request_hash = sha256(&payload);
        self.append_journal(
            JournalKind::Time(receipt),
            Vec::new(),
            &payload,
            request_hash,
            None,
            None,
        )
    }

    // ------------------------------------------------------------------
    // Purge (§III-A2)
    // ------------------------------------------------------------------

    /// Public keys whose journals fall before `purge_to` — the member set
    /// Prerequisite 1 requires in the purge multi-signature.
    pub fn members_before(&self, purge_to: u64) -> Vec<PublicKey> {
        let mut keys: Vec<PublicKey> = Vec::new();
        for journal in self.journals.iter().take(purge_to as usize) {
            if let Some(pk) = journal.client_pk {
                if !keys.contains(&pk) {
                    keys.push(pk);
                }
            }
        }
        keys
    }

    /// The digest a purge approval multi-signature covers.
    pub fn purge_approval_digest(&self, purge_to: u64) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.purge.approve.v1");
        h.update(&self.id.0);
        h.update(&purge_to.to_be_bytes());
        Digest(h.finalize())
    }

    /// Execute a purge to `purge_to` (exclusive). Prerequisite 1: the
    /// multi-signature must carry the DBA and every member with journals
    /// before the purge point. Optionally pins `survivors` into the
    /// survival stream first. When `erase_fam_nodes` is set, sealed fam
    /// epochs fully below the purge point drop their node storage.
    pub fn purge(
        &mut self,
        purge_to: u64,
        approvals: MultiSignature,
        survivors: &[u64],
        erase_fam_nodes: bool,
    ) -> Result<AppendAck, LedgerError> {
        if purge_to == 0 || purge_to > self.journals.len() as u64 {
            return Err(LedgerError::BadPurgePoint(purge_to));
        }
        if let Some(g) = &self.pseudo_genesis {
            if purge_to <= g.purge_to {
                return Err(LedgerError::BadPurgePoint(purge_to));
            }
        }
        // Prerequisite 1: DBA + all related members.
        let mut required = self.registry.keys_with_role(Role::Dba);
        for pk in self.members_before(purge_to) {
            if !required.contains(&pk) {
                required.push(pk);
            }
        }
        let digest = self.purge_approval_digest(purge_to);
        if !approvals.covers(&digest, &required) {
            return Err(LedgerError::InsufficientSignatures("purge (Prerequisite 1)"));
        }

        // Pin survivors before anything is erased.
        for &jsn in survivors {
            if jsn < purge_to {
                let journal = &self.journals[jsn as usize];
                if let Ok(payload) = self.store.read(journal.stream_index) {
                    self.survival.pin(jsn, &payload);
                }
            }
        }

        // Snapshot at the purge point → pseudo genesis.
        let snapshot = LedgerInfo {
            journal_root: self.fam.root(),
            clue_root: self.cm_tree.root(),
            state_root: self.world_state.commitment_root(),
        };
        let genesis_hash = pseudo_genesis_hash(&self.id, purge_to, &snapshot);

        // Record the purge journal (doubly linked with the pseudo genesis
        // through `purge_journal_jsn` below).
        let payload = genesis_hash.0.to_vec();
        let request_hash = sha256(&payload);
        let ack = self.append_journal(
            JournalKind::Purge { purge_to, approvals },
            Vec::new(),
            &payload,
            request_hash,
            None,
            None,
        )?;

        self.pseudo_genesis = Some(PseudoGenesis {
            purge_to,
            purge_journal_jsn: ack.jsn,
            snapshot,
            genesis_hash,
        });

        // Erase purged payloads (digest tombstones remain).
        for jsn in 0..purge_to {
            let idx = self.journals[jsn as usize].stream_index;
            self.store.erase(idx)?;
        }
        // Optionally release fam node storage for fully purged epochs;
        // the trusted anchor aligns to the purge point, so retained
        // journals remain provable (§III-A2).
        if erase_fam_nodes {
            self.fam.erase_epochs_below(purge_to);
        }
        // Snapshot-served retrieval must honor the purge immediately.
        // The frozen fam keeps its (possibly just-erased) shared epochs
        // until the next seal refreezes — historical proofs stay
        // servable a little longer, which purge semantics permit (tx
        // hashes are retained tombstones).
        self.publish_snapshot();
        // An existing checkpoint now covers pre-purge state. It stays
        // valid for recovery (the WAL tail holds the purge journal, so
        // replay redoes the erasures and the pseudo genesis), but it
        // retains purged payload digests in its segments longer than
        // necessary — force a replacement at the next seal boundary.
        if let Some(policy) = &mut self.checkpoints {
            policy.seals_since = policy.every_n_seals;
        }
        Ok(ack)
    }

    /// The survival stream (milestones that outlive purges).
    pub fn survival(&self) -> &SurvivalStream {
        &self.survival
    }

    // ------------------------------------------------------------------
    // Occult (§III-A3)
    // ------------------------------------------------------------------

    /// The digest an occult approval multi-signature covers.
    pub fn occult_approval_digest(&self, target: u64) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.occult.approve.v1");
        h.update(&self.id.0);
        h.update(&target.to_be_bytes());
        Digest(h.finalize())
    }

    /// Occult journal `target`. Prerequisite 2: the multi-signature must
    /// carry the DBA and a regulator. The journal's tx-hash stays on the
    /// ledger (Protocol 2), so subsequent verification is unaffected.
    pub fn occult(
        &mut self,
        target: u64,
        approvals: MultiSignature,
        mode: OccultMode,
    ) -> Result<AppendAck, LedgerError> {
        if target as usize >= self.journals.len() {
            return Err(LedgerError::UnknownJournal(target));
        }
        let mut required = self.registry.keys_with_role(Role::Dba);
        required.extend(self.registry.keys_with_role(Role::Regulator));
        let digest = self.occult_approval_digest(target);
        if required.is_empty() || !approvals.covers(&digest, &required) {
            return Err(LedgerError::InsufficientSignatures("occult (Prerequisite 2)"));
        }

        // Mark first: retrieval is blocked immediately.
        self.occult_index.mark(target);

        // Record the occult journal.
        let retained = self.tx_hashes[target as usize];
        let payload = retained.0.to_vec();
        let request_hash = sha256(&payload);
        let ack = self.append_journal(
            JournalKind::Occult { target, approvals },
            Vec::new(),
            &payload,
            request_hash,
            None,
            None,
        )?;

        if mode == OccultMode::Sync {
            let idx = self.journals[target as usize].stream_index;
            self.store.erase(idx)?;
        }
        // The mark must block snapshot-served retrieval immediately, not
        // at the next seal: republish with the fresh occult view (same
        // segments and fam — cheap Arc reuse).
        self.publish_snapshot();
        Ok(ack)
    }

    /// The digest an occult-by-clue approval multi-signature covers.
    pub fn occult_clue_approval_digest(&self, clue: &str) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ledgerdb.occultclue.approve.v1");
        h.update(&self.id.0);
        h.update(&(clue.len() as u64).to_be_bytes());
        h.update(clue.as_bytes());
        Digest(h.finalize())
    }

    /// Occult every journal recorded under `clue` (the common asynchronous
    /// case of §III-A3). Prerequisite 2 applies with a clue-level
    /// approval. Returns the recorded occult-clue journal's ack and the
    /// list of hidden jsns.
    pub fn occult_by_clue(
        &mut self,
        clue: &str,
        approvals: MultiSignature,
        mode: OccultMode,
    ) -> Result<(AppendAck, Vec<u64>), LedgerError> {
        let targets = self.csl.list(clue);
        if targets.is_empty() {
            return Err(LedgerError::Clue(ledgerdb_clue::ClueError::UnknownClue(
                clue.to_string(),
            )));
        }
        let mut required = self.registry.keys_with_role(Role::Dba);
        required.extend(self.registry.keys_with_role(Role::Regulator));
        let digest = self.occult_clue_approval_digest(clue);
        if required.is_empty() || !approvals.covers(&digest, &required) {
            return Err(LedgerError::InsufficientSignatures("occult-by-clue (Prerequisite 2)"));
        }
        for &t in &targets {
            self.occult_index.mark(t);
        }
        // Payload binds the hidden set's retained hashes.
        let mut h = Sha256::new();
        h.update(b"ledgerdb.occultclue.payload.v1");
        for &t in &targets {
            h.update(&self.tx_hashes[t as usize].0);
        }
        let payload = h.finalize().to_vec();
        let request_hash = sha256(&payload);
        let ack = self.append_journal(
            JournalKind::OccultClue {
                clue: clue.to_string(),
                targets: targets.clone(),
                approvals,
            },
            Vec::new(),
            &payload,
            request_hash,
            None,
            None,
        )?;
        if mode == OccultMode::Sync {
            for &t in &targets {
                let idx = self.journals[t as usize].stream_index;
                self.store.erase(idx)?;
            }
        }
        // As in `occult`: the marks take effect on the snapshot path now.
        self.publish_snapshot();
        Ok((ack, targets))
    }

    /// Produce a world-state witness for `clue`: the latest payload
    /// digest recorded under it (inclusion), or a verifiable absence
    /// statement, proven against the current state root.
    pub fn prove_state(&self, clue: &str) -> StateProof {
        let proof = self.world_state.prove_kv(ledgerdb_clue::clue_key(clue).as_bytes());
        let (proof_bytes, _) = self.metrics.state_proof(self.state_backend());
        proof_bytes.observe(proof.to_wire().len() as u64);
        proof
    }

    /// Which commitment backend anchors this ledger's world state.
    pub fn state_backend(&self) -> StateBackend {
        self.world_state.backend()
    }

    /// Verify a world-state witness against a trusted state root. On
    /// success returns the proven payload digest bytes (`None` =
    /// verified absence).
    pub fn verify_state<'a>(
        state_root: &Digest,
        proof: &'a StateProof,
    ) -> Result<Option<&'a [u8]>, LedgerError> {
        crate::state::verify_state_proof(state_root, proof)
    }

    /// As [`LedgerDb::verify_state`], but records the verification
    /// latency in `ledger_verify_seconds{backend="…"}` under the label
    /// of the backend that built the proof (not necessarily this
    /// ledger's own backend).
    pub fn verify_state_timed<'a>(
        &self,
        state_root: &Digest,
        proof: &'a StateProof,
    ) -> Result<Option<&'a [u8]>, LedgerError> {
        let start = std::time::Instant::now();
        let result = Self::verify_state(state_root, proof);
        let (_, verify_seconds) = self.metrics.state_proof(proof.backend());
        verify_seconds.observe_duration(start.elapsed());
        result
    }

    /// Produce a clue proof restricted to lineage versions `[lo, hi)`
    /// (the §IV-C "verify within a range specified by version boundaries"
    /// scenario).
    pub fn prove_clue_range(&self, clue: &str, lo: u64, hi: u64) -> Result<ClueProof, LedgerError> {
        let jsns: Vec<u64> = self.cm_tree.jsns(clue).to_vec();
        Ok(self.cm_tree.prove_range(clue, lo, hi, |v| {
            jsns.get(v as usize).map(|&j| self.tx_hashes[j as usize])
        })?)
    }

    /// The data-reorganization utility: physically erase payloads of
    /// async-occulted journals up to the current journal count.
    pub fn reorganize(&mut self) -> Result<u64, LedgerError> {
        let upto = self.journals.len() as u64;
        let to_erase = self.occult_index.reorganize(upto);
        let count = to_erase.len() as u64;
        for jsn in to_erase {
            let idx = self.journals[jsn as usize].stream_index;
            self.store.erase(idx)?;
        }
        Ok(count)
    }

    /// Is a journal occulted?
    pub fn is_occulted(&self, jsn: u64) -> bool {
        self.occult_index.is_marked(jsn)
    }

    /// Raw journal access for audits (does not enforce the occult
    /// retrieval block; auditors see kinds and retained hashes only).
    pub(crate) fn journal_unchecked(&self, jsn: u64) -> Option<&Journal> {
        self.journals.get(jsn as usize)
    }

    /// The clock the ledger stamps journals with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The fam fractal height δ (needed to replay the accumulator in
    /// audits).
    pub fn fam_delta(&self) -> u32 {
        self.config.fam_delta
    }
}

/// The binding digest of a pseudo genesis (§III-A2): ledger id, purge
/// point and the root snapshot at that point.
pub(crate) fn pseudo_genesis_hash(id: &Digest, purge_to: u64, snapshot: &LedgerInfo) -> Digest {
    let mut h = Sha256::new();
    h.update(b"ledgerdb.pseudogenesis.v1");
    h.update(&id.0);
    h.update(&purge_to.to_be_bytes());
    h.update(&snapshot.journal_root.0);
    h.update(&snapshot.clue_root.0);
    h.update(&snapshot.state_root.0);
    Digest(h.finalize())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ledgerdb_crypto::ca::CertificateAuthority;

    pub(crate) struct Fixture {
        #[allow(dead_code)]
        pub ca: CertificateAuthority,
        pub dba: KeyPair,
        pub regulator: KeyPair,
        pub alice: KeyPair,
        pub bob: KeyPair,
        pub ledger: LedgerDb,
    }

    pub(crate) fn fixture(block_size: u64) -> Fixture {
        let ca = CertificateAuthority::from_seed(b"ca");
        let dba = KeyPair::from_seed(b"dba");
        let regulator = KeyPair::from_seed(b"regulator");
        let alice = KeyPair::from_seed(b"alice");
        let bob = KeyPair::from_seed(b"bob");
        let mut registry = MemberRegistry::new(*ca.public_key());
        registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
        registry
            .register(ca.issue("regulator", Role::Regulator, regulator.public()))
            .unwrap();
        registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
        registry.register(ca.issue("bob", Role::User, bob.public())).unwrap();
        let config = LedgerConfig { block_size, fam_delta: 4, name: "test".into(), state_backend: Default::default() };
        let ledger = LedgerDb::new(config, registry);
        Fixture { ca, dba, regulator, alice, bob, ledger }
    }

    fn tx(keys: &KeyPair, payload: &[u8], clues: &[&str], nonce: u64) -> TxRequest {
        TxRequest::signed(
            keys,
            payload.to_vec(),
            clues.iter().map(|s| s.to_string()).collect(),
            nonce,
        )
    }

    #[test]
    fn append_and_retrieve() {
        let mut f = fixture(4);
        let ack = f.ledger.append(tx(&f.alice, b"hello", &["c1"], 0)).unwrap();
        assert_eq!(ack.jsn, 0);
        assert_eq!(f.ledger.get_payload(0).unwrap(), b"hello");
        assert_eq!(f.ledger.list_tx("c1"), vec![0]);
    }

    #[test]
    fn append_batch_interleaves_rejections_without_slots() {
        let mut f = fixture(4);
        let mallory = KeyPair::from_seed(b"mallory");
        let mut tampered = tx(&f.alice, b"honest", &[], 2);
        tampered.payload = b"tampered".to_vec();
        let batch = vec![
            tx(&f.alice, b"b0", &["c"], 0),
            tx(&mallory, b"evil", &[], 1),
            tampered,
            tx(&f.bob, b"b3", &["c"], 3),
        ];
        let results = f.ledger.append_batch(batch).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].as_ref().unwrap().jsn, 0);
        assert!(matches!(results[1], Err(LedgerError::UnknownMember)));
        assert!(matches!(results[2], Err(LedgerError::BadClientSignature)));
        assert_eq!(results[3].as_ref().unwrap().jsn, 1);
        // Rejected requests consumed no payload slots.
        assert_eq!(f.ledger.journal_count(), 2);
        assert_eq!(f.ledger.get_payload(1).unwrap(), b"b3");
        assert_eq!(f.ledger.list_tx("c"), vec![0, 1]);
    }

    #[test]
    fn append_batch_auto_seals_and_matches_sequential_roots() {
        let mut seq = fixture(4);
        let mut bat = fixture(4);
        let reqs: Vec<TxRequest> =
            (0..10u64).map(|i| tx(&seq.alice, &i.to_be_bytes(), &["c"], i)).collect();
        for r in reqs.clone() {
            seq.ledger.append(r).unwrap();
        }
        let results = bat.ledger.append_batch(reqs).unwrap();
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(bat.ledger.journal_count(), 10);
        assert_eq!(bat.ledger.block_count(), 2, "auto-seal fired inside the batch");
        assert_eq!(bat.ledger.journal_root(), seq.ledger.journal_root());
        assert_eq!(bat.ledger.clue_root(), seq.ledger.clue_root());
        assert_eq!(bat.ledger.state_root(), seq.ledger.state_root());
        // Receipts from the sealed prefix verify.
        let receipt = bat.ledger.receipt(3).unwrap().unwrap();
        assert!(receipt.verify());
    }

    #[test]
    fn unregistered_member_rejected() {
        let mut f = fixture(4);
        let mallory = KeyPair::from_seed(b"mallory");
        let err = f.ledger.append(tx(&mallory, b"x", &[], 0)).unwrap_err();
        assert!(matches!(err, LedgerError::UnknownMember));
    }

    #[test]
    fn tampered_request_rejected() {
        // threat-A: the server detects in-flight payload tampering via π_c.
        let mut f = fixture(4);
        let mut req = tx(&f.alice, b"honest", &[], 0);
        req.payload = b"tampered".to_vec();
        assert!(matches!(
            f.ledger.append(req),
            Err(LedgerError::BadClientSignature)
        ));
    }

    #[test]
    fn receipts_issue_at_block_seal() {
        let mut f = fixture(2);
        let a = f.ledger.append(tx(&f.alice, b"1", &[], 0)).unwrap();
        assert!(f.ledger.receipt(a.jsn).unwrap().is_none());
        let b = f.ledger.append(tx(&f.bob, b"2", &[], 1)).unwrap();
        // Block of 2 sealed: both receipts available and valid.
        let ra = f.ledger.receipt(a.jsn).unwrap().unwrap();
        let rb = f.ledger.receipt(b.jsn).unwrap().unwrap();
        assert!(ra.verify());
        assert!(rb.verify());
        assert_eq!(ra.block_hash, rb.block_hash);
        assert_eq!(f.ledger.block_count(), 1);
    }

    #[test]
    fn append_committed_returns_receipt() {
        let mut f = fixture(100);
        let receipt = f.ledger.append_committed(tx(&f.alice, b"doc", &["n"], 0)).unwrap();
        assert!(receipt.verify());
        assert_eq!(receipt.jsn, 0);
    }

    #[test]
    fn existence_proof_client_side() {
        let mut f = fixture(4);
        for i in 0..40u64 {
            f.ledger.append(tx(&f.alice, &i.to_be_bytes(), &[], i)).unwrap();
        }
        let anchor = TrustedAnchor::default();
        for jsn in [0u64, 7, 20, 39] {
            let (tx_hash, proof) = f.ledger.prove_existence(jsn, &anchor).unwrap();
            f.ledger
                .verify_existence(jsn, &tx_hash, &proof, &anchor, VerifyLevel::Client)
                .unwrap();
            f.ledger
                .verify_existence(jsn, &tx_hash, &proof, &anchor, VerifyLevel::Server)
                .unwrap();
        }
    }

    #[test]
    fn existence_proof_rejects_fake() {
        let mut f = fixture(4);
        for i in 0..10u64 {
            f.ledger.append(tx(&f.alice, &i.to_be_bytes(), &[], i)).unwrap();
        }
        let anchor = TrustedAnchor::default();
        let (_, proof) = f.ledger.prove_existence(3, &anchor).unwrap();
        let fake = sha256(b"foopar");
        assert!(f
            .ledger
            .verify_existence(3, &fake, &proof, &anchor, VerifyLevel::Client)
            .is_err());
    }

    #[test]
    fn clue_lineage_round_trip() {
        let mut f = fixture(4);
        for i in 0..3u64 {
            f.ledger
                .append(tx(&f.alice, format!("artwork v{i}").as_bytes(), &["DCI001"], i))
                .unwrap();
        }
        f.ledger.append(tx(&f.bob, b"unrelated", &["other"], 99)).unwrap();
        let proof = f.ledger.prove_clue("DCI001").unwrap();
        assert_eq!(proof.entries.len(), 3);
        f.ledger.verify_clue(&proof, VerifyLevel::Client).unwrap();
        f.ledger.verify_clue(&proof, VerifyLevel::Server).unwrap();
    }

    #[test]
    fn occult_blocks_retrieval_keeps_verifiability() {
        let mut f = fixture(4);
        for i in 0..6u64 {
            f.ledger.append(tx(&f.alice, &i.to_be_bytes(), &[], i)).unwrap();
        }
        let digest = f.ledger.occult_approval_digest(2);
        let mut ms = MultiSignature::new();
        ms.add(&f.dba, &digest);
        ms.add(&f.regulator, &digest);
        f.ledger.occult(2, ms, OccultMode::Sync).unwrap();

        // Retrieval blocked.
        assert!(matches!(f.ledger.get_tx(2), Err(LedgerError::Occulted(2))));
        assert!(f.ledger.is_occulted(2));
        // Existence verification still passes via the retained hash.
        let anchor = TrustedAnchor::default();
        let (tx_hash, proof) = f.ledger.prove_existence(2, &anchor).unwrap();
        f.ledger
            .verify_existence(2, &tx_hash, &proof, &anchor, VerifyLevel::Client)
            .unwrap();
    }

    #[test]
    fn occult_requires_regulator_and_dba() {
        let mut f = fixture(4);
        f.ledger.append(tx(&f.alice, b"p", &[], 0)).unwrap();
        let digest = f.ledger.occult_approval_digest(0);
        let mut ms = MultiSignature::new();
        ms.add(&f.dba, &digest); // Missing the regulator.
        assert!(matches!(
            f.ledger.occult(0, ms, OccultMode::Sync),
            Err(LedgerError::InsufficientSignatures(_))
        ));
    }

    #[test]
    fn async_occult_defers_erase() {
        let mut f = fixture(4);
        f.ledger.append(tx(&f.alice, b"sensitive", &[], 0)).unwrap();
        let digest = f.ledger.occult_approval_digest(0);
        let mut ms = MultiSignature::new();
        ms.add(&f.dba, &digest);
        ms.add(&f.regulator, &digest);
        f.ledger.occult(0, ms, OccultMode::Async).unwrap();
        // Marked (blocked) but payload still on disk until reorganization.
        assert!(matches!(f.ledger.get_tx(0), Err(LedgerError::Occulted(0))));
        assert!(!f.ledger.store.is_erased(0).unwrap());
        let erased = f.ledger.reorganize().unwrap();
        assert_eq!(erased, 1);
        assert!(f.ledger.store.is_erased(0).unwrap());
    }

    #[test]
    fn purge_requires_all_related_members() {
        let mut f = fixture(4);
        f.ledger.append(tx(&f.alice, b"a", &[], 0)).unwrap();
        f.ledger.append(tx(&f.bob, b"b", &[], 1)).unwrap();
        let digest = f.ledger.purge_approval_digest(2);
        let mut ms = MultiSignature::new();
        ms.add(&f.dba, &digest);
        ms.add(&f.alice, &digest); // Bob missing.
        assert!(matches!(
            f.ledger.purge(2, ms, &[], false),
            Err(LedgerError::InsufficientSignatures(_))
        ));
    }

    #[test]
    fn purge_erases_and_sets_pseudo_genesis() {
        let mut f = fixture(4);
        for i in 0..8u64 {
            f.ledger.append(tx(&f.alice, &i.to_be_bytes(), &["c"], i)).unwrap();
        }
        let digest = f.ledger.purge_approval_digest(4);
        let mut ms = MultiSignature::new();
        ms.add(&f.dba, &digest);
        ms.add(&f.alice, &digest);
        let ack = f.ledger.purge(4, ms, &[1], false).unwrap();

        let genesis = f.ledger.pseudo_genesis().unwrap();
        assert_eq!(genesis.purge_to, 4);
        assert_eq!(genesis.purge_journal_jsn, ack.jsn);
        // Purged journals unreadable; survivors pinned.
        assert!(matches!(f.ledger.get_tx(0), Err(LedgerError::Purged(0))));
        assert!(f.ledger.survival().contains(1));
        assert!(f.ledger.survival().verify(1).unwrap());
        // Later journals still readable and provable.
        assert!(f.ledger.get_tx(5).is_ok());
        let anchor = TrustedAnchor::default();
        let (tx_hash, proof) = f.ledger.prove_existence(5, &anchor).unwrap();
        f.ledger
            .verify_existence(5, &tx_hash, &proof, &anchor, VerifyLevel::Client)
            .unwrap();
    }

    #[test]
    fn purge_point_validation() {
        let mut f = fixture(4);
        f.ledger.append(tx(&f.alice, b"x", &[], 0)).unwrap();
        let digest = f.ledger.purge_approval_digest(0);
        let ms = {
            let mut m = MultiSignature::new();
            m.add(&f.dba, &digest);
            m
        };
        assert!(matches!(
            f.ledger.purge(0, ms.clone(), &[], false),
            Err(LedgerError::BadPurgePoint(0))
        ));
        assert!(matches!(
            f.ledger.purge(99, ms, &[], false),
            Err(LedgerError::BadPurgePoint(99))
        ));
    }

    #[test]
    fn occult_by_clue_hides_whole_lineage() {
        let mut f = fixture(4);
        for i in 0..9u64 {
            let clue = if i % 3 == 0 { "secret" } else { "public" };
            f.ledger.append(tx(&f.alice, &i.to_be_bytes(), &[clue], i)).unwrap();
        }
        let digest = f.ledger.occult_clue_approval_digest("secret");
        let mut ms = MultiSignature::new();
        ms.add(&f.dba, &digest);
        ms.add(&f.regulator, &digest);
        let (_, targets) = f.ledger.occult_by_clue("secret", ms, OccultMode::Sync).unwrap();
        assert_eq!(targets, vec![0, 3, 6]);
        for t in targets {
            assert!(matches!(f.ledger.get_tx(t), Err(LedgerError::Occulted(_))));
        }
        // Unrelated journals unaffected; ledger still audits and verifies.
        assert!(f.ledger.get_tx(1).is_ok());
        let anchor = TrustedAnchor::default();
        let (tx_hash, proof) = f.ledger.prove_existence(3, &anchor).unwrap();
        f.ledger
            .verify_existence(3, &tx_hash, &proof, &anchor, VerifyLevel::Client)
            .unwrap();
    }

    #[test]
    fn occult_by_clue_requires_prerequisite_2() {
        let mut f = fixture(4);
        f.ledger.append(tx(&f.alice, b"x", &["c"], 0)).unwrap();
        let digest = f.ledger.occult_clue_approval_digest("c");
        let mut ms = MultiSignature::new();
        ms.add(&f.regulator, &digest); // DBA missing.
        assert!(matches!(
            f.ledger.occult_by_clue("c", ms, OccultMode::Sync),
            Err(LedgerError::InsufficientSignatures(_))
        ));
        // Unknown clue errors.
        let digest = f.ledger.occult_clue_approval_digest("nope");
        let mut ms = MultiSignature::new();
        ms.add(&f.dba, &digest);
        ms.add(&f.regulator, &digest);
        assert!(f.ledger.occult_by_clue("nope", ms, OccultMode::Sync).is_err());
    }

    #[test]
    fn clue_range_proofs() {
        let mut f = fixture(4);
        for i in 0..10u64 {
            f.ledger.append(tx(&f.alice, &i.to_be_bytes(), &["asset"], i)).unwrap();
        }
        f.ledger.seal_block();
        let root = f.ledger.clue_root();
        let proof = f.ledger.prove_clue_range("asset", 3, 7).unwrap();
        assert_eq!(proof.entries.len(), 4);
        CmTree::verify_client(&root, &proof).unwrap();
        assert!(f.ledger.prove_clue_range("asset", 7, 3).is_err());
        assert!(f.ledger.prove_clue_range("asset", 0, 11).is_err());
    }

    #[test]
    fn world_state_proofs() {
        let mut f = fixture(4);
        f.ledger.append(tx(&f.alice, b"v1", &["acct"], 0)).unwrap();
        f.ledger.append(tx(&f.alice, b"v2", &["acct"], 1)).unwrap();
        let state_root = f.ledger.state_root();
        let proof = f.ledger.prove_state("acct");
        // The proven value is the *latest* payload digest.
        assert_eq!(proof.claimed_value(), Some(sha256(b"v2").0.as_slice()));
        let value = LedgerDb::verify_state(&state_root, &proof).unwrap();
        assert_eq!(value, Some(sha256(b"v2").0.as_slice()));
        // Missing clues yield verifiable absence, not an error.
        let absent = f.ledger.prove_state("missing");
        assert_eq!(LedgerDb::verify_state(&state_root, &absent).unwrap(), None);
    }

    #[test]
    fn state_proof_metrics_labeled_per_backend() {
        let registry = ledgerdb_telemetry::Registry::new();
        let mut f = fixture(4);
        f.ledger.bind_metrics(&registry);
        f.ledger.append(tx(&f.alice, b"v1", &["acct"], 0)).unwrap();
        let state_root = f.ledger.state_root();
        let proof = f.ledger.prove_state("acct");
        f.ledger.verify_state_timed(&state_root, &proof).unwrap();

        let text = ledgerdb_telemetry::render(&registry);
        let label = f.ledger.state_backend();
        let bytes = ledgerdb_telemetry::parse_value(
            &text,
            &format!("ledger_proof_bytes_count{{backend=\"{label}\"}}"),
        );
        assert_eq!(bytes, Some(1.0), "proof size observed under the backend label");
        let verifies = ledgerdb_telemetry::parse_value(
            &text,
            &format!("ledger_verify_seconds_count{{backend=\"{label}\"}}"),
        );
        assert_eq!(verifies, Some(1.0), "verify latency observed under the backend label");
        let size = ledgerdb_telemetry::parse_value(
            &text,
            &format!("ledger_proof_bytes_max{{backend=\"{label}\"}}"),
        )
        .unwrap();
        assert!(size > 0.0, "recorded size is the non-empty wire encoding");
    }

    #[test]
    fn purge_with_fam_erasure_keeps_recent_provable() {
        let mut f = fixture(4); // fam_delta = 4 → epochs of 16.
        for i in 0..40u64 {
            f.ledger.append(tx(&f.alice, &i.to_be_bytes(), &[], i)).unwrap();
        }
        let digest = f.ledger.purge_approval_digest(20);
        let mut ms = MultiSignature::new();
        ms.add(&f.dba, &digest);
        ms.add(&f.alice, &digest);
        f.ledger.purge(20, ms, &[], true).unwrap();

        // Recent journals verify client-side even with erased early epochs.
        let anchor = f.ledger.anchor();
        for jsn in 20..40u64 {
            let (tx_hash, proof) = f.ledger.prove_existence(jsn, &anchor).unwrap();
            f.ledger
                .verify_existence(jsn, &tx_hash, &proof, &anchor, VerifyLevel::Client)
                .unwrap();
        }
        // Early journals in fully erased epochs are gone from the fam.
        assert!(f.ledger.prove_existence(0, &anchor).is_err());
    }

    #[test]
    fn world_state_tracks_latest_clue_payload() {
        let mut f = fixture(4);
        f.ledger.append(tx(&f.alice, b"v1", &["k"], 0)).unwrap();
        let r1 = f.ledger.state_root();
        f.ledger.append(tx(&f.alice, b"v2", &["k"], 1)).unwrap();
        let r2 = f.ledger.state_root();
        assert_ne!(r1, r2);
    }
}
