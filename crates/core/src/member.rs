//! Ledger membership: CA-certified participants and their roles.
//!
//! "Ledger members are registered and authenticated using their public
//! keys" (§II-C); the threat model assumes each participant's key is
//! CA-certified (§II-B). The registry validates certificates at
//! registration time and answers the role queries the mutation
//! prerequisites need (DBA for purge/occult, regulator for occult).

use crate::LedgerError;
use ledgerdb_crypto::ca::{Certificate, Role};
use ledgerdb_crypto::keys::PublicKey;
use std::collections::HashMap;

/// A registered ledger member.
#[derive(Clone, Debug)]
pub struct Member {
    pub certificate: Certificate,
}

impl Member {
    pub fn name(&self) -> &str {
        &self.certificate.subject
    }

    pub fn role(&self) -> Role {
        self.certificate.role
    }

    pub fn public_key(&self) -> &PublicKey {
        &self.certificate.public_key
    }
}

/// The member registry of one ledger.
#[derive(Clone)]
pub struct MemberRegistry {
    ca_key: PublicKey,
    by_key: HashMap<[u8; 64], Member>,
}

impl MemberRegistry {
    /// Create a registry trusting certificates issued under `ca_key`.
    pub fn new(ca_key: PublicKey) -> Self {
        MemberRegistry { ca_key, by_key: HashMap::new() }
    }

    /// Register a member; the certificate must verify against the CA.
    pub fn register(&mut self, certificate: Certificate) -> Result<(), LedgerError> {
        if !certificate.verify(&self.ca_key) {
            return Err(LedgerError::UnknownMember);
        }
        self.by_key
            .insert(certificate.public_key.to_bytes(), Member { certificate });
        Ok(())
    }

    /// Look up a member by public key.
    pub fn member(&self, pk: &PublicKey) -> Option<&Member> {
        self.by_key.get(&pk.to_bytes())
    }

    /// Is `pk` registered?
    pub fn is_registered(&self, pk: &PublicKey) -> bool {
        self.by_key.contains_key(&pk.to_bytes())
    }

    /// Public keys of every member holding `role`.
    pub fn keys_with_role(&self, role: Role) -> Vec<PublicKey> {
        self.by_key
            .values()
            .filter(|m| m.role() == role)
            .map(|m| *m.public_key())
            .collect()
    }

    /// Number of registered members.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ledgerdb_crypto::ca::CertificateAuthority;
    use ledgerdb_crypto::keys::KeyPair;

    fn setup() -> (CertificateAuthority, MemberRegistry) {
        let ca = CertificateAuthority::from_seed(b"ca");
        let registry = MemberRegistry::new(*ca.public_key());
        (ca, registry)
    }

    #[test]
    fn register_and_lookup() {
        let (ca, mut reg) = setup();
        let alice = KeyPair::from_seed(b"alice");
        reg.register(ca.issue("alice", Role::User, alice.public())).unwrap();
        assert!(reg.is_registered(alice.public()));
        assert_eq!(reg.member(alice.public()).unwrap().name(), "alice");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn rogue_certificate_rejected() {
        let (_, mut reg) = setup();
        let rogue_ca = CertificateAuthority::from_seed(b"rogue");
        let eve = KeyPair::from_seed(b"eve");
        let cert = rogue_ca.issue("eve", Role::Dba, eve.public());
        assert!(matches!(reg.register(cert), Err(LedgerError::UnknownMember)));
        assert!(!reg.is_registered(eve.public()));
    }

    #[test]
    fn role_queries() {
        let (ca, mut reg) = setup();
        let dba = KeyPair::from_seed(b"dba");
        let regr = KeyPair::from_seed(b"regulator");
        let user = KeyPair::from_seed(b"user");
        reg.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
        reg.register(ca.issue("reg", Role::Regulator, regr.public())).unwrap();
        reg.register(ca.issue("u", Role::User, user.public())).unwrap();
        assert_eq!(reg.keys_with_role(Role::Dba), vec![*dba.public()]);
        assert_eq!(reg.keys_with_role(Role::Regulator), vec![*regr.public()]);
        assert_eq!(reg.keys_with_role(Role::User).len(), 1);
    }
}
