//! A thread-safe ledger front-end.
//!
//! LedgerDB's deployment serves many concurrent clients through proxy
//! fleets (Fig 1). [`SharedLedger`] is the in-process equivalent: an
//! `Arc<RwLock<LedgerDb>>` with a deliberately narrow API — writers take
//! the lock briefly for appends/seals, and every verification entry point
//! runs under a shared read lock so proof serving scales with reader
//! count.

use crate::ledger::{AppendAck, LedgerDb, OccultMode};
use crate::types::{Block, Journal, Receipt, TxRequest, VerifyLevel};
use crate::LedgerError;
use ledgerdb_accumulator::fam::{FamProof, TrustedAnchor};
use ledgerdb_clue::cm_tree::ClueProof;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::keys::PublicKey;
use ledgerdb_crypto::multisig::MultiSignature;
use ledgerdb_crypto::sync::RwLock;
use std::sync::Arc;

/// A cloneable, thread-safe handle to one ledger.
#[derive(Clone)]
pub struct SharedLedger {
    inner: Arc<RwLock<LedgerDb>>,
}

impl SharedLedger {
    /// Wrap a ledger for shared use.
    pub fn new(ledger: LedgerDb) -> Self {
        SharedLedger { inner: Arc::new(RwLock::new(ledger)) }
    }

    /// Append a fully verified client transaction.
    pub fn append(&self, request: TxRequest) -> Result<AppendAck, LedgerError> {
        self.inner.write().append(request)
    }

    /// Append and seal immediately, returning the receipt.
    pub fn append_committed(&self, request: TxRequest) -> Result<Receipt, LedgerError> {
        self.inner.write().append_committed(request)
    }

    /// Group-commit append: the whole batch becomes durable behind O(1)
    /// fsyncs (see [`LedgerDb::append_batch`]). Takes the write lock
    /// once for the entire batch.
    pub fn append_batch(
        &self,
        requests: Vec<TxRequest>,
    ) -> Result<Vec<Result<AppendAck, LedgerError>>, LedgerError> {
        self.inner.write().append_batch(requests)
    }

    /// Append a request whose π_c was verified upstream (proxy tier,
    /// Fig 1); membership is still enforced. See
    /// [`LedgerDb::append_preverified`].
    pub fn append_preverified(&self, request: TxRequest) -> Result<AppendAck, LedgerError> {
        self.inner.write().append_preverified(request)
    }

    /// Proxy-admitted variant of [`SharedLedger::append_committed`]:
    /// append, seal, and return the receipt, skipping the π_c re-check.
    pub fn append_committed_preverified(
        &self,
        request: TxRequest,
    ) -> Result<Receipt, LedgerError> {
        let mut inner = self.inner.write();
        let ack = inner.append_preverified(request)?;
        inner.try_seal_block()?;
        Ok(inner.receipt(ack.jsn)?.expect("sealed block issues receipts"))
    }

    /// Admission check (membership + π_c) under a shared **read** lock:
    /// many client threads verify in parallel while the write path
    /// stays free. Pair with
    /// [`SharedLedger::append_batch_preverified`].
    pub fn verify_request(&self, request: &TxRequest) -> Result<(), LedgerError> {
        self.inner.read().verify_request(request)
    }

    /// Group-commit append for requests already admitted via
    /// [`SharedLedger::verify_request`] — the serial committer skips
    /// the dominant ECDSA cost.
    pub fn append_batch_preverified(
        &self,
        requests: Vec<TxRequest>,
    ) -> Result<Vec<Result<AppendAck, LedgerError>>, LedgerError> {
        self.inner.write().append_batch_preverified(requests)
    }

    /// Seal the pending block. Infallible: a WAL failure is stashed as
    /// the sticky durability error — use [`SharedLedger::try_seal_block`]
    /// (or check [`SharedLedger::take_durability_error`]) on paths that
    /// must not miss it.
    pub fn seal_block(&self) {
        self.inner.write().seal_block();
    }

    /// Seal the pending block, reporting WAL failures instead of
    /// stashing them. On error the journals stay pending and the seal
    /// can be retried.
    pub fn try_seal_block(&self) -> Result<(), LedgerError> {
        self.inner.write().try_seal_block()
    }

    /// Take (and clear) a durability failure stashed by an infallible
    /// path (the auto-seal inside the append hot path). Service-layer
    /// callers poll this so a stashed error is surfaced promptly rather
    /// than only on the next fallible write.
    pub fn take_durability_error(&self) -> Option<LedgerError> {
        self.inner.write().take_durability_error()
    }

    /// Flush both durable streams — the group-commit barrier.
    pub fn sync_durable(&self) -> Result<(), LedgerError> {
        self.inner.read().sync_durable()
    }

    /// Current journal count.
    pub fn journal_count(&self) -> u64 {
        self.inner.read().journal_count()
    }

    /// Current fam root.
    pub fn journal_root(&self) -> Digest {
        self.inner.read().journal_root()
    }

    /// Current CM-Tree root.
    pub fn clue_root(&self) -> Digest {
        self.inner.read().clue_root()
    }

    /// Snapshot a trusted anchor.
    pub fn anchor(&self) -> TrustedAnchor {
        self.inner.read().anchor()
    }

    /// Sealed block count.
    pub fn block_count(&self) -> u64 {
        self.inner.read().block_count()
    }

    /// The ledger's identity digest.
    pub fn id(&self) -> Digest {
        self.inner.read().id()
    }

    /// The LSP public key (what receipts are signed with).
    pub fn lsp_public_key(&self) -> PublicKey {
        *self.inner.read().lsp_public_key()
    }

    /// The fam fractal height δ (a distrusting client must replay with
    /// the same value).
    pub fn fam_delta(&self) -> u32 {
        self.inner.read().fam_delta()
    }

    /// Clone sealed blocks `[from_height, from_height + max)` — the
    /// block-download feed a distrusting client syncs from.
    pub fn blocks_from(&self, from_height: u64, max: u64) -> Vec<Block> {
        let inner = self.inner.read();
        let blocks = inner.blocks();
        let lo = (from_height as usize).min(blocks.len());
        let hi = lo.saturating_add(max as usize).min(blocks.len());
        blocks[lo..hi].to_vec()
    }

    /// Fetch a journal record plus its payload (None when erased).
    /// Occulted and purged journals error exactly as [`LedgerDb::get_tx`].
    pub fn get_tx(&self, jsn: u64) -> Result<(Journal, Option<Vec<u8>>), LedgerError> {
        let inner = self.inner.read();
        let journal = inner.get_tx(jsn)?.clone();
        let payload = inner.get_payload(jsn).ok();
        Ok((journal, payload))
    }

    /// Fetch a receipt (signed on demand).
    pub fn receipt(&self, jsn: u64) -> Result<Option<Receipt>, LedgerError> {
        self.inner.read().receipt(jsn)
    }

    /// Produce an existence proof.
    pub fn prove_existence(
        &self,
        jsn: u64,
        anchor: &TrustedAnchor,
    ) -> Result<(Digest, FamProof), LedgerError> {
        self.inner.read().prove_existence(jsn, anchor)
    }

    /// Verify an existence proof.
    pub fn verify_existence(
        &self,
        jsn: u64,
        tx_hash: &Digest,
        proof: &FamProof,
        anchor: &TrustedAnchor,
        level: VerifyLevel,
    ) -> Result<(), LedgerError> {
        self.inner.read().verify_existence(jsn, tx_hash, proof, anchor, level)
    }

    /// Produce a clue proof.
    pub fn prove_clue(&self, clue: &str) -> Result<ClueProof, LedgerError> {
        self.inner.read().prove_clue(clue)
    }

    /// List a clue's jsns.
    pub fn list_tx(&self, clue: &str) -> Vec<u64> {
        self.inner.read().list_tx(clue)
    }

    /// Occult a journal.
    pub fn occult(
        &self,
        target: u64,
        approvals: MultiSignature,
        mode: OccultMode,
    ) -> Result<AppendAck, LedgerError> {
        self.inner.write().occult(target, approvals, mode)
    }

    /// Run a closure under the read lock (bulk verification, audits).
    pub fn with_read<T>(&self, f: impl FnOnce(&LedgerDb) -> T) -> T {
        f(&self.inner.read())
    }

    /// Run a closure under the write lock (migrations, purge flows).
    pub fn with_write<T>(&self, f: impl FnOnce(&mut LedgerDb) -> T) -> T {
        f(&mut self.inner.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{audit_ledger, AuditConfig};
    use crate::ledger::tests::fixture;

    #[test]
    fn concurrent_appends_are_serialized() {
        let f = fixture(16);
        let alice = f.alice.clone();
        let shared = SharedLedger::new(f.ledger);
        // Pre-sign requests (client-side work) outside the threads.
        let requests: Vec<Vec<TxRequest>> = (0..4)
            .map(|t| {
                (0..25u64)
                    .map(|i| {
                        TxRequest::signed(
                            &alice,
                            format!("t{t}-{i}").into_bytes(),
                            vec![format!("thread-{t}")],
                            t * 1000 + i,
                        )
                    })
                    .collect()
            })
            .collect();
        std::thread::scope(|scope| {
            for batch in requests {
                let handle = shared.clone();
                scope.spawn(move || {
                    for req in batch {
                        handle.append(req).unwrap();
                    }
                });
            }
        });
        shared.seal_block();
        assert_eq!(shared.journal_count(), 100);
        // Every thread's lineage is complete.
        for t in 0..4 {
            assert_eq!(shared.list_tx(&format!("thread-{t}")).len(), 25);
        }
        // The interleaved ledger still audits green.
        shared.with_read(|ledger| {
            audit_ledger(ledger, &AuditConfig::default()).unwrap();
        });
    }

    #[test]
    fn readers_verify_while_writer_appends() {
        let f = fixture(8);
        let alice = f.alice.clone();
        let shared = SharedLedger::new(f.ledger);
        for i in 0..32u64 {
            let req = TxRequest::signed(&alice, vec![i as u8], vec!["c".into()], i);
            shared.append(req).unwrap();
        }
        shared.seal_block();

        let writer_reqs: Vec<TxRequest> = (100..140u64)
            .map(|i| TxRequest::signed(&alice, vec![i as u8], vec!["c".into()], i))
            .collect();
        std::thread::scope(|scope| {
            let w = shared.clone();
            scope.spawn(move || {
                for req in writer_reqs {
                    w.append(req).unwrap();
                }
                w.seal_block();
            });
            for _ in 0..3 {
                let r = shared.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        // Snapshot-consistent read path: anchor + proof +
                        // verify under one read lock each.
                        let anchor = r.anchor();
                        let (tx_hash, proof) = r.prove_existence(5, &anchor).unwrap();
                        // The root may move between calls; re-prove on the
                        // rare mismatch rather than asserting staleness.
                        let ok = r
                            .verify_existence(5, &tx_hash, &proof, &anchor, VerifyLevel::Client)
                            .is_ok();
                        let server_ok = r
                            .verify_existence(5, &tx_hash, &proof, &anchor, VerifyLevel::Server)
                            .is_ok();
                        assert!(server_ok);
                        let _ = ok;
                    }
                });
            }
        });
        assert_eq!(shared.journal_count(), 72);
    }

    #[test]
    fn scrapes_race_concurrent_appends_without_blocking() {
        let f = fixture(16);
        let alice = f.alice.clone();
        let registry = std::sync::Arc::new(ledgerdb_telemetry::Registry::new());
        let mut ledger = f.ledger;
        ledger.bind_metrics(&registry);
        let shared = SharedLedger::new(ledger);
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let handle = shared.clone();
                let alice = alice.clone();
                scope.spawn(move || {
                    for i in 0..40u64 {
                        let req = TxRequest::signed(
                            &alice,
                            format!("scrape-{t}-{i}").into_bytes(),
                            vec![],
                            t * 1000 + i,
                        );
                        handle.append(req).unwrap();
                    }
                });
            }
            // Scrapers render the exposition while the writers append;
            // the registry walk takes no lock, so neither side can
            // block the other or observe a torn registry.
            for _ in 0..2 {
                let registry = registry.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let text = ledgerdb_telemetry::render(&registry);
                        if let Some(n) =
                            ledgerdb_telemetry::parse_value(&text, "ledger_appends_total")
                        {
                            assert!((0.0..=80.0).contains(&n), "impossible count {n}");
                        }
                    }
                });
            }
        });
        let text = ledgerdb_telemetry::render(&registry);
        assert_eq!(
            ledgerdb_telemetry::parse_value(&text, "ledger_appends_total"),
            Some(80.0),
            "all appends visible once the writers join:\n{text}"
        );
        assert_eq!(
            ledgerdb_telemetry::parse_value(&text, "ledger_append_seconds_count"),
            Some(80.0)
        );
        assert_eq!(shared.journal_count(), 80);
    }

    #[test]
    fn handles_share_state() {
        let f = fixture(4);
        let alice = f.alice.clone();
        let a = SharedLedger::new(f.ledger);
        let b = a.clone();
        a.append(TxRequest::signed(&alice, b"x".to_vec(), vec![], 0)).unwrap();
        assert_eq!(b.journal_count(), 1);
    }
}
