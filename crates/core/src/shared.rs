//! A thread-safe ledger front-end.
//!
//! LedgerDB's deployment serves many concurrent clients through proxy
//! fleets (Fig 1). [`SharedLedger`] is the in-process equivalent: an
//! `Arc<RwLock<LedgerDb>>` with a deliberately narrow API — writers take
//! the lock briefly for appends/seals, while reads over the **sealed
//! prefix** are served lock-free from the current [`ReadSnapshot`]
//! (published on every seal; see [`crate::snapshot`]). Only queries
//! that reach into the unsealed tail — or run with the snapshot path
//! toggled off — fall back to the shared read lock, so proof serving
//! no longer stalls behind a writer holding the lock across an fsync.

use crate::ledger::{AppendAck, LedgerDb, OccultMode};
use crate::snapshot::{ReadSnapshot, SnapshotHub};
use crate::state::{StateBackend, StateProof};
use crate::types::{Block, Journal, Receipt, TxRequest, VerifyLevel};
use crate::LedgerError;
use ledgerdb_accumulator::fam::{FamProof, TrustedAnchor};
use ledgerdb_clue::cm_tree::ClueProof;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::keys::PublicKey;
use ledgerdb_crypto::multisig::MultiSignature;
use ledgerdb_crypto::sync::RwLock;
use ledgerdb_telemetry::trace::{self, StageSpan};
use std::sync::Arc;

/// A cloneable, thread-safe handle to one ledger.
#[derive(Clone)]
pub struct SharedLedger {
    inner: Arc<RwLock<LedgerDb>>,
    hub: Arc<SnapshotHub>,
}

impl SharedLedger {
    /// Wrap a ledger for shared use. Installs the snapshot publication
    /// hub: the sealed prefix existing right now (e.g. after recovery)
    /// becomes the initial snapshot, and every subsequent seal, occult
    /// and purge republishes.
    pub fn new(mut ledger: LedgerDb) -> Self {
        let hub = ledger.install_snapshot_hub();
        SharedLedger { inner: Arc::new(RwLock::new(ledger)), hub }
    }

    /// The current read snapshot (one `Arc` clone; never the ledger
    /// lock). Proofs produced from it verify against
    /// [`ReadSnapshot::info`] — the `LedgerInfo` the snapshot names.
    pub fn snapshot(&self) -> Arc<ReadSnapshot> {
        self.hub.load()
    }

    /// Toggle the snapshot read path (on by default). With it off,
    /// every read goes through the shared read lock — the A/B baseline
    /// for the mixed-workload benchmark.
    pub fn set_snapshot_reads(&self, on: bool) {
        self.hub.set_reads_enabled(on);
    }

    /// Is the snapshot read path enabled?
    pub fn snapshot_reads(&self) -> bool {
        self.hub.reads_enabled()
    }

    /// Load the current snapshot if the read path is enabled AND the
    /// sealed prefix covers `jsn`; counts the hit/fallback either way.
    fn snap_covering(&self, jsn: u64) -> Option<Arc<ReadSnapshot>> {
        if !self.hub.reads_enabled() {
            return None;
        }
        let snap = self.hub.load();
        if snap.covers(jsn) {
            self.hub.note_hit(&snap);
            Some(snap)
        } else {
            self.hub.note_fallback(&snap);
            None
        }
    }

    /// Append a fully verified client transaction.
    pub fn append(&self, request: TxRequest) -> Result<AppendAck, LedgerError> {
        self.inner.write().append(request)
    }

    /// Append and seal immediately, returning the receipt.
    pub fn append_committed(&self, request: TxRequest) -> Result<Receipt, LedgerError> {
        self.inner.write().append_committed(request)
    }

    /// Group-commit append: the whole batch becomes durable behind O(1)
    /// fsyncs (see [`LedgerDb::append_batch`]). Takes the write lock
    /// once for the entire batch.
    pub fn append_batch(
        &self,
        requests: Vec<TxRequest>,
    ) -> Result<Vec<Result<AppendAck, LedgerError>>, LedgerError> {
        let _locked = StageSpan::begin("locked_insert");
        self.inner.write().append_batch(requests)
    }

    /// Append a request whose π_c was verified upstream (proxy tier,
    /// Fig 1); membership is still enforced. See
    /// [`LedgerDb::append_preverified`].
    pub fn append_preverified(&self, request: TxRequest) -> Result<AppendAck, LedgerError> {
        self.inner.write().append_preverified(request)
    }

    /// Proxy-admitted variant of [`SharedLedger::append_committed`]:
    /// append, seal, and return the receipt, skipping the π_c re-check.
    pub fn append_committed_preverified(
        &self,
        request: TxRequest,
    ) -> Result<Receipt, LedgerError> {
        let mut inner = self.inner.write();
        let ack = inner.append_preverified(request)?;
        inner.try_seal_block()?;
        Ok(inner.receipt(ack.jsn)?.expect("sealed block issues receipts"))
    }

    /// Admission check (membership + π_c), served lock-free from the
    /// snapshot's frozen registry view: many client threads verify in
    /// parallel without even a read lock. A member unknown to the
    /// snapshot (registered after the last publish) falls back to the
    /// live registry under the read lock before being rejected. Pair
    /// with [`SharedLedger::append_batch_preverified`].
    pub fn verify_request(&self, request: &TxRequest) -> Result<(), LedgerError> {
        if self.hub.reads_enabled() {
            let snap = self.hub.load();
            match snap.verify_request(request) {
                Err(LedgerError::UnknownMember) => {
                    self.hub.note_fallback(&snap);
                }
                verdict => {
                    self.hub.note_hit(&snap);
                    return verdict;
                }
            }
        }
        self.inner.read().verify_request(request)
    }

    /// Group-commit append for requests already admitted via
    /// [`SharedLedger::verify_request`] — the serial committer skips
    /// the dominant ECDSA cost.
    pub fn append_batch_preverified(
        &self,
        requests: Vec<TxRequest>,
    ) -> Result<Vec<Result<AppendAck, LedgerError>>, LedgerError> {
        let _locked = StageSpan::begin("locked_insert");
        self.inner.write().append_batch_preverified(requests)
    }

    /// Install (or clear) the seal-time compute pool on the underlying
    /// ledger; see [`LedgerDb::set_pool`].
    pub fn set_pool(&self, pool: Option<Arc<ledgerdb_pool::Pool>>) {
        self.inner.write().set_pool(pool);
    }

    /// Fully pipelined group-commit append: admission (membership +
    /// π_c, against the lock-free snapshot registry) *and* digest
    /// precompute fan out across `pool` before the write lock is taken,
    /// so the locked window is structural inserts + one WAL write. A
    /// panicking item surfaces as a typed per-item
    /// [`LedgerError::TaskFailed`]; its siblings commit normally.
    ///
    /// Result order is positional (the pool's map is index-stable), so
    /// acks line up with `requests` exactly as in
    /// [`SharedLedger::append_batch`] — and jsn assignment, done under
    /// the lock in that same order, is byte-for-byte identical to the
    /// serial path.
    pub fn append_batch_pipelined(
        &self,
        requests: Vec<TxRequest>,
        pool: &ledgerdb_pool::Pool,
    ) -> Result<Vec<Result<AppendAck, LedgerError>>, LedgerError> {
        let prepared = self.prepare_off_lock(requests, pool, true);
        let _locked = StageSpan::begin("locked_insert");
        self.inner.write().append_batch_prepared(prepared)
    }

    /// Pipelined variant of [`SharedLedger::append_batch_preverified`]:
    /// π_c was already checked upstream (per-connection admission or a
    /// trusted proxy tier), so the off-lock stage computes digests only.
    pub fn append_batch_preverified_pipelined(
        &self,
        requests: Vec<TxRequest>,
        pool: &ledgerdb_pool::Pool,
    ) -> Result<Vec<Result<AppendAck, LedgerError>>, LedgerError> {
        let prepared = self.prepare_off_lock(requests, pool, false);
        let _locked = StageSpan::begin("locked_insert");
        self.inner.write().append_batch_prepared(prepared)
    }

    /// Off-lock stage of the pipelined appends: verify (optionally) and
    /// digest every request across the pool. Runs under no ledger lock.
    fn prepare_off_lock(
        &self,
        requests: Vec<TxRequest>,
        pool: &ledgerdb_pool::Pool,
        check_signatures: bool,
    ) -> Vec<Result<crate::ledger::PreparedTx, LedgerError>> {
        let _precompute = StageSpan::begin("precompute");
        // Worker spans carry the submitting request's scope across the
        // fan-out, so per-item verify/digest work shows up (with the
        // worker's thread id) inside that request's span tree.
        let scope = trace::current_scope();
        pool.try_map(&requests, |_, request| {
            let _scope = scope.clone().map(trace::install);
            let _task = StageSpan::begin("precompute_task");
            if check_signatures {
                self.verify_request(request)?;
            }
            Ok(crate::ledger::PreparedTx::compute(request.clone()))
        })
        .into_iter()
        .map(|slot| match slot {
            Ok(item) => item,
            Err(panic) => Err(LedgerError::TaskFailed(panic.message)),
        })
        .collect()
    }

    /// Seal the pending block. Infallible: a WAL failure is stashed as
    /// the sticky durability error — use [`SharedLedger::try_seal_block`]
    /// (or check [`SharedLedger::take_durability_error`]) on paths that
    /// must not miss it.
    pub fn seal_block(&self) {
        self.inner.write().seal_block();
    }

    /// Seal the pending block, reporting WAL failures instead of
    /// stashing them. On error the journals stay pending and the seal
    /// can be retried.
    pub fn try_seal_block(&self) -> Result<(), LedgerError> {
        self.inner.write().try_seal_block()
    }

    /// Take (and clear) a durability failure stashed by an infallible
    /// path (the auto-seal inside the append hot path). Service-layer
    /// callers poll this so a stashed error is surfaced promptly rather
    /// than only on the next fallible write.
    pub fn take_durability_error(&self) -> Option<LedgerError> {
        self.inner.write().take_durability_error()
    }

    /// Flush both durable streams — the group-commit barrier.
    pub fn sync_durable(&self) -> Result<(), LedgerError> {
        self.inner.read().sync_durable()
    }

    /// True when a checkpoint policy is enabled on the wrapped ledger.
    pub fn checkpoints_enabled(&self) -> bool {
        self.inner.read().checkpoint_store().is_some()
    }

    /// Coverage of the newest committed checkpoint as
    /// `(journal_count, block_count)`; `None` without one.
    pub fn checkpoint_watermark(&self) -> Option<(u64, u64)> {
        self.inner.read().checkpoint_watermark()
    }

    /// Snapshot id of the newest committed checkpoint; `None` without a
    /// policy or before the first commit.
    pub fn checkpoint_snapshot_id(&self) -> Option<Digest> {
        self.inner.read().checkpoint_snapshot_id()
    }

    /// Seals committed since the last checkpoint (the policy's trigger
    /// counter); `None` without a policy.
    pub fn checkpoint_seals_since(&self) -> Option<u64> {
        self.inner.read().checkpoint_seals_since()
    }

    /// Snapshot read-path counters as `(hits, fallbacks)`: reads served
    /// lock-free from the published snapshot vs. reads that had to take
    /// the ledger lock (unsealed tail, disabled path, …).
    pub fn snapshot_read_counts(&self) -> (u64, u64) {
        let inner = self.inner.read();
        (
            inner.metrics.snapshot_hits.get(),
            inner.metrics.snapshot_fallbacks.get(),
        )
    }

    /// Drain-path checkpoint: commit a final checkpoint (no-op without
    /// a policy or mid-block) so the next start replays only the
    /// unsealed tail. Taking the write lock doubles as the completion
    /// barrier for any checkpoint already in flight on the seal path.
    /// A failure is stashed as the sticky durability error (gauge up)
    /// rather than returned — the WAL already holds everything; the
    /// next start just replays a longer tail.
    pub fn checkpoint_on_drain(&self) -> Option<Digest> {
        let mut ledger = self.inner.write();
        match ledger.checkpoint_now() {
            Ok(id) => id,
            Err(e) => {
                ledger.stash_durability_error(e);
                None
            }
        }
    }

    /// Current journal count.
    pub fn journal_count(&self) -> u64 {
        self.inner.read().journal_count()
    }

    /// Current fam root.
    pub fn journal_root(&self) -> Digest {
        self.inner.read().journal_root()
    }

    /// Current CM-Tree root.
    pub fn clue_root(&self) -> Digest {
        self.inner.read().clue_root()
    }

    /// Snapshot a trusted anchor. Anchors are append-only trust records
    /// (sealed epoch roots never change), so the snapshot's — captured
    /// at its publish point — is always valid, at worst covering a few
    /// epochs fewer than the live fam.
    pub fn anchor(&self) -> TrustedAnchor {
        if self.hub.reads_enabled() {
            let snap = self.hub.load();
            self.hub.note_hit(&snap);
            return snap.anchor().clone();
        }
        self.inner.read().anchor()
    }

    /// Sealed block count.
    pub fn block_count(&self) -> u64 {
        self.inner.read().block_count()
    }

    /// The ledger's identity digest (immutable — served lock-free).
    pub fn id(&self) -> Digest {
        self.hub.load().id()
    }

    /// The LSP public key (immutable — served lock-free).
    pub fn lsp_public_key(&self) -> PublicKey {
        *self.hub.load().lsp_public_key()
    }

    /// The fam fractal height δ (immutable — served lock-free; a
    /// distrusting client must replay with the same value).
    pub fn fam_delta(&self) -> u32 {
        self.hub.load().fam_delta()
    }

    /// Clone sealed blocks `[from_height, from_height + max)` — the
    /// block-download feed a distrusting client syncs from. Blocks only
    /// exist sealed, so the snapshot always serves this when enabled.
    pub fn blocks_from(&self, from_height: u64, max: u64) -> Vec<Block> {
        if self.hub.reads_enabled() {
            let snap = self.hub.load();
            self.hub.note_hit(&snap);
            return snap.blocks_from(from_height, max);
        }
        let inner = self.inner.read();
        let blocks = inner.blocks();
        let lo = (from_height as usize).min(blocks.len());
        let hi = lo.saturating_add(max as usize).min(blocks.len());
        blocks[lo..hi].to_vec()
    }

    /// Fetch a journal record plus its payload (None when erased).
    /// Occulted and purged journals error exactly as [`LedgerDb::get_tx`];
    /// sealed journals are served from the snapshot without the lock.
    pub fn get_tx(&self, jsn: u64) -> Result<(Journal, Option<Vec<u8>>), LedgerError> {
        if let Some(snap) = self.snap_covering(jsn) {
            let journal = snap.get_tx(jsn)?.clone();
            let payload = snap.get_payload(jsn).ok();
            return Ok((journal, payload));
        }
        let inner = self.inner.read();
        let journal = inner.get_tx(jsn)?.clone();
        let payload = inner.get_payload(jsn).ok();
        Ok((journal, payload))
    }

    /// Fetch a receipt (signed on demand). Sealed journals sign against
    /// the snapshot — byte-identical to the locked path (deterministic
    /// ECDSA over identical block data).
    pub fn receipt(&self, jsn: u64) -> Result<Option<Receipt>, LedgerError> {
        if let Some(snap) = self.snap_covering(jsn) {
            return snap.receipt(jsn);
        }
        self.inner.read().receipt(jsn)
    }

    /// Produce an existence proof. Proofs over the sealed prefix come
    /// from the snapshot's frozen fam and verify against the snapshot's
    /// `LedgerInfo`; unsealed-tail jsns fall back to the locked path.
    pub fn prove_existence(
        &self,
        jsn: u64,
        anchor: &TrustedAnchor,
    ) -> Result<(Digest, FamProof), LedgerError> {
        if let Some(snap) = self.snap_covering(jsn) {
            if snap.can_prove() {
                return snap.prove_existence(jsn, anchor);
            }
        }
        self.inner.read().prove_existence(jsn, anchor)
    }

    /// Batched [`SharedLedger::prove_existence`] with *hoisted*
    /// resolution: the snapshot is loaded and checked once for the
    /// whole batch, and on the fallback the read lock is acquired once
    /// — the per-item closure no longer re-resolves either. A batch
    /// fully covered by a provable snapshot is served lock-free,
    /// fanned out across `pool` when one is given (a panicking item
    /// surfaces positionally as [`LedgerError::TaskFailed`]). Results
    /// are positional.
    pub fn prove_existence_batch(
        &self,
        jsns: &[u64],
        anchor: &TrustedAnchor,
        pool: Option<&ledgerdb_pool::Pool>,
    ) -> Vec<Result<(Digest, FamProof), LedgerError>> {
        if self.hub.reads_enabled() {
            let snap = self.hub.load();
            if snap.can_prove() && jsns.iter().all(|&jsn| snap.covers(jsn)) {
                self.hub.note_hit(&snap);
                if let Some(pool) = pool {
                    // Worker spans carry the request's scope across the
                    // fan-out, exactly as the pipelined append path.
                    let scope = trace::current_scope();
                    return pool
                        .try_map(jsns, |_, &jsn| {
                            let _scope = scope.clone().map(trace::install);
                            let _span = StageSpan::begin("proof_task");
                            snap.prove_existence(jsn, anchor)
                        })
                        .into_iter()
                        .map(|slot| match slot {
                            Ok(result) => result,
                            Err(panic) => Err(LedgerError::TaskFailed(panic.message)),
                        })
                        .collect();
                }
                return jsns.iter().map(|&jsn| snap.prove_existence(jsn, anchor)).collect();
            }
            self.hub.note_fallback(&snap);
        }
        let inner = self.inner.read();
        jsns.iter().map(|&jsn| inner.prove_existence(jsn, anchor)).collect()
    }

    /// Verify an existence proof. Server level needs only the sealed
    /// journal record; client level checks against the snapshot's root.
    pub fn verify_existence(
        &self,
        jsn: u64,
        tx_hash: &Digest,
        proof: &FamProof,
        anchor: &TrustedAnchor,
        level: VerifyLevel,
    ) -> Result<(), LedgerError> {
        if let Some(snap) = self.snap_covering(jsn) {
            if level == VerifyLevel::Server || snap.can_prove() {
                return snap.verify_existence(jsn, tx_hash, proof, anchor, level);
            }
        }
        self.inner.read().verify_existence(jsn, tx_hash, proof, anchor, level)
    }

    /// Produce a clue proof (always locked: CM-Tree proofs need the
    /// live MPT and per-clue accumulators, which snapshots summarize
    /// only by root).
    pub fn prove_clue(&self, clue: &str) -> Result<ClueProof, LedgerError> {
        self.inner.read().prove_clue(clue)
    }

    /// Produce a state-commitment proof for a clue: inclusion when the
    /// clue has a committed latest-payload digest, verifiable absence
    /// otherwise. Always locked — the world state lives only on the
    /// live ledger; snapshots summarize it by root.
    pub fn prove_state(&self, clue: &str) -> StateProof {
        self.inner.read().prove_state(clue)
    }

    /// The current state-commitment root.
    pub fn state_root(&self) -> Digest {
        self.inner.read().state_root()
    }

    /// The state-commitment backend this ledger was configured with.
    pub fn state_backend(&self) -> StateBackend {
        self.inner.read().state_backend()
    }

    /// List a clue's jsns. Served from the snapshot only when no
    /// unsealed tail exists (a tail journal could carry the clue, and
    /// the snapshot cannot see it); otherwise the locked path answers.
    pub fn list_tx(&self, clue: &str) -> Vec<u64> {
        if self.hub.reads_enabled() {
            let snap = self.hub.load();
            if snap.journal_count() == self.hub.live_journals() {
                self.hub.note_hit(&snap);
                return snap.list_tx(clue);
            }
            self.hub.note_fallback(&snap);
        }
        self.inner.read().list_tx(clue)
    }

    /// Occult a journal.
    pub fn occult(
        &self,
        target: u64,
        approvals: MultiSignature,
        mode: OccultMode,
    ) -> Result<AppendAck, LedgerError> {
        self.inner.write().occult(target, approvals, mode)
    }

    /// Run a closure under the read lock (bulk verification, audits).
    pub fn with_read<T>(&self, f: impl FnOnce(&LedgerDb) -> T) -> T {
        f(&self.inner.read())
    }

    /// Run a closure under the write lock (migrations, purge flows).
    pub fn with_write<T>(&self, f: impl FnOnce(&mut LedgerDb) -> T) -> T {
        f(&mut self.inner.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{audit_ledger, AuditConfig};
    use crate::ledger::tests::fixture;

    #[test]
    fn concurrent_appends_are_serialized() {
        let f = fixture(16);
        let alice = f.alice.clone();
        let shared = SharedLedger::new(f.ledger);
        // Pre-sign requests (client-side work) outside the threads.
        let requests: Vec<Vec<TxRequest>> = (0..4)
            .map(|t| {
                (0..25u64)
                    .map(|i| {
                        TxRequest::signed(
                            &alice,
                            format!("t{t}-{i}").into_bytes(),
                            vec![format!("thread-{t}")],
                            t * 1000 + i,
                        )
                    })
                    .collect()
            })
            .collect();
        std::thread::scope(|scope| {
            for batch in requests {
                let handle = shared.clone();
                scope.spawn(move || {
                    for req in batch {
                        handle.append(req).unwrap();
                    }
                });
            }
        });
        shared.seal_block();
        assert_eq!(shared.journal_count(), 100);
        // Every thread's lineage is complete.
        for t in 0..4 {
            assert_eq!(shared.list_tx(&format!("thread-{t}")).len(), 25);
        }
        // The interleaved ledger still audits green.
        shared.with_read(|ledger| {
            audit_ledger(ledger, &AuditConfig::default()).unwrap();
        });
    }

    #[test]
    fn readers_verify_while_writer_appends() {
        let f = fixture(8);
        let alice = f.alice.clone();
        let shared = SharedLedger::new(f.ledger);
        for i in 0..32u64 {
            let req = TxRequest::signed(&alice, vec![i as u8], vec!["c".into()], i);
            shared.append(req).unwrap();
        }
        shared.seal_block();

        let writer_reqs: Vec<TxRequest> = (100..140u64)
            .map(|i| TxRequest::signed(&alice, vec![i as u8], vec!["c".into()], i))
            .collect();
        std::thread::scope(|scope| {
            let w = shared.clone();
            scope.spawn(move || {
                for req in writer_reqs {
                    w.append(req).unwrap();
                }
                w.seal_block();
            });
            for _ in 0..3 {
                let r = shared.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        // Snapshot-consistent read path: anchor + proof +
                        // verify under one read lock each.
                        let anchor = r.anchor();
                        let (tx_hash, proof) = r.prove_existence(5, &anchor).unwrap();
                        // The root may move between calls; re-prove on the
                        // rare mismatch rather than asserting staleness.
                        let ok = r
                            .verify_existence(5, &tx_hash, &proof, &anchor, VerifyLevel::Client)
                            .is_ok();
                        let server_ok = r
                            .verify_existence(5, &tx_hash, &proof, &anchor, VerifyLevel::Server)
                            .is_ok();
                        assert!(server_ok);
                        let _ = ok;
                    }
                });
            }
        });
        assert_eq!(shared.journal_count(), 72);
    }

    #[test]
    fn scrapes_race_concurrent_appends_without_blocking() {
        let f = fixture(16);
        let alice = f.alice.clone();
        let registry = std::sync::Arc::new(ledgerdb_telemetry::Registry::new());
        let mut ledger = f.ledger;
        ledger.bind_metrics(&registry);
        let shared = SharedLedger::new(ledger);
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let handle = shared.clone();
                let alice = alice.clone();
                scope.spawn(move || {
                    for i in 0..40u64 {
                        let req = TxRequest::signed(
                            &alice,
                            format!("scrape-{t}-{i}").into_bytes(),
                            vec![],
                            t * 1000 + i,
                        );
                        handle.append(req).unwrap();
                    }
                });
            }
            // Scrapers render the exposition while the writers append;
            // the registry walk takes no lock, so neither side can
            // block the other or observe a torn registry.
            for _ in 0..2 {
                let registry = registry.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let text = ledgerdb_telemetry::render(&registry);
                        if let Some(n) =
                            ledgerdb_telemetry::parse_value(&text, "ledger_appends_total")
                        {
                            assert!((0.0..=80.0).contains(&n), "impossible count {n}");
                        }
                    }
                });
            }
        });
        let text = ledgerdb_telemetry::render(&registry);
        assert_eq!(
            ledgerdb_telemetry::parse_value(&text, "ledger_appends_total"),
            Some(80.0),
            "all appends visible once the writers join:\n{text}"
        );
        assert_eq!(
            ledgerdb_telemetry::parse_value(&text, "ledger_append_seconds_count"),
            Some(80.0)
        );
        assert_eq!(shared.journal_count(), 80);
    }

    #[test]
    fn snapshot_proofs_verify_against_the_info_they_name() {
        let f = fixture(8);
        let alice = f.alice.clone();
        let shared = SharedLedger::new(f.ledger);
        for i in 0..24u64 {
            shared
                .append(TxRequest::signed(&alice, vec![i as u8], vec!["c".into()], i))
                .unwrap();
        }
        let snap = shared.snapshot();
        assert_eq!(snap.journal_count(), 24);
        assert_eq!(snap.journal_root(), snap.info().journal_root);
        // Proofs produced from the snapshot verify against the snapshot's
        // own LedgerInfo even after the live ledger moves on.
        for i in 24..40u64 {
            shared
                .append(TxRequest::signed(&alice, vec![i as u8], vec![], i))
                .unwrap();
        }
        let anchor = TrustedAnchor::default();
        for jsn in [0u64, 7, 15, 23] {
            let (tx_hash, proof) = snap.prove_existence(jsn, &anchor).unwrap();
            ledgerdb_accumulator::fam::FamTree::verify(
                &snap.info().journal_root,
                &anchor,
                &tx_hash,
                &proof,
            )
            .unwrap();
        }
    }

    #[test]
    fn unsealed_tail_falls_back_to_the_locked_path() {
        let f = fixture(8);
        let alice = f.alice.clone();
        let registry = std::sync::Arc::new(ledgerdb_telemetry::Registry::new());
        let mut ledger = f.ledger;
        ledger.bind_metrics(&registry);
        let shared = SharedLedger::new(ledger);
        for i in 0..10u64 {
            shared
                .append(TxRequest::signed(&alice, vec![i as u8], vec!["c".into()], i))
                .unwrap();
        }
        // 8 sealed, 2 unsealed. Sealed jsns hit the snapshot; the tail
        // falls back but stays fully readable.
        assert!(shared.get_tx(3).is_ok());
        assert!(shared.get_tx(9).is_ok());
        assert!(shared.receipt(9).unwrap().is_none(), "tail journal has no receipt yet");
        // ListTx must see the tail journals too (snapshot can't → locked).
        assert_eq!(shared.list_tx("c").len(), 10);
        let text = ledgerdb_telemetry::render(&registry);
        let hits = ledgerdb_telemetry::parse_value(&text, "ledger_snapshot_hit_total").unwrap();
        let falls =
            ledgerdb_telemetry::parse_value(&text, "ledger_snapshot_fallback_total").unwrap();
        assert!(hits >= 1.0, "sealed reads should hit the snapshot:\n{text}");
        assert!(falls >= 3.0, "tail reads should fall back:\n{text}");
        // With the path disabled, everything still answers (locked).
        shared.set_snapshot_reads(false);
        assert!(!shared.snapshot_reads());
        assert!(shared.get_tx(3).is_ok());
        assert_eq!(shared.list_tx("c").len(), 10);
    }

    #[test]
    fn occult_republishes_the_snapshot_immediately() {
        use ledgerdb_crypto::multisig::MultiSignature;
        let f = fixture(4);
        let alice = f.alice.clone();
        let (dba, regulator) = (f.dba.clone(), f.regulator.clone());
        let shared = SharedLedger::new(f.ledger);
        for i in 0..8u64 {
            shared
                .append(TxRequest::signed(&alice, vec![i as u8], vec![], i))
                .unwrap();
        }
        assert!(shared.get_tx(2).is_ok());
        let digest = shared.with_read(|l| l.occult_approval_digest(2));
        let mut ms = MultiSignature::new();
        ms.add(&dba, &digest);
        ms.add(&regulator, &digest);
        shared.occult(2, ms, OccultMode::Async).unwrap();
        // The snapshot path (no lock) must already see the mark, even
        // though no block sealed since.
        let snap = shared.snapshot();
        assert!(snap.is_occulted(2));
        assert!(matches!(shared.get_tx(2), Err(LedgerError::Occulted(2))));
        // Verification is unaffected (retained tx-hash, Protocol 2).
        let anchor = TrustedAnchor::default();
        let (tx_hash, proof) = snap.prove_existence(2, &anchor).unwrap();
        snap.verify_existence(2, &tx_hash, &proof, &anchor, VerifyLevel::Client).unwrap();
    }

    #[test]
    fn handles_share_state() {
        let f = fixture(4);
        let alice = f.alice.clone();
        let a = SharedLedger::new(f.ledger);
        let b = a.clone();
        a.append(TxRequest::signed(&alice, b"x".to_vec(), vec![], 0)).unwrap();
        assert_eq!(b.journal_count(), 1);
    }
}
