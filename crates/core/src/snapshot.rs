//! The lock-free snapshot read path.
//!
//! The sealed prefix of the ledger is immutable by construction: sealed
//! blocks never change, sealed fam epochs never mutate, and a journal's
//! tx-hash is fixed at append time. [`ReadSnapshot`] captures exactly
//! that prefix — sealed block headers and their journals, a frozen fam,
//! the CM-Tree root, the member registry view, and the occult/purge
//! state — so `GetProof`, `Verify`, `GetTx`, `ListTx` and admission
//! checks can be served without touching the `RwLock<LedgerDb>` that a
//! writer may be holding across an fsync.
//!
//! Lifecycle:
//!
//! * **Publish on seal** — [`crate::LedgerDb::try_seal_block`] publishes
//!   a fresh snapshot the instant a block seals, while the write lock is
//!   still held. At that point `pending` is empty, so the frozen fam
//!   covers exactly the sealed journals and its root equals the new
//!   block's `LedgerInfo::journal_root` — the snapshot is internally
//!   consistent with the `LedgerInfo` it names, by construction.
//! * **Republish on occult/purge** — occulting marks a journal before
//!   the occult journal is appended; the mark must block retrieval
//!   immediately, so `occult`/`occult_by_clue`/`purge` republish with a
//!   fresh occult/purge view over the *same* segments and fam (cheap:
//!   Arc clones plus one bitmap copy).
//! * **Unsealed-tail fallback** — queries that reach past the sealed
//!   prefix (a jsn not yet sealed, a `ListTx` while unsealed journals
//!   exist) fall back to the locked path; hit/fallback counters record
//!   which way each read went.
//!
//! Segments are per-block `Arc`s, so each publish costs O(#blocks)
//! pointer copies plus one new segment — history is shared, never
//! recopied.

use crate::ledger::LedgerDb;
use crate::member::MemberRegistry;
use crate::metrics::CoreMetrics;
use crate::types::{Block, Journal, LedgerInfo, Receipt, TxRequest, VerifyLevel};
use crate::LedgerError;
use ledgerdb_accumulator::fam::{FamProof, FamTree, TrustedAnchor};
use ledgerdb_clue::cm_tree::CmRoot;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::keys::{KeyPair, PublicKey};
use ledgerdb_crypto::sync::ArcCell;
use ledgerdb_storage::occult_index::OccultBits;
use ledgerdb_storage::stream::StreamStore;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One sealed block and everything needed to serve reads over it.
pub struct SealedSegment {
    /// The sealed block header (carries the `LedgerInfo` and tx-hashes).
    pub block: Block,
    /// The block's journals, indexed by `jsn - block.first_jsn`.
    pub journals: Vec<Journal>,
    /// Clue → jsns recorded within this block (append order).
    pub clues: BTreeMap<String, Vec<u64>>,
}

/// An immutable, internally consistent view of the sealed ledger prefix.
///
/// Everything a snapshot answers is answered *as of* the last seal (or
/// the last occult/purge republish for the retrieval-blocking state):
/// proofs produced here verify against [`ReadSnapshot::info`], the
/// `LedgerInfo` of the newest sealed block — never against a root that
/// is mid-mutation.
pub struct ReadSnapshot {
    seq: u64,
    published: Instant,
    id: Digest,
    fam_delta: u32,
    lsp_keys: KeyPair,
    registry: MemberRegistry,
    segments: Vec<Arc<SealedSegment>>,
    /// Frozen fam covering exactly the sealed journals. `None` when the
    /// ledger had unsealed journals at capture time (possible only for
    /// the initial snapshot of a recovered ledger with a trailing
    /// unsealed tail) — proofs then fall back to the locked path until
    /// the next seal.
    fam: Option<Arc<FamTree>>,
    /// The newest sealed block's `LedgerInfo` (zero digests pre-seal).
    info: LedgerInfo,
    anchor: TrustedAnchor,
    cm: CmRoot,
    journal_count: u64,
    occult: OccultBits,
    purge_to: u64,
    store: Arc<dyn StreamStore>,
    metrics: CoreMetrics,
}

impl ReadSnapshot {
    /// Capture the sealed prefix of `ledger`, reusing `prev`'s segments
    /// (and its frozen fam when the prefix didn't grow).
    pub(crate) fn build(ledger: &LedgerDb, prev: Option<&Arc<ReadSnapshot>>) -> ReadSnapshot {
        let blocks = &ledger.blocks;
        let mut segments: Vec<Arc<SealedSegment>> = Vec::with_capacity(blocks.len());
        if let Some(prev) = prev {
            let reuse = prev.segments.len().min(blocks.len());
            segments.extend(prev.segments[..reuse].iter().cloned());
        }
        while segments.len() < blocks.len() {
            let block = blocks[segments.len()].clone();
            let lo = block.first_jsn as usize;
            let hi = lo + block.journal_count as usize;
            let journals: Vec<Journal> = ledger.journals[lo..hi].to_vec();
            let mut clues: BTreeMap<String, Vec<u64>> = BTreeMap::new();
            for journal in &journals {
                for clue in &journal.clues {
                    clues.entry(clue.clone()).or_default().push(journal.jsn);
                }
            }
            segments.push(Arc::new(SealedSegment { block, journals, clues }));
        }
        let journal_count = segments
            .last()
            .map(|s| s.block.first_jsn + s.block.journal_count)
            .unwrap_or(0);
        // The frozen fam is only consistent with `info` when it covers
        // exactly the sealed journals. At publish-on-seal time `pending`
        // is empty so this always holds; reuse the previous freeze on
        // occult/purge republishes where the prefix didn't move.
        let fam = if ledger.fam.journal_count() == journal_count {
            match prev {
                Some(p) if p.journal_count == journal_count && p.fam.is_some() => p.fam.clone(),
                _ => Some(Arc::new(ledger.fam.freeze())),
            }
        } else {
            match prev {
                Some(p) if p.journal_count == journal_count => p.fam.clone(),
                _ => None,
            }
        };
        let info = segments.last().map(|s| s.block.info).unwrap_or(LedgerInfo {
            journal_root: Digest::ZERO,
            clue_root: Digest::ZERO,
            state_root: Digest::ZERO,
        });
        ReadSnapshot {
            seq: prev.map(|p| p.seq + 1).unwrap_or(0),
            published: Instant::now(),
            id: ledger.id,
            fam_delta: ledger.config.fam_delta,
            lsp_keys: ledger.lsp_keys.clone(),
            registry: ledger.registry.clone(),
            segments,
            fam,
            info,
            anchor: ledger.fam.anchor(),
            cm: ledger.cm_tree.snapshot_root(),
            journal_count,
            occult: ledger.occult_index.snapshot(),
            purge_to: ledger.pseudo_genesis.as_ref().map(|g| g.purge_to).unwrap_or(0),
            store: Arc::clone(&ledger.store),
            metrics: ledger.metrics.clone(),
        }
    }

    /// Publication sequence number (monotonic per ledger).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Wall time since this snapshot was published.
    pub fn age(&self) -> std::time::Duration {
        self.published.elapsed()
    }

    /// The ledger's identity digest.
    pub fn id(&self) -> Digest {
        self.id
    }

    /// The LSP public key receipts are signed with.
    pub fn lsp_public_key(&self) -> &PublicKey {
        self.lsp_keys.public()
    }

    /// The fam fractal height δ.
    pub fn fam_delta(&self) -> u32 {
        self.fam_delta
    }

    /// Sealed journal count — the snapshot's coverage boundary.
    pub fn journal_count(&self) -> u64 {
        self.journal_count
    }

    /// Sealed block count.
    pub fn block_count(&self) -> u64 {
        self.segments.len() as u64
    }

    /// The newest sealed block's `LedgerInfo` — the roots every proof
    /// served from this snapshot verifies against.
    pub fn info(&self) -> LedgerInfo {
        self.info
    }

    /// The frozen fam commitment (equals `info().journal_root` whenever
    /// the snapshot can prove; see [`ReadSnapshot::can_prove`]).
    pub fn journal_root(&self) -> Digest {
        self.fam.as_ref().map(|f| f.root()).unwrap_or(self.info.journal_root)
    }

    /// The frozen CM-Tree summary.
    pub fn cm_root(&self) -> CmRoot {
        self.cm
    }

    /// The trusted anchor as of capture time.
    pub fn anchor(&self) -> &TrustedAnchor {
        &self.anchor
    }

    /// Journals purged below this jsn (0 when never purged).
    pub fn purge_to(&self) -> u64 {
        self.purge_to
    }

    /// Occulted as of the capture point?
    pub fn is_occulted(&self, jsn: u64) -> bool {
        self.occult.is_marked(jsn)
    }

    /// Does the sealed prefix contain `jsn`?
    pub fn covers(&self, jsn: u64) -> bool {
        jsn < self.journal_count
    }

    /// Can this snapshot produce and client-verify fam proofs? False
    /// only for the initial snapshot of a ledger captured with an
    /// unsealed tail.
    pub fn can_prove(&self) -> bool {
        self.fam.is_some()
    }

    fn segment_for(&self, jsn: u64) -> Option<&SealedSegment> {
        let idx = self
            .segments
            .partition_point(|s| s.block.first_jsn + s.block.journal_count <= jsn);
        self.segments.get(idx).map(Arc::as_ref)
    }

    fn journal(&self, jsn: u64) -> Result<&Journal, LedgerError> {
        self.segment_for(jsn)
            .and_then(|s| s.journals.get((jsn - s.block.first_jsn) as usize))
            .ok_or(LedgerError::UnknownJournal(jsn))
    }

    /// Fetch a journal record, enforcing the frozen occult/purge view
    /// (same semantics as [`LedgerDb::get_tx`]).
    pub fn get_tx(&self, jsn: u64) -> Result<&Journal, LedgerError> {
        if self.occult.is_marked(jsn) {
            return Err(LedgerError::Occulted(jsn));
        }
        if jsn < self.purge_to {
            return Err(LedgerError::Purged(jsn));
        }
        self.journal(jsn)
    }

    /// Fetch a journal's payload from the (lock-free) stream store.
    pub fn get_payload(&self, jsn: u64) -> Result<Vec<u8>, LedgerError> {
        let journal = self.get_tx(jsn)?;
        Ok(self.store.read(journal.stream_index)?)
    }

    /// jsns recorded under `clue` within the sealed prefix.
    pub fn list_tx(&self, clue: &str) -> Vec<u64> {
        let mut out = Vec::new();
        for segment in &self.segments {
            if let Some(jsns) = segment.clues.get(clue) {
                out.extend_from_slice(jsns);
            }
        }
        out
    }

    /// The receipt π_s for a sealed journal, signed on demand with the
    /// snapshot's LSP key — byte-identical to the locked path's receipt
    /// (deterministic ECDSA over identical inputs).
    pub fn receipt(&self, jsn: u64) -> Result<Option<Receipt>, LedgerError> {
        let Some(segment) = self.segment_for(jsn) else {
            return Err(LedgerError::UnknownJournal(jsn));
        };
        let journal = &segment.journals[(jsn - segment.block.first_jsn) as usize];
        let block_hash = segment.block.hash();
        let tx_hash = segment.block.tx_hashes[(jsn - segment.block.first_jsn) as usize];
        let msg = Receipt::signing_digest(
            jsn,
            &journal.request_hash,
            &tx_hash,
            &block_hash,
            journal.timestamp,
        );
        Ok(Some(Receipt {
            jsn,
            request_hash: journal.request_hash,
            tx_hash,
            block_hash,
            timestamp: journal.timestamp,
            lsp_pk: *self.lsp_keys.public(),
            signature: self.lsp_keys.sign(&msg),
        }))
    }

    /// Produce an existence proof against the frozen fam. The proof
    /// verifies against `info().journal_root` — the `LedgerInfo` this
    /// snapshot names — regardless of how far the live ledger has moved.
    pub fn prove_existence(
        &self,
        jsn: u64,
        anchor: &TrustedAnchor,
    ) -> Result<(Digest, FamProof), LedgerError> {
        let _span = self.metrics.proof_seconds.time("ledger_proof");
        self.metrics.proofs.inc();
        let fam = self.fam.as_deref().ok_or(LedgerError::UnknownJournal(jsn))?;
        let segment = self.segment_for(jsn).ok_or(LedgerError::UnknownJournal(jsn))?;
        let tx_hash = segment.block.tx_hashes[(jsn - segment.block.first_jsn) as usize];
        let proof = fam.prove(jsn, anchor)?;
        Ok((tx_hash, proof))
    }

    /// Verify a journal's existence against the frozen state — same
    /// semantics as [`LedgerDb::verify_existence`], with the client
    /// level checking against this snapshot's root.
    pub fn verify_existence(
        &self,
        jsn: u64,
        tx_hash: &Digest,
        proof: &FamProof,
        anchor: &TrustedAnchor,
        level: VerifyLevel,
    ) -> Result<(), LedgerError> {
        let _span = self.metrics.verify_seconds.time("ledger_verify");
        self.metrics.verifies.inc();
        match level {
            VerifyLevel::Server => {
                let journal = self.journal(jsn)?;
                if journal.tx_hash() == *tx_hash {
                    Ok(())
                } else {
                    Err(LedgerError::Accumulator(
                        ledgerdb_accumulator::AccumulatorError::ProofMismatch,
                    ))
                }
            }
            VerifyLevel::Client => {
                let fam = self.fam.as_deref().ok_or(LedgerError::UnknownJournal(jsn))?;
                FamTree::verify(&fam.root(), anchor, tx_hash, proof)?;
                Ok(())
            }
        }
    }

    /// Admission check (membership + π_c) against the frozen registry
    /// view — no lock at all. A member registered after the capture
    /// point is unknown here; callers fall back to the locked registry
    /// for that case.
    pub fn verify_request(&self, request: &TxRequest) -> Result<(), LedgerError> {
        if !self.registry.is_registered(&request.client_pk) {
            return Err(LedgerError::UnknownMember);
        }
        if !request.verify_signature() {
            return Err(LedgerError::BadClientSignature);
        }
        Ok(())
    }

    /// Clone sealed blocks `[from_height, from_height + max)`.
    pub fn blocks_from(&self, from_height: u64, max: u64) -> Vec<Block> {
        let lo = (from_height as usize).min(self.segments.len());
        let hi = lo.saturating_add(max as usize).min(self.segments.len());
        self.segments[lo..hi].iter().map(|s| s.block.clone()).collect()
    }
}

/// The shared state connecting a `LedgerDb` (publisher) to its readers:
/// the current snapshot behind an [`ArcCell`], a lock-free live journal
/// counter (so `ListTx` can tell whether an unsealed tail exists without
/// taking the lock), and the A/B toggle for the snapshot read path.
pub struct SnapshotHub {
    cell: ArcCell<ReadSnapshot>,
    live_journals: AtomicU64,
    snapshot_reads: AtomicBool,
}

impl SnapshotHub {
    pub(crate) fn new(initial: ReadSnapshot) -> Self {
        SnapshotHub {
            cell: ArcCell::new(Arc::new(initial)),
            live_journals: AtomicU64::new(0),
            snapshot_reads: AtomicBool::new(true),
        }
    }

    /// The current snapshot (one Arc clone, never the ledger lock).
    pub fn load(&self) -> Arc<ReadSnapshot> {
        self.cell.load()
    }

    /// Publish a fresh capture of `ledger`'s sealed prefix. Called with
    /// the ledger write lock held; the cell swap itself is lock-free
    /// from the readers' perspective.
    pub(crate) fn publish(&self, ledger: &LedgerDb) {
        let prev = self.cell.load();
        let next = ReadSnapshot::build(ledger, Some(&prev));
        ledger.metrics.snapshot_publishes.inc();
        ledger.metrics.snapshot_age_ms.set(0);
        self.cell.store(Arc::new(next));
    }

    /// Record the live (sealed + unsealed) journal count.
    pub(crate) fn note_journals(&self, count: u64) {
        self.live_journals.store(count, Ordering::Release);
    }

    /// Live journal count as last reported by the kernel.
    pub fn live_journals(&self) -> u64 {
        self.live_journals.load(Ordering::Acquire)
    }

    /// Is the snapshot read path enabled? (A/B toggle; on by default.)
    pub fn reads_enabled(&self) -> bool {
        self.snapshot_reads.load(Ordering::Relaxed)
    }

    /// Toggle the snapshot read path (false forces every read through
    /// the locked path — the benchmark baseline).
    pub fn set_reads_enabled(&self, on: bool) {
        self.snapshot_reads.store(on, Ordering::Relaxed);
    }

    /// Count a read served from the snapshot and refresh the age gauge.
    pub(crate) fn note_hit(&self, snap: &ReadSnapshot) {
        snap.metrics.snapshot_hits.inc();
        snap.metrics.snapshot_age_ms.set(snap.age().as_millis() as i64);
    }

    /// Count a read that had to fall back to the locked path.
    pub(crate) fn note_fallback(&self, snap: &ReadSnapshot) {
        snap.metrics.snapshot_fallbacks.inc();
    }
}
