//! Error type for the ledger kernel.

use ledgerdb_accumulator::AccumulatorError;
use ledgerdb_clue::ClueError;
use ledgerdb_storage::StorageError;
use ledgerdb_timesvc::TimeError;
use std::fmt;

/// Errors surfaced by ledger operations.
#[derive(Debug)]
pub enum LedgerError {
    /// The client's signature π_c failed verification (threat-A defence).
    BadClientSignature,
    /// The submitting member is not registered or its certificate fails.
    UnknownMember,
    /// A jsn was out of range.
    UnknownJournal(u64),
    /// A block height was out of range.
    UnknownBlock(u64),
    /// A gathered multi-signature missed a required signer
    /// (Prerequisites 1 and 2).
    InsufficientSignatures(&'static str),
    /// The journal is occulted — retrieval is blocked (§III-A3).
    Occulted(u64),
    /// The journal was purged.
    Purged(u64),
    /// A purge point was invalid (beyond the ledger or behind a prior
    /// purge).
    BadPurgePoint(u64),
    /// An accumulator proof failed.
    Accumulator(AccumulatorError),
    /// A clue-layer failure.
    Clue(ClueError),
    /// A storage failure.
    Storage(StorageError),
    /// A time-service failure.
    Time(TimeError),
    /// An audit step failed; carries the failing step description.
    AuditFailed(String),
    /// Crash recovery could not rebuild the sealed ledger history.
    Recovery(String),
    /// A receipt failed verification.
    BadReceipt,
    /// A pooled pipeline task panicked while processing this item. The
    /// pool contains the panic (siblings and the ledger are unaffected);
    /// the item is rejected with the panic message.
    TaskFailed(String),
    /// A sharded-deployment failure: an unknown shard id, an epoch
    /// anchor the client cannot verify, or a composed proof that names
    /// state outside the verified mirror.
    Shard(String),
    /// A world-state witness failed verification or was malformed.
    State(String),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::BadClientSignature => write!(f, "client signature rejected"),
            LedgerError::UnknownMember => write!(f, "member not registered with the ledger"),
            LedgerError::UnknownJournal(j) => write!(f, "unknown journal jsn {j}"),
            LedgerError::UnknownBlock(b) => write!(f, "unknown block height {b}"),
            LedgerError::InsufficientSignatures(what) => {
                write!(f, "insufficient signatures for {what}")
            }
            LedgerError::Occulted(j) => write!(f, "journal {j} is occulted"),
            LedgerError::Purged(j) => write!(f, "journal {j} was purged"),
            LedgerError::BadPurgePoint(j) => write!(f, "invalid purge point {j}"),
            LedgerError::Accumulator(e) => write!(f, "accumulator failure: {e}"),
            LedgerError::Clue(e) => write!(f, "clue failure: {e}"),
            LedgerError::Storage(e) => write!(f, "storage failure: {e}"),
            LedgerError::Time(e) => write!(f, "time service failure: {e}"),
            LedgerError::AuditFailed(what) => write!(f, "audit failed: {what}"),
            LedgerError::Recovery(what) => write!(f, "recovery failed: {what}"),
            LedgerError::BadReceipt => write!(f, "receipt failed verification"),
            LedgerError::TaskFailed(what) => write!(f, "pipeline task failed: {what}"),
            LedgerError::Shard(what) => write!(f, "shard failure: {what}"),
            LedgerError::State(what) => write!(f, "state proof failure: {what}"),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<AccumulatorError> for LedgerError {
    fn from(e: AccumulatorError) -> Self {
        LedgerError::Accumulator(e)
    }
}

impl From<ClueError> for LedgerError {
    fn from(e: ClueError) -> Self {
        LedgerError::Clue(e)
    }
}

impl From<StorageError> for LedgerError {
    fn from(e: StorageError) -> Self {
        LedgerError::Storage(e)
    }
}

impl From<TimeError> for LedgerError {
    fn from(e: TimeError) -> Self {
        LedgerError::Time(e)
    }
}
