//! Crash recovery: rebuild the ledger kernel from its durable streams.
//!
//! A durable ledger ([`LedgerDb::with_durability`]) persists two
//! append-only streams:
//!
//! * the **payload stream** — raw transaction payloads, one slot per
//!   journal (digest tombstones after purge/occult);
//! * the **metadata WAL** — one [`WalRecord`] per journal and per sealed
//!   block, written *before* the in-memory kernel mutates.
//!
//! [`recover`] replays the reopened WAL through a fresh kernel, exactly
//! as [`LedgerDb::restore`] replays a snapshot: every journal rebuilds
//! the fam tree, CM-Tree, world state, skip list and occult index; every
//! seal record's roots, tx-hashes and block-chain link are recomputed
//! and cross-checked. The replay invariants are:
//!
//! 1. **Sealed history is sacred.** Any record that fails to replay
//!    *before* the last seal record — missing payload, digest mismatch,
//!    root mismatch — aborts recovery with [`LedgerError::Recovery`];
//!    the ledger's committed commitments cannot be reproduced, and a
//!    silently-shortened ledger would be data loss.
//! 2. **The unsealed tail is best-effort.** Journals after the last seal
//!    never had receipts issued; a record there that fails to replay is
//!    *rejected* (counted and reasoned in the [`RecoveryReport`]), and
//!    the WAL is truncated back to the accepted prefix.
//! 3. **Orphan payloads are trimmed.** A crash between the payload
//!    append and the WAL append leaves a payload no journal references;
//!    recovery truncates the payload stream back to the referenced
//!    prefix.
//! 4. **Promised erasures are redone.** Purged and occulted journals
//!    whose payloads survived the crash (an erase that never reached the
//!    disk) are re-erased — the multi-signature that authorized the
//!    mutation is already on the ledger, so redo is always safe.
//!
//! Everything observed along the way is surfaced in the typed
//! [`RecoveryReport`], so operators (and the torture tests) can tell
//! "clean reopen" from "recovered with losses in the unsealed tail".
//!
//! ## Checkpointed recovery — O(tail), not O(history)
//!
//! When the ledger directory holds a committed checkpoint
//! ([`crate::checkpoint`], written by
//! [`LedgerDb::enable_checkpoints`]), [`open_durable`] loads it first:
//! the checkpoint's segments are deserialized, every root is re-derived
//! and cross-checked, and each covered journal's payload digest is
//! verified against the live payload stream. Only then is the WAL
//! replayed — records at or below the checkpoint's `(journal, block)`
//! watermark are *skipped* (they are already covered; they only exist
//! at all if a crash landed between the checkpoint commit and the WAL
//! reset), and everything after replays through the same four
//! invariants. Replay work is therefore bounded by the post-checkpoint
//! tail, not the ledger's lifetime.

use crate::state::StateCommitment;
use crate::ledger::{LedgerConfig, LedgerDb, PseudoGenesis};
use crate::member::MemberRegistry;
use crate::types::{Block, Journal, JournalKind, LedgerInfo};
use crate::LedgerError;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::wire::{Reader, Wire, WireError, Writer};
use ledgerdb_storage::checkpoint::CheckpointStore;
use ledgerdb_storage::stream::{FileStreamStore, FsyncPolicy, StreamStore};
use ledgerdb_timesvc::clock::Clock;
use std::path::Path;
use std::sync::Arc;

/// One metadata WAL entry.
#[derive(Clone, Debug)]
pub enum WalRecord {
    /// A journal was appended.
    Journal(Journal),
    /// The pending journals were sealed into this block.
    Seal(Block),
}

impl Wire for WalRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            WalRecord::Journal(j) => {
                w.put_u8(0);
                j.encode(w);
            }
            WalRecord::Seal(b) => {
                w.put_u8(1);
                b.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(WalRecord::Journal(Journal::decode(r)?)),
            1 => Ok(WalRecord::Seal(Block::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Borrowed encoding of a `WalRecord::Seal` — byte-identical to
/// `WalRecord::Seal(block.clone()).to_wire()` without cloning the block
/// (and its whole `tx_hashes` vector) just to serialize it. The seal
/// path writes this; decode is unchanged, so recovery replay is
/// oblivious.
pub(crate) fn seal_wire(block: &Block) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(1);
    block.encode(&mut w);
    w.into_bytes()
}

/// What a recovery replay did — every count is observable, nothing is
/// silently absorbed.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Journals replayed into the rebuilt kernel.
    pub journals_replayed: u64,
    /// Seal records whose roots, tx-hashes and chain link re-verified.
    pub blocks_verified: u64,
    /// Replayed journals left pending (appended after the last seal).
    pub unsealed_journals: u64,
    /// Torn-tail bytes the WAL stream trimmed when it was reopened.
    pub wal_truncated_bytes: u64,
    /// Torn-tail bytes the payload stream trimmed when it was reopened.
    pub payload_truncated_bytes: u64,
    /// WAL records in the unsealed tail that failed to replay and were
    /// dropped (the WAL is truncated back to the accepted prefix).
    pub rejected_wal_records: u64,
    /// Why the first rejected record failed, if any were rejected.
    pub rejected_reason: Option<String>,
    /// Payload slots no surviving journal references, trimmed.
    pub orphan_payloads_dropped: u64,
    /// Purged/occulted payloads found un-erased on disk and re-erased.
    pub erases_redone: u64,
    /// Occult marks restored into the occult index.
    pub occult_marks: u64,
    /// Snapshot id of the checkpoint recovery started from, if any.
    pub checkpoint: Option<Digest>,
    /// Journals installed from the checkpoint (not replayed).
    pub checkpoint_journals: u64,
    /// Blocks installed from the checkpoint (not replayed).
    pub checkpoint_blocks: u64,
    /// WAL records below the checkpoint watermark that were skipped
    /// (non-zero only when a crash landed between the checkpoint commit
    /// and the WAL reset).
    pub skipped_wal_records: u64,
}

impl RecoveryReport {
    /// True when the reopen found nothing to repair: no torn tails, no
    /// rejected records, no orphans, no redone erasures.
    pub fn is_clean(&self) -> bool {
        self.wal_truncated_bytes == 0
            && self.payload_truncated_bytes == 0
            && self.rejected_wal_records == 0
            && self.orphan_payloads_dropped == 0
            && self.erases_redone == 0
    }
}

/// Replay a reopened payload stream + metadata WAL into a fresh kernel.
///
/// `config` and `registry` must match the ones the crashed ledger ran
/// with (the ledger id is derived from `config.name`, and replay does
/// not re-verify client certificates). The returned ledger keeps both
/// streams wired for continued durable operation.
pub fn recover(
    config: LedgerConfig,
    registry: MemberRegistry,
    store: Arc<dyn StreamStore>,
    wal: Arc<dyn StreamStore>,
    clock: Arc<dyn Clock>,
) -> Result<(LedgerDb, RecoveryReport), LedgerError> {
    recover_with(config, registry, store, wal, clock, ledgerdb_telemetry::Registry::global())
}

/// [`recover`] with an explicit telemetry registry: the rebuilt ledger
/// is bound to it, and the replay's duration plus every
/// [`RecoveryReport`] counter are folded into it
/// (`ledger_recovery_*`).
pub fn recover_with(
    config: LedgerConfig,
    registry: MemberRegistry,
    store: Arc<dyn StreamStore>,
    wal: Arc<dyn StreamStore>,
    clock: Arc<dyn Clock>,
    telemetry: &ledgerdb_telemetry::Registry,
) -> Result<(LedgerDb, RecoveryReport), LedgerError> {
    recover_with_checkpoint(config, registry, store, wal, clock, telemetry, None)
}

/// [`recover_with`], starting from a committed checkpoint when
/// `checkpoints` holds one. The WAL records the checkpoint covers are
/// skipped by watermark; everything after replays normally.
pub fn recover_with_checkpoint(
    config: LedgerConfig,
    registry: MemberRegistry,
    store: Arc<dyn StreamStore>,
    wal: Arc<dyn StreamStore>,
    clock: Arc<dyn Clock>,
    telemetry: &ledgerdb_telemetry::Registry,
    checkpoints: Option<&CheckpointStore>,
) -> Result<(LedgerDb, RecoveryReport), LedgerError> {
    use ledgerdb_telemetry::trace::{self, TraceContext, TraceId, TraceScope};
    // Recovery runs outside any request, so it mints its own trace: a
    // slow (or failed) replay pins itself into the flight recorder and
    // shows up in `/trace/slow` next to slow requests.
    let root = TraceContext::root(TraceId::mint());
    let root_start_ns = trace::now_ns();
    let result = {
        let _scope = trace::install(TraceScope::Single(root));
        recover_with_checkpoint_inner(
            config,
            registry,
            store,
            wal,
            clock,
            telemetry,
            checkpoints,
        )
    };
    ledgerdb_telemetry::recorder::finish_root(root, "recovery", root_start_ns, result.is_err());
    result
}

fn recover_with_checkpoint_inner(
    config: LedgerConfig,
    registry: MemberRegistry,
    store: Arc<dyn StreamStore>,
    wal: Arc<dyn StreamStore>,
    clock: Arc<dyn Clock>,
    telemetry: &ledgerdb_telemetry::Registry,
    checkpoints: Option<&CheckpointStore>,
) -> Result<(LedgerDb, RecoveryReport), LedgerError> {
    let started = std::time::Instant::now();
    let mut report = RecoveryReport {
        wal_truncated_bytes: wal.truncated_bytes(),
        payload_truncated_bytes: store.truncated_bytes(),
        ..RecoveryReport::default()
    };

    // Decode the WAL front-to-back. Framing-level corruption already
    // failed the stream open; a record that decodes to garbage here is
    // a logical fault, handled by the sealed/unsealed policy below.
    let wal_len = wal.len();
    let mut records = Vec::with_capacity(wal_len as usize);
    let mut decode_failure: Option<(u64, String)> = None;
    for i in 0..wal_len {
        let bytes = wal.read(i).map_err(|e| {
            LedgerError::Recovery(format!("WAL record {i} unreadable: {e}"))
        })?;
        match WalRecord::from_wire(&bytes) {
            Ok(r) => records.push(r),
            Err(e) => {
                decode_failure = Some((i, format!("WAL record {i} undecodable: {e}")));
                break;
            }
        }
    }
    let mut ledger = LedgerDb::with_durability(
        config,
        registry,
        Arc::clone(&store),
        Arc::clone(&wal),
        clock,
    );
    ledger.bind_metrics(telemetry);

    // Checkpointed start: install the verified checkpoint state, then
    // only replay WAL records past its watermark.
    let (ckpt_journals, ckpt_blocks) = match checkpoints {
        Some(ckpt_store) => {
            let load_started = std::time::Instant::now();
            match crate::checkpoint::load_checkpoint(
                ckpt_store,
                &ledger.id,
                ledger.config.fam_delta,
                ledger.config.state_backend,
            )? {
                Some(loaded) => {
                    let watermark =
                        (loaded.manifest.journal_count, loaded.manifest.block_count);
                    report.checkpoint = Some(loaded.snapshot_id);
                    report.checkpoint_journals = watermark.0;
                    report.checkpoint_blocks = watermark.1;
                    install_checkpoint(&mut ledger, loaded)?;
                    crate::metrics::RecoveryMetrics::bind(telemetry)
                        .checkpoint_load_seconds
                        .observe_duration(load_started.elapsed());
                    watermark
                }
                None => (0, 0),
            }
        }
        None => (0, 0),
    };

    // Highest *uncovered* seal index among the decodable records. (A
    // decode failure hides everything after it, but a hidden seal could
    // only follow undecodable journals it would then fail to verify
    // against, so cutting at the decode failure is already the safe
    // prefix. Seals the checkpoint covers don't gate fatality: their
    // history is installed from the checkpoint, not the WAL.)
    let last_seal = records.iter().rposition(|r| match r {
        WalRecord::Seal(b) => b.height >= ckpt_blocks,
        _ => false,
    });

    let mut accepted: usize = 0;
    let mut replay_failure: Option<String> = None;
    let replay_span = ledgerdb_telemetry::trace::StageSpan::begin("recovery_replay");
    'replay: for (idx, record) in records.iter().enumerate() {
        let covered = match record {
            WalRecord::Journal(journal) => journal.jsn < ckpt_journals,
            WalRecord::Seal(block) => block.height < ckpt_blocks,
        };
        if covered {
            // Pre-reset residue: the checkpoint committed but the crash
            // hit before the WAL shrank. The record's effects are
            // already installed (and root-verified) from the segments.
            report.skipped_wal_records += 1;
            accepted = idx + 1;
            continue;
        }
        match record {
            WalRecord::Journal(journal) => {
                if let Err(why) = replay_journal(&mut ledger, journal) {
                    replay_failure = Some(format!("WAL record {idx}: {why}"));
                    break 'replay;
                }
                report.journals_replayed += 1;
            }
            WalRecord::Seal(block) => {
                if let Err(why) = replay_seal(&mut ledger, block) {
                    replay_failure = Some(format!("WAL record {idx}: {why}"));
                    break 'replay;
                }
                report.blocks_verified += 1;
            }
        }
        accepted = idx + 1;
    }
    drop(replay_span);

    if replay_failure.is_some() || decode_failure.is_some() {
        // Invariant 1: a failure at or before the last seal record
        // breaks committed history — abort. A failure after it only
        // costs the unsealed tail — reject and truncate.
        let why = replay_failure
            .or_else(|| decode_failure.as_ref().map(|(_, w)| w.clone()))
            .expect("some failure");
        if last_seal.map_or(false, |s| accepted <= s) {
            return Err(LedgerError::Recovery(format!(
                "sealed history cannot be rebuilt: {why}"
            )));
        }
        report.rejected_wal_records = wal_len - accepted as u64;
        report.rejected_reason = Some(why);
        wal.truncate_records(accepted as u64)?;
    }

    // Invariant 3: trim payload slots no accepted journal references.
    let referenced = ledger
        .journals
        .last()
        .map(|j| j.stream_index + 1)
        .unwrap_or(0);
    if store.len() > referenced {
        report.orphan_payloads_dropped = store.len() - referenced;
        store.truncate_records(referenced)?;
    }

    // Invariant 4: redo promised erasures that never reached the disk.
    let purge_to = ledger.pseudo_genesis().map(|g| g.purge_to).unwrap_or(0);
    for jsn in 0..ledger.journals.len() as u64 {
        let marked = ledger.occult_index.is_marked(jsn);
        if marked {
            report.occult_marks += 1;
        }
        if jsn < purge_to || marked {
            let idx = ledger.journals[jsn as usize].stream_index;
            if !store.is_erased(idx)? {
                store.erase(idx)?;
                report.erases_redone += 1;
            }
        }
    }

    report.unsealed_journals = ledger.pending.len() as u64;
    crate::metrics::RecoveryMetrics::bind(telemetry).record(&report, started.elapsed());
    Ok((ledger, report))
}

/// Install a verified checkpoint into a fresh kernel. The structural
/// and root checks already ran in [`crate::checkpoint::load_checkpoint`];
/// what remains is binding the checkpoint to the *live* payload stream:
/// every covered journal's payload slot must hold the recorded digest
/// (digest tombstones survive erasure, so purged slots still verify).
fn install_checkpoint(
    ledger: &mut LedgerDb,
    loaded: crate::checkpoint::LoadedCheckpoint,
) -> Result<(), LedgerError> {
    for j in &loaded.journals {
        let digest = ledger.store.digest(j.stream_index).map_err(|e| {
            LedgerError::Recovery(format!(
                "checkpoint journal {} references missing payload slot {}: {e}",
                j.jsn, j.stream_index
            ))
        })?;
        if digest != j.payload_digest {
            return Err(LedgerError::Recovery(format!(
                "payload slot {} digest does not match checkpoint journal {}",
                j.stream_index, j.jsn
            )));
        }
    }
    ledger.journals = loaded.journals;
    ledger.blocks = loaded.blocks;
    ledger.tx_hashes = loaded.tx_hashes;
    ledger.fam = loaded.fam;
    ledger.cm_tree = loaded.cm_tree;
    ledger.csl = loaded.csl;
    ledger.world_state = loaded.world_state;
    ledger.occult_index = loaded.occult_index;
    ledger.pseudo_genesis = loaded.pseudo_genesis;
    for (jsn, payload) in &loaded.survival {
        ledger.survival.pin(*jsn, payload);
    }
    ledger.pending.clear();
    Ok(())
}

/// Replay one journal record into the kernel (mirrors the snapshot
/// restore path). Returns a human-readable reason on failure so the
/// caller can apply the sealed/unsealed policy.
fn replay_journal(ledger: &mut LedgerDb, journal: &Journal) -> Result<(), String> {
    let jsn = ledger.journals.len() as u64;
    if journal.jsn != jsn {
        return Err(format!("journal carries jsn {}, expected {jsn}", journal.jsn));
    }
    // The payload must exist in the payload stream with the recorded
    // digest (the digest tombstone survives erasure, so erased slots
    // still verify).
    let digest = ledger
        .store
        .digest(journal.stream_index)
        .map_err(|e| format!("payload slot {} missing: {e}", journal.stream_index))?;
    if digest != journal.payload_digest {
        return Err(format!(
            "payload slot {} digest does not match journal {jsn}",
            journal.stream_index
        ));
    }

    // Pseudo genesis is captured *before* the purge journal lands,
    // mirroring the original purge() execution order.
    if let JournalKind::Purge { purge_to, .. } = &journal.kind {
        let snapshot = LedgerInfo {
            journal_root: ledger.fam.root(),
            clue_root: ledger.cm_tree.root(),
            state_root: ledger.world_state.commitment_root(),
        };
        let genesis_hash = crate::ledger::pseudo_genesis_hash(&ledger.id, *purge_to, &snapshot);
        ledger.pseudo_genesis = Some(PseudoGenesis {
            purge_to: *purge_to,
            purge_journal_jsn: jsn,
            snapshot,
            genesis_hash,
        });
    }
    // Occult marks re-block retrieval immediately.
    match &journal.kind {
        JournalKind::Occult { target, .. } => {
            ledger.occult_index.mark(*target);
        }
        JournalKind::OccultClue { targets, .. } => {
            for &t in targets {
                ledger.occult_index.mark(t);
            }
        }
        _ => {}
    }

    let tx_hash = journal.tx_hash();
    ledger.tx_hashes.push(tx_hash);
    ledger.fam.append(tx_hash);
    for clue in &journal.clues {
        ledger.cm_tree.append(clue, jsn, tx_hash);
        ledger.csl.append(clue, jsn);
        ledger
            .world_state
            .insert_kv(ledgerdb_clue::clue_key(clue).as_bytes(), journal.payload_digest.0.to_vec());
    }
    ledger.journals.push(journal.clone());
    ledger.pending.push(jsn);
    Ok(())
}

/// Replay one seal record: recompute the roots, tx-hashes and chain
/// link from the rebuilt kernel and cross-check the recorded block.
fn replay_seal(ledger: &mut LedgerDb, block: &Block) -> Result<(), String> {
    if ledger.pending.is_empty() {
        return Err(format!("seal of block {} with no pending journals", block.height));
    }
    if block.height != ledger.blocks.len() as u64 {
        return Err(format!(
            "seal height {} out of order (expected {})",
            block.height,
            ledger.blocks.len()
        ));
    }
    if block.first_jsn != ledger.pending[0]
        || block.journal_count != ledger.pending.len() as u64
    {
        return Err(format!("seal of block {} covers the wrong journals", block.height));
    }
    let expected_roots = LedgerInfo {
        journal_root: ledger.fam.root(),
        clue_root: ledger.cm_tree.root(),
        state_root: ledger.world_state.commitment_root(),
    };
    if block.info != expected_roots {
        return Err(format!("block {} roots do not replay", block.height));
    }
    let prev = ledger.blocks.last().map(|b| b.hash()).unwrap_or_else(|| {
        ledger
            .pseudo_genesis
            .as_ref()
            .map(|g| g.genesis_hash)
            .unwrap_or(Digest::ZERO)
    });
    if block.prev_block_hash != prev {
        return Err(format!("block {} chain link broken", block.height));
    }
    let tx_hashes: Vec<Digest> =
        ledger.pending.iter().map(|&j| ledger.tx_hashes[j as usize]).collect();
    if tx_hashes != block.tx_hashes {
        return Err(format!("block {} tx hashes do not replay", block.height));
    }
    ledger.pending.clear();
    ledger.blocks.push(block.clone());
    Ok(())
}

/// File names used by [`open_durable`] inside its directory.
pub const PAYLOAD_FILE: &str = "payload.log";
/// See [`PAYLOAD_FILE`].
pub const WAL_FILE: &str = "wal.log";
/// Subdirectory holding the checkpoint store, when checkpoints are
/// enabled ([`LedgerDb::enable_checkpoints`]).
pub const CHECKPOINT_DIR: &str = "checkpoints";

/// Open (or create) a durable ledger rooted at `dir`: `payload.log`
/// holds the payload stream, `wal.log` the metadata WAL. Fresh
/// directories yield an empty ledger and a clean report; existing ones
/// are recovered by replay.
pub fn open_durable(
    config: LedgerConfig,
    registry: MemberRegistry,
    dir: &Path,
    policy: FsyncPolicy,
    clock: Arc<dyn Clock>,
) -> Result<(LedgerDb, RecoveryReport), LedgerError> {
    open_durable_with(config, registry, dir, policy, clock, ledgerdb_telemetry::Registry::global())
}

/// [`open_durable`] with an explicit telemetry registry: both stream
/// stores, the recovery replay, and the resulting ledger all record
/// into `telemetry` instead of the global registry.
pub fn open_durable_with(
    config: LedgerConfig,
    registry: MemberRegistry,
    dir: &Path,
    policy: FsyncPolicy,
    clock: Arc<dyn Clock>,
    telemetry: &ledgerdb_telemetry::Registry,
) -> Result<(LedgerDb, RecoveryReport), LedgerError> {
    std::fs::create_dir_all(dir).map_err(|e| LedgerError::Storage(e.into()))?;
    let payload_path = dir.join(PAYLOAD_FILE);
    let wal_path = dir.join(WAL_FILE);
    let mut payload_store = if payload_path.exists() {
        FileStreamStore::open_with(&payload_path, policy)?
    } else {
        FileStreamStore::create_with(&payload_path, policy)?
    };
    payload_store.bind_metrics(telemetry);
    let mut wal_store = if wal_path.exists() {
        FileStreamStore::open_with(&wal_path, policy)?
    } else {
        FileStreamStore::create_with(&wal_path, policy)?
    };
    wal_store.bind_metrics(telemetry);
    let store: Arc<dyn StreamStore> = Arc::new(payload_store);
    let wal: Arc<dyn StreamStore> = Arc::new(wal_store);
    // A committed checkpoint bounds the replay to the post-checkpoint
    // tail. Only a durable `HEAD` counts — a half-written checkpoint
    // directory without one is ignored (and later garbage collected).
    let ckpt_dir = dir.join(CHECKPOINT_DIR);
    if ckpt_dir.join("HEAD").exists() {
        let ckpt_store = CheckpointStore::open(&ckpt_dir)?;
        recover_with_checkpoint(
            config,
            registry,
            store,
            wal,
            clock,
            telemetry,
            Some(&ckpt_store),
        )
    } else {
        recover_with(config, registry, store, wal, clock, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::MemberRegistry;
    use crate::types::TxRequest;
    use ledgerdb_crypto::ca::{CertificateAuthority, Role};
    use ledgerdb_crypto::keys::KeyPair;
    use ledgerdb_crypto::multisig::MultiSignature;
    use ledgerdb_timesvc::clock::SimClock;

    struct Members {
        dba: KeyPair,
        alice: KeyPair,
    }

    fn members() -> (MemberRegistry, Members) {
        let ca = CertificateAuthority::from_seed(b"rec-ca");
        let dba = KeyPair::from_seed(b"rec-dba");
        let regulator = KeyPair::from_seed(b"rec-reg");
        let alice = KeyPair::from_seed(b"rec-alice");
        let mut registry = MemberRegistry::new(*ca.public_key());
        registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
        registry.register(ca.issue("regulator", Role::Regulator, regulator.public())).unwrap();
        registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
        (registry, Members { dba, alice })
    }

    fn config(block_size: u64) -> LedgerConfig {
        LedgerConfig {
            block_size,
            fam_delta: 4,
            name: "recovery-test".into(),
            state_backend: Default::default(),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ledgerdb-rec-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn tx(keys: &KeyPair, payload: &[u8], clues: &[&str], nonce: u64) -> TxRequest {
        TxRequest::signed(
            keys,
            payload.to_vec(),
            clues.iter().map(|s| s.to_string()).collect(),
            nonce,
        )
    }

    #[test]
    fn seal_wire_matches_cloned_wal_record_encoding() {
        // The borrowed seal encoding must stay byte-identical to the
        // clone-then-encode form it replaced, or recovery replay breaks.
        let dir = temp_dir("seal-wire");
        let (registry, m) = members();
        let (mut ledger, _) = open_durable(
            config(2),
            registry,
            &dir,
            FsyncPolicy::Never,
            Arc::new(SimClock::new()),
        )
        .unwrap();
        for i in 0..6u64 {
            ledger.append(tx(&m.alice, &i.to_be_bytes(), &["w"], i)).unwrap();
        }
        assert!(ledger.block_count() >= 3);
        for block in ledger.blocks() {
            assert_eq!(
                seal_wire(block),
                WalRecord::Seal(block.clone()).to_wire(),
                "seal_wire diverged for block {}",
                block.height
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_round_trip_preserves_roots() {
        let dir = temp_dir("roundtrip");
        let (registry, m) = members();
        let (journal_root, clue_root, state_root, blocks) = {
            let (mut ledger, report) = open_durable(
                config(4),
                registry.clone(),
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap();
            assert!(report.is_clean());
            for i in 0..10u64 {
                ledger.append(tx(&m.alice, &i.to_be_bytes(), &["clue"], i)).unwrap();
            }
            assert!(ledger.durability_error().is_none());
            (ledger.journal_root(), ledger.clue_root(), ledger.state_root(), ledger.block_count())
        };
        let (ledger, report) = open_durable(
            config(4),
            registry,
            &dir,
            FsyncPolicy::Always,
            Arc::new(SimClock::new()),
        )
        .unwrap();
        assert!(report.is_clean(), "clean reopen: {report:?}");
        assert_eq!(report.journals_replayed, 10);
        assert_eq!(report.blocks_verified, blocks);
        assert_eq!(report.unsealed_journals, 2); // 10 appends, block size 4
        assert_eq!(ledger.journal_root(), journal_root);
        assert_eq!(ledger.clue_root(), clue_root);
        assert_eq!(ledger.state_root(), state_root);
        assert_eq!(ledger.get_payload(3).unwrap(), 3u64.to_be_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_are_durable_under_never_policy() {
        // The service-layer configuration: per-append fsync disabled,
        // durability supplied by the batch barrier. Everything the batch
        // acked must survive a reopen, cleanly.
        let dir = temp_dir("group-commit");
        let (registry, m) = members();
        let (root, blocks) = {
            let (mut ledger, _) = open_durable(
                config(4),
                registry.clone(),
                &dir,
                FsyncPolicy::Never,
                Arc::new(SimClock::new()),
            )
            .unwrap();
            let batch: Vec<TxRequest> =
                (0..10u64).map(|i| tx(&m.alice, &i.to_be_bytes(), &["c"], i)).collect();
            let results = ledger.append_batch(batch).unwrap();
            assert!(results.iter().all(|r| r.is_ok()));
            (ledger.journal_root(), ledger.block_count())
        };
        let (ledger, report) = open_durable(
            config(4),
            registry,
            &dir,
            FsyncPolicy::Never,
            Arc::new(SimClock::new()),
        )
        .unwrap();
        assert!(report.is_clean(), "batched appends reopen clean: {report:?}");
        assert_eq!(report.journals_replayed, 10);
        assert_eq!(ledger.journal_root(), root);
        assert_eq!(ledger.block_count(), blocks);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_replays_purge_and_redoes_erasure() {
        let dir = temp_dir("purge");
        let (registry, m) = members();
        {
            let (mut ledger, _) = open_durable(
                config(4),
                registry.clone(),
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap();
            for i in 0..8u64 {
                ledger.append(tx(&m.alice, &i.to_be_bytes(), &["c"], i)).unwrap();
            }
            let digest = ledger.purge_approval_digest(4);
            let mut ms = MultiSignature::new();
            ms.add(&m.dba, &digest);
            ms.add(&m.alice, &digest);
            ledger.purge(4, ms, &[], false).unwrap();
        }
        let (ledger, report) = open_durable(
            config(4),
            registry,
            &dir,
            FsyncPolicy::Always,
            Arc::new(SimClock::new()),
        )
        .unwrap();
        assert_eq!(report.erases_redone, 0, "purge erasures were durable");
        let genesis = ledger.pseudo_genesis().unwrap();
        assert_eq!(genesis.purge_to, 4);
        assert!(matches!(ledger.get_tx(0), Err(LedgerError::Purged(0))));
        assert!(ledger.get_payload(5).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_drops_only_unsealed_journals() {
        let dir = temp_dir("torn-wal");
        let (registry, m) = members();
        {
            let (mut ledger, _) = open_durable(
                config(4),
                registry.clone(),
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap();
            for i in 0..6u64 {
                ledger.append(tx(&m.alice, &i.to_be_bytes(), &[], i)).unwrap();
            }
        }
        // Tear the WAL inside its final record (journal 5, unsealed).
        let wal_path = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 11).unwrap();
        drop(f);

        let (ledger, report) = open_durable(
            config(4),
            registry,
            &dir,
            FsyncPolicy::Always,
            Arc::new(SimClock::new()),
        )
        .unwrap();
        assert!(report.wal_truncated_bytes > 0);
        assert_eq!(report.journals_replayed, 5);
        assert_eq!(report.blocks_verified, 1);
        // The torn journal's payload is an orphan, trimmed.
        assert_eq!(report.orphan_payloads_dropped, 1);
        assert_eq!(ledger.journal_count(), 5);
        assert_eq!(ledger.block_count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealed_history_damage_is_fatal() {
        let dir = temp_dir("sealed-damage");
        let (registry, m) = members();
        {
            let (mut ledger, _) = open_durable(
                config(2),
                registry.clone(),
                &dir,
                FsyncPolicy::Always,
                Arc::new(SimClock::new()),
            )
            .unwrap();
            for i in 0..4u64 {
                ledger.append(tx(&m.alice, &i.to_be_bytes(), &[], i)).unwrap();
            }
        }
        // Zap a *payload* in the sealed region: stream CRC still passes
        // (we rewrite a valid record) but the journal digest check fails.
        let store = FileStreamStore::open(&dir.join(PAYLOAD_FILE)).unwrap();
        store.truncate_records(1).unwrap();
        store.append(b"forged payload").unwrap();
        // Restore the slot count so the WAL journals still reference
        // existing slots (2..4 are simply gone now, also fatal).
        drop(store);

        match open_durable(config(2), registry, &dir, FsyncPolicy::Always, Arc::new(SimClock::new()))
        {
            Err(LedgerError::Recovery(_)) => {}
            Err(e) => panic!("expected Recovery error, got: {e}"),
            Ok(_) => panic!("recovery must refuse damaged sealed history"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_record_round_trip() {
        let (registry, m) = members();
        let mut ledger = LedgerDb::new(config(4), registry);
        ledger.append(tx(&m.alice, b"p", &["c"], 0)).unwrap();
        ledger.seal_block();
        let j = WalRecord::Journal(ledger.get_tx(0).unwrap().clone());
        let decoded = WalRecord::from_wire(&j.to_wire()).unwrap();
        assert!(matches!(decoded, WalRecord::Journal(ref d) if d.jsn == 0));
        let s = WalRecord::Seal(ledger.blocks()[0].clone());
        let decoded = WalRecord::from_wire(&s.to_wire()).unwrap();
        assert!(matches!(decoded, WalRecord::Seal(ref b) if b.height == 0));
        assert!(WalRecord::from_wire(&[9, 9, 9]).is_err());
    }
}
