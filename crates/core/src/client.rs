//! The distrusting client / external auditor (§II-C verification manner 2).
//!
//! A [`LedgerClient`] never trusts the LSP. It *synchronizes* by
//! downloading sealed blocks, checking the block-hash chain, and
//! replaying every journal tx-hash through its **own fam replica** — so
//! each accepted block extends the client's trusted anchor exactly the
//! way §III-A1 prescribes ("before a new trusted anchor is set, all
//! earlier ledger data must be cryptographically verified"). After a
//! sync, the client can verify receipts, existence proofs and clue
//! proofs entirely from local trusted state plus wire-encoded proof
//! objects.

use crate::state::StateProof;
use crate::types::{Block, Receipt};
use crate::LedgerError;
use ledgerdb_accumulator::fam::{FamProof, FamTree, TrustedAnchor};
use ledgerdb_clue::cm_tree::{ClueProof, CmTree};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::keys::PublicKey;
use ledgerdb_crypto::wire::Wire;
use std::collections::HashSet;

/// Outcome of one synchronization pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Blocks accepted this pass.
    pub blocks_accepted: u64,
    /// Journals replayed into the fam replica this pass.
    pub journals_replayed: u64,
}

/// A stateful, distrusting ledger client.
pub struct LedgerClient {
    /// The LSP key receipts must be signed with.
    lsp_key: PublicKey,
    /// fam fractal height (must match the server's configuration).
    fam_delta: u32,
    /// The client's own fam replica over verified tx-hashes.
    fam: FamTree,
    /// Verified block-hash set (receipt binding).
    block_hashes: HashSet<Digest>,
    /// Hash of the newest verified block.
    tip: Digest,
    /// Number of verified blocks.
    height: u64,
    /// Trusted clue root from the newest verified block.
    clue_root: Digest,
    /// Trusted world-state root from the newest verified block.
    state_root: Digest,
}

impl LedgerClient {
    /// Create a client trusting only `lsp_key` for receipts; `fam_delta`
    /// must match the ledger's configuration.
    pub fn new(lsp_key: PublicKey, fam_delta: u32) -> Self {
        LedgerClient {
            lsp_key,
            fam_delta,
            fam: FamTree::new(fam_delta),
            block_hashes: HashSet::new(),
            tip: Digest::ZERO,
            height: 0,
            clue_root: Digest::ZERO,
            state_root: Digest::ZERO,
        }
    }

    /// Verified block count.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Journals replayed so far.
    pub fn verified_journals(&self) -> u64 {
        self.fam.journal_count()
    }

    /// The client's own trusted journal root.
    pub fn journal_root(&self) -> Digest {
        self.fam.root()
    }

    /// The trusted clue root (from the newest verified block).
    pub fn clue_root(&self) -> Digest {
        self.clue_root
    }

    /// The trusted world-state root.
    pub fn state_root(&self) -> Digest {
        self.state_root
    }

    /// The trusted anchor induced by the verified prefix (fam-aoa).
    pub fn anchor(&self) -> TrustedAnchor {
        self.fam.anchor()
    }

    /// Synchronize from a block feed. The feed may be the full chain or
    /// any suffix of it starting at or below the verified height (the
    /// remote block-download API serves suffixes): already-verified
    /// heights are skipped, and the first new block must sit exactly at
    /// the verified height. Rejects on the first inconsistency; earlier
    /// accepted blocks remain trusted.
    pub fn sync(&mut self, blocks: &[Block]) -> Result<SyncReport, LedgerError> {
        let mut report = SyncReport::default();
        let verified = self.height;
        for block in blocks.iter().filter(|b| b.height >= verified) {
            if block.height != self.height {
                return Err(LedgerError::AuditFailed(format!(
                    "sync: expected block height {}, got {}",
                    self.height, block.height
                )));
            }
            if self.height > 0 && block.prev_block_hash != self.tip {
                return Err(LedgerError::AuditFailed(format!(
                    "sync: block {} does not link to verified tip",
                    block.height
                )));
            }
            if block.journal_count as usize != block.tx_hashes.len() {
                return Err(LedgerError::AuditFailed(format!(
                    "sync: block {} journal count mismatch",
                    block.height
                )));
            }
            if block.first_jsn != self.fam.journal_count() {
                return Err(LedgerError::AuditFailed(format!(
                    "sync: block {} does not start at the next jsn",
                    block.height
                )));
            }
            // Replay the journal digests through the local fam replica and
            // require the server's recorded root to re-derive.
            for tx_hash in &block.tx_hashes {
                self.fam.append(*tx_hash);
            }
            if self.fam.root() != block.info.journal_root {
                return Err(LedgerError::AuditFailed(format!(
                    "sync: block {} journal root does not replay",
                    block.height
                )));
            }
            let hash = block.hash();
            self.block_hashes.insert(hash);
            self.tip = hash;
            self.height += 1;
            self.clue_root = block.info.clue_root;
            self.state_root = block.info.state_root;
            report.blocks_accepted += 1;
            report.journals_replayed += block.journal_count;
        }
        Ok(report)
    }

    /// Verify an LSP receipt: signature, key identity, and that its block
    /// hash belongs to the verified chain.
    pub fn verify_receipt(&self, receipt: &Receipt) -> Result<(), LedgerError> {
        if receipt.lsp_pk != self.lsp_key {
            return Err(LedgerError::BadReceipt);
        }
        if !receipt.verify() {
            return Err(LedgerError::BadReceipt);
        }
        if !self.block_hashes.contains(&receipt.block_hash) {
            return Err(LedgerError::BadReceipt);
        }
        Ok(())
    }

    /// Verify a wire-encoded receipt.
    pub fn verify_receipt_bytes(&self, bytes: &[u8]) -> Result<Receipt, LedgerError> {
        let receipt = Receipt::from_wire(bytes)
            .map_err(|_| LedgerError::BadReceipt)?;
        self.verify_receipt(&receipt)?;
        Ok(receipt)
    }

    /// Verify an existence proof against the client's own root/anchor.
    pub fn verify_existence(
        &self,
        tx_hash: &Digest,
        proof: &FamProof,
    ) -> Result<(), LedgerError> {
        let anchor = self.fam.anchor();
        FamTree::verify(&self.fam.root(), &anchor, tx_hash, proof)?;
        Ok(())
    }

    /// Verify a wire-encoded existence proof.
    pub fn verify_existence_bytes(
        &self,
        tx_hash: &Digest,
        proof_bytes: &[u8],
    ) -> Result<(), LedgerError> {
        let proof = FamProof::from_wire(proof_bytes).map_err(|_| {
            LedgerError::Accumulator(ledgerdb_accumulator::AccumulatorError::MalformedProof(
                "undecodable fam proof",
            ))
        })?;
        self.verify_existence(tx_hash, &proof)
    }

    /// Verify a clue (N-lineage) proof against the trusted clue root.
    pub fn verify_clue(&self, proof: &ClueProof) -> Result<(), LedgerError> {
        CmTree::verify_client(&self.clue_root, proof)?;
        Ok(())
    }

    /// Verify a wire-encoded clue proof; returns it for inspection.
    pub fn verify_clue_bytes(&self, bytes: &[u8]) -> Result<ClueProof, LedgerError> {
        let proof = ClueProof::from_wire(bytes).map_err(|_| {
            LedgerError::Clue(ledgerdb_clue::ClueError::MalformedProof("undecodable clue proof"))
        })?;
        self.verify_clue(&proof)?;
        Ok(proof)
    }

    /// Verify a state-commitment proof (inclusion or absence, either
    /// backend) against the trusted state root from the newest verified
    /// block. Returns the proven latest-payload digest bytes, or `None`
    /// for verified absence.
    pub fn verify_state<'a>(
        &self,
        proof: &'a StateProof,
    ) -> Result<Option<&'a [u8]>, LedgerError> {
        crate::state::verify_state_proof(&self.state_root, proof)
    }

    /// Verify a wire-encoded state proof; returns it for inspection.
    pub fn verify_state_bytes(&self, bytes: &[u8]) -> Result<StateProof, LedgerError> {
        let proof = StateProof::from_wire(bytes)
            .map_err(|_| LedgerError::State("undecodable state proof".into()))?;
        self.verify_state(&proof)?;
        Ok(proof)
    }

    /// The fam fractal height this client replays with.
    pub fn fam_delta(&self) -> u32 {
        self.fam_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::tests::fixture;
    use crate::types::TxRequest;
    use ledgerdb_crypto::sha256;

    fn synced_world() -> (crate::ledger::tests::Fixture, LedgerClient) {
        let mut f = fixture(4);
        for i in 0..20u64 {
            let req = TxRequest::signed(
                &f.alice,
                format!("doc-{i}").into_bytes(),
                vec![format!("c{}", i % 2)],
                i,
            );
            f.ledger.append(req).unwrap();
        }
        f.ledger.seal_block();
        let mut client = LedgerClient::new(*f.ledger.lsp_public_key(), f.ledger.fam_delta());
        client.sync(f.ledger.blocks()).unwrap();
        (f, client)
    }

    #[test]
    fn sync_replays_to_identical_root() {
        let (f, client) = synced_world();
        assert_eq!(client.journal_root(), f.ledger.journal_root());
        assert_eq!(client.clue_root(), f.ledger.clue_root());
        assert_eq!(client.verified_journals(), 20);
        assert_eq!(client.height(), 5);
    }

    #[test]
    fn incremental_sync() {
        let (mut f, mut client) = synced_world();
        for i in 100..108u64 {
            let req = TxRequest::signed(&f.alice, vec![i as u8], vec![], i);
            f.ledger.append(req).unwrap();
        }
        f.ledger.seal_block();
        let report = client.sync(f.ledger.blocks()).unwrap();
        assert_eq!(report.blocks_accepted, 2);
        assert_eq!(report.journals_replayed, 8);
        assert_eq!(client.journal_root(), f.ledger.journal_root());
    }

    #[test]
    fn client_verifies_receipts_and_proofs_over_wire() {
        let (f, client) = synced_world();
        // Receipt.
        let receipt = f.ledger.receipt(7).unwrap().unwrap();
        client.verify_receipt_bytes(&receipt.to_wire()).unwrap();
        // Existence (proof generated against the client's own anchor).
        let anchor = client.anchor();
        let (tx_hash, proof) = f.ledger.prove_existence(7, &anchor).unwrap();
        client.verify_existence_bytes(&tx_hash, &proof.to_wire()).unwrap();
        // Clue lineage.
        let clue_proof = f.ledger.prove_clue("c1").unwrap();
        let decoded = client.verify_clue_bytes(&clue_proof.to_wire()).unwrap();
        assert_eq!(decoded.entries.len(), 10);
    }

    #[test]
    fn forged_block_feed_rejected() {
        let (f, _) = synced_world();
        let mut fresh = LedgerClient::new(*f.ledger.lsp_public_key(), f.ledger.fam_delta());
        let mut blocks = f.ledger.blocks().to_vec();
        // A malicious LSP swaps one tx hash (threat-B tampering).
        blocks[2].tx_hashes[1] = sha256(b"tampered journal");
        let err = fresh.sync(&blocks).unwrap_err();
        assert!(matches!(err, LedgerError::AuditFailed(_)));
        // Earlier blocks were still accepted.
        assert_eq!(fresh.height(), 2);
    }

    #[test]
    fn forged_chain_link_rejected() {
        let (f, _) = synced_world();
        let mut fresh = LedgerClient::new(*f.ledger.lsp_public_key(), f.ledger.fam_delta());
        let mut blocks = f.ledger.blocks().to_vec();
        blocks[3].prev_block_hash = sha256(b"forked history");
        assert!(fresh.sync(&blocks).is_err());
    }

    #[test]
    fn receipt_from_unknown_block_rejected() {
        let (f, client) = synced_world();
        let mut receipt = f.ledger.receipt(3).unwrap().unwrap();
        receipt.block_hash = sha256(b"phantom block");
        // Signature breaks too, but the block check alone must reject.
        assert!(client.verify_receipt(&receipt).is_err());
    }

    #[test]
    fn stale_client_rejects_proofs_against_newer_state() {
        let (mut f, client) = synced_world();
        for i in 200..204u64 {
            let req = TxRequest::signed(&f.alice, vec![i as u8], vec![], i);
            f.ledger.append(req).unwrap();
        }
        f.ledger.seal_block();
        // A proof against the server's *new* root fails the stale client.
        let server_anchor = f.ledger.anchor();
        let (tx_hash, proof) = f.ledger.prove_existence(21, &server_anchor).unwrap();
        assert!(client.verify_existence(&tx_hash, &proof).is_err());
    }

    #[test]
    fn undecodable_bytes_rejected() {
        let (_, client) = synced_world();
        assert!(client.verify_receipt_bytes(b"junk").is_err());
        assert!(client.verify_existence_bytes(&sha256(b"x"), b"junk").is_err());
        assert!(client.verify_clue_bytes(b"junk").is_err());
    }
}
