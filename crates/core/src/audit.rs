//! The Dasein-complete audit (§V).
//!
//! "A Dasein-complete ledger audit passes the entire verification for all
//! Dasein dimensions, i.e., what, when, who" (Definition 1). The audit
//! takes every journal — including purge, occult and time journals — plus
//! the latest LSP receipt, and runs the paper's six steps:
//!
//! 1. prove purge-journal validity (Prerequisite 1 signatures, Π₁) and
//!    occult-journal validity (Prerequisite 2 signatures, Π₂);
//! 2. locate the time journals, prove their signatures, and partition the
//!    blocks into the ranges each one covers;
//! 3. replay each range start-to-end, re-deriving every journal's tx-hash
//!    (using the retained hash for occulted journals, Protocol 2) and the
//!    fam accumulator roots (π_i);
//! 4. verify block-boundary digests across adjacent blocks (π'_i);
//! 5. verify the LSP's latest receipt (Π₃);
//! 6. conjoin: any sub-proof failure terminates the audit as failed.

use crate::ledger::LedgerDb;
use crate::types::JournalKind;
use crate::LedgerError;
use ledgerdb_accumulator::fam::FamTree;
use ledgerdb_crypto::ca::Role;
use ledgerdb_crypto::keys::PublicKey;
use ledgerdb_timesvc::clock::Timestamp;

/// What the auditor trusts going in.
#[derive(Clone, Debug, Default)]
pub struct AuditConfig {
    /// TSA public keys the auditor accepts for time-journal attestations.
    pub tsa_keys: Vec<PublicKey>,
    /// The T-Ledger's signing key, when time journals carry notary
    /// receipts.
    pub tledger_key: Option<PublicKey>,
    /// Optional temporal predicate: only audit blocks sealed at or before
    /// this timestamp ("audit all transactions committed before …").
    pub until: Option<Timestamp>,
}

/// The audit's result evidence.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    pub journals_checked: u64,
    pub blocks_checked: u64,
    pub signatures_checked: u64,
    pub purge_journals: u64,
    pub occult_journals: u64,
    pub time_journals: u64,
    /// Block-range partitions induced by the time journals (step 2).
    pub time_ranges: Vec<(u64, u64)>,
}

/// Run the full Dasein-complete audit over a ledger.
///
/// Returns the evidence report, or the first failing step as an error
/// (the early-termination semantics of §V).
pub fn audit_ledger(ledger: &LedgerDb, config: &AuditConfig) -> Result<AuditReport, LedgerError> {
    let mut report = AuditReport::default();

    let block_limit = match config.until {
        Some(t) => ledger
            .blocks()
            .iter()
            .take_while(|b| b.timestamp <= t)
            .count(),
        None => ledger.blocks().len(),
    };
    let blocks = &ledger.blocks()[..block_limit];
    let journal_limit = blocks
        .last()
        .map(|b| b.first_jsn + b.journal_count)
        .unwrap_or(0);

    // ------------------------------------------------------------------
    // Step 1: purge (Π₁) and occult (Π₂) journal validity.
    // ------------------------------------------------------------------
    for jsn in 0..journal_limit {
        let journal = ledger
            .journal_unchecked(jsn)
            .ok_or(LedgerError::UnknownJournal(jsn))?;
        match &journal.kind {
            JournalKind::Purge { purge_to, approvals } => {
                let digest = ledger.purge_approval_digest(*purge_to);
                let mut required = ledger.registry().keys_with_role(Role::Dba);
                for pk in ledger.members_before(*purge_to) {
                    if !required.contains(&pk) {
                        required.push(pk);
                    }
                }
                if !approvals.covers(&digest, &required) {
                    return Err(LedgerError::AuditFailed(format!(
                        "purge journal {jsn}: Prerequisite 1 signatures invalid"
                    )));
                }
                report.signatures_checked += approvals.len() as u64;
                report.purge_journals += 1;
            }
            JournalKind::Occult { target, approvals } => {
                let digest = ledger.occult_approval_digest(*target);
                let mut required = ledger.registry().keys_with_role(Role::Dba);
                required.extend(ledger.registry().keys_with_role(Role::Regulator));
                if !approvals.covers(&digest, &required) {
                    return Err(LedgerError::AuditFailed(format!(
                        "occult journal {jsn}: Prerequisite 2 signatures invalid"
                    )));
                }
                report.signatures_checked += approvals.len() as u64;
                report.occult_journals += 1;
            }
            JournalKind::OccultClue { clue, approvals, .. } => {
                let digest = ledger.occult_clue_approval_digest(clue);
                let mut required = ledger.registry().keys_with_role(Role::Dba);
                required.extend(ledger.registry().keys_with_role(Role::Regulator));
                if !approvals.covers(&digest, &required) {
                    return Err(LedgerError::AuditFailed(format!(
                        "occult-by-clue journal {jsn}: Prerequisite 2 signatures invalid"
                    )));
                }
                report.signatures_checked += approvals.len() as u64;
                report.occult_journals += 1;
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Step 2: locate and prove time journals; partition block ranges.
    // ------------------------------------------------------------------
    let mut time_block_bounds = Vec::new();
    for (height, block) in blocks.iter().enumerate() {
        for jsn in block.first_jsn..block.first_jsn + block.journal_count {
            let journal = ledger
                .journal_unchecked(jsn)
                .ok_or(LedgerError::UnknownJournal(jsn))?;
            if let JournalKind::Time(receipt) = &journal.kind {
                receipt.verify().map_err(|_| {
                    LedgerError::AuditFailed(format!("time journal {jsn}: bad notary signature"))
                })?;
                if let Some(expected) = &config.tledger_key {
                    if receipt.tledger_key != *expected {
                        return Err(LedgerError::AuditFailed(format!(
                            "time journal {jsn}: unexpected T-Ledger key"
                        )));
                    }
                }
                report.signatures_checked += 1;
                report.time_journals += 1;
                time_block_bounds.push(height as u64);
            }
        }
    }
    // Ranges ℬ₁..ℬₙ: (start, end] block spans between time journals; the
    // tail after the last time journal is audited as a final open range.
    let mut start = 0u64;
    for &bound in &time_block_bounds {
        report.time_ranges.push((start, bound + 1));
        start = bound + 1;
    }
    if start < blocks.len() as u64 {
        report.time_ranges.push((start, blocks.len() as u64));
    }

    // ------------------------------------------------------------------
    // Step 3: replay each range (𝒱): re-derive tx-hashes, client
    // signatures (who) and fam roots, block by block.
    // ------------------------------------------------------------------
    let mut replay_fam = FamTree::new(ledger.fam_delta());
    for block in blocks {
        for (offset, jsn) in (block.first_jsn..block.first_jsn + block.journal_count).enumerate() {
            let journal = ledger
                .journal_unchecked(jsn)
                .ok_or(LedgerError::UnknownJournal(jsn))?;
            // Protocol 2: for an occulted journal the retained hash stands
            // in for the payload; the record's recomputed tx-hash IS that
            // retained hash, so replay is uniform.
            let tx_hash = journal.tx_hash();
            if block.tx_hashes.get(offset) != Some(&tx_hash) {
                return Err(LedgerError::AuditFailed(format!(
                    "journal {jsn}: tx-hash mismatch against block {}",
                    block.height
                )));
            }
            // who: verify π_c on client journals.
            if let (Some(pk), Some(sig)) = (&journal.client_pk, &journal.client_sig) {
                if !pk.verify(&journal.request_hash, sig) {
                    return Err(LedgerError::AuditFailed(format!(
                        "journal {jsn}: client signature π_c invalid"
                    )));
                }
                report.signatures_checked += 1;
            }
            replay_fam.append(tx_hash);
            report.journals_checked += 1;
        }
        // what: the block's recorded accumulator root must re-derive.
        if replay_fam.root() != block.info.journal_root {
            return Err(LedgerError::AuditFailed(format!(
                "block {}: fam root mismatch on replay",
                block.height
            )));
        }
        report.blocks_checked += 1;
    }

    // ------------------------------------------------------------------
    // Step 4: block boundary verification (𝒱').
    // ------------------------------------------------------------------
    for pair in blocks.windows(2) {
        if pair[1].prev_block_hash != pair[0].hash() {
            return Err(LedgerError::AuditFailed(format!(
                "block boundary {} -> {}: link broken",
                pair[0].height, pair[1].height
            )));
        }
        if pair[1].first_jsn != pair[0].first_jsn + pair[0].journal_count {
            return Err(LedgerError::AuditFailed(format!(
                "block boundary {} -> {}: jsn continuity broken",
                pair[0].height, pair[1].height
            )));
        }
    }

    // ------------------------------------------------------------------
    // Step 5: latest LSP receipt (Π₃).
    // ------------------------------------------------------------------
    if journal_limit > 0 {
        // Find the newest sealed journal with a receipt.
        let mut found = false;
        for jsn in (0..journal_limit).rev() {
            if let Some(receipt) = ledger.receipt(jsn)? {
                if !receipt.verify() || receipt.lsp_pk != *ledger.lsp_public_key() {
                    return Err(LedgerError::AuditFailed(format!(
                        "latest receipt (jsn {jsn}): LSP signature invalid"
                    )));
                }
                report.signatures_checked += 1;
                found = true;
                break;
            }
        }
        if !found {
            return Err(LedgerError::AuditFailed(
                "no sealed receipt available for step 5".to_string(),
            ));
        }
    }

    // Step 6 is the conjunction — reaching here means every π held.
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::tests::fixture;
    use crate::ledger::OccultMode;
    use crate::types::TxRequest;
    use ledgerdb_crypto::multisig::MultiSignature;
    use ledgerdb_timesvc::clock::Clock;
    use ledgerdb_timesvc::tledger::{TLedger, TLedgerConfig};
    use ledgerdb_timesvc::tsa::TsaPool;
    use std::sync::Arc;

    fn populated(block_size: u64, n: u64) -> crate::ledger::tests::Fixture {
        let mut f = fixture(block_size);
        for i in 0..n {
            let req = TxRequest::signed(
                &f.alice,
                format!("payload-{i}").into_bytes(),
                vec![format!("clue-{}", i % 3)],
                i,
            );
            f.ledger.append(req).unwrap();
        }
        f.ledger.seal_block();
        f
    }

    #[test]
    fn clean_ledger_audits_green() {
        let f = populated(4, 20);
        let report = audit_ledger(&f.ledger, &AuditConfig::default()).unwrap();
        assert_eq!(report.journals_checked, 20);
        assert_eq!(report.blocks_checked, 5);
        assert!(report.signatures_checked >= 21); // 20 π_c + receipt.
    }

    #[test]
    fn audit_covers_occult_and_purge() {
        let mut f = populated(4, 12);
        // Occult journal 3.
        let od = f.ledger.occult_approval_digest(3);
        let mut oms = MultiSignature::new();
        oms.add(&f.dba, &od);
        oms.add(&f.regulator, &od);
        f.ledger.occult(3, oms, OccultMode::Sync).unwrap();
        // Purge to 2.
        let pd = f.ledger.purge_approval_digest(2);
        let mut pms = MultiSignature::new();
        pms.add(&f.dba, &pd);
        pms.add(&f.alice, &pd);
        f.ledger.purge(2, pms, &[], false).unwrap();
        f.ledger.seal_block();

        let report = audit_ledger(&f.ledger, &AuditConfig::default()).unwrap();
        assert_eq!(report.occult_journals, 1);
        assert_eq!(report.purge_journals, 1);
    }

    #[test]
    fn audit_verifies_time_journals_and_partitions() {
        let mut f = populated(4, 8);
        let clock: Arc<dyn Clock> = Arc::clone(f.ledger.clock());
        let pool = Arc::new(TsaPool::new(1, Arc::clone(&clock)));
        let tledger = TLedger::new(TLedgerConfig::default(), clock, pool);
        f.ledger.anchor_time(&tledger).unwrap();
        for i in 100..104u64 {
            let req = TxRequest::signed(&f.alice, b"x".to_vec(), vec![], i);
            f.ledger.append(req).unwrap();
        }
        f.ledger.anchor_time(&tledger).unwrap();
        f.ledger.seal_block();

        let config = AuditConfig {
            tledger_key: Some(*tledger.public_key()),
            ..Default::default()
        };
        let report = audit_ledger(&f.ledger, &config).unwrap();
        assert_eq!(report.time_journals, 2);
        assert!(report.time_ranges.len() >= 2);
    }

    #[test]
    fn audit_detects_wrong_tledger_key() {
        let mut f = populated(4, 4);
        let clock: Arc<dyn Clock> = Arc::clone(f.ledger.clock());
        let pool = Arc::new(TsaPool::new(1, Arc::clone(&clock)));
        let tledger = TLedger::new(TLedgerConfig::default(), clock, pool);
        f.ledger.anchor_time(&tledger).unwrap();
        f.ledger.seal_block();

        let rogue = ledgerdb_crypto::keys::KeyPair::from_seed(b"rogue-tledger");
        let config = AuditConfig { tledger_key: Some(*rogue.public()), ..Default::default() };
        assert!(matches!(
            audit_ledger(&f.ledger, &config),
            Err(LedgerError::AuditFailed(_))
        ));
    }

    #[test]
    fn temporal_predicate_limits_scope() {
        let mut f = populated(2, 4); // 2 blocks at t=0.
        // Advance simulated time, then add more.
        let clock = Arc::clone(f.ledger.clock());
        let sim = clock;
        // The fixture uses SimClock at 0; the ledger's blocks all carry 0.
        // Audit "until 0" must still include them.
        let _ = sim;
        for i in 50..54u64 {
            let req = TxRequest::signed(&f.alice, b"late".to_vec(), vec![], i);
            f.ledger.append(req).unwrap();
        }
        f.ledger.seal_block();
        let all = audit_ledger(&f.ledger, &AuditConfig::default()).unwrap();
        let limited = audit_ledger(
            &f.ledger,
            &AuditConfig { until: Some(Timestamp(0)), ..Default::default() },
        )
        .unwrap();
        assert!(limited.blocks_checked <= all.blocks_checked);
    }

    #[test]
    fn empty_ledger_audits_trivially() {
        let f = fixture(4);
        let report = audit_ledger(&f.ledger, &AuditConfig::default()).unwrap();
        assert_eq!(report.journals_checked, 0);
        assert_eq!(report.blocks_checked, 0);
    }
}
