//! Deterministic property-style case generation (in-repo `proptest`
//! replacement).
//!
//! The seed repo's property tests depended on `proptest`, which cannot
//! be fetched in the offline build environment. This module keeps the
//! tests' spirit — many generated inputs per property — with fully
//! deterministic, seed-derived cases: every run explores the same
//! inputs, and a failure names the case index and seed so it reproduces
//! immediately.
//!
//! ```ignore
//! use ledgerdb_bench::cases::{run_cases, Gen};
//!
//! run_cases("sha256 is deterministic", 64, |g: &mut Gen| {
//!     let data = g.bytes(0..=1024);
//!     assert_eq!(sha256(&data), sha256(&data));
//! });
//! ```

use crate::XorShift;
use std::ops::RangeInclusive;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-case input generator: a seeded [`XorShift`] with convenience
/// samplers.
pub struct Gen {
    rng: XorShift,
}

impl Gen {
    pub fn new(seed: u64) -> Self {
        Gen { rng: XorShift::new(seed) }
    }

    /// Raw 64-bit sample.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.below(bound)
    }

    /// Uniform in an inclusive range.
    pub fn in_range(&mut self, range: RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        lo + self.rng.below(hi - lo + 1)
    }

    /// Uniform usize in an inclusive range.
    pub fn usize_in(&mut self, range: RangeInclusive<usize>) -> usize {
        self.in_range(*range.start() as u64..=*range.end() as u64) as usize
    }

    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A byte string whose length is sampled from `len`.
    pub fn bytes(&mut self, len: RangeInclusive<usize>) -> Vec<u8> {
        let n = self.usize_in(len);
        self.rng.payload(n)
    }

    /// A 32-byte array (digest/scalar material).
    pub fn array32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for chunk in out.chunks_mut(8) {
            chunk.copy_from_slice(&self.rng.next_u64().to_le_bytes());
        }
        out
    }

    /// An ASCII identifier (clue names, keys).
    pub fn ident(&mut self, len: RangeInclusive<usize>) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_";
        let n = self.usize_in(len);
        (0..n)
            .map(|_| ALPHABET[self.rng.below(ALPHABET.len() as u64) as usize] as char)
            .collect()
    }

    /// Pick one element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.rng.below(items.len() as u64) as usize]
    }

    /// Deterministic Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Derive a case seed from the property label and case index (FNV-1a
/// over the label, mixed with the index — stable across runs and
/// platforms).
pub fn case_seed(label: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h | 1 // XorShift needs a non-zero seed.
}

/// Run `count` deterministic cases of a property. A panicking case is
/// re-raised with the case index and seed so it can be replayed in
/// isolation with `Gen::new(seed)`.
pub fn run_cases(label: &str, count: u64, mut property: impl FnMut(&mut Gen)) {
    for case in 0..count {
        let seed = case_seed(label, case);
        let mut gen = Gen::new(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut gen)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property '{label}' failed at case {case} (seed {seed:#018x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(case_seed("p", 3), case_seed("p", 3));
        assert_ne!(case_seed("p", 3), case_seed("p", 4));
        assert_ne!(case_seed("p", 3), case_seed("q", 3));
    }

    #[test]
    fn generators_respect_bounds() {
        let mut g = Gen::new(99);
        for _ in 0..200 {
            assert!(g.in_range(5..=9) >= 5 && g.in_range(5..=9) <= 9);
            let b = g.bytes(3..=17);
            assert!((3..=17).contains(&b.len()));
            let s = g.ident(1..=8);
            assert!((1..=8).contains(&s.len()));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Gen::new(7);
        let mut v: Vec<u64> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn failing_case_reports_seed() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_cases("always-fails", 3, |_| panic!("boom"));
        }));
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().unwrap().clone(),
            Ok(()) => panic!("expected failure"),
        };
        assert!(msg.contains("case 0"));
        assert!(msg.contains("seed"));
        assert!(msg.contains("boom"));
    }
}
