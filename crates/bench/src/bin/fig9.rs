//! Figure 9: clue verification — CM-Tree vs ccMPT.
//!
//! 9(a): verification throughput on a randomly selected clue while the
//! total ledger grows (clues carry 1–100 journals each, ~1KB journals).
//! Expected shape: CM-Tree flat (~independent of ledger size); ccMPT
//! decays because each of the clue's m journals needs an O(log n) proof
//! against the global accumulator (paper: 16×→33× gap).
//!
//! 9(b): verification latency on a fixed ledger while the selected clue's
//! entry count grows 10→10000. Expected: both grow with m, ccMPT ~linearly
//! steeper (paper: 0.8ms vs 6.1ms at 10 entries; 24× gap at 10000).

use ledgerdb_bench::{banner, fmt_latency, fmt_tps, row, throughput, timed, XorShift};
use ledgerdb_clue::ccmpt::CcMpt;
use ledgerdb_clue::cm_tree::CmTree;
use ledgerdb_accumulator::shrubs::leaf_pos;
use ledgerdb_accumulator::tim::TimAccumulator;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::hash_leaf;

/// Build both indexes over the same workload: `n` journals spread over
/// clues of 1..=100 entries; returns (cm, cc, ledger acc, digests, clues).
fn build(n: u64) -> (CmTree, CcMpt, TimAccumulator, Vec<Digest>, Vec<String>) {
    let mut rng = XorShift::new(99);
    let mut cm = CmTree::new();
    let mut cc = CcMpt::new();
    let mut ledger = TimAccumulator::new();
    let mut digests = Vec::with_capacity(n as usize);
    let mut clues = Vec::new();
    let mut jsn = 0u64;
    while jsn < n {
        let clue = format!("clue-{}", clues.len());
        let entries = 1 + rng.below(100);
        for _ in 0..entries.min(n - jsn) {
            let d = hash_leaf(&jsn.to_be_bytes());
            cm.append(&clue, jsn, d);
            cc.append(&clue, jsn);
            ledger.append(d);
            digests.push(d);
            jsn += 1;
        }
        clues.push(clue);
    }
    (cm, cc, ledger, digests, clues)
}

fn main() {
    let sizes: Vec<u64> = std::env::args()
        .nth(1)
        .map(|s| vec![s.parse().expect("size argument")])
        .unwrap_or_else(|| vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18]);

    banner("Fig 9(a): clue verification TPS vs ledger size (paper: CM-Tree ~1K flat, ccMPT decays)");
    for &n in &sizes {
        let (cm, cc, ledger, digests, clues) = build(n);
        let cm_root = cm.root();
        let cc_root = cc.root();
        let ledger_root = ledger.root();
        let mut rng = XorShift::new(5);
        let samples = 200u64;
        let picks: Vec<&String> =
            (0..samples).map(|_| &clues[rng.below(clues.len() as u64) as usize]).collect();

        let cm_tps = throughput(samples, || {
            for clue in &picks {
                let proof = cm.prove_all(clue).unwrap();
                CmTree::verify_client(&cm_root, &proof).unwrap();
            }
        });
        let cc_tps = throughput(samples, || {
            for clue in &picks {
                let proof = cc
                    .prove(clue, &ledger, |j| digests.get(j as usize).copied())
                    .unwrap();
                CcMpt::verify(&cc_root, &ledger_root, &proof).unwrap();
            }
        });
        row(
            &format!("n=2^{}", n.trailing_zeros()),
            &[
                ("CM-Tree", fmt_tps(cm_tps)),
                ("ccMPT", fmt_tps(cc_tps)),
                ("speedup", format!("{:.1}x", cm_tps / cc_tps)),
            ],
        );
    }

    banner("Fig 9(b): clue verification latency vs entries (fixed ledger; paper: 0.8ms vs 6.1ms @10)");
    // Fixed background ledger ~2^17 journals plus the target clue.
    let background = 1u64 << 17;
    for &entries in &[10u64, 100, 1_000, 10_000] {
        let mut cm = CmTree::new();
        let mut cc = CcMpt::new();
        let mut ledger = TimAccumulator::new();
        let mut digests = Vec::new();
        // Background clues.
        let mut rng = XorShift::new(11);
        let mut jsn = 0u64;
        let mut c = 0u64;
        while jsn < background {
            let clue = format!("bg-{c}");
            let k = 1 + rng.below(100);
            for _ in 0..k.min(background - jsn) {
                let d = hash_leaf(&jsn.to_be_bytes());
                cm.append(&clue, jsn, d);
                cc.append(&clue, jsn);
                ledger.append(d);
                digests.push(d);
                jsn += 1;
            }
            c += 1;
        }
        // Target clue with the requested entry count.
        for _ in 0..entries {
            let d = hash_leaf(&jsn.to_be_bytes());
            cm.append("target", jsn, d);
            cc.append("target", jsn);
            ledger.append(d);
            digests.push(d);
            jsn += 1;
        }
        let cm_root = cm.root();
        let cc_root = cc.root();
        let ledger_root = ledger.root();
        let reps = 20;
        let (_, cm_secs) = timed(|| {
            for _ in 0..reps {
                let proof = cm.prove_all("target").unwrap();
                CmTree::verify_client(&cm_root, &proof).unwrap();
            }
        });
        let (_, cc_secs) = timed(|| {
            for _ in 0..reps {
                let proof = cc
                    .prove("target", &ledger, |j| digests.get(j as usize).copied())
                    .unwrap();
                CcMpt::verify(&cc_root, &ledger_root, &proof).unwrap();
            }
        });
        row(
            &format!("{entries}-entries clue"),
            &[
                ("CM-Tree", fmt_latency(cm_secs / reps as f64)),
                ("ccMPT", fmt_latency(cc_secs / reps as f64)),
                ("speedup", format!("{:.1}x", cc_secs / cm_secs)),
            ],
        );
    }

    banner("Fig 9 aux: proof sizes (digests carried) for a 100-entry clue");
    let (cm, cc, ledger, digests, clues) = build(1 << 16);
    let target = clues
        .iter()
        .max_by_key(|c| cm.entry_count(c))
        .expect("clues exist");
    let cm_proof = cm.prove_all(target).unwrap();
    let cc_proof = cc
        .prove(target, &ledger, |j| digests.get(j as usize).copied())
        .unwrap();
    let _ = leaf_pos(0);
    row(
        &format!("clue with {} entries", cm.entry_count(target)),
        &[
            ("CM-Tree", cm_proof.len().to_string()),
            ("ccMPT", cc_proof.len().to_string()),
        ],
    );
}
