//! Durability and recovery profiling helper (not a paper figure).
//!
//! Measures the price of the crash-consistent stream layer: durable
//! append throughput under each fsync policy, and recovery replay
//! throughput (journals/second to rebuild the full kernel — fam tree,
//! CM-Tree, MPT, block verification — from the reopened WAL).

use ledgerdb_bench::{banner, fmt_latency, fmt_tps, row, throughput, timed, XorShift};
use ledgerdb_core::recovery::open_durable;
use ledgerdb_core::{LedgerConfig, MemberRegistry, TxRequest};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_storage::FsyncPolicy;
use ledgerdb_timesvc::clock::SimClock;
use std::path::PathBuf;
use std::sync::Arc;

fn registry() -> (MemberRegistry, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"prof-rec-ca");
    let alice = KeyPair::from_seed(b"prof-rec-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, alice)
}

fn config() -> LedgerConfig {
    LedgerConfig { block_size: 256, fam_delta: 15, name: "prof-recovery".into() }
}

fn requests(alice: &KeyPair, n: u64, payload_len: usize) -> Vec<TxRequest> {
    let mut rng = XorShift::new(42);
    (0..n)
        .map(|i| TxRequest::signed(alice, rng.payload(payload_len), vec![format!("c{}", i % 64)], i))
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ledgerdb-prof-rec-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Build a durable ledger with `n` journals at `dir` and drop it.
fn build(dir: &PathBuf, n: u64, policy: FsyncPolicy) {
    let (registry, alice) = registry();
    let (mut ledger, _) =
        open_durable(config(), registry, dir, policy, Arc::new(SimClock::new())).unwrap();
    for r in requests(&alice, n, 256) {
        ledger.append_preverified(r).unwrap();
    }
    ledger.seal_block();
    assert!(ledger.durability_error().is_none());
}

fn main() {
    banner("Durable append (256 B payloads, block size 256)");
    let n = 1u64 << 12;
    for (label, policy) in [
        ("fsync=always", FsyncPolicy::Always),
        ("fsync=every-64", FsyncPolicy::EveryN(64)),
        ("fsync=never", FsyncPolicy::Never),
        ("in-memory (no WAL)", FsyncPolicy::Never), // Baseline below.
    ] {
        let tps = if label.starts_with("in-memory") {
            let mut bench = ledgerdb_bench::BenchLedger::new(256, 15);
            let reqs = bench.signed_requests(n, 256, |i| Some(format!("c{}", i % 64)));
            throughput(n, || bench.populate(reqs))
        } else {
            let dir = temp_dir(label);
            let (registry, alice) = registry();
            let (mut ledger, _) =
                open_durable(config(), registry, &dir, policy, Arc::new(SimClock::new())).unwrap();
            let reqs = requests(&alice, n, 256);
            let tps = throughput(n, || {
                for r in reqs {
                    ledger.append_preverified(r).unwrap();
                }
                ledger.seal_block();
            });
            drop(ledger);
            std::fs::remove_dir_all(&dir).ok();
            tps
        };
        row(label, &[("append", fmt_tps(tps))]);
    }

    banner("Recovery replay (reopen + rebuild + verify)");
    for shift in [10u32, 12, 14] {
        let n = 1u64 << shift;
        let dir = temp_dir(&format!("replay-{n}"));
        build(&dir, n, FsyncPolicy::Never);
        let (registry, _) = registry();
        let ((ledger, report), secs) = timed(|| {
            open_durable(config(), registry, &dir, FsyncPolicy::Always, Arc::new(SimClock::new()))
                .unwrap()
        });
        assert!(report.is_clean(), "clean build must reopen clean: {report:?}");
        assert_eq!(ledger.journal_count(), n);
        row(
            &format!("n={n}"),
            &[
                ("replay", fmt_tps(n as f64 / secs)),
                ("total", fmt_latency(secs)),
                ("blocks", report.blocks_verified.to_string()),
            ],
        );
        drop(ledger);
        std::fs::remove_dir_all(&dir).ok();
    }
}
