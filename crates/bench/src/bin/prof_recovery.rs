//! Durability and recovery profiling helper (not a paper figure).
//!
//! Measures the price of the crash-consistent stream layer: durable
//! append throughput under each fsync policy, recovery replay
//! throughput (journals/second to rebuild the full kernel — fam tree,
//! CM-Tree, MPT, block verification — from the reopened WAL), and the
//! checkpointed-restart A/B: the same history reopened with and without
//! a committed checkpoint, hard-asserting that the checkpointed restart
//! replays O(tail) WAL records instead of O(history).
//!
//! ```text
//! prof_recovery [--checkpoint-ab] [--json PATH]
//! ```
//!
//! `--checkpoint-ab` runs only the gating A/B (verify.sh's stage);
//! `--json PATH` additionally writes the A/B cells as a JSON record
//! (the `results/BENCH_recovery.json` convention).

use ledgerdb_bench::{banner, fmt_latency, fmt_tps, row, throughput, timed, XorShift};
use ledgerdb_core::recovery::{open_durable, CHECKPOINT_DIR};
use ledgerdb_core::{LedgerConfig, MemberRegistry, TxRequest};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_storage::checkpoint::{CheckpointStore, CkptIo};
use ledgerdb_storage::FsyncPolicy;
use ledgerdb_timesvc::clock::SimClock;
use std::path::PathBuf;
use std::sync::Arc;

fn registry() -> (MemberRegistry, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"prof-rec-ca");
    let alice = KeyPair::from_seed(b"prof-rec-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, alice)
}

fn config() -> LedgerConfig {
    LedgerConfig { block_size: 256, fam_delta: 15, name: "prof-recovery".into(), state_backend: Default::default() }
}

fn requests(alice: &KeyPair, n: u64, payload_len: usize) -> Vec<TxRequest> {
    let mut rng = XorShift::new(42);
    (0..n)
        .map(|i| TxRequest::signed(alice, rng.payload(payload_len), vec![format!("c{}", i % 64)], i))
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ledgerdb-prof-rec-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Build a durable ledger with `n` journals at `dir` and drop it.
fn build(dir: &PathBuf, n: u64, policy: FsyncPolicy) {
    let (registry, alice) = registry();
    let (mut ledger, _) =
        open_durable(config(), registry, dir, policy, Arc::new(SimClock::new())).unwrap();
    for r in requests(&alice, n, 256) {
        ledger.append_preverified(r).unwrap();
    }
    ledger.seal_block();
    assert!(ledger.durability_error().is_none());
}

/// The gating A/B: one history reopened twice — once from the raw WAL
/// (O(history) replay), once from a committed checkpoint plus an
/// unsealed tail (O(tail) replay). Asserts the bound; returns the two
/// cells for the optional JSON record.
fn checkpoint_ab(n: u64, tail: u64) -> String {
    banner(&format!("Checkpointed restart A/B (history {n}, tail {tail})"));
    let (registry, alice) = registry();

    // Cell A: no checkpoint — the restart replays the whole history.
    let dir_a = temp_dir("ab-wal");
    build(&dir_a, n, FsyncPolicy::Never);
    let ((ledger_a, report_a), secs_a) = timed(|| {
        open_durable(config(), registry.clone(), &dir_a, FsyncPolicy::Always, Arc::new(SimClock::new()))
            .unwrap()
    });
    assert!(report_a.checkpoint.is_none());
    assert_eq!(report_a.journals_replayed, n, "the baseline replays everything");
    assert_eq!(ledger_a.journal_count(), n);
    let root_a = ledger_a.journal_root();
    drop(ledger_a);
    std::fs::remove_dir_all(&dir_a).ok();

    // Cell B: the same history, checkpointed at the seal boundary, then
    // `tail` more journals appended on top (one more sealed block).
    let dir_b = temp_dir("ab-ckpt");
    {
        let (mut ledger, _) = open_durable(
            config(),
            registry.clone(),
            &dir_b,
            FsyncPolicy::Never,
            Arc::new(SimClock::new()),
        )
        .unwrap();
        for r in requests(&alice, n, 256) {
            ledger.append_preverified(r).unwrap();
        }
        ledger.seal_block();
        let store = Arc::new(CheckpointStore::open(&dir_b.join(CHECKPOINT_DIR)).unwrap());
        ledger.enable_checkpoints(store, Arc::new(CkptIo::new()), u64::MAX);
        let id = ledger.checkpoint_now().expect("checkpoint commits");
        assert!(id.is_some(), "the ledger sits at a seal boundary");
        let mut rng = XorShift::new(97);
        for i in 0..tail {
            let r = TxRequest::signed(
                &alice,
                rng.payload(256),
                vec![format!("c{}", i % 64)],
                n + i,
            );
            ledger.append_preverified(r).unwrap();
        }
        assert!(ledger.durability_error().is_none());
    }
    let ((ledger_b, report_b), secs_b) = timed(|| {
        open_durable(config(), registry.clone(), &dir_b, FsyncPolicy::Always, Arc::new(SimClock::new()))
            .unwrap()
    });
    // The gate: the checkpointed restart's replay work is bounded by
    // the post-checkpoint tail, not the history length.
    assert!(report_b.checkpoint.is_some(), "restart must load the checkpoint: {report_b:?}");
    assert_eq!(report_b.checkpoint_journals, n, "checkpoint covers the history");
    assert!(
        report_b.journals_replayed <= tail,
        "O(tail) bound violated: replayed {} of a {}-journal tail ({report_b:?})",
        report_b.journals_replayed,
        tail
    );
    assert_eq!(ledger_b.journal_count(), n + tail);
    // The checkpointed restart reproduces the exact accumulator state
    // the baseline rebuilt by replay (same first n journals).
    assert_eq!(
        ledger_b.blocks()[..(n / 256) as usize]
            .last()
            .map(|b| b.info.journal_root),
        Some(root_a),
        "checkpointed restart must agree with full replay on the shared prefix"
    );
    drop(ledger_b);
    std::fs::remove_dir_all(&dir_b).ok();

    row(
        "wal-only",
        &[
            ("replayed", report_a.journals_replayed.to_string()),
            ("restart", fmt_latency(secs_a)),
        ],
    );
    row(
        "checkpointed",
        &[
            ("replayed", report_b.journals_replayed.to_string()),
            ("restart", fmt_latency(secs_b)),
        ],
    );
    println!(
        "prof_recovery: checkpointed restart replays {}/{} records ({}x less work), {:.2}x wall",
        report_b.journals_replayed,
        report_a.journals_replayed,
        report_a.journals_replayed.max(1) / report_b.journals_replayed.max(1),
        secs_a / secs_b.max(1e-9),
    );

    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!(
        "{{\n  \"bench\": \"checkpointed_restart\",\n  \"recorded_epoch\": {epoch},\n  \
         \"command\": \"prof_recovery --checkpoint-ab\",\n  \"history_journals\": {n},\n  \
         \"tail_journals\": {tail},\n  \"cells\": [\n    {{ \"mode\": \"wal-only\", \
         \"journals_replayed\": {}, \"restart_s\": {:.6} }},\n    {{ \"mode\": \"checkpointed\", \
         \"journals_replayed\": {}, \"restart_s\": {:.6} }}\n  ]\n}}\n",
        report_a.journals_replayed, secs_a, report_b.journals_replayed, secs_b,
    )
}

fn main() {
    let mut ab_only = false;
    let mut json_path: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--checkpoint-ab" => ab_only = true,
            "--json" => {
                json_path = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                })))
            }
            _ => {
                eprintln!("usage: prof_recovery [--checkpoint-ab] [--json PATH]");
                std::process::exit(2);
            }
        }
    }
    if ab_only {
        let json = checkpoint_ab(1 << 13, 256);
        if let Some(path) = json_path {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).ok();
            }
            std::fs::write(&path, json).expect("write A/B record");
            println!("prof_recovery: wrote {}", path.display());
        }
        return;
    }

    banner("Durable append (256 B payloads, block size 256)");
    let n = 1u64 << 12;
    for (label, policy) in [
        ("fsync=always", FsyncPolicy::Always),
        ("fsync=every-64", FsyncPolicy::EveryN(64)),
        ("fsync=never", FsyncPolicy::Never),
        ("in-memory (no WAL)", FsyncPolicy::Never), // Baseline below.
    ] {
        let tps = if label.starts_with("in-memory") {
            let mut bench = ledgerdb_bench::BenchLedger::new(256, 15);
            let reqs = bench.signed_requests(n, 256, |i| Some(format!("c{}", i % 64)));
            throughput(n, || bench.populate(reqs))
        } else {
            let dir = temp_dir(label);
            let (registry, alice) = registry();
            let (mut ledger, _) =
                open_durable(config(), registry, &dir, policy, Arc::new(SimClock::new())).unwrap();
            let reqs = requests(&alice, n, 256);
            let tps = throughput(n, || {
                for r in reqs {
                    ledger.append_preverified(r).unwrap();
                }
                ledger.seal_block();
            });
            drop(ledger);
            std::fs::remove_dir_all(&dir).ok();
            tps
        };
        row(label, &[("append", fmt_tps(tps))]);
    }

    banner("Recovery replay (reopen + rebuild + verify)");
    for shift in [10u32, 12, 14] {
        let n = 1u64 << shift;
        let dir = temp_dir(&format!("replay-{n}"));
        build(&dir, n, FsyncPolicy::Never);
        let (registry, _) = registry();
        let ((ledger, report), secs) = timed(|| {
            open_durable(config(), registry, &dir, FsyncPolicy::Always, Arc::new(SimClock::new()))
                .unwrap()
        });
        assert!(report.is_clean(), "clean build must reopen clean: {report:?}");
        assert_eq!(ledger.journal_count(), n);
        row(
            &format!("n={n}"),
            &[
                ("replay", fmt_tps(n as f64 / secs)),
                ("total", fmt_latency(secs)),
                ("blocks", report.blocks_verified.to_string()),
            ],
        );
        drop(ledger);
        std::fs::remove_dir_all(&dir).ok();
    }

    let json = checkpoint_ab(1 << 13, 256);
    if let Some(path) = json_path {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, json).expect("write A/B record");
        println!("prof_recovery: wrote {}", path.display());
    }
}
