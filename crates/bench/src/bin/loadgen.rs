//! `loadgen` — remote append load generator for `ledgerd`.
//!
//! Sweeps client counts × commit modes against an in-process server
//! backed by a real durable ledger on disk, and prints one JSON row per
//! configuration:
//!
//! ```text
//! loadgen [--appends N] [--payload BYTES] [--clients 1,4,16] \
//!         [--window-us 150] [--admission verify|proxy|both]
//! loadgen --read-mix [--readers N] [--read-secs S] \
//!         [--addr HOST:PORT --seed SEED]
//! loadgen --connections 64,512,4096 [--rounds N]
//! ```
//!
//! `--connections` runs the event-loop concurrency sweep: for each
//! count it starts an in-process epoll `ledgerd` (`EventLedgerd`),
//! establishes that many **simultaneously open** connections, then has
//! a small worker pool drive `--rounds` request round trips over every
//! socket while all of them stay open — the thing a thread-per-
//! connection server cannot do at 4096. Each cell asserts every
//! connection was served (structural gate, valid on any core count)
//! and reports client-observed p50/p95/p99 for wall-clock gating where
//! the machine has the cores to make latency meaningful.
//!
//! `--read-mix` runs the mixed read workload instead of the append
//! sweep: one writer appends (per-append fsync, so it holds the ledger
//! write lock across the disk barrier) while `--readers` clients pound
//! GetProof / GetTx / Verify over TCP against the sealed prefix.
//! Without `--addr` it A/B-interleaves in-process servers with the
//! snapshot read path on and off (`ServerConfig::snapshot_reads`) and
//! reports the lock-free speedup; with `--addr` it drives one cell
//! against an already-running `ledgerd` (whose toggle state decides the
//! path) — the form `scripts/verify.sh` uses to assert snapshot hits.
//!
//! Modes:
//! * `batch=off` — streams at `fsync=always`: every append pays its own
//!   payload fsync + WAL fsync before the ack (the per-append baseline);
//! * `batch=on`  — streams at `fsync=never` with the group-commit
//!   batcher supplying one durability barrier per window; acks are
//!   still strictly after durability.
//! * `admission=verify` — the server checks membership + π_c on every
//!   append (direct-to-client deployment);
//! * `admission=proxy`  — π_c is the proxy tier's job (Fig 1, and the
//!   kernel's `append_preverified` contract): the server enforces
//!   membership only, so the measurement isolates the service +
//!   durability layers from the fixed per-request ECDSA cost.
//!
//! Every request travels the full wire path: sign → TCP → decode →
//! admit → commit → durable ack. Latency is measured per request
//! at the client into a telemetry histogram; after each sweep cell the
//! server's own `Stats` exposition is scraped, so every JSON row pairs
//! client-observed and server-observed p50/p95/p99. `--no-telemetry`
//! disables the server-side registry (one relaxed load per record) to
//! measure instrumentation overhead.

use ledgerdb_bench::XorShift;
use ledgerdb_core::recovery::open_durable_with;
use ledgerdb_core::state::{verify_state_proof, StateBackend, StateCommitment, WorldState};
use ledgerdb_core::{
    LedgerConfig, LedgerDb, MemberRegistry, ShardedLedger, SharedLedger, TxRequest,
};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_server::{
    Admission, BatchConfig, EventConfig, EventLedgerd, Ledgerd, RemoteLedger, ServerConfig,
};
use ledgerdb_storage::FsyncPolicy;
use ledgerdb_telemetry::{parse_value, Histogram, Registry, Unit};
use ledgerdb_timesvc::clock::SimClock;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    appends: u64,
    payload: usize,
    clients: Vec<usize>,
    window: Duration,
    admissions: Vec<Admission>,
    telemetry: bool,
    read_mix: bool,
    readers: usize,
    read_secs: f64,
    addr: Option<String>,
    seed: String,
    pipeline: bool,
    workers: usize,
    batch_size: usize,
    reps: usize,
    connections: Vec<usize>,
    rounds: usize,
    trace: bool,
    shards: Vec<usize>,
    state_ab: bool,
    keys: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        appends: 2048,
        payload: 256,
        clients: vec![1, 4, 16],
        window: Duration::from_micros(150),
        admissions: vec![Admission::Verify, Admission::ProxyTrusted],
        telemetry: true,
        read_mix: false,
        readers: 4,
        read_secs: 2.0,
        addr: None,
        seed: "demo".into(),
        pipeline: false,
        workers: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        batch_size: 64,
        reps: 2,
        connections: Vec::new(),
        rounds: 3,
        trace: false,
        shards: Vec::new(),
        state_ab: false,
        keys: 100_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--no-telemetry" {
            args.telemetry = false;
            continue;
        }
        if flag == "--read-mix" {
            args.read_mix = true;
            continue;
        }
        if flag == "--pipeline" {
            args.pipeline = true;
            continue;
        }
        if flag == "--trace" {
            args.trace = true;
            continue;
        }
        if flag == "--state-ab" {
            args.state_ab = true;
            continue;
        }
        let value = it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        });
        let bad = |what: &str| -> ! {
            eprintln!("bad {what}: {value}");
            std::process::exit(2);
        };
        match flag.as_str() {
            "--appends" => args.appends = value.parse().unwrap_or_else(|_| bad("count")),
            "--payload" => args.payload = value.parse().unwrap_or_else(|_| bad("size")),
            "--clients" => {
                args.clients = value
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| bad("client list")))
                    .collect();
            }
            "--window-us" => {
                args.window =
                    Duration::from_micros(value.parse().unwrap_or_else(|_| bad("window")));
            }
            "--admission" => {
                args.admissions = match value.as_str() {
                    "verify" => vec![Admission::Verify],
                    "proxy" => vec![Admission::ProxyTrusted],
                    "both" => vec![Admission::Verify, Admission::ProxyTrusted],
                    _ => bad("admission"),
                };
            }
            "--readers" => args.readers = value.parse().unwrap_or_else(|_| bad("count")),
            "--read-secs" => args.read_secs = value.parse().unwrap_or_else(|_| bad("seconds")),
            "--addr" => args.addr = Some(value.clone()),
            "--seed" => args.seed = value.clone(),
            "--workers" => args.workers = value.parse().unwrap_or_else(|_| bad("count")),
            "--batch-size" => args.batch_size = value.parse().unwrap_or_else(|_| bad("count")),
            "--reps" => args.reps = value.parse().unwrap_or_else(|_| bad("count")),
            "--connections" => {
                args.connections = value
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| bad("connection list")))
                    .collect();
            }
            "--rounds" => args.rounds = value.parse().unwrap_or_else(|_| bad("count")),
            "--keys" => args.keys = value.parse().unwrap_or_else(|_| bad("count")),
            "--shards" => {
                args.shards = value
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| bad("shard list")))
                    .collect();
            }
            _ => {
                eprintln!(
                    "usage: loadgen [--appends N] [--payload BYTES] \
                     [--clients 1,4,16] [--window-us US] \
                     [--admission verify|proxy|both] [--no-telemetry] \
                     | --read-mix [--readers N] [--read-secs S] \
                     [--addr HOST:PORT --seed SEED] \
                     | --pipeline [--appends N] [--payload BYTES] \
                     [--workers N] [--batch-size N] [--reps R] \
                     | --connections 64,512,4096 [--rounds N] \
                     | --trace [--appends N] [--payload BYTES] [--reps R] \
                     | --shards 1,2,4 [--appends N] [--payload BYTES] \
                     | --state-ab [--keys N] [--appends N] [--payload BYTES]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn registry() -> (MemberRegistry, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"loadgen-ca");
    let alice = KeyPair::from_seed(b"loadgen-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, alice)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ledgerdb-loadgen-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Server-observed numbers scraped from the `Stats` exposition after a
/// sweep cell finishes (milliseconds, already unit-scaled by `render`).
struct ServerSide {
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    appends_total: f64,
    error_frames: f64,
}

fn scrape_server(addr: std::net::SocketAddr) -> Option<ServerSide> {
    let text = RemoteLedger::connect(addr).ok()?.stats().ok()?;
    let ms = |token: &str| parse_value(&text, token).map(|v| v * 1e3);
    Some(ServerSide {
        p50_ms: ms("server_req_append_seconds{quantile=\"0.5\"}")?,
        p95_ms: ms("server_req_append_seconds{quantile=\"0.95\"}")?,
        p99_ms: ms("server_req_append_seconds{quantile=\"0.99\"}")?,
        appends_total: parse_value(&text, "ledger_appends_total")?,
        error_frames: parse_value(&text, "server_error_frames_total")?,
    })
}

struct Row {
    clients: usize,
    batch: bool,
    admission: Admission,
    window_us: u64,
    appends: u64,
    elapsed: Duration,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    server: Option<ServerSide>,
}

fn admission_name(a: Admission) -> &'static str {
    match a {
        Admission::Verify => "verify",
        Admission::ProxyTrusted => "proxy",
    }
}

impl Row {
    fn print(&self) {
        let tps = self.appends as f64 / self.elapsed.as_secs_f64();
        let server = match &self.server {
            Some(s) => format!(
                ",\"server_p50_ms\":{:.3},\"server_p95_ms\":{:.3},\
                 \"server_p99_ms\":{:.3},\"server_appends_total\":{},\
                 \"server_error_frames\":{}",
                s.p50_ms, s.p95_ms, s.p99_ms, s.appends_total, s.error_frames
            ),
            None => String::new(),
        };
        println!(
            "{{\"bench\":\"ledgerd_append\",\"clients\":{},\"batch\":{},\
             \"admission\":\"{}\",\
             \"window_us\":{},\"appends\":{},\"elapsed_s\":{:.3},\
             \"appends_per_sec\":{:.1},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\
             \"p99_ms\":{:.3}{server}}}",
            self.clients,
            self.batch,
            admission_name(self.admission),
            self.window_us,
            self.appends,
            self.elapsed.as_secs_f64(),
            tps,
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
        );
    }
}

fn run_config(args: &Args, clients: usize, batch: bool, admission: Admission) -> Row {
    let tag = format!(
        "{}c-{}-{}",
        clients,
        if batch { "batch" } else { "nobatch" },
        admission_name(admission)
    );
    let dir = temp_dir(&tag);
    let (registry, alice) = registry();
    let config = LedgerConfig { block_size: 64, fam_delta: 20, name: format!("loadgen-{tag}"), state_backend: Default::default() };
    // One registry per sweep cell: the scraped exposition covers exactly
    // this configuration's traffic.
    let telemetry = Arc::new(Registry::new());
    telemetry.set_enabled(args.telemetry);
    // batch=off: per-append fsync. batch=on: the committer's barrier is
    // the only fsync — same ack-after-durable contract.
    let policy = if batch { FsyncPolicy::Never } else { FsyncPolicy::Always };
    let (ledger, _) = open_durable_with(
        config,
        registry,
        &dir,
        policy,
        Arc::new(SimClock::new()),
        &telemetry,
    )
    .unwrap();
    let server = Ledgerd::start(
        SharedLedger::new(ledger),
        ServerConfig {
            workers: clients.max(1),
            max_connections: clients + 4,
            batch: batch.then(|| BatchConfig { max_batch: 64, max_delay: args.window }),
            admission,
            registry: telemetry.clone(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Pre-sign everything: loadgen measures the service, not the
    // client's ECDSA.
    let per_client = args.appends / clients as u64;
    let mut rng = XorShift::new(7);
    let jobs: Vec<Vec<TxRequest>> = (0..clients as u64)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    TxRequest::signed(
                        &alice,
                        rng.payload(args.payload),
                        vec![format!("lg-{}", i % 32)],
                        c * 1_000_000 + i,
                    )
                })
                .collect()
        })
        .collect();

    // Client-observed latency goes through the same histogram type the
    // server uses, shared across client threads lock-free.
    let client_hist = Arc::new(Histogram::new(Unit::Seconds));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for requests in jobs {
            let hist = client_hist.clone();
            scope.spawn(move || {
                let mut remote = RemoteLedger::connect(addr).expect("connect");
                for request in requests {
                    let t0 = Instant::now();
                    remote.append(request).expect("durable ack");
                    hist.observe_duration(t0.elapsed());
                }
            });
        }
    });
    let elapsed = started.elapsed();
    // Scrape the server's own view of the cell before tearing it down.
    let server_side = scrape_server(addr);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    let snap = client_hist.snapshot();
    Row {
        clients,
        batch,
        admission,
        window_us: if batch { args.window.as_micros() as u64 } else { 0 },
        appends: snap.count,
        elapsed,
        p50: Duration::from_nanos(snap.p50),
        p95: Duration::from_nanos(snap.p95),
        p99: Duration::from_nanos(snap.p99),
        server: server_side,
    }
}

/// One read-mix measurement cell: reads/sec over the mixed GetProof /
/// GetTx / Verify workload with one concurrent writer.
struct ReadMixRow {
    snapshot_reads: bool,
    reads: u64,
    elapsed: Duration,
    writer_appends: f64,
    snapshot_hits: f64,
    snapshot_fallbacks: f64,
}

impl ReadMixRow {
    fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64()
    }

    fn print(&self, readers: usize) {
        println!(
            "{{\"bench\":\"ledgerd_read_mix\",\"snapshot_reads\":{},\
             \"readers\":{},\"reads\":{},\"elapsed_s\":{:.3},\
             \"reads_per_sec\":{:.1},\"writer_appends\":{},\
             \"snapshot_hits\":{},\"snapshot_fallbacks\":{}}}",
            self.snapshot_reads,
            readers,
            self.reads,
            self.elapsed.as_secs_f64(),
            self.reads_per_sec(),
            self.writer_appends,
            self.snapshot_hits,
            self.snapshot_fallbacks,
        );
    }
}

/// Drive the mixed read workload against `addr` for `read_secs` while
/// one writer appends continuously. `sealed` bounds the jsn range the
/// readers query (the pre-seeded sealed prefix). Returns total read ops
/// and the measured wall time; the caller scrapes counters.
fn drive_read_mix(
    addr: std::net::SocketAddr,
    alice: &KeyPair,
    readers: usize,
    read_secs: f64,
    sealed: u64,
    payload: usize,
) -> (u64, Duration) {
    use ledgerdb_accumulator::fam::TrustedAnchor;
    use ledgerdb_crypto::wire::Wire;
    use ledgerdb_server::protocol::{
        read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME,
    };
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    // The writer cycles a pre-signed pool so its lock pressure is
    // bounded by the service, not by client-side ECDSA.
    let mut rng = XorShift::new(11);
    let pool: Vec<TxRequest> = (0..512u64)
        .map(|i| {
            TxRequest::signed(
                alice,
                rng.payload(payload),
                vec![format!("rm-{}", i % 16)],
                10_000_000 + i,
            )
        })
        .collect();

    let stop = AtomicBool::new(false);
    let total_reads = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        let stop_ref = &stop;
        let pool_ref = &pool;
        scope.spawn(move || {
            let mut remote = RemoteLedger::connect(addr).expect("writer connect");
            let mut i = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                remote.append(pool_ref[i % pool_ref.len()].clone()).expect("writer ack");
                i += 1;
            }
        });
        for reader in 0..readers as u64 {
            let total = &total_reads;
            scope.spawn(move || {
                let anchor = TrustedAnchor::default();
                let stream = std::net::TcpStream::connect(addr).expect("reader connect");
                stream.set_nodelay(true).ok();
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader_half = std::io::BufReader::with_capacity(16 * 1024, stream);
                let mut call = |request: &Request| -> Response {
                    write_frame(&mut writer, &request.to_wire()).expect("send");
                    let body = read_frame(&mut reader_half, DEFAULT_MAX_FRAME).expect("recv");
                    Response::from_wire(&body).expect("decode")
                };
                let mut rng = XorShift::new(0xBEEF ^ (reader + 1));
                let deadline = Instant::now() + Duration::from_secs_f64(read_secs);
                let mut ops = 0u64;
                while Instant::now() < deadline {
                    let jsn = rng.below(sealed.max(1));
                    let (tx_hash, proof) =
                        match call(&Request::GetProof { jsn, anchor: anchor.clone() }) {
                            Response::Proof { tx_hash, proof } => (tx_hash, proof),
                            other => panic!("GetProof({jsn}) answered {other:?}"),
                        };
                    match call(&Request::GetTx(jsn)) {
                        Response::Tx { journal, .. } => assert_eq!(journal.jsn, jsn),
                        other => panic!("GetTx({jsn}) answered {other:?}"),
                    }
                    match call(&Request::Verify { jsn, tx_hash, proof, anchor: anchor.clone() }) {
                        Response::Verified => {}
                        other => panic!("Verify({jsn}) answered {other:?}"),
                    }
                    ops += 3;
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        // Readers run the measurement clock; the writer stops when the
        // last reader finishes. Scope join order: spawn order doesn't
        // matter, we flip the flag from the main thread after sleeping
        // out the window plus a grace tick.
        std::thread::sleep(Duration::from_secs_f64(read_secs));
        // Give readers a moment to drain their final round trips.
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
    });
    (total_reads.load(Ordering::Relaxed), started.elapsed())
}

/// In-process read-mix cell: durable ledger + server with the snapshot
/// path toggled, pre-seeded sealed prefix, mixed readers vs one writer.
fn read_mix_cell(args: &Args, snapshot_reads: bool) -> ReadMixRow {
    const SEALED: u64 = 192;
    let tag = format!("readmix-{}", if snapshot_reads { "snap" } else { "lock" });
    let dir = temp_dir(&tag);
    let (registry, alice) = registry();
    let telemetry = Arc::new(Registry::new());
    let config = LedgerConfig { block_size: 64, fam_delta: 15, name: format!("loadgen-{tag}"), state_backend: Default::default() };
    // Per-append fsync and no batcher: every writer append holds the
    // ledger write lock across the disk barrier — exactly the stall the
    // snapshot path exists to take readers out of.
    let (ledger, _) = open_durable_with(
        config,
        registry,
        &dir,
        FsyncPolicy::Always,
        Arc::new(SimClock::new()),
        &telemetry,
    )
    .unwrap();
    let shared = SharedLedger::new(ledger);
    // Seed a sealed prefix for the readers to query.
    let mut rng = XorShift::new(3);
    for i in 0..SEALED {
        let req = TxRequest::signed(
            &alice,
            rng.payload(args.payload),
            vec![format!("rm-{}", i % 16)],
            i,
        );
        shared.append(req).unwrap();
    }
    shared.seal_block();
    let seeded_appends = parse_value(
        &ledgerdb_telemetry::render(&telemetry),
        "ledger_appends_total",
    )
    .unwrap_or(0.0);

    let server = Ledgerd::start(
        shared,
        ServerConfig {
            workers: args.readers + 2,
            max_connections: args.readers + 6,
            batch: None,
            // Proxy admission keeps the per-append ECDSA re-check (a
            // CPU cost paid outside the lock, identical in both arms)
            // out of the writer's cycle, so the cycle is dominated by
            // the fsyncs it holds the write lock across — the
            // contention under measurement.
            admission: Admission::ProxyTrusted,
            snapshot_reads,
            registry: telemetry.clone(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let (reads, elapsed) =
        drive_read_mix(server.local_addr(), &alice, args.readers, args.read_secs, SEALED, args.payload);
    let text = ledgerdb_telemetry::render(&telemetry);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    ReadMixRow {
        snapshot_reads,
        reads,
        elapsed,
        writer_appends: parse_value(&text, "ledger_appends_total").unwrap_or(0.0) - seeded_appends,
        snapshot_hits: parse_value(&text, "ledger_snapshot_hit_total").unwrap_or(0.0),
        snapshot_fallbacks: parse_value(&text, "ledger_snapshot_fallback_total").unwrap_or(0.0),
    }
}

/// External read-mix cell: drive a running `ledgerd` at `--addr`. The
/// server's own configuration decides the read path; the scraped
/// snapshot counters say which one actually served.
fn read_mix_external(args: &Args, addr_str: &str) {
    use std::net::ToSocketAddrs;
    let addr = addr_str
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| {
            eprintln!("loadgen: cannot resolve {addr_str}");
            std::process::exit(2);
        });
    let alice = KeyPair::from_seed(format!("{}-alice", args.seed).as_bytes());
    let mut probe = RemoteLedger::connect(addr).expect("connect");
    let sealed = probe.info().journal_count.max(1);
    let stats_before = probe.stats().expect("stats");
    let hits_before = parse_value(&stats_before, "ledger_snapshot_hit_total").unwrap_or(0.0);
    let appends_before = parse_value(&stats_before, "ledger_appends_total").unwrap_or(0.0);
    drop(probe);

    let (reads, elapsed) =
        drive_read_mix(addr, &alice, args.readers, args.read_secs, sealed, args.payload);

    let mut probe = RemoteLedger::connect(addr).expect("reconnect");
    let text = probe.stats().expect("stats");
    let row = ReadMixRow {
        snapshot_reads: parse_value(&text, "ledger_snapshot_hit_total").unwrap_or(0.0)
            > hits_before,
        reads,
        elapsed,
        writer_appends: parse_value(&text, "ledger_appends_total").unwrap_or(0.0)
            - appends_before,
        snapshot_hits: parse_value(&text, "ledger_snapshot_hit_total").unwrap_or(0.0),
        snapshot_fallbacks: parse_value(&text, "ledger_snapshot_fallback_total").unwrap_or(0.0),
    };
    row.print(args.readers);
}

fn run_read_mix(args: &Args) {
    if let Some(addr) = &args.addr {
        read_mix_external(args, addr);
        return;
    }
    eprintln!(
        "loadgen: read-mix A/B — {} readers x {:.1}s per cell, 1 writer, \
         snapshot path interleaved on/off",
        args.readers, args.read_secs
    );
    // Interleave A/B so machine drift hits both arms equally.
    let mut rows = Vec::new();
    for _rep in 0..2 {
        for snapshot_reads in [true, false] {
            let row = read_mix_cell(args, snapshot_reads);
            row.print(args.readers);
            rows.push(row);
        }
    }
    let mean = |on: bool| {
        let sel: Vec<f64> =
            rows.iter().filter(|r| r.snapshot_reads == on).map(|r| r.reads_per_sec()).collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    };
    eprintln!(
        "loadgen: read-mix snapshot speedup: {:.1}x ({:.0} vs {:.0} reads/s, \
         1 writer holding per-append fsyncs)",
        mean(true) / mean(false),
        mean(true),
        mean(false)
    );
}

/// One append-pipeline A/B cell: a single client streaming
/// `AppendBatch` frames against an in-process server whose compute pool
/// is either off (`workers == 1`, every stage serial) or on.
struct PipelineRow {
    workers: usize,
    appends: u64,
    elapsed: Duration,
    pool_tasks: f64,
    blocks: u64,
    journal_root: String,
    last_block_hash: String,
}

impl PipelineRow {
    fn appends_per_sec(&self) -> f64 {
        self.appends as f64 / self.elapsed.as_secs_f64()
    }

    fn print(&self) {
        println!(
            "{{\"bench\":\"append_pipeline\",\"workers\":{},\"appends\":{},\
             \"elapsed_s\":{:.3},\"appends_per_sec\":{:.1},\"pool_tasks\":{},\
             \"blocks\":{},\"journal_root\":\"{}\",\"last_block_hash\":\"{}\"}}",
            self.workers,
            self.appends,
            self.elapsed.as_secs_f64(),
            self.appends_per_sec(),
            self.pool_tasks,
            self.blocks,
            self.journal_root,
            self.last_block_hash,
        );
    }
}

fn pipeline_cell(args: &Args, workers: usize, requests: &[TxRequest]) -> PipelineRow {
    let tag = format!("pipeline-{workers}w");
    let dir = temp_dir(&tag);
    let (registry, _) = registry();
    let telemetry = Arc::new(Registry::new());
    let config = LedgerConfig { block_size: 64, fam_delta: 20, name: format!("loadgen-{tag}"), state_backend: Default::default() };
    let (ledger, _) = open_durable_with(
        config,
        registry,
        &dir,
        FsyncPolicy::Never,
        Arc::new(SimClock::new()),
        &telemetry,
    )
    .unwrap();
    let shared = SharedLedger::new(ledger);
    let pool = (workers > 1).then(|| ledgerdb_pool::Pool::with_registry(workers, &telemetry));
    let server = Ledgerd::start(
        shared.clone(),
        ServerConfig {
            workers: 2,
            // `AppendBatch` frames are whole batches already; the
            // accumulation window would only add latency.
            batch: None,
            admission: Admission::Verify,
            registry: telemetry.clone(),
            pool,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut remote = RemoteLedger::connect(server.local_addr()).expect("connect");
    let started = Instant::now();
    for chunk in requests.chunks(args.batch_size.max(1)) {
        for result in remote.append_batch(chunk.to_vec()).expect("batch ack") {
            result.expect("durable ack");
        }
    }
    let elapsed = started.elapsed();
    shared.seal_block();

    let text = ledgerdb_telemetry::render(&telemetry);
    let blocks = shared.block_count();
    let last_block_hash = shared
        .blocks_from(blocks.saturating_sub(1), 1)
        .first()
        .map(|b| b.hash().to_hex())
        .unwrap_or_default();
    let row = PipelineRow {
        workers,
        appends: requests.len() as u64,
        elapsed,
        pool_tasks: parse_value(&text, "ledger_pool_tasks_total").unwrap_or(0.0),
        blocks,
        journal_root: shared.journal_root().to_hex(),
        last_block_hash,
    };
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    row
}

fn run_pipeline(args: &Args) {
    let workers = args.workers.max(2);
    eprintln!(
        "loadgen: append-pipeline A/B — {} appends x {} B in batches of {}, \
         workers 1 vs {}, {} interleaved reps",
        args.appends, args.payload, args.batch_size, workers, args.reps
    );
    // One deterministic request set shared by every cell: byte-identical
    // inputs, so the arms must produce byte-identical ledgers.
    let (_, alice) = registry();
    let mut rng = XorShift::new(23);
    let requests: Vec<TxRequest> = (0..args.appends)
        .map(|i| {
            TxRequest::signed(
                &alice,
                rng.payload(args.payload),
                vec![format!("pl-{}", i % 32)],
                i,
            )
        })
        .collect();

    // Interleave the arms so machine drift hits both equally.
    let mut rows = Vec::new();
    for _rep in 0..args.reps.max(1) {
        for w in [1usize, workers] {
            let row = pipeline_cell(args, w, &requests);
            row.print();
            rows.push(row);
        }
    }

    // Determinism is non-negotiable: every cell — serial or pooled —
    // must land on the same roots and the same chain.
    let reference = &rows[0];
    for row in &rows[1..] {
        assert_eq!(
            row.journal_root, reference.journal_root,
            "journal root diverged between pipeline arms"
        );
        assert_eq!(
            row.last_block_hash, reference.last_block_hash,
            "block chain diverged between pipeline arms"
        );
        assert_eq!(row.blocks, reference.blocks, "block count diverged");
    }
    let pooled_tasks: f64 =
        rows.iter().filter(|r| r.workers > 1).map(|r| r.pool_tasks).sum();
    assert!(pooled_tasks > 0.0, "pooled arm never dispatched a pool task");

    let mean = |w: usize| {
        let sel: Vec<f64> =
            rows.iter().filter(|r| r.workers == w).map(|r| r.appends_per_sec()).collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    };
    eprintln!(
        "loadgen: append-pipeline speedup: {:.2}x ({:.0} vs {:.0} appends/s, \
         workers {} vs 1, roots byte-identical)",
        mean(workers) / mean(1),
        mean(workers),
        mean(1),
        workers,
    );
}

/// One shard-sweep cell: a K-shard deployment served over one TCP
/// endpoint, loaded with clue-spread appends from concurrent clients,
/// then audited end to end by a distrusting client that syncs every
/// shard replica and composes cross-shard proofs against its own top
/// anchor root.
struct ShardRow {
    shards: usize,
    appends: u64,
    elapsed: Duration,
    composed: u64,
    epochs: u64,
    top_root: String,
}

impl ShardRow {
    fn appends_per_sec(&self) -> f64 {
        self.appends as f64 / self.elapsed.as_secs_f64()
    }

    fn print(&self) {
        println!(
            "{{\"bench\":\"shard_scale\",\"shards\":{},\"appends\":{},\"elapsed_s\":{:.4},\
             \"appends_per_sec\":{:.1},\"composed_proofs\":{},\"composed_verified\":true,\
             \"epochs\":{},\"top_root\":\"{}\"}}",
            self.shards,
            self.appends,
            self.elapsed.as_secs_f64(),
            self.appends_per_sec(),
            self.composed,
            self.epochs,
            self.top_root,
        );
    }
}

fn shard_cell(args: &Args, k: usize) -> ShardRow {
    let tag = format!("shards-{k}");
    let base = temp_dir(&tag);
    let mut shard_ledgers = Vec::with_capacity(k);
    for i in 0..k {
        // K=1 lays the ledger out flat, exactly like an unsharded
        // deployment; K>1 gets one subdirectory per shard.
        let dir = if k == 1 { base.clone() } else { base.join(format!("shard-{i}")) };
        let (registry, _) = registry();
        let telemetry = Arc::new(Registry::new());
        let config =
            LedgerConfig { block_size: 64, fam_delta: 20, name: "loadgen-shards".into(), state_backend: Default::default() };
        let (ledger, _) = open_durable_with(
            config,
            registry,
            &dir,
            FsyncPolicy::Never,
            Arc::new(SimClock::new()),
            &telemetry,
        )
        .unwrap();
        shard_ledgers.push(SharedLedger::new(ledger));
    }
    let sharded = ShardedLedger::new(shard_ledgers).expect("valid shard count");
    let server = Ledgerd::start_sharded(
        sharded.clone(),
        ServerConfig {
            workers: k.max(2),
            batch: None,
            admission: Admission::Verify,
            registry: Arc::new(Registry::new()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Clue-spread load from four concurrent clients: clues hash across
    // all K shards, so every shard sees traffic in every cell.
    let (_, alice) = registry();
    let clients = 4usize;
    let per_client = (args.appends as usize).div_ceil(clients);
    let batch = args.batch_size.max(1);
    let started = Instant::now();
    let jsns: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let alice = &alice;
                scope.spawn(move || {
                    let mut rng = XorShift::new(0x5AD + c as u64);
                    let requests: Vec<TxRequest> = (0..per_client)
                        .map(|i| {
                            TxRequest::signed(
                                alice,
                                rng.payload(args.payload),
                                vec![format!("shard-clue-{}", rng.next_u64() % 61)],
                                (c * per_client + i) as u64,
                            )
                        })
                        .collect();
                    let mut remote = RemoteLedger::connect(addr).expect("connect");
                    let mut acked = Vec::with_capacity(per_client);
                    for chunk in requests.chunks(batch) {
                        for result in
                            remote.append_batch(chunk.to_vec()).expect("batch ack")
                        {
                            let (jsn, _) = result.expect("durable ack");
                            acked.push(jsn);
                        }
                    }
                    acked
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    // Seal everything, then run the distrusting audit: sync every
    // shard replica, mirror the epoch anchors (the server cuts the
    // epoch lazily on that request), and compose a proof for a sample
    // of the acked jsns. `prove_composed` verifies each proof against
    // the client's own replicas before returning — an unverifiable
    // proof is a panic here, not a statistic.
    sharded.seal_all();
    let mut auditor = RemoteLedger::connect(addr).expect("connect auditor");
    auditor.sync_sharded().expect("sharded sync");
    let topo = auditor.topology().expect("topology");
    assert_eq!(topo.shards as usize, k, "server must report the deployed shard count");
    let own_root = auditor.sharded().expect("synced").top_root();
    assert_eq!(
        topo.top_root, own_root,
        "server's claimed top root diverged from the client's own anchor tree"
    );
    let step = (jsns.len() / 64).max(1);
    let mut composed = 0u64;
    for &jsn in jsns.iter().step_by(step) {
        let proof = auditor.prove_composed(jsn).expect("composed proof must verify");
        assert_eq!(proof.shard as u64, jsn >> 56, "proof shard must match the jsn route");
        composed += 1;
    }
    assert!(composed > 0, "shard cell composed no proofs");

    let row = ShardRow {
        shards: k,
        appends: jsns.len() as u64,
        elapsed,
        composed,
        epochs: topo.epochs,
        top_root: own_root.to_hex(),
    };
    server.shutdown();
    std::fs::remove_dir_all(&base).ok();
    row
}

fn run_shards(args: &Args) {
    eprintln!(
        "loadgen: shard scale-out sweep — {} appends x {} B across K in {:?}, \
         composed-proof audit per cell",
        args.appends, args.payload, args.shards
    );
    let mut rows = Vec::new();
    for &k in &args.shards {
        let row = shard_cell(args, k);
        eprintln!(
            "loadgen: [shards={}] {:.0} appends/s, {}/{} sampled proofs composed+verified, \
             {} epochs, top root {}",
            row.shards,
            row.appends_per_sec(),
            row.composed,
            row.composed,
            row.epochs,
            &row.top_root[..16.min(row.top_root.len())],
        );
        row.print();
        rows.push(row);
    }
    if let (Some(base), Some(best)) = (
        rows.iter().find(|r| r.shards == 1),
        rows.iter().max_by_key(|r| r.shards).filter(|r| r.shards > 1),
    ) {
        // On a single-core box the ratio measures overhead, not
        // scaling; the composed-proof audit above is the structural
        // acceptance either way.
        eprintln!(
            "loadgen: shard scale-out at K={}: {:.2}x over K=1 \
             ({:.0} vs {:.0} appends/s; wall-clock meaningful only with >1 core)",
            best.shards,
            best.appends_per_sec() / base.appends_per_sec(),
            best.appends_per_sec(),
            base.appends_per_sec(),
        );
    }
}

/// One state-backend A/B cell: a direct `WorldState` microbench at
/// `--keys` entries (witness size, proof build, verify) plus an
/// in-process ledger append leg whose per-backend histograms are
/// scraped back out of the telemetry registry.
struct StateRow {
    backend: StateBackend,
    keys: u64,
    insert: Duration,
    root: Duration,
    sampled: usize,
    witness_bytes_mean: f64,
    witness_bytes_p95: u64,
    proof_build_mean: Duration,
    verify_mean: Duration,
    appends: u64,
    append_elapsed: Duration,
    /// `ledger_seal_state_seconds_sum` scraped after the append leg —
    /// the state-commitment leg of the seal pipeline.
    seal_state_s: f64,
    /// Mean of `ledger_proof_bytes{backend=…}` scraped off /metrics
    /// text — proves the labeled exposition path end to end.
    scraped_proof_bytes_mean: f64,
}

impl StateRow {
    fn appends_per_sec(&self) -> f64 {
        self.appends as f64 / self.append_elapsed.as_secs_f64()
    }

    fn print(&self) {
        println!(
            "{{\"bench\":\"state_ab\",\"backend\":\"{}\",\"keys\":{},\
             \"insert_s\":{:.3},\"root_s\":{:.3},\"sampled\":{},\
             \"witness_bytes_mean\":{:.1},\"witness_bytes_p95\":{},\
             \"proof_build_us_mean\":{:.2},\"verify_us_mean\":{:.2},\
             \"appends\":{},\"append_elapsed_s\":{:.3},\"appends_per_sec\":{:.1},\
             \"seal_state_s\":{:.4},\"scraped_proof_bytes_mean\":{:.1}}}",
            self.backend,
            self.keys,
            self.insert.as_secs_f64(),
            self.root.as_secs_f64(),
            self.sampled,
            self.witness_bytes_mean,
            self.witness_bytes_p95,
            self.proof_build_mean.as_secs_f64() * 1e6,
            self.verify_mean.as_secs_f64() * 1e6,
            self.appends,
            self.append_elapsed.as_secs_f64(),
            self.appends_per_sec(),
            self.seal_state_s,
            self.scraped_proof_bytes_mean,
        );
    }
}

fn state_cell(args: &Args, backend: StateBackend) -> StateRow {
    use ledgerdb_crypto::sha256::sha256;
    use ledgerdb_crypto::wire::Wire;

    // ── Microbench leg: the commitment structure alone, 10^5+ keys. ──
    let mut world = WorldState::new(backend);
    let t = Instant::now();
    for i in 0..args.keys {
        let key = format!("acct-{i:08}");
        world.insert_kv(key.as_bytes(), sha256(&i.to_be_bytes()).0.to_vec());
    }
    let insert = t.elapsed();
    let t = Instant::now();
    let root = world.commitment_root();
    let root_elapsed = t.elapsed();

    // Sample spread across the keyspace, plus absences: both proof
    // shapes contribute to the witness-size story.
    let mut sizes = Vec::new();
    let mut build = Duration::ZERO;
    let mut verify = Duration::ZERO;
    let samples = 512.min(args.keys as usize);
    for s in 0..samples {
        let present = s % 8 != 7;
        let key = if present {
            format!("acct-{:08}", (s as u64 * args.keys / samples as u64) % args.keys)
        } else {
            format!("ghost-{s:08}")
        };
        let t = Instant::now();
        let proof = world.prove_kv(key.as_bytes());
        build += t.elapsed();
        sizes.push(proof.to_wire().len() as u64);
        let t = Instant::now();
        let value = verify_state_proof(&root, &proof).expect("fresh proof verifies");
        verify += t.elapsed();
        assert_eq!(value.is_some(), present, "sample {s}: proven presence matches");
    }
    sizes.sort_unstable();
    let witness_bytes_mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
    let witness_bytes_p95 = sizes[(sizes.len() * 95 / 100).min(sizes.len() - 1)];

    // ── Append leg: the full ledger with this backend underneath. ──
    let (registry, alice) = registry();
    let config = LedgerConfig {
        block_size: 64,
        fam_delta: 20,
        name: format!("loadgen-state-{backend}"),
        state_backend: backend,
    };
    let telemetry = Arc::new(Registry::new());
    let mut ledger = LedgerDb::new(config, registry);
    ledger.bind_metrics(&telemetry);
    let shared = SharedLedger::new(ledger);
    let mut rng = XorShift::new(17);
    let t = Instant::now();
    for i in 0..args.appends {
        let clue = format!("acct-{}", rng.next_u64() % 512);
        shared
            .append_preverified(TxRequest::signed(&alice, rng.payload(args.payload), vec![clue], i))
            .expect("append");
    }
    shared.seal_block();
    let append_elapsed = t.elapsed();

    // Drive the labeled per-backend histograms, then scrape them back
    // out of the rendered exposition — the same text /metrics serves.
    let state_root = shared.state_root();
    for i in 0..64u64 {
        let proof = shared.prove_state(&format!("acct-{}", i * 8));
        shared
            .with_read(|l| l.verify_state_timed(&state_root, &proof).map(|v| v.map(<[u8]>::to_vec)))
            .expect("state proof verifies");
    }
    let text = ledgerdb_telemetry::render(&telemetry);
    let scraped = |token: &str| parse_value(&text, token).unwrap_or(0.0);
    let label = format!("{{backend=\"{backend}\"}}");
    let count = scraped(&format!("ledger_proof_bytes_count{label}"));
    assert!(count >= 64.0, "per-backend proof-bytes histogram scraped from exposition");
    let scraped_proof_bytes_mean =
        if count > 0.0 { scraped(&format!("ledger_proof_bytes_sum{label}")) / count } else { 0.0 };
    assert!(
        scraped(&format!("ledger_verify_seconds_count{label}")) >= 64.0,
        "per-backend verify histogram scraped from exposition"
    );

    StateRow {
        backend,
        keys: args.keys,
        insert,
        root: root_elapsed,
        sampled: samples,
        witness_bytes_mean,
        witness_bytes_p95,
        proof_build_mean: build / samples as u32,
        verify_mean: verify / samples as u32,
        appends: args.appends,
        append_elapsed,
        seal_state_s: scraped("ledger_seal_state_seconds_sum"),
        scraped_proof_bytes_mean,
    }
}

fn run_state_ab(args: &Args) {
    eprintln!(
        "loadgen: state-backend A/B — {} keys microbench + {} append leg per backend",
        args.keys, args.appends
    );
    let mpt = state_cell(args, StateBackend::Mpt);
    mpt.print();
    let bin = state_cell(args, StateBackend::Bin);
    bin.print();

    let witness_ratio = mpt.witness_bytes_mean / bin.witness_bytes_mean;
    let verify_ratio = mpt.verify_mean.as_secs_f64() / bin.verify_mean.as_secs_f64().max(1e-12);
    let append_delta_pct =
        (mpt.appends_per_sec() - bin.appends_per_sec()) / mpt.appends_per_sec() * 100.0;
    println!(
        "{{\"bench\":\"state_ab_summary\",\"keys\":{},\"witness_ratio\":{:.2},\
         \"verify_ratio\":{:.2},\"append_delta_pct\":{:.2},\
         \"mpt_witness_bytes_mean\":{:.1},\"bin_witness_bytes_mean\":{:.1}}}",
        args.keys, witness_ratio, verify_ratio, append_delta_pct,
        mpt.witness_bytes_mean, bin.witness_bytes_mean,
    );
    eprintln!(
        "loadgen: binary witnesses {witness_ratio:.2}x smaller \
         ({:.0} B vs {:.0} B mean at {} keys); verify {verify_ratio:.2}x; \
         append delta {append_delta_pct:+.1}% (wall-clock meaningful only with >1 core)",
        bin.witness_bytes_mean, mpt.witness_bytes_mean, args.keys,
    );
    // Structural acceptance: witness compression is a property of the
    // trie shapes, not of machine speed — gate it here, always.
    assert!(
        witness_ratio >= 4.0,
        "binary witnesses must be >=4x smaller than MPT witnesses, got {witness_ratio:.2}x"
    );
}

/// One event-loop concurrency cell: `connections` sockets held open
/// simultaneously while every one of them is driven through `rounds`
/// request round trips.
struct ConnRow {
    connections: usize,
    requests: u64,
    elapsed: Duration,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    /// `server_loop_connections` scraped over HTTP at peak — the
    /// server's own count of simultaneously registered sockets.
    loop_connections_peak: f64,
    /// Whether `GET /metrics` answered validly *while* the storm ran.
    metrics_live: bool,
}

impl ConnRow {
    fn print(&self) {
        println!(
            "{{\"bench\":\"event_loop_connections\",\"connections\":{},\
             \"requests\":{},\"elapsed_s\":{:.3},\"requests_per_sec\":{:.1},\
             \"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3},\
             \"loop_connections_peak\":{},\"metrics_live\":{}}}",
            self.connections,
            self.requests,
            self.elapsed.as_secs_f64(),
            self.requests as f64 / self.elapsed.as_secs_f64(),
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.loop_connections_peak,
            self.metrics_live,
        );
    }
}

/// `GET path` against the event server's HTTP listener; returns the
/// full response text.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Option<String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n").as_bytes())
        .ok()?;
    let mut out = Vec::new();
    stream.read_to_end(&mut out).ok()?;
    String::from_utf8(out).ok()
}

fn connections_cell(args: &Args, n: usize) -> ConnRow {
    use ledgerdb_crypto::wire::Wire;
    use ledgerdb_server::protocol::{
        read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME,
    };

    let (registry, alice) = registry();
    let config =
        LedgerConfig { block_size: 64, fam_delta: 20, name: format!("loadgen-conn-{n}"), state_backend: Default::default() };
    let telemetry = Arc::new(Registry::new());
    let mut ledger = LedgerDb::new(config, registry);
    ledger.bind_metrics(&telemetry);
    let shared = SharedLedger::new(ledger);
    let mut rng = XorShift::new(41);
    for i in 0..64u64 {
        shared
            .append(TxRequest::signed(&alice, rng.payload(args.payload), vec![], i))
            .expect("seed append");
    }
    let server = EventLedgerd::start(
        shared,
        EventConfig {
            server: ServerConfig {
                workers: 4,
                max_connections: n + 16,
                batch: None,
                registry: telemetry.clone(),
                ..ServerConfig::default()
            },
            http_bind: Some("127.0.0.1:0".into()),
            // The sweep's sockets are idle between their turns; the
            // deadline must outlive the whole cell.
            idle_timeout: Duration::from_secs(300),
        },
    )
    .expect("start event server");
    let addr = server.local_addr();
    let http = server.http_addr().expect("http listener");

    // Establish EVERY connection before the first request: this is the
    // concurrency claim — n sockets simultaneously open and registered.
    let mut sockets = Vec::with_capacity(n);
    for i in 0..n {
        let stream = loop {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => break s,
                // Transient backlog overflow under the connect burst.
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        };
        stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
        stream.set_nodelay(true).ok();
        let _ = i;
        sockets.push(stream);
    }

    // Drive every socket through `rounds` round trips from a small
    // worker pool, with all n sockets open the entire time.
    let hist = Arc::new(Histogram::new(Unit::Seconds));
    let workers = 8.min(n.max(1));
    let chunk = n.div_ceil(workers);
    let started = Instant::now();
    let (peak, metrics_live) = std::thread::scope(|scope| {
        for part in sockets.chunks_mut(chunk) {
            let hist = hist.clone();
            let rounds = args.rounds;
            scope.spawn(move || {
                for _ in 0..rounds {
                    for stream in part.iter_mut() {
                        let t0 = Instant::now();
                        write_frame(stream, &Request::GetAnchor.to_wire()).expect("send");
                        let body = read_frame(stream, DEFAULT_MAX_FRAME).expect("recv");
                        match Response::from_wire(&body).expect("decode") {
                            Response::Anchor(_) => hist.observe_duration(t0.elapsed()),
                            other => panic!("GetAnchor answered {other:?}"),
                        }
                    }
                }
            });
        }
        // Mid-storm, the operator plane must stay responsive: scrape
        // the loop's own connection gauge over HTTP while every slot
        // is busy.
        let text = http_get(http, "/metrics").unwrap_or_default();
        let peak = parse_value(&text, "server_loop_connections").unwrap_or(0.0);
        let live = text.starts_with("HTTP/1.1 200")
            && text.contains("server_loop_iterations_total");
        (peak, live)
    });
    let elapsed = started.elapsed();

    let snap = hist.snapshot();
    // Structural gate: every socket answered every round.
    assert_eq!(
        snap.count,
        (n * args.rounds) as u64,
        "every connection must be served every round"
    );
    drop(sockets);
    server.shutdown();
    ConnRow {
        connections: n,
        requests: snap.count,
        elapsed,
        p50: Duration::from_nanos(snap.p50),
        p95: Duration::from_nanos(snap.p95),
        p99: Duration::from_nanos(snap.p99),
        loop_connections_peak: peak,
        metrics_live,
    }
}

fn run_connections(args: &Args) {
    eprintln!(
        "loadgen: event-loop concurrency sweep — connections {:?}, {} rounds each",
        args.connections, args.rounds
    );
    for &n in &args.connections {
        let row = connections_cell(args, n);
        row.print();
        assert!(
            row.loop_connections_peak >= n as f64,
            "loop gauge saw {} sockets, expected at least {n}",
            row.loop_connections_peak
        );
        assert!(row.metrics_live, "/metrics must answer during the storm at {n} connections");
    }
}

/// Percentile from a sorted duration population (nanoseconds).
fn pct_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// `--trace`: the end-to-end tracing bench.
///
/// One in-process threaded `ledgerd` with group commit on; two
/// measurements against it:
///
/// 1. **Overhead A/B** — `--reps` interleaved pairs of cells, each
///    driving `--appends` appends over one connection, alternating
///    untraced (version-1 frames) and traced (version-2 frames with a
///    client-minted id). Both arms hit the same growing ledger in
///    alternation, so machine and state drift cancel; the headline is
///    the ratio of median traced to median untraced throughput.
/// 2. **Stage breakdown** — traced appends each followed by a
///    `GetTrace` for the id the call carried; per-stage durations are
///    accumulated into p50/p99. Hard-asserts, per sampled trace: the
///    span tree contains the commit skeleton (queue wait, locked
///    insert, seal, fsync barrier) and its start times are monotone in
///    that order — the pipeline's stage ordering, observed end to end
///    from a remote client.
fn run_trace(args: &Args) {
    let reps = args.reps.max(1);
    eprintln!(
        "loadgen: trace A/B — {} appends x {} B per cell, {} interleaved rep pairs",
        args.appends, args.payload, reps
    );
    let dir = temp_dir("trace");
    let (registry, alice) = registry();
    let config =
        LedgerConfig { block_size: 64, fam_delta: 20, name: "loadgen-trace".into(), state_backend: Default::default() };
    let telemetry = Arc::new(Registry::new());
    let (ledger, _) = open_durable_with(
        config,
        registry,
        &dir,
        FsyncPolicy::Never,
        Arc::new(SimClock::new()),
        &telemetry,
    )
    .unwrap();
    let server = Ledgerd::start(
        SharedLedger::new(ledger),
        ServerConfig {
            workers: 4,
            batch: Some(BatchConfig { max_batch: 64, max_delay: args.window }),
            admission: Admission::Verify,
            registry: telemetry.clone(),
            pool: Some(ledgerdb_pool::Pool::with_registry(4, &telemetry)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut rng = XorShift::new(41);
    let mut nonce = 0u64;
    let mut sign = |n: u64| {
        let r = TxRequest::signed(
            &alice,
            rng.payload(args.payload),
            vec![format!("tr-{}", n % 32)],
            n,
        );
        r
    };

    // Interleaved A/B cells: same server, alternating arms.
    let mut tps = [Vec::new(), Vec::new()]; // [untraced, traced]
    for _rep in 0..reps {
        for traced in [false, true] {
            let mut remote = RemoteLedger::connect(addr).expect("connect");
            remote.set_tracing(traced);
            let hist = Histogram::new(Unit::Seconds);
            let started = Instant::now();
            for _ in 0..args.appends {
                let request = sign(nonce);
                nonce += 1;
                let t0 = Instant::now();
                remote.append(request).expect("durable ack");
                hist.observe_duration(t0.elapsed());
            }
            let elapsed = started.elapsed();
            let snap = hist.snapshot();
            let cell_tps = args.appends as f64 / elapsed.as_secs_f64();
            tps[traced as usize].push(cell_tps);
            println!(
                "{{\"bench\":\"trace_overhead\",\"traced\":{traced},\
                 \"appends\":{},\"elapsed_s\":{:.3},\"appends_per_sec\":{:.1},\
                 \"p50_ms\":{:.3},\"p99_ms\":{:.3}}}",
                args.appends,
                elapsed.as_secs_f64(),
                cell_tps,
                snap.p50 as f64 / 1e6,
                snap.p99 as f64 / 1e6,
            );
        }
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let base = median(&mut tps[0]);
    let with = median(&mut tps[1]);
    let overhead = 1.0 - with / base;

    // Stage breakdown: every append traced, its span tree fetched by
    // the id the call carried. GetTrace round trips happen outside any
    // timing, so they don't pollute the A/B above.
    let samples = args.appends.min(256);
    let mut remote = RemoteLedger::connect(addr).expect("connect");
    remote.set_tracing(true);
    let mut stages: std::collections::BTreeMap<String, Vec<u64>> =
        std::collections::BTreeMap::new();
    let mut skeletons = 0u64;
    for _ in 0..samples {
        let request = sign(nonce);
        nonce += 1;
        // `append_committed`: the window seals before the ack, so every
        // sampled trace exercises the full skeleton including the three
        // seal legs — the plain-append arms above leave sealing to the
        // block-size trigger.
        remote.append_committed(request).expect("durable receipt");
        let id = remote.last_trace_id();
        let spans = remote.get_trace(id).expect("trace fetch");
        assert!(
            !spans.is_empty(),
            "trace {id:016x} vanished from the recorder immediately after the ack"
        );
        let start_of = |name: &str| {
            spans.iter().filter(|s| s.name == name).map(|s| s.start_ns).min()
        };
        let last_start_of = |name: &str| {
            spans.iter().filter(|s| s.name == name).map(|s| s.start_ns).max()
        };
        // The commit skeleton and its ordering, when fully retained.
        // (A span can age out of a busy ring; require most to survive.)
        // The fsync anchor is the *last* barrier: the append's own
        // durability barrier precedes the seal, the seal's follows it.
        if let (Some(queue), Some(lock), Some(seal), Some(fsync)) = (
            start_of("batch_queue_wait"),
            start_of("locked_insert"),
            start_of("seal"),
            last_start_of("fsync_barrier"),
        ) {
            assert!(
                queue <= lock && lock <= seal && seal <= fsync,
                "stage ordering violated in trace {id:016x}: \
                 queue={queue} lock={lock} seal={seal} fsync={fsync}"
            );
            skeletons += 1;
        }
        for s in &spans {
            stages
                .entry(s.name.clone())
                .or_default()
                .push(s.end_ns.saturating_sub(s.start_ns));
        }
    }
    assert!(
        skeletons * 2 >= samples,
        "full commit skeleton survived in only {skeletons}/{samples} traces"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    let mut stage_json = String::new();
    for (i, (name, durs)) in stages.iter_mut().enumerate() {
        durs.sort_unstable();
        if i > 0 {
            stage_json.push(',');
        }
        stage_json.push_str(&format!(
            "\"{name}\":{{\"count\":{},\"p50_ms\":{:.4},\"p99_ms\":{:.4}}}",
            durs.len(),
            pct_ns(durs, 0.50) as f64 / 1e6,
            pct_ns(durs, 0.99) as f64 / 1e6,
        ));
    }
    println!(
        "{{\"bench\":\"trace_stages\",\"samples\":{samples},\
         \"skeletons\":{skeletons},\"overhead\":{overhead:.4},\
         \"stages\":{{{stage_json}}}}}"
    );
    eprintln!(
        "loadgen: tracing overhead {:.2}% (median {:.0} traced vs {:.0} untraced \
         appends/s); {skeletons}/{samples} sampled traces carried the full \
         commit skeleton in order",
        overhead * 100.0,
        with,
        base,
    );
}

fn main() {
    let args = parse_args();
    if args.state_ab {
        run_state_ab(&args);
        return;
    }
    if args.trace {
        run_trace(&args);
        return;
    }
    if !args.connections.is_empty() {
        run_connections(&args);
        return;
    }
    if !args.shards.is_empty() {
        run_shards(&args);
        return;
    }
    if args.pipeline {
        run_pipeline(&args);
        return;
    }
    if args.read_mix {
        run_read_mix(&args);
        return;
    }
    eprintln!(
        "loadgen: {} appends x {} B payload, clients {:?}, window {:?}",
        args.appends, args.payload, args.clients, args.window
    );
    let mut rows = Vec::new();
    for &admission in &args.admissions {
        for &clients in &args.clients {
            for batch in [false, true] {
                let row = run_config(&args, clients, batch, admission);
                row.print();
                rows.push(row);
            }
        }
    }
    // The headline the service layer exists for: group commit at the
    // widest client count vs the single-client per-append-fsync floor,
    // reported per admission mode (within-mode, apples to apples).
    for &admission in &args.admissions {
        let mode: Vec<&Row> = rows.iter().filter(|r| r.admission == admission).collect();
        if let (Some(base), Some(best)) = (
            mode.iter().find(|r| r.clients == 1 && !r.batch),
            mode.iter().filter(|r| r.batch).max_by_key(|r| r.clients),
        ) {
            let base_tps = base.appends as f64 / base.elapsed.as_secs_f64();
            let best_tps = best.appends as f64 / best.elapsed.as_secs_f64();
            eprintln!(
                "loadgen: [admission={}] group-commit speedup at {} clients: \
                 {:.1}x over 1-client fsync-always",
                admission_name(admission),
                best.clients,
                best_tps / base_tps
            );
        }
    }
    // Deployment headline: the paper's Fig-1 configuration (proxy fleet
    // admits, server group-commits) against the naive direct service
    // (server verifies every π_c, one fsync pair per append, one
    // client). Cross-admission by design — it compares the two
    // deployments, not one knob.
    if let (Some(base), Some(best)) = (
        rows.iter()
            .find(|r| r.clients == 1 && !r.batch && r.admission == Admission::Verify),
        rows.iter()
            .filter(|r| r.batch && r.admission == Admission::ProxyTrusted)
            .max_by_key(|r| r.clients),
    ) {
        let base_tps = base.appends as f64 / base.elapsed.as_secs_f64();
        let best_tps = best.appends as f64 / best.elapsed.as_secs_f64();
        eprintln!(
            "loadgen: deployed service (proxy admission + group commit, {} clients) vs \
             direct single-client (verify + fsync-always): {:.1}x",
            best.clients,
            best_tps / base_tps
        );
    }
}
