//! `loadgen` — remote append load generator for `ledgerd`.
//!
//! Sweeps client counts × commit modes against an in-process server
//! backed by a real durable ledger on disk, and prints one JSON row per
//! configuration:
//!
//! ```text
//! loadgen [--appends N] [--payload BYTES] [--clients 1,4,16] \
//!         [--window-us 150] [--admission verify|proxy|both]
//! ```
//!
//! Modes:
//! * `batch=off` — streams at `fsync=always`: every append pays its own
//!   payload fsync + WAL fsync before the ack (the per-append baseline);
//! * `batch=on`  — streams at `fsync=never` with the group-commit
//!   batcher supplying one durability barrier per window; acks are
//!   still strictly after durability.
//! * `admission=verify` — the server checks membership + π_c on every
//!   append (direct-to-client deployment);
//! * `admission=proxy`  — π_c is the proxy tier's job (Fig 1, and the
//!   kernel's `append_preverified` contract): the server enforces
//!   membership only, so the measurement isolates the service +
//!   durability layers from the fixed per-request ECDSA cost.
//!
//! Every request travels the full wire path: sign → TCP → decode →
//! admit → commit → durable ack. Latency is measured per request
//! at the client into a telemetry histogram; after each sweep cell the
//! server's own `Stats` exposition is scraped, so every JSON row pairs
//! client-observed and server-observed p50/p95/p99. `--no-telemetry`
//! disables the server-side registry (one relaxed load per record) to
//! measure instrumentation overhead.

use ledgerdb_bench::XorShift;
use ledgerdb_core::recovery::open_durable_with;
use ledgerdb_core::{LedgerConfig, MemberRegistry, SharedLedger, TxRequest};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_server::{Admission, BatchConfig, Ledgerd, RemoteLedger, ServerConfig};
use ledgerdb_storage::FsyncPolicy;
use ledgerdb_telemetry::{parse_value, Histogram, Registry, Unit};
use ledgerdb_timesvc::clock::SimClock;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    appends: u64,
    payload: usize,
    clients: Vec<usize>,
    window: Duration,
    admissions: Vec<Admission>,
    telemetry: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        appends: 2048,
        payload: 256,
        clients: vec![1, 4, 16],
        window: Duration::from_micros(150),
        admissions: vec![Admission::Verify, Admission::ProxyTrusted],
        telemetry: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--no-telemetry" {
            args.telemetry = false;
            continue;
        }
        let value = it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        });
        let bad = |what: &str| -> ! {
            eprintln!("bad {what}: {value}");
            std::process::exit(2);
        };
        match flag.as_str() {
            "--appends" => args.appends = value.parse().unwrap_or_else(|_| bad("count")),
            "--payload" => args.payload = value.parse().unwrap_or_else(|_| bad("size")),
            "--clients" => {
                args.clients = value
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| bad("client list")))
                    .collect();
            }
            "--window-us" => {
                args.window =
                    Duration::from_micros(value.parse().unwrap_or_else(|_| bad("window")));
            }
            "--admission" => {
                args.admissions = match value.as_str() {
                    "verify" => vec![Admission::Verify],
                    "proxy" => vec![Admission::ProxyTrusted],
                    "both" => vec![Admission::Verify, Admission::ProxyTrusted],
                    _ => bad("admission"),
                };
            }
            _ => {
                eprintln!(
                    "usage: loadgen [--appends N] [--payload BYTES] \
                     [--clients 1,4,16] [--window-us US] \
                     [--admission verify|proxy|both] [--no-telemetry]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn registry() -> (MemberRegistry, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"loadgen-ca");
    let alice = KeyPair::from_seed(b"loadgen-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, alice)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ledgerdb-loadgen-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Server-observed numbers scraped from the `Stats` exposition after a
/// sweep cell finishes (milliseconds, already unit-scaled by `render`).
struct ServerSide {
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    appends_total: f64,
    error_frames: f64,
}

fn scrape_server(addr: std::net::SocketAddr) -> Option<ServerSide> {
    let text = RemoteLedger::connect(addr).ok()?.stats().ok()?;
    let ms = |token: &str| parse_value(&text, token).map(|v| v * 1e3);
    Some(ServerSide {
        p50_ms: ms("server_req_append_seconds{quantile=\"0.5\"}")?,
        p95_ms: ms("server_req_append_seconds{quantile=\"0.95\"}")?,
        p99_ms: ms("server_req_append_seconds{quantile=\"0.99\"}")?,
        appends_total: parse_value(&text, "ledger_appends_total")?,
        error_frames: parse_value(&text, "server_error_frames_total")?,
    })
}

struct Row {
    clients: usize,
    batch: bool,
    admission: Admission,
    window_us: u64,
    appends: u64,
    elapsed: Duration,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    server: Option<ServerSide>,
}

fn admission_name(a: Admission) -> &'static str {
    match a {
        Admission::Verify => "verify",
        Admission::ProxyTrusted => "proxy",
    }
}

impl Row {
    fn print(&self) {
        let tps = self.appends as f64 / self.elapsed.as_secs_f64();
        let server = match &self.server {
            Some(s) => format!(
                ",\"server_p50_ms\":{:.3},\"server_p95_ms\":{:.3},\
                 \"server_p99_ms\":{:.3},\"server_appends_total\":{},\
                 \"server_error_frames\":{}",
                s.p50_ms, s.p95_ms, s.p99_ms, s.appends_total, s.error_frames
            ),
            None => String::new(),
        };
        println!(
            "{{\"bench\":\"ledgerd_append\",\"clients\":{},\"batch\":{},\
             \"admission\":\"{}\",\
             \"window_us\":{},\"appends\":{},\"elapsed_s\":{:.3},\
             \"appends_per_sec\":{:.1},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\
             \"p99_ms\":{:.3}{server}}}",
            self.clients,
            self.batch,
            admission_name(self.admission),
            self.window_us,
            self.appends,
            self.elapsed.as_secs_f64(),
            tps,
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
        );
    }
}

fn run_config(args: &Args, clients: usize, batch: bool, admission: Admission) -> Row {
    let tag = format!(
        "{}c-{}-{}",
        clients,
        if batch { "batch" } else { "nobatch" },
        admission_name(admission)
    );
    let dir = temp_dir(&tag);
    let (registry, alice) = registry();
    let config = LedgerConfig { block_size: 64, fam_delta: 20, name: format!("loadgen-{tag}") };
    // One registry per sweep cell: the scraped exposition covers exactly
    // this configuration's traffic.
    let telemetry = Arc::new(Registry::new());
    telemetry.set_enabled(args.telemetry);
    // batch=off: per-append fsync. batch=on: the committer's barrier is
    // the only fsync — same ack-after-durable contract.
    let policy = if batch { FsyncPolicy::Never } else { FsyncPolicy::Always };
    let (ledger, _) = open_durable_with(
        config,
        registry,
        &dir,
        policy,
        Arc::new(SimClock::new()),
        &telemetry,
    )
    .unwrap();
    let server = Ledgerd::start(
        SharedLedger::new(ledger),
        ServerConfig {
            workers: clients.max(1),
            max_connections: clients + 4,
            batch: batch.then(|| BatchConfig { max_batch: 64, max_delay: args.window }),
            admission,
            registry: telemetry.clone(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Pre-sign everything: loadgen measures the service, not the
    // client's ECDSA.
    let per_client = args.appends / clients as u64;
    let mut rng = XorShift::new(7);
    let jobs: Vec<Vec<TxRequest>> = (0..clients as u64)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    TxRequest::signed(
                        &alice,
                        rng.payload(args.payload),
                        vec![format!("lg-{}", i % 32)],
                        c * 1_000_000 + i,
                    )
                })
                .collect()
        })
        .collect();

    // Client-observed latency goes through the same histogram type the
    // server uses, shared across client threads lock-free.
    let client_hist = Arc::new(Histogram::new(Unit::Seconds));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for requests in jobs {
            let hist = client_hist.clone();
            scope.spawn(move || {
                let mut remote = RemoteLedger::connect(addr).expect("connect");
                for request in requests {
                    let t0 = Instant::now();
                    remote.append(request).expect("durable ack");
                    hist.observe_duration(t0.elapsed());
                }
            });
        }
    });
    let elapsed = started.elapsed();
    // Scrape the server's own view of the cell before tearing it down.
    let server_side = scrape_server(addr);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    let snap = client_hist.snapshot();
    Row {
        clients,
        batch,
        admission,
        window_us: if batch { args.window.as_micros() as u64 } else { 0 },
        appends: snap.count,
        elapsed,
        p50: Duration::from_nanos(snap.p50),
        p95: Duration::from_nanos(snap.p95),
        p99: Duration::from_nanos(snap.p99),
        server: server_side,
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "loadgen: {} appends x {} B payload, clients {:?}, window {:?}",
        args.appends, args.payload, args.clients, args.window
    );
    let mut rows = Vec::new();
    for &admission in &args.admissions {
        for &clients in &args.clients {
            for batch in [false, true] {
                let row = run_config(&args, clients, batch, admission);
                row.print();
                rows.push(row);
            }
        }
    }
    // The headline the service layer exists for: group commit at the
    // widest client count vs the single-client per-append-fsync floor,
    // reported per admission mode (within-mode, apples to apples).
    for &admission in &args.admissions {
        let mode: Vec<&Row> = rows.iter().filter(|r| r.admission == admission).collect();
        if let (Some(base), Some(best)) = (
            mode.iter().find(|r| r.clients == 1 && !r.batch),
            mode.iter().filter(|r| r.batch).max_by_key(|r| r.clients),
        ) {
            let base_tps = base.appends as f64 / base.elapsed.as_secs_f64();
            let best_tps = best.appends as f64 / best.elapsed.as_secs_f64();
            eprintln!(
                "loadgen: [admission={}] group-commit speedup at {} clients: \
                 {:.1}x over 1-client fsync-always",
                admission_name(admission),
                best.clients,
                best_tps / base_tps
            );
        }
    }
    // Deployment headline: the paper's Fig-1 configuration (proxy fleet
    // admits, server group-commits) against the naive direct service
    // (server verifies every π_c, one fsync pair per append, one
    // client). Cross-admission by design — it compares the two
    // deployments, not one knob.
    if let (Some(base), Some(best)) = (
        rows.iter()
            .find(|r| r.clients == 1 && !r.batch && r.admission == Admission::Verify),
        rows.iter()
            .filter(|r| r.batch && r.admission == Admission::ProxyTrusted)
            .max_by_key(|r| r.clients),
    ) {
        let base_tps = base.appends as f64 / base.elapsed.as_secs_f64();
        let best_tps = best.appends as f64 / best.elapsed.as_secs_f64();
        eprintln!(
            "loadgen: deployed service (proxy admission + group commit, {} clients) vs \
             direct single-client (verify + fsync-always): {:.1}x",
            best.clients,
            best_tps / base_tps
        );
    }
}
