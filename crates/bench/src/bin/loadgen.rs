//! `loadgen` — remote append load generator for `ledgerd`.
//!
//! Sweeps client counts × commit modes against an in-process server
//! backed by a real durable ledger on disk, and prints one JSON row per
//! configuration:
//!
//! ```text
//! loadgen [--appends N] [--payload BYTES] [--clients 1,4,16] \
//!         [--window-us 150] [--admission verify|proxy|both]
//! ```
//!
//! Modes:
//! * `batch=off` — streams at `fsync=always`: every append pays its own
//!   payload fsync + WAL fsync before the ack (the per-append baseline);
//! * `batch=on`  — streams at `fsync=never` with the group-commit
//!   batcher supplying one durability barrier per window; acks are
//!   still strictly after durability.
//! * `admission=verify` — the server checks membership + π_c on every
//!   append (direct-to-client deployment);
//! * `admission=proxy`  — π_c is the proxy tier's job (Fig 1, and the
//!   kernel's `append_preverified` contract): the server enforces
//!   membership only, so the measurement isolates the service +
//!   durability layers from the fixed per-request ECDSA cost.
//!
//! Every request travels the full wire path: sign → TCP → decode →
//! admit → commit → durable ack. Latency is measured per request
//! at the client; throughput over the whole wall-clock window.

use ledgerdb_bench::XorShift;
use ledgerdb_core::recovery::open_durable;
use ledgerdb_core::{LedgerConfig, MemberRegistry, SharedLedger, TxRequest};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_server::{Admission, BatchConfig, Ledgerd, RemoteLedger, ServerConfig};
use ledgerdb_storage::FsyncPolicy;
use ledgerdb_timesvc::clock::SimClock;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    appends: u64,
    payload: usize,
    clients: Vec<usize>,
    window: Duration,
    admissions: Vec<Admission>,
}

fn parse_args() -> Args {
    let mut args = Args {
        appends: 2048,
        payload: 256,
        clients: vec![1, 4, 16],
        window: Duration::from_micros(150),
        admissions: vec![Admission::Verify, Admission::ProxyTrusted],
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        });
        let bad = |what: &str| -> ! {
            eprintln!("bad {what}: {value}");
            std::process::exit(2);
        };
        match flag.as_str() {
            "--appends" => args.appends = value.parse().unwrap_or_else(|_| bad("count")),
            "--payload" => args.payload = value.parse().unwrap_or_else(|_| bad("size")),
            "--clients" => {
                args.clients = value
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| bad("client list")))
                    .collect();
            }
            "--window-us" => {
                args.window =
                    Duration::from_micros(value.parse().unwrap_or_else(|_| bad("window")));
            }
            "--admission" => {
                args.admissions = match value.as_str() {
                    "verify" => vec![Admission::Verify],
                    "proxy" => vec![Admission::ProxyTrusted],
                    "both" => vec![Admission::Verify, Admission::ProxyTrusted],
                    _ => bad("admission"),
                };
            }
            _ => {
                eprintln!(
                    "usage: loadgen [--appends N] [--payload BYTES] \
                     [--clients 1,4,16] [--window-us US] \
                     [--admission verify|proxy|both]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn registry() -> (MemberRegistry, KeyPair) {
    let ca = CertificateAuthority::from_seed(b"loadgen-ca");
    let alice = KeyPair::from_seed(b"loadgen-alice");
    let mut registry = MemberRegistry::new(*ca.public_key());
    registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
    (registry, alice)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ledgerdb-loadgen-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Row {
    clients: usize,
    batch: bool,
    admission: Admission,
    window_us: u64,
    appends: u64,
    elapsed: Duration,
    p50: Duration,
    p99: Duration,
}

fn admission_name(a: Admission) -> &'static str {
    match a {
        Admission::Verify => "verify",
        Admission::ProxyTrusted => "proxy",
    }
}

impl Row {
    fn print(&self) {
        let tps = self.appends as f64 / self.elapsed.as_secs_f64();
        println!(
            "{{\"bench\":\"ledgerd_append\",\"clients\":{},\"batch\":{},\
             \"admission\":\"{}\",\
             \"window_us\":{},\"appends\":{},\"elapsed_s\":{:.3},\
             \"appends_per_sec\":{:.1},\"p50_ms\":{:.3},\"p99_ms\":{:.3}}}",
            self.clients,
            self.batch,
            admission_name(self.admission),
            self.window_us,
            self.appends,
            self.elapsed.as_secs_f64(),
            tps,
            self.p50.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
        );
    }
}

fn run_config(args: &Args, clients: usize, batch: bool, admission: Admission) -> Row {
    let tag = format!(
        "{}c-{}-{}",
        clients,
        if batch { "batch" } else { "nobatch" },
        admission_name(admission)
    );
    let dir = temp_dir(&tag);
    let (registry, alice) = registry();
    let config = LedgerConfig { block_size: 64, fam_delta: 20, name: format!("loadgen-{tag}") };
    // batch=off: per-append fsync. batch=on: the committer's barrier is
    // the only fsync — same ack-after-durable contract.
    let policy = if batch { FsyncPolicy::Never } else { FsyncPolicy::Always };
    let (ledger, _) =
        open_durable(config, registry, &dir, policy, Arc::new(SimClock::new())).unwrap();
    let server = Ledgerd::start(
        SharedLedger::new(ledger),
        ServerConfig {
            workers: clients.max(1),
            max_connections: clients + 4,
            batch: batch.then(|| BatchConfig { max_batch: 64, max_delay: args.window }),
            admission,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Pre-sign everything: loadgen measures the service, not the
    // client's ECDSA.
    let per_client = args.appends / clients as u64;
    let mut rng = XorShift::new(7);
    let jobs: Vec<Vec<TxRequest>> = (0..clients as u64)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    TxRequest::signed(
                        &alice,
                        rng.payload(args.payload),
                        vec![format!("lg-{}", i % 32)],
                        c * 1_000_000 + i,
                    )
                })
                .collect()
        })
        .collect();

    let started = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|requests| {
                scope.spawn(move || {
                    let mut remote = RemoteLedger::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(requests.len());
                    for request in requests {
                        let t0 = Instant::now();
                        remote.append(request).expect("durable ack");
                        lat.push(t0.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    latencies.sort_unstable();
    Row {
        clients,
        batch,
        admission,
        window_us: if batch { args.window.as_micros() as u64 } else { 0 },
        appends: latencies.len() as u64,
        elapsed,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "loadgen: {} appends x {} B payload, clients {:?}, window {:?}",
        args.appends, args.payload, args.clients, args.window
    );
    let mut rows = Vec::new();
    for &admission in &args.admissions {
        for &clients in &args.clients {
            for batch in [false, true] {
                let row = run_config(&args, clients, batch, admission);
                row.print();
                rows.push(row);
            }
        }
    }
    // The headline the service layer exists for: group commit at the
    // widest client count vs the single-client per-append-fsync floor,
    // reported per admission mode (within-mode, apples to apples).
    for &admission in &args.admissions {
        let mode: Vec<&Row> = rows.iter().filter(|r| r.admission == admission).collect();
        if let (Some(base), Some(best)) = (
            mode.iter().find(|r| r.clients == 1 && !r.batch),
            mode.iter().filter(|r| r.batch).max_by_key(|r| r.clients),
        ) {
            let base_tps = base.appends as f64 / base.elapsed.as_secs_f64();
            let best_tps = best.appends as f64 / best.elapsed.as_secs_f64();
            eprintln!(
                "loadgen: [admission={}] group-commit speedup at {} clients: \
                 {:.1}x over 1-client fsync-always",
                admission_name(admission),
                best.clients,
                best_tps / base_tps
            );
        }
    }
    // Deployment headline: the paper's Fig-1 configuration (proxy fleet
    // admits, server group-commits) against the naive direct service
    // (server verifies every π_c, one fsync pair per append, one
    // client). Cross-admission by design — it compares the two
    // deployments, not one knob.
    if let (Some(base), Some(best)) = (
        rows.iter()
            .find(|r| r.clients == 1 && !r.batch && r.admission == Admission::Verify),
        rows.iter()
            .filter(|r| r.batch && r.admission == Admission::ProxyTrusted)
            .max_by_key(|r| r.clients),
    ) {
        let base_tps = base.appends as f64 / base.elapsed.as_secs_f64();
        let best_tps = best.appends as f64 / best.elapsed.as_secs_f64();
        eprintln!(
            "loadgen: deployed service (proxy admission + group commit, {} clients) vs \
             direct single-client (verify + fsync-always): {:.1}x",
            best.clients,
            best_tps / base_tps
        );
    }
}
