//! Figure 7: latency breakdown for the Dasein verification factors
//! (what / when / who) over a single audit of 1000 sequential journals.
//!
//! Left bars (when): TSA-direct vs TL-1 vs TL-10, Δτ = 1 s, 256B payloads,
//! single-signed. Paper: TL-10 reduces when-verification latency ~50×
//! versus direct TSA pegging.
//!
//! Middle bars (what/who vs payload size): 256B → 256KB under TL-1/Sig-1.
//! Paper: who grows ~12×, what ~4×.
//!
//! Right bars (who vs signer count): 1–7 signatures, latency scales
//! linearly.
//!
//! Modeled component (DESIGN.md §2): each direct-TSA interaction carries a
//! 10 ms service-validation charge (external authority round trip and
//! token checking); everything else is measured compute on our own
//! crypto/accumulators.

use ledgerdb_accumulator::fam::{FamTree, TrustedAnchor};
use ledgerdb_accumulator::shrubs::Shrubs;
use ledgerdb_bench::{banner, fmt_latency, row, timed, XorShift};
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_crypto::multisig::MultiSignature;
use ledgerdb_crypto::{sha256, Digest};
use ledgerdb_timesvc::clock::{Clock, SimClock};
use ledgerdb_timesvc::tledger::{NotaryReceipt, TLedger, TLedgerConfig};
use ledgerdb_timesvc::tsa::{TimeAttestation, Tsa, TsaPool};
use std::sync::Arc;

const JOURNALS: usize = 1000;
/// Modeled cost of one direct TSA service interaction (µs).
const TSA_SERVICE_US: u64 = 10_000;

struct WhenSetup {
    /// Per-journal notary receipts (TL modes).
    receipts: Vec<NotaryReceipt>,
    /// TSA attestations covering the T-Ledger, one per Δτ.
    attestations: Vec<TimeAttestation>,
    /// T-Ledger accumulator snapshot for entry proofs.
    tledger: Arc<TLedger>,
}

/// Drive a ledger at `tps` journals/second against a shared T-Ledger,
/// collecting per-journal receipts and the per-second TSA finalizations.
fn run_tledger(tps: u64) -> WhenSetup {
    let clock = SimClock::new();
    let arc_clock: Arc<dyn Clock> = Arc::new(clock.clone());
    let pool = Arc::new(TsaPool::new(1, Arc::clone(&arc_clock)));
    let config = TLedgerConfig { submission_tolerance_us: 500_000, tsa_interval_us: 1_000_000 };
    let tledger = Arc::new(TLedger::new(config, arc_clock, pool));
    let ledger_id = sha256(b"fig7-ledger");

    let mut receipts = Vec::with_capacity(JOURNALS);
    let mut attestations = Vec::new();
    let step_us = 1_000_000 / tps;
    for i in 0..JOURNALS as u64 {
        clock.advance(step_us);
        let digest = sha256(&i.to_be_bytes());
        receipts.push(tledger.submit(ledger_id, digest, clock.now()).expect("fresh submission"));
        if let Some(tj) = tledger.maybe_finalize() {
            attestations.push(tj.attestation);
        }
    }
    if let Some(tj) = tledger.finalize_now() {
        attestations.push(tj.attestation);
    }
    WhenSetup { receipts, attestations, tledger }
}

fn main() {
    banner("Fig 7 (left): when-verification over 1000 journals, Δτ=1s (paper: TL-10 ~50x under TSA)");

    // TSA-direct: every journal carries its own TSA attestation.
    let clock = SimClock::new();
    let tsa = Tsa::new("direct-tsa", Arc::new(clock.clone()));
    let direct: Vec<TimeAttestation> = (0..JOURNALS as u64)
        .map(|i| {
            clock.advance(1_000_000);
            tsa.endorse(sha256(&i.to_be_bytes()))
        })
        .collect();
    let ((), tsa_compute) = timed(|| {
        for att in &direct {
            att.verify().expect("attestation valid");
        }
    });
    let tsa_total = tsa_compute + (JOURNALS as u64 * TSA_SERVICE_US) as f64 / 1e6;

    let mut tl_results = Vec::new();
    for tps in [1u64, 10] {
        let setup = run_tledger(tps);
        let ((), secs) = timed(|| {
            // Verify each journal's notary receipt + entry inclusion, and
            // every covering TSA attestation once.
            for r in &setup.receipts {
                r.verify().expect("receipt valid");
                let (entry, proof, root) = setup.tledger.prove_entry(r.entry.seq).unwrap();
                Shrubs::verify(&root, &entry.leaf_digest(), &proof).unwrap();
            }
            for att in &setup.attestations {
                att.verify().expect("attestation valid");
            }
        });
        tl_results.push((tps, secs, setup.attestations.len()));
    }

    row(
        "when (1000 journals)",
        &[
            ("TSA", fmt_latency(tsa_total)),
            ("TL-1", fmt_latency(tl_results[0].1)),
            ("TL-10", fmt_latency(tl_results[1].1)),
            ("TSA/TL-10", format!("{:.0}x", tsa_total / tl_results[1].1)),
        ],
    );
    row(
        "  TSA attestations",
        &[
            ("TSA", JOURNALS.to_string()),
            ("TL-1", tl_results[0].2.to_string()),
            ("TL-10", tl_results[1].2.to_string()),
        ],
    );

    banner("Fig 7 (middle): what & who vs payload size, TL-1/Sig-1 (paper: who 12x, what 4x at 256KB)");
    let signer = KeyPair::from_seed(b"fig7-signer");
    let mut rng = XorShift::new(3);
    for &size in &[256usize, 4096, 256 * 1024] {
        let payloads: Vec<Vec<u8>> = (0..JOURNALS).map(|_| rng.payload(size)).collect();
        // Setup: request hashes, signatures, fam over journal digests.
        let request_hashes: Vec<Digest> = payloads.iter().map(|p| sha256(p)).collect();
        let sigs: Vec<_> = request_hashes.iter().map(|h| signer.sign(h)).collect();
        let mut fam = FamTree::new(10);
        let digests: Vec<Digest> = request_hashes.clone();
        for d in &digests {
            fam.append(*d);
        }
        let anchor = TrustedAnchor::default();
        let proofs: Vec<_> = (0..JOURNALS as u64).map(|i| fam.prove(i, &anchor).unwrap()).collect();
        let root = fam.root();

        // what: recompute payload digest + fam proof verification.
        let ((), what_secs) = timed(|| {
            for (i, p) in payloads.iter().enumerate() {
                let d = sha256(p);
                FamTree::verify(&root, &anchor, &d, &proofs[i]).expect("what verification");
            }
        });
        // who: recompute request hash + verify π_c.
        let ((), who_secs) = timed(|| {
            for (i, p) in payloads.iter().enumerate() {
                let h = sha256(p);
                assert!(signer.public().verify(&h, &sigs[i]), "who verification");
            }
        });
        row(
            &format!("payload {size}B"),
            &[
                ("what", fmt_latency(what_secs)),
                ("who", fmt_latency(who_secs)),
            ],
        );
    }

    banner("Fig 7 (right): who vs signer count, TL-1/256B (paper: linear in signatures)");
    let signers: Vec<KeyPair> =
        (0..7).map(|i| KeyPair::from_seed(format!("fig7-multi-{i}").as_bytes())).collect();
    let mut rng = XorShift::new(4);
    let payloads: Vec<Vec<u8>> = (0..JOURNALS).map(|_| rng.payload(256)).collect();
    let hashes: Vec<Digest> = payloads.iter().map(|p| sha256(p)).collect();
    for &k in &[1usize, 3, 5, 7] {
        let multisigs: Vec<MultiSignature> = hashes
            .iter()
            .map(|h| {
                let mut ms = MultiSignature::new();
                for s in &signers[..k] {
                    ms.add(s, h);
                }
                ms
            })
            .collect();
        let ((), secs) = timed(|| {
            for (h, ms) in hashes.iter().zip(&multisigs) {
                assert!(ms.verify_all(h), "multi-signature verification");
            }
        });
        row(
            &format!("Sig-{k}"),
            &[("who", fmt_latency(secs)), ("per-journal", fmt_latency(secs / JOURNALS as f64))],
        );
    }
}
