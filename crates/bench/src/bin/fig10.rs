//! Figure 10: application-level comparison — LedgerDB vs Hyperledger
//! Fabric — for data notarization and data lineage.
//!
//! (a) notarization throughput, 256B payloads, growing journal volume.
//!     Paper: LedgerDB 52K→50K TPS, Fabric 2386→1978 TPS (~23×).
//! (b) notarization verification latency, ~4KB payloads.
//!     Paper: LedgerDB ~2.5ms, Fabric ~1.2s (~500×).
//! (c) lineage verification throughput vs clue entry count.
//!     Paper: LedgerDB ≫ Fabric at small entry counts, converging past
//!     ~50 entries (LedgerDB pays one random I/O per entry; Fabric reads
//!     the whole history in ~one I/O).
//! (d) lineage verification latency vs entry count. Paper: ~300× lower
//!     for LedgerDB on average.
//!
//! LedgerDB numbers: measured kernel compute plus the paper's in-cluster
//! LAN round trip. Fabric numbers: the pipeline simulator (real endorser
//! signatures, modeled Kafka batching). Per-entry random-I/O charge for
//! LedgerDB lineage: 100 µs (ESSD-class read, DESIGN.md §2).

use ledgerdb_baselines::fabric::{FabricConfig, FabricSim};
use ledgerdb_baselines::network::NetworkProfile;
use ledgerdb_bench::{banner, fmt_latency, fmt_tps, row, throughput, timed, BenchLedger};
use ledgerdb_clue::cm_tree::CmTree;
use ledgerdb_core::VerifyLevel;

/// Per-entry random I/O charge for LedgerDB lineage reads (µs).
const ENTRY_IO_US: u64 = 100;

fn main() {
    let svc = NetworkProfile::cluster_service();

    banner("Fig 10(a): notarization Append TPS, 256B payloads (paper: ~52K vs ~2.4K)");
    for &n in &[1u64 << 10, 1 << 12, 1 << 14, 1 << 16] {
        let mut bench = BenchLedger::new(256, 15);
        let requests = bench.signed_requests(n, 256, |i| Some(format!("doc-{i}")));
        let ledger_tps = throughput(n, || {
            for r in requests {
                bench.ledger.append_preverified(r).unwrap();
            }
            bench.ledger.seal_block();
        });
        let fabric = FabricSim::new(FabricConfig::default());
        let fabric_tps = fabric.write_tps(n);
        row(
            &format!("n=2^{}", n.trailing_zeros()),
            &[
                ("LedgerDB", fmt_tps(ledger_tps)),
                ("Fabric", fmt_tps(fabric_tps)),
                ("speedup", format!("{:.0}x", ledger_tps / fabric_tps)),
            ],
        );
    }

    banner("Fig 10(b): notarization verification latency, 4KB payloads (paper: ~2.5ms vs ~1.2s)");
    for &n in &[1u64 << 10, 1 << 14] {
        let mut bench = BenchLedger::new(64, 15);
        let requests = bench.signed_requests(n, 4096, |i| Some(format!("doc-{i}")));
        bench.populate(requests);
        let anchor = bench.ledger.anchor();
        // LedgerDB verified read: existence proof + client verification,
        // one LAN round trip.
        let reps = 200u64;
        let ((), secs) = timed(|| {
            for i in 0..reps {
                let jsn = (i * 7) % n;
                let (tx_hash, proof) = bench.ledger.prove_existence(jsn, &anchor).unwrap();
                bench
                    .ledger
                    .verify_existence(jsn, &tx_hash, &proof, &anchor, VerifyLevel::Client)
                    .unwrap();
            }
        });
        let ledger_latency = secs / reps as f64 + svc.round_trip(4096).seconds();

        let mut fabric = FabricSim::new(FabricConfig::default());
        fabric.invoke("doc", vec![0u8; 4096]);
        let (_, fabric_latency) = fabric.query_verify("doc");
        row(
            &format!("n=2^{}", n.trailing_zeros()),
            &[
                ("LedgerDB", fmt_latency(ledger_latency)),
                ("Fabric", fmt_latency(fabric_latency.seconds())),
                ("ratio", format!("{:.0}x", fabric_latency.seconds() / ledger_latency)),
            ],
        );
    }

    banner("Fig 10(c,d): lineage verification vs clue entries (paper: converges past ~50 entries)");
    for &entries in &[1u64, 10, 50, 100, 200] {
        // LedgerDB: a clue with `entries` journals on a busy ledger.
        let mut bench = BenchLedger::new(256, 15);
        let requests = bench.signed_requests(4096, 1024, |i| {
            if i < entries {
                Some("asset".to_string())
            } else {
                Some(format!("noise-{i}"))
            }
        });
        bench.populate(requests);
        let cm_root = bench.ledger.clue_root();
        let reps = 50u64;
        let ((), secs) = timed(|| {
            for _ in 0..reps {
                let proof = bench.ledger.prove_clue("asset").unwrap();
                CmTree::verify_client(&cm_root, &proof).unwrap();
            }
        });
        // Latency: one service round trip + one random I/O per entry.
        let ledger_latency = secs / reps as f64
            + svc.round_trip(1024 * entries as usize).seconds()
            + (entries * ENTRY_IO_US) as f64 / 1e6;
        // Throughput: server-side pipeline (no client RTT in the
        // steady-state rate), bounded by compute + per-entry random I/O.
        let ledger_tps = 1.0 / (secs / reps as f64 + (entries * ENTRY_IO_US) as f64 / 1e6);

        // Fabric: same history length.
        let mut fabric = FabricSim::new(FabricConfig::default());
        for i in 0..entries {
            fabric.invoke("asset", vec![i as u8; 1024]);
        }
        let (count, fabric_latency) = fabric.query_verify_lineage("asset");
        assert_eq!(count.unwrap(), entries);
        let fabric_tps = fabric.lineage_query_tps(entries);

        row(
            &format!("{entries} entries"),
            &[
                ("LedgerDB-TPS", fmt_tps(ledger_tps)),
                ("Fabric-TPS", fmt_tps(fabric_tps)),
                ("LedgerDB-lat", fmt_latency(ledger_latency)),
                ("Fabric-lat", fmt_latency(fabric_latency.seconds())),
            ],
        );
    }
}
