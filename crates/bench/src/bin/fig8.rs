//! Figure 8: write (Append) and existence-verification (GetProof)
//! throughput across accumulator models — *tim* vs *fam-5/10/15/20/25* —
//! as the ledger grows.
//!
//! Paper setup: ledger volumes 32KB…32GB. Substitution: leaf counts
//! 2^10…2^20 (costs depend on leaf counts, not raw bytes; DESIGN.md §2).
//! Expected shape: tim append/proof throughput decays with total size;
//! fam-δ throughput stabilizes once at least one epoch fills, and smaller
//! δ stabilizes earlier and higher.

use ledgerdb_accumulator::fam::FamTree;
use ledgerdb_accumulator::tim::TimAccumulator;
use ledgerdb_bench::{banner, fmt_tps, journal_digests, row, throughput, XorShift};

fn main() {
    let sizes: Vec<u64> = std::env::args()
        .nth(1)
        .map(|s| vec![s.parse().expect("size argument")])
        .unwrap_or_else(|| vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]);
    let deltas = [5u32, 10, 15, 20, 25];
    let proof_samples = 2_000u64;

    banner("Fig 8(a): Append TPS (paper: fam-5 >200K, fam-15 ~100K, tim decays linearly)");
    for &n in &sizes {
        let digests = journal_digests(n);
        let mut cols: Vec<(&str, String)> = Vec::new();
        let tim_tps = throughput(n, || {
            let mut acc = TimAccumulator::new();
            for d in &digests {
                acc.append(*d);
            }
        });
        cols.push(("tim", fmt_tps(tim_tps)));
        for &delta in &deltas {
            let tps = throughput(n, || {
                let mut fam = FamTree::new(delta);
                for d in &digests {
                    fam.append(*d);
                }
            });
            cols.push((Box::leak(format!("fam-{delta}").into_boxed_str()), fmt_tps(tps)));
        }
        row(&format!("n=2^{}", n.trailing_zeros()), &cols);
    }

    banner("Fig 8(b): GetProof TPS (paper: fam-5 ~20K, fam-10 ~12K stable; tim decays)");
    for &n in &sizes {
        let digests = journal_digests(n);
        let mut rng = XorShift::new(7);
        let targets: Vec<u64> = (0..proof_samples).map(|_| rng.below(n)).collect();
        let mut cols: Vec<(&str, String)> = Vec::new();

        let mut tim = TimAccumulator::new();
        for d in &digests {
            tim.append(*d);
        }
        let tim_tps = throughput(proof_samples, || {
            for &t in &targets {
                std::hint::black_box(tim.prove(t).unwrap());
            }
        });
        cols.push(("tim", fmt_tps(tim_tps)));

        for &delta in &deltas {
            let mut fam = FamTree::new(delta);
            for d in &digests {
                fam.append(*d);
            }
            let anchor = fam.anchor();
            let tps = throughput(proof_samples, || {
                for &t in &targets {
                    std::hint::black_box(fam.prove(t, &anchor).unwrap());
                }
            });
            cols.push((Box::leak(format!("fam-{delta}").into_boxed_str()), fmt_tps(tps)));
        }
        row(&format!("n=2^{}", n.trailing_zeros()), &cols);
    }

    banner("Fig 8 aux: proof sizes (digests carried), anchored vs unanchored");
    for &n in &[1u64 << 14, 1 << 18] {
        let digests = journal_digests(n);
        let mut tim = TimAccumulator::new();
        let mut fam15 = FamTree::new(15);
        for d in &digests {
            tim.append(*d);
            fam15.append(*d);
        }
        let anchor = fam15.anchor();
        let empty = ledgerdb_accumulator::fam::TrustedAnchor::default();
        row(
            &format!("n=2^{}", n.trailing_zeros()),
            &[
                ("tim", tim.prove(5).unwrap().len().to_string()),
                ("fam15-anchored", fam15.prove(5, &anchor).unwrap().len().to_string()),
                ("fam15-full", fam15.prove(5, &empty).unwrap().len().to_string()),
            ],
        );
    }
}
