//! Append-path and crypto profiling helper (not a paper figure).
use ledgerdb_bench::BenchLedger;
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_crypto::sha256;

fn run(label: &str, clue: fn(u64) -> Option<String>) {
    let mut bench = BenchLedger::new(256, 15);
    let reqs = bench.signed_requests(1 << 14, 256, clue);
    let t = std::time::Instant::now();
    for r in reqs {
        bench.ledger.append_preverified(r).unwrap();
    }
    bench.ledger.seal_block();
    let el = t.elapsed();
    println!("{label}: {:?} total, {:?}/append", el, el / (1 << 14));
}

fn main() {
    let kp = KeyPair::from_seed(b"prof");
    let msg = sha256(b"m");
    let mut sig = kp.sign(&msg);
    let t = std::time::Instant::now();
    for _ in 0..200 {
        sig = kp.sign(&msg);
    }
    println!("sign: {:?}/op", t.elapsed() / 200);
    let t = std::time::Instant::now();
    for _ in 0..200 {
        assert!(kp.public().verify(&msg, &sig));
    }
    println!("verify: {:?}/op", t.elapsed() / 200);
    run("unique clues", |i| Some(format!("doc-{i}")));
    run("no clues", |_| None);
}
