//! Per-stage append-path profiler (not a paper figure).
//!
//! Splits one batched append of `--n` requests into the pipeline's
//! stages and times each, emitting a single JSON line:
//!
//! * `verify`  — π_c + membership admission, **off-lock** (pool-parallel
//!   with `--workers > 1`);
//! * `hash`    — payload digest + request-hash precompute, **off-lock**;
//! * `insert`  — the write-locked window: structural inserts + WAL
//!   record writes (`append_batch_prepared`), minus the fsync barrier;
//! * `wal`     — the durability barrier (fsync time inside the locked
//!   call, read back from `storage_fsync_seconds`);
//! * `seal`    — block seal: fam/CM-Tree/MPT root recompute + seal WAL
//!   record (pool-parallel subtree hashing with `--workers > 1`).
//!
//! The crypto work counters ([`ledgerdb_crypto::counters`]) are sampled
//! around every stage, and two properties of the pipelined path are
//! *asserted*, not just reported:
//!
//! 1. zero ECDSA verifications happen inside the write lock;
//! 2. the locked window performs no payload/request hashing — its
//!    sha256 finalize count undercuts an unpipelined `append_batch`
//!    baseline (same workload) by at least 2 per request (payload
//!    digest + request hash), since only the jsn-dependent journal
//!    `tx_hash` may remain in-lock.

use ledgerdb_bench::BenchLedger;
use ledgerdb_core::recovery::open_durable_with;
use ledgerdb_core::{LedgerConfig, PreparedTx, SharedLedger, TxRequest};
use ledgerdb_crypto::counters;
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_crypto::sha256;
use ledgerdb_pool::Pool;
use ledgerdb_storage::FsyncPolicy;
use ledgerdb_telemetry::{parse_value, Registry};
use ledgerdb_timesvc::clock::SimClock;
use std::sync::Arc;
use std::time::Instant;

/// (result, seconds, sha256 finalizes, ecdsa verifies) around a closure.
fn staged<T>(f: impl FnOnce() -> T) -> (T, f64, u64, u64) {
    let sha = counters::sha256_finalizes();
    let ecdsa = counters::ecdsa_verifies();
    let start = Instant::now();
    let out = f();
    (
        out,
        start.elapsed().as_secs_f64(),
        counters::sha256_finalizes() - sha,
        counters::ecdsa_verifies() - ecdsa,
    )
}

/// Sum of a `_seconds` histogram in `registry`, or 0.
fn histogram_sum(registry: &Registry, name: &str) -> f64 {
    let text = ledgerdb_telemetry::render(registry);
    parse_value(&text, &format!("{name}_sum")).unwrap_or(0.0)
}

struct Profile {
    verify_s: f64,
    hash_s: f64,
    insert_s: f64,
    wal_s: f64,
    seal_s: f64,
    in_lock_sha256: u64,
    in_lock_ecdsa: u64,
    off_lock_sha256: u64,
    off_lock_ecdsa: u64,
    seal_fam_s: f64,
    seal_clue_s: f64,
    seal_state_s: f64,
}

/// One full pipelined run over a fresh durable ledger.
fn run_pipelined(
    requests: &[TxRequest],
    pool: Option<&Arc<Pool>>,
    dir: &std::path::Path,
) -> Profile {
    let registry = Arc::new(Registry::new());
    let seed = BenchLedger::new(4, 4); // registry/keys fixture only
    let config = LedgerConfig {
        block_size: u64::MAX, // no auto-seal: the seal stage is explicit
        fam_delta: 15,
        name: "prof-append".into(),
        state_backend: Default::default(),
    };
    let (ledger, _) = open_durable_with(
        config,
        seed.ledger.registry().clone(),
        dir,
        FsyncPolicy::Never,
        Arc::new(SimClock::new()),
        &registry,
    )
    .expect("open profiling ledger");
    let shared = SharedLedger::new(ledger);
    shared.set_pool(pool.cloned());

    // Stage 1 — verify (off-lock): π_c + membership, snapshot-served.
    let (_, verify_s, verify_sha, verify_ecdsa) = staged(|| match pool {
        Some(pool) => pool
            .try_map(requests, |_, r| shared.verify_request(r))
            .into_iter()
            .for_each(|slot| slot.expect("verify task").expect("admission")),
        None => requests.iter().for_each(|r| shared.verify_request(r).expect("admission")),
    });

    // Stage 2 — hash (off-lock): payload digest + request hash.
    let (prepared, hash_s, hash_sha, hash_ecdsa) = staged(|| {
        let computed: Vec<PreparedTx> = match pool {
            Some(pool) => pool.map(requests, |_, r| PreparedTx::compute(r.clone())),
            None => requests.iter().map(|r| PreparedTx::compute(r.clone())).collect(),
        };
        computed.into_iter().map(Ok).collect::<Vec<_>>()
    });

    // Stage 3+4 — the write-locked window; the fsync barrier inside it
    // is carved out via the storage histogram.
    let wal_before = histogram_sum(&registry, "storage_fsync_seconds");
    let (results, locked_s, insert_sha, insert_ecdsa) =
        staged(|| shared.with_write(|l| l.append_batch_prepared(prepared)));
    results.expect("batch commit").into_iter().for_each(|r| {
        r.expect("every request accepted");
    });
    let wal_s = histogram_sum(&registry, "storage_fsync_seconds") - wal_before;

    // Stage 5 — seal.
    let (seal, seal_s, seal_sha, seal_ecdsa) = staged(|| shared.try_seal_block());
    seal.expect("seal");

    Profile {
        verify_s,
        hash_s,
        insert_s: (locked_s - wal_s).max(0.0),
        wal_s,
        seal_s,
        in_lock_sha256: insert_sha,
        in_lock_ecdsa: insert_ecdsa,
        off_lock_sha256: verify_sha + hash_sha + seal_sha,
        off_lock_ecdsa: verify_ecdsa + hash_ecdsa + seal_ecdsa,
        seal_fam_s: histogram_sum(&registry, "ledger_seal_fam_seconds"),
        seal_clue_s: histogram_sum(&registry, "ledger_seal_clue_seconds"),
        seal_state_s: histogram_sum(&registry, "ledger_seal_state_seconds"),
    }
}

/// Unpipelined baseline: the same workload through `append_batch`, so
/// verification *and* digests run inside the write lock.
fn run_baseline(requests: &[TxRequest], dir: &std::path::Path) -> (f64, u64, u64) {
    let registry = Arc::new(Registry::new());
    let seed = BenchLedger::new(4, 4);
    let config =
        LedgerConfig { block_size: u64::MAX, fam_delta: 15, name: "prof-append-base".into(), state_backend: Default::default() };
    let (ledger, _) = open_durable_with(
        config,
        seed.ledger.registry().clone(),
        dir,
        FsyncPolicy::Never,
        Arc::new(SimClock::new()),
        &registry,
    )
    .expect("open baseline ledger");
    let shared = SharedLedger::new(ledger);
    let (results, secs, sha, ecdsa) =
        staged(|| shared.with_write(|l| l.append_batch(requests.to_vec())));
    results.expect("baseline commit").into_iter().for_each(|r| {
        r.expect("every request accepted");
    });
    shared.seal_block();
    (secs, sha, ecdsa)
}

fn main() {
    let mut n: u64 = 2048;
    let mut payload: usize = 256;
    let mut workers: usize =
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--n" => n = value().parse().expect("--n"),
            "--payload" => payload = value().parse().expect("--payload"),
            "--workers" => workers = value().parse().expect("--workers"),
            other => {
                panic!("unknown flag {other} (prof_append [--n N] [--payload B] [--workers W])")
            }
        }
    }

    // Microbenchmark context: raw verify cost per op.
    let kp = KeyPair::from_seed(b"prof");
    let msg = sha256(b"m");
    let sig = kp.sign(&msg);
    let t = Instant::now();
    for _ in 0..200 {
        assert!(kp.public().verify(&msg, &sig));
    }
    let verify_op_s = t.elapsed().as_secs_f64() / 200.0;

    let fixture = BenchLedger::new(4, 4);
    let requests = fixture.signed_requests(n, payload, |i| Some(format!("doc-{}", i % 64)));

    let scratch = std::env::temp_dir().join(format!("prof-append-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let pool = (workers > 1).then(|| Pool::with_registry(workers, &Registry::new()));
    let profile = run_pipelined(&requests, pool.as_ref(), &scratch.join("pipelined"));
    let (base_s, base_sha, base_ecdsa) = run_baseline(&requests, &scratch.join("baseline"));
    std::fs::remove_dir_all(&scratch).ok();

    // The acceptance assertions: the pipelined locked window does no
    // signature verification and no payload/request hashing.
    assert_eq!(profile.in_lock_ecdsa, 0, "ECDSA leaked into the write lock");
    assert_eq!(base_ecdsa, n, "baseline verifies every request in-lock");
    assert!(
        profile.in_lock_sha256 + 2 * n <= base_sha,
        "locked window should shed >= 2 hashes per request: pipelined {} vs baseline {}",
        profile.in_lock_sha256,
        base_sha,
    );

    println!(
        concat!(
            "{{\"bench\":\"prof_append\",\"n\":{},\"payload\":{},\"workers\":{},",
            "\"stages_s\":{{\"verify\":{:.6},\"hash\":{:.6},\"insert\":{:.6},",
            "\"wal\":{:.6},\"seal\":{:.6}}},",
            "\"seal_legs_s\":{{\"fam\":{:.6},\"clue\":{:.6},\"state\":{:.6}}},",
            "\"in_lock\":{{\"sha256\":{},\"ecdsa\":{}}},",
            "\"off_lock\":{{\"sha256\":{},\"ecdsa\":{}}},",
            "\"baseline_locked\":{{\"seconds\":{:.6},\"sha256\":{},\"ecdsa\":{}}},",
            "\"ecdsa_verify_op_s\":{:.9}}}"
        ),
        n,
        payload,
        workers,
        profile.verify_s,
        profile.hash_s,
        profile.insert_s,
        profile.wal_s,
        profile.seal_s,
        profile.seal_fam_s,
        profile.seal_clue_s,
        profile.seal_state_s,
        profile.in_lock_sha256,
        profile.in_lock_ecdsa,
        profile.off_lock_sha256,
        profile.off_lock_ecdsa,
        base_s,
        base_sha,
        base_ecdsa,
        verify_op_s,
    );
}
