//! Table I: verification characteristics across ledger systems.
//!
//! The non-LedgerDB rows are the paper's qualitative assessment of
//! external systems; they are reprinted verbatim. The LedgerDB row is
//! *demonstrated*: each claimed capability is exercised against this
//! repository's implementation before its ✓ is printed, so the table
//! doubles as a smoke test of Dasein support, verifiable mutation and
//! verifiable N-lineage.

use ledgerdb_bench::{banner, BenchLedger};
use ledgerdb_clue::cm_tree::CmTree;
use ledgerdb_core::{audit_ledger, AuditConfig, OccultMode, VerifyLevel};
use ledgerdb_crypto::multisig::MultiSignature;
use ledgerdb_timesvc::clock::Clock;
use ledgerdb_timesvc::tledger::{TLedger, TLedgerConfig};
use ledgerdb_timesvc::tsa::TsaPool;
use std::sync::Arc;

/// Exercise every LedgerDB capability Table I claims; panics on failure.
fn demonstrate_ledgerdb_row() -> &'static str {
    let mut bench = BenchLedger::new(4, 10);

    // what + who: append signed journals and client-verify existence.
    let requests = bench.signed_requests(12, 256, |i| Some(format!("clue-{}", i % 3)));
    bench.populate(requests);
    let anchor = bench.ledger.anchor();
    let (tx_hash, proof) = bench.ledger.prove_existence(3, &anchor).unwrap();
    bench
        .ledger
        .verify_existence(3, &tx_hash, &proof, &anchor, VerifyLevel::Client)
        .unwrap();

    // when: anchor to a T-Ledger (TSA two-way pegged).
    let clock: Arc<dyn Clock> = Arc::clone(bench.ledger.clock());
    let pool = Arc::new(TsaPool::new(1, Arc::clone(&clock)));
    let tledger = TLedger::new(TLedgerConfig::default(), clock, pool);
    bench.ledger.anchor_time(&tledger).unwrap();

    // Verifiable N-lineage via CM-Tree.
    let cm_root = bench.ledger.clue_root();
    let clue_proof = bench.ledger.prove_clue("clue-1").unwrap();
    CmTree::verify_client(&cm_root, &clue_proof).unwrap();

    // Verifiable mutation: occult then purge, then full audit.
    let od = bench.ledger.occult_approval_digest(2);
    let mut oms = MultiSignature::new();
    oms.add(&bench.dba, &od);
    oms.add(&bench.regulator, &od);
    bench.ledger.occult(2, oms, OccultMode::Sync).unwrap();

    let pd = bench.ledger.purge_approval_digest(2);
    let mut pms = MultiSignature::new();
    pms.add(&bench.dba, &pd);
    pms.add(&bench.alice, &pd);
    bench.ledger.purge(2, pms, &[0], false).unwrap();
    bench.ledger.seal_block();

    let config = AuditConfig { tledger_key: Some(*tledger.public_key()), ..Default::default() };
    audit_ledger(&bench.ledger, &config).unwrap();

    "demonstrated"
}

fn main() {
    banner("Table I: verification characteristics (LedgerDB row demonstrated live)");
    let status = demonstrate_ledgerdb_row();
    println!(
        "{:<13} {:<20} {:<17} {:<12} {:<10} {:<10} {:<10}",
        "System", "Trusted Dependency", "Dasein", "Verify-Eff", "Storage", "Mutation", "N-lineage"
    );
    let rows = [
        ("LedgerDB", "TSA(non-LSP)", "what-when-who", "High", "Lowest", "yes", "yes"),
        ("SQL Ledger", "LSP & Storage", "what-when-who", "High", "Medium", "yes", "no"),
        ("QLDB", "LSP", "what", "Medium", "Medium", "no", "no"),
        ("ProvenDB", "LSP & Bitcoin", "what-when", "Medium", "Medium", "yes", "no"),
        ("Hyperledger", "Consortium", "what-who", "Low", "High", "no", "no"),
        ("Factom", "Bitcoin", "what-when-who", "Medium", "Highest", "no", "no"),
    ];
    for (system, dep, dasein, eff, storage, mutation, lineage) in rows {
        println!(
            "{system:<13} {dep:<20} {dasein:<17} {eff:<12} {storage:<10} {mutation:<10} {lineage:<10}"
        );
    }
    println!("\nLedgerDB row status: {status} (what/when/who, occult, purge, CM-Tree lineage, full audit all exercised)");
}
