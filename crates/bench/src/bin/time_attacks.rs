//! §III-B1 attack-window experiments (Fig 5).
//!
//! Drives the adversarial schedules against both pegging protocols on a
//! simulated clock and reports the measured malicious time windows:
//! one-way pegging accepts arbitrarily held-back content (infinite
//! amplification), while the two-way / T-Ledger protocol rejects anything
//! staler than τ_Δ and bounds end-to-end confidence to 2·Δτ.

use ledgerdb_bench::{banner, row};
use ledgerdb_timesvc::attack::{
    one_way_amplification, protocol4_window_sweep, two_way_attack, two_way_confidence_window,
};
use ledgerdb_timesvc::tledger::TLedgerConfig;

fn main() {
    banner("Fig 5(a): one-way pegging — infinite time amplification");
    for &delay_s in &[1u64, 60, 3_600, 86_400, 31_536_000] {
        let outcome = one_way_amplification(delay_s * 1_000_000);
        row(
            &format!("hold-back {delay_s}s"),
            &[
                ("accepted", "yes".into()),
                ("tamper-window", format!("{}s", outcome.window_us.unwrap() / 1_000_000)),
            ],
        );
    }
    println!("  -> window equals whatever the adversary chooses: unbounded.");

    banner("Fig 5(b): two-way pegging via T-Ledger (Protocol 4), τΔ=0.5s, Δτ=1s");
    let config = TLedgerConfig { submission_tolerance_us: 500_000, tsa_interval_us: 1_000_000 };
    for &delay_ms in &[0u64, 100, 499, 500, 1_000, 60_000] {
        let result = two_way_attack(config, delay_ms * 1_000);
        match result {
            Ok(outcome) => row(
                &format!("hold-back {delay_ms}ms"),
                &[
                    ("accepted", "yes".into()),
                    ("tamper-window", format!("{}ms", outcome.window_us.unwrap() / 1_000)),
                ],
            ),
            Err(_) => row(
                &format!("hold-back {delay_ms}ms"),
                &[("accepted", "REJECTED".into()), ("tamper-window", "-".into())],
            ),
        }
    }

    let (worst, first_rejected) = protocol4_window_sweep(config, 10_000, 2_000_000);
    row(
        "sweep (10ms steps)",
        &[
            ("worst-accepted", format!("{}ms", worst / 1_000)),
            (
                "first-rejected",
                first_rejected.map(|d| format!("{}ms", d / 1_000)).unwrap_or("-".into()),
            ),
        ],
    );
    row(
        "confidence window",
        &[("2*dTau", format!("{}ms", two_way_confidence_window(config) / 1_000))],
    );
    println!("  -> accepted windows bounded by tau_Delta; end-to-end confidence 2*dTau (paper Fig 5b).");
}
