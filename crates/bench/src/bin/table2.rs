//! Table II: application-level latency — LedgerDB vs QLDB — as public
//! cloud services.
//!
//! Paper (seconds):
//!   Notarization insert    QLDB 0.065   LedgerDB 0.027
//!   Notarization retrieve  QLDB 0.036   LedgerDB 0.028
//!   Notarization verify    QLDB 1.557   LedgerDB 0.028   (~56×)
//!   Lineage 5-versions     QLDB 7.786   LedgerDB 0.028   (~278×)
//!   Lineage 100-versions   QLDB 155.9   LedgerDB 0.030   (~5197×)
//!
//! Both sides run over the same same-region cloud profile (one API round
//! trip ≈ 25 ms); QLDB additionally pays its measured service-side
//! verification traversal (modeled constant, DESIGN.md §2), and its
//! lineage costs one GetRevision per version. LedgerDB verification is a
//! single round trip carrying a CM-Tree/fam proof.

use ledgerdb_baselines::network::NetworkProfile;
use ledgerdb_baselines::qldb::{QldbConfig, QldbSim};
use ledgerdb_bench::{banner, fmt_latency, row, timed, BenchLedger, XorShift};
use ledgerdb_clue::cm_tree::CmTree;
use ledgerdb_core::{TxRequest, VerifyLevel};

const DOC_SIZE: usize = 32 * 1024;

fn main() {
    let cloud = NetworkProfile::cloud();
    let rtt = cloud.round_trip(DOC_SIZE).seconds();

    banner("Table II: notarization (32KB documents)");

    // ---------------- QLDB side ----------------
    let mut qldb = QldbSim::new(QldbConfig::default());
    let mut rng = XorShift::new(21);
    let mut insert_lat = 0.0;
    for i in 0..64u64 {
        let (_, lat) = qldb.insert(&format!("doc-{i}"), rng.payload(DOC_SIZE));
        insert_lat = lat.seconds();
    }
    let (_, retrieve_lat) = qldb.retrieve("doc-5");
    let (ok, verify_lat) = qldb.verify_revision(5);
    ok.unwrap();

    // ---------------- LedgerDB side ----------------
    let mut bench = BenchLedger::new(16, 15);
    let mut rng = XorShift::new(22);
    let mut ack = None;
    let (_, ledger_insert_compute) = timed(|| {
        for i in 0..64u64 {
            let req = TxRequest::signed(
                &bench.alice,
                rng.payload(DOC_SIZE),
                vec![format!("doc-{i}")],
                i,
            );
            ack = Some(bench.ledger.append_committed(req).unwrap());
        }
    });
    let ledger_insert = ledger_insert_compute / 64.0 + rtt;

    let (_, retrieve_compute) = timed(|| bench.ledger.get_payload(5).unwrap());
    let ledger_retrieve = retrieve_compute + rtt;

    let anchor = bench.ledger.anchor();
    let ((), verify_compute) = timed(|| {
        let (tx_hash, proof) = bench.ledger.prove_existence(5, &anchor).unwrap();
        bench
            .ledger
            .verify_existence(5, &tx_hash, &proof, &anchor, VerifyLevel::Client)
            .unwrap();
    });
    let ledger_verify = verify_compute + cloud.round_trip(4096).seconds();

    row(
        "Insert",
        &[
            ("QLDB", fmt_latency(insert_lat)),
            ("LedgerDB", fmt_latency(ledger_insert)),
            ("paper", "0.065 / 0.027".into()),
        ],
    );
    row(
        "Retrieve",
        &[
            ("QLDB", fmt_latency(retrieve_lat.seconds())),
            ("LedgerDB", fmt_latency(ledger_retrieve)),
            ("paper", "0.036 / 0.028".into()),
        ],
    );
    row(
        "Verify",
        &[
            ("QLDB", fmt_latency(verify_lat.seconds())),
            ("LedgerDB", fmt_latency(ledger_verify)),
            ("paper", "1.557 / 0.028".into()),
        ],
    );

    banner("Table II: lineage ([key, data, prehash, sig] schema in QLDB; clue in LedgerDB)");
    for &versions in &[5u64, 100] {
        // QLDB: one key with `versions` revisions.
        let mut qldb = QldbSim::new(QldbConfig::default());
        let mut rng = XorShift::new(31);
        for _ in 0..versions {
            qldb.insert("asset", rng.payload(1024));
        }
        let (count, qldb_lat) = qldb.verify_lineage("asset");
        assert_eq!(count.unwrap(), versions);

        // LedgerDB: a clue with `versions` entries.
        let mut bench = BenchLedger::new(256, 15);
        let requests = bench.signed_requests(versions + 512, 1024, |i| {
            if i < versions {
                Some("asset".to_string())
            } else {
                Some(format!("noise-{i}"))
            }
        });
        bench.populate(requests);
        let cm_root = bench.ledger.clue_root();
        let ((), compute) = timed(|| {
            let proof = bench.ledger.prove_clue("asset").unwrap();
            CmTree::verify_client(&cm_root, &proof).unwrap();
        });
        let ledger_lat = compute + cloud.round_trip(1024 * versions as usize).seconds();

        row(
            &format!("Verify {versions}-versions"),
            &[
                ("QLDB", fmt_latency(qldb_lat.seconds())),
                ("LedgerDB", fmt_latency(ledger_lat)),
                ("ratio", format!("{:.0}x", qldb_lat.seconds() / ledger_lat)),
            ],
        );
    }
}
