//! A Criterion-compatible micro-benchmark harness.
//!
//! The reproduction builds fully offline, so the real `criterion` crate
//! is unavailable. This module replicates the slice of its API the
//! benches under `benches/` use — `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Throughput`, `BatchSize`, `Bencher::iter` /
//! `iter_batched` and the `criterion_group!` / `criterion_main!` macros
//! — so a bench file ports with one import-line change:
//!
//! ```ignore
//! use ledgerdb_bench::harness::{self as criterion, criterion_group, ...};
//! ```
//!
//! Measurement is deliberately simple: a calibration pass sizes the
//! iteration count to a fixed per-sample budget, then `sample_size`
//! samples are timed and the mean/min reported. No plotting, no stats
//! beyond that — enough to compare implementations and catch order-of-
//! magnitude regressions.

use std::fmt;
use std::time::{Duration, Instant};

// The group/main macros live at the crate root (macro_export); re-export
// them here so `use ledgerdb_bench::harness::{criterion_group, ...}` works.
pub use crate::{criterion_group, criterion_main};

/// Per-sample time budget the calibration pass aims for.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);
/// Hard cap on iterations per sample (keeps cheap ops bounded).
const MAX_ITERS: u64 = 100_000;

/// Top-level harness state (API-compatible subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Builder: number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n-- {name} --");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().label, sample_size, None, f);
    }
}

/// Identifies one benchmark within a group ("function/parameter").
#[derive(Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units the mean sample maps to for the throughput column.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batch sizing hints for `iter_batched` (accepted, not acted on — the
/// shim always materializes one input per iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into().label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&id.label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to every benchmark closure; routines register through
/// [`Bencher::iter`] or [`Bencher::iter_batched`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the sample's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration: one iteration to estimate per-iter cost.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        let per = bencher.elapsed / iters as u32;
        total += per;
        best = best.min(per);
    }
    let mean = total / sample_size as u32;

    let mut line = format!("{label:<40} mean {:>12}  min {:>12}", fmt_ns(mean), fmt_ns(best));
    if let Some(t) = throughput {
        let secs = mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>10}/s", fmt_bytes(n as f64 / secs)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>10} elem/s", crate::fmt_tps(n as f64 / secs)));
            }
        }
    }
    println!("{line}");
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn fmt_bytes(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} GiB", bps / (1u64 << 30) as f64)
    } else if bps >= 1e6 {
        format!("{:.1} MiB", bps / (1u64 << 20) as f64)
    } else {
        format!("{:.1} KiB", bps / 1024.0)
    }
}

/// Define a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::harness::Criterion as Default>::default();
            targets = $($target),+
        );
    };
}

/// Define the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 25, elapsed: Duration::ZERO };
        b.iter(|| count += 1);
        assert_eq!(count, 25);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn bencher_iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        let mut b = Bencher { iters: 9, elapsed: Duration::ZERO };
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| {
                runs += 1;
                x
            },
            BatchSize::LargeInput,
        );
        assert_eq!((setups, runs), (9, 9));
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("prove", 512);
        assert_eq!(id.label, "prove/512");
        let id: BenchmarkId = "plain".into();
        assert_eq!(id.label, "plain");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("selftest");
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
