//! Shared workload generators and reporting helpers for the experiment
//! harness. Each paper table/figure has a binary under `src/bin/` that
//! regenerates it; `EXPERIMENTS.md` records paper-vs-measured.

use ledgerdb_core::{LedgerConfig, LedgerDb, MemberRegistry, TxRequest};
use ledgerdb_crypto::ca::{CertificateAuthority, Role};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::hash_leaf;
use ledgerdb_crypto::keys::KeyPair;
use std::time::Instant;

/// A deterministic xorshift RNG for workload generation (no external
/// randomness → reproducible figures).
pub struct XorShift(u64);

impl XorShift {
    pub fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Deterministic pseudo-random payload of `len` bytes.
    pub fn payload(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            out.extend_from_slice(&self.next_u64().to_le_bytes());
        }
        out.truncate(len);
        out
    }
}

/// Deterministic journal digests for accumulator workloads.
pub fn journal_digests(n: u64) -> Vec<Digest> {
    (0..n).map(|i| hash_leaf(&i.to_be_bytes())).collect()
}

/// Time a closure, returning (result, elapsed seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Ops/second over a timed closure executing `ops` operations.
pub fn throughput(ops: u64, f: impl FnOnce()) -> f64 {
    let ((), secs) = timed(f);
    ops as f64 / secs.max(1e-9)
}

/// Standard experiment fixture: a populated LedgerDB with registered
/// members (alice = user, plus DBA and regulator for mutations).
pub struct BenchLedger {
    pub ledger: LedgerDb,
    pub alice: KeyPair,
    pub dba: KeyPair,
    pub regulator: KeyPair,
}

impl BenchLedger {
    /// Create a ledger with the given block size and fam δ.
    pub fn new(block_size: u64, fam_delta: u32) -> Self {
        let ca = CertificateAuthority::from_seed(b"bench-ca");
        let alice = KeyPair::from_seed(b"bench-alice");
        let dba = KeyPair::from_seed(b"bench-dba");
        let regulator = KeyPair::from_seed(b"bench-regulator");
        let mut registry = MemberRegistry::new(*ca.public_key());
        registry.register(ca.issue("alice", Role::User, alice.public())).unwrap();
        registry.register(ca.issue("dba", Role::Dba, dba.public())).unwrap();
        registry
            .register(ca.issue("regulator", Role::Regulator, regulator.public()))
            .unwrap();
        let config = LedgerConfig { block_size, fam_delta, name: "bench".into(), state_backend: Default::default() };
        BenchLedger { ledger: LedgerDb::new(config, registry), alice, dba, regulator }
    }

    /// Pre-signed requests (signing happens client-side, outside any
    /// timed region).
    pub fn signed_requests(&self, n: u64, payload_len: usize, clue_of: impl Fn(u64) -> Option<String>) -> Vec<TxRequest> {
        let mut rng = XorShift::new(42);
        (0..n)
            .map(|i| {
                let clues = clue_of(i).map(|c| vec![c]).unwrap_or_default();
                TxRequest::signed(&self.alice, rng.payload(payload_len), clues, i)
            })
            .collect()
    }

    /// Populate via the pre-verified kernel path.
    pub fn populate(&mut self, requests: Vec<TxRequest>) {
        for r in requests {
            self.ledger.append_preverified(r).unwrap();
        }
        self.ledger.seal_block();
    }
}

/// Print a figure/table header.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Print one aligned measurement row.
pub fn row(label: &str, cols: &[(&str, String)]) {
    let mut line = format!("{label:<28}");
    for (name, value) in cols {
        line.push_str(&format!(" {name}={value:<14}"));
    }
    println!("{line}");
}

/// Human-readable ops/sec.
pub fn fmt_tps(tps: f64) -> String {
    if tps >= 1_000_000.0 {
        format!("{:.2}M", tps / 1_000_000.0)
    } else if tps >= 1_000.0 {
        format!("{:.1}K", tps / 1_000.0)
    } else {
        format!("{tps:.1}")
    }
}

/// Human-readable latency from seconds.
pub fn fmt_latency(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_deterministic() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn payload_length_exact() {
        let mut rng = XorShift::new(1);
        for len in [0usize, 1, 7, 8, 9, 256, 1000] {
            assert_eq!(rng.payload(len).len(), len);
        }
    }

    #[test]
    fn bench_ledger_populates() {
        let mut b = BenchLedger::new(8, 4);
        let reqs = b.signed_requests(10, 64, |i| Some(format!("clue-{}", i % 2)));
        b.populate(reqs);
        assert_eq!(b.ledger.journal_count(), 10);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_tps(1_500_000.0), "1.50M");
        assert_eq!(fmt_tps(52_000.0), "52.0K");
        assert_eq!(fmt_latency(1.5), "1.500s");
        assert_eq!(fmt_latency(0.0025), "2.50ms");
    }
}

pub mod cases;
pub mod harness;
