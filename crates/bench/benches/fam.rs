//! Criterion micro-benches behind Fig 8: append and proof costs of the
//! accumulator models (tim vs fam-δ vs bim).

use ledgerdb_bench::harness::{self as criterion, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ledgerdb_accumulator::bim::BimChain;
use ledgerdb_accumulator::fam::{FamTree, TrustedAnchor};
use ledgerdb_accumulator::tim::TimAccumulator;
use ledgerdb_bench::journal_digests;

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a_append");
    let n = 1u64 << 14;
    let digests = journal_digests(n);
    group.throughput(Throughput::Elements(n));

    group.bench_function("tim", |b| {
        b.iter(|| {
            let mut acc = TimAccumulator::new();
            for d in &digests {
                acc.append(*d);
            }
            acc.root()
        })
    });
    for delta in [5u32, 10, 15] {
        group.bench_with_input(BenchmarkId::new("fam", delta), &delta, |b, &delta| {
            b.iter(|| {
                let mut fam = FamTree::new(delta);
                for d in &digests {
                    fam.append(*d);
                }
                fam.root()
            })
        });
    }
    group.bench_function("bim_block64", |b| {
        b.iter(|| {
            let mut chain = BimChain::new(64);
            for d in &digests {
                chain.append(*d);
            }
            chain.seal_block();
            chain.block_count()
        })
    });
    group.finish();
}

fn bench_proof(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8b_getproof");
    let n = 1u64 << 16;
    let digests = journal_digests(n);

    let mut tim = TimAccumulator::new();
    for d in &digests {
        tim.append(*d);
    }
    group.bench_function("tim_prove", |b| {
        let mut i = 1u64;
        b.iter(|| {
            i = (i.wrapping_mul(6364136223846793005).wrapping_add(1)) % n;
            tim.prove(i).unwrap()
        })
    });

    for delta in [5u32, 10, 15] {
        let mut fam = FamTree::new(delta);
        for d in &digests {
            fam.append(*d);
        }
        let anchor = fam.anchor();
        group.bench_with_input(BenchmarkId::new("fam_prove_anchored", delta), &delta, |b, _| {
            let mut i = 1u64;
            b.iter(|| {
                i = (i.wrapping_mul(6364136223846793005).wrapping_add(1)) % n;
                fam.prove(i, &anchor).unwrap()
            })
        });
        let empty = TrustedAnchor::default();
        group.bench_with_input(BenchmarkId::new("fam_prove_full", delta), &delta, |b, _| {
            let mut i = 1u64;
            b.iter(|| {
                i = (i.wrapping_mul(6364136223846793005).wrapping_add(1)) % n;
                fam.prove(i, &empty).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("fam_verify");
    let n = 1u64 << 16;
    let digests = journal_digests(n);
    let mut fam = FamTree::new(10);
    for d in &digests {
        fam.append(*d);
    }
    let anchor = fam.anchor();
    let root = fam.root();
    let anchored = fam.prove(1234, &anchor).unwrap();
    group.bench_function("anchored", |b| {
        b.iter(|| FamTree::verify(&root, &anchor, &digests[1234], &anchored).unwrap())
    });
    let empty = TrustedAnchor::default();
    let full = fam.prove(1234, &empty).unwrap();
    group.bench_function("full", |b| {
        b.iter(|| FamTree::verify(&root, &empty, &digests[1234], &full).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_append, bench_proof, bench_verify
}
criterion_main!(benches);
