//! Criterion benches behind Fig 7: per-journal Dasein verification costs
//! (what / when / who) on the full ledger kernel.

use ledgerdb_bench::harness::{self as criterion, criterion_group, criterion_main, BenchmarkId, Criterion};
use ledgerdb_bench::BenchLedger;
use ledgerdb_core::VerifyLevel;
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_crypto::multisig::MultiSignature;
use ledgerdb_crypto::sha256;
use ledgerdb_timesvc::clock::Clock;
use ledgerdb_timesvc::tledger::{TLedger, TLedgerConfig};
use ledgerdb_timesvc::tsa::TsaPool;
use std::sync::Arc;

fn bench_what(c: &mut Criterion) {
    let mut group = c.benchmark_group("dasein_what");
    for size in [256usize, 4096] {
        let mut bench = BenchLedger::new(64, 10);
        let requests = bench.signed_requests(512, size, |i| Some(format!("d{i}")));
        bench.populate(requests);
        let anchor = bench.ledger.anchor();
        group.bench_with_input(BenchmarkId::new("existence", size), &size, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 97) % 512;
                let (tx_hash, proof) = bench.ledger.prove_existence(i, &anchor).unwrap();
                bench
                    .ledger
                    .verify_existence(i, &tx_hash, &proof, &anchor, VerifyLevel::Client)
                    .unwrap();
            })
        });
    }
    group.finish();
}

fn bench_when(c: &mut Criterion) {
    let mut group = c.benchmark_group("dasein_when");
    group.sample_size(20);
    let mut bench = BenchLedger::new(64, 10);
    let requests = bench.signed_requests(64, 256, |i| Some(format!("d{i}")));
    bench.populate(requests);
    let clock: Arc<dyn Clock> = Arc::clone(bench.ledger.clock());
    let pool = Arc::new(TsaPool::new(1, Arc::clone(&clock)));
    let tledger = TLedger::new(TLedgerConfig::default(), clock, pool);
    bench.ledger.anchor_time(&tledger).unwrap();
    tledger.finalize_now().unwrap();
    group.bench_function("receipt+attestation", |b| {
        b.iter(|| {
            let (entry, proof, root) = tledger.prove_entry(0).unwrap();
            ledgerdb_accumulator::Shrubs::verify(&root, &entry.leaf_digest(), &proof).unwrap();
            tledger.covering_time_journal(0).unwrap().attestation.verify().unwrap();
        })
    });
    group.finish();
}

fn bench_who(c: &mut Criterion) {
    let mut group = c.benchmark_group("dasein_who");
    group.sample_size(20);
    let msg = sha256(b"journal request");
    for signers in [1usize, 3, 5, 7] {
        let keys: Vec<KeyPair> =
            (0..signers).map(|i| KeyPair::from_seed(format!("s{i}").as_bytes())).collect();
        let mut ms = MultiSignature::new();
        for k in &keys {
            ms.add(k, &msg);
        }
        group.bench_with_input(BenchmarkId::new("multisig_verify", signers), &signers, |b, _| {
            b.iter(|| assert!(ms.verify_all(&msg)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_what, bench_when, bench_who
}
criterion_main!(benches);
