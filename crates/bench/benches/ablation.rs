//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * fractal height δ vs anchor freshness (proof length / verify cost);
//! * MPT top-layer cache depth (node distribution per level);
//! * sync vs async occult cost on the append path;
//! * purge cost vs retained ledger size.

use ledgerdb_bench::harness::{self as criterion, criterion_group, criterion_main, BenchmarkId, Criterion};
use ledgerdb_accumulator::fam::{FamTree, TrustedAnchor};
use ledgerdb_bench::{journal_digests, BenchLedger};
use ledgerdb_core::OccultMode;
use ledgerdb_crypto::multisig::MultiSignature;
use ledgerdb_mpt::Mpt;

fn ablation_delta_vs_anchor(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_delta_anchor");
    let n = 1u64 << 14;
    let digests = journal_digests(n);
    for delta in [4u32, 8, 12, 16] {
        let mut fam = FamTree::new(delta);
        for d in &digests {
            fam.append(*d);
        }
        let fresh = fam.anchor();
        let stale = TrustedAnchor {
            epoch_roots: fam.sealed_roots()[..fam.sealed_epochs() / 2].to_vec(),
        };
        group.bench_with_input(BenchmarkId::new("fresh_anchor", delta), &delta, |b, _| {
            let mut i = 1u64;
            b.iter(|| {
                i = (i * 31) % n;
                fam.prove(i, &fresh).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("stale_anchor", delta), &delta, |b, _| {
            let mut i = 1u64;
            b.iter(|| {
                i = (i * 31) % n;
                fam.prove(i, &stale).unwrap()
            })
        });
    }
    group.finish();
}

fn ablation_mpt_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mpt");
    for keys in [1_000u64, 10_000] {
        let mut mpt = Mpt::new();
        for i in 0..keys {
            let k = ledgerdb_crypto::sha3_256(&i.to_be_bytes());
            mpt.insert(k.as_bytes(), i.to_be_bytes().to_vec());
        }
        // Report the per-depth node histogram once per size (stdout so the
        // cache-sizing discussion in DESIGN.md has data behind it).
        let histogram = mpt.node_count_by_depth();
        eprintln!("mpt depth histogram ({keys} keys): {histogram:?}");
        group.bench_with_input(BenchmarkId::new("prove", keys), &keys, |b, &keys| {
            let mut i = 1u64;
            b.iter(|| {
                i = (i * 7919) % keys;
                let k = ledgerdb_crypto::sha3_256(&i.to_be_bytes());
                mpt.prove(k.as_bytes()).unwrap()
            })
        });
    }
    group.finish();
}

fn ablation_occult_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_occult");
    group.sample_size(10);
    for mode in [OccultMode::Sync, OccultMode::Async] {
        group.bench_with_input(
            BenchmarkId::new("occult", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter_batched(
                    || {
                        let mut bench = BenchLedger::new(64, 8);
                        let requests = bench.signed_requests(64, 1024, |_| None);
                        bench.populate(requests);
                        bench
                    },
                    |mut bench| {
                        let d = bench.ledger.occult_approval_digest(7);
                        let mut ms = MultiSignature::new();
                        ms.add(&bench.dba, &d);
                        ms.add(&bench.regulator, &d);
                        bench.ledger.occult(7, ms, mode).unwrap();
                        if mode == OccultMode::Async {
                            bench.ledger.reorganize().unwrap();
                        }
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn ablation_purge(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_purge");
    group.sample_size(10);
    for n in [128u64, 512] {
        group.bench_with_input(BenchmarkId::new("purge_half", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut bench = BenchLedger::new(64, 8);
                    let requests = bench.signed_requests(n, 512, |_| None);
                    bench.populate(requests);
                    bench
                },
                |mut bench| {
                    let to = n / 2;
                    let d = bench.ledger.purge_approval_digest(to);
                    let mut ms = MultiSignature::new();
                    ms.add(&bench.dba, &d);
                    ms.add(&bench.alice, &d);
                    bench.ledger.purge(to, ms, &[], true).unwrap();
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_delta_vs_anchor, ablation_mpt_depth, ablation_occult_modes, ablation_purge
}
criterion_main!(benches);
