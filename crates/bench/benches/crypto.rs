//! Criterion micro-benches for the crypto substrate: the primitive costs
//! underlying every Dasein factor (SHA-256 for *what*, ECDSA for *who*,
//! attestation checks for *when*).

use ledgerdb_bench::harness::{self as criterion, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ledgerdb_crypto::keys::KeyPair;
use ledgerdb_crypto::{sha256, sha3_256};

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for size in [32usize, 256, 4096, 262_144] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256(d))
        });
        group.bench_with_input(BenchmarkId::new("sha3_256", size), &data, |b, d| {
            b.iter(|| sha3_256(d))
        });
    }
    group.finish();
}

fn bench_ecdsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecdsa");
    group.sample_size(20);
    let kp = KeyPair::from_seed(b"bench-ecdsa");
    let msg = sha256(b"journal digest");
    let sig = kp.sign(&msg);
    group.bench_function("sign", |b| b.iter(|| kp.sign(&msg)));
    group.bench_function("verify", |b| {
        b.iter(|| assert!(kp.public().verify(&msg, &sig)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hash, bench_ecdsa
}
criterion_main!(benches);
