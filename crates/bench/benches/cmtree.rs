//! Criterion micro-benches behind Fig 9: CM-Tree vs ccMPT insertion and
//! clue verification.

use ledgerdb_bench::harness::{self as criterion, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ledgerdb_accumulator::tim::TimAccumulator;
use ledgerdb_bench::XorShift;
use ledgerdb_clue::ccmpt::CcMpt;
use ledgerdb_clue::cm_tree::CmTree;
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::hash_leaf;

/// Workload: `n` journals over clues of 1..=100 entries.
fn workload(n: u64) -> Vec<(String, u64, Digest)> {
    let mut rng = XorShift::new(77);
    let mut out = Vec::with_capacity(n as usize);
    let mut jsn = 0u64;
    let mut clue_id = 0u64;
    while jsn < n {
        let clue = format!("clue-{clue_id}");
        let entries = 1 + rng.below(100);
        for _ in 0..entries.min(n - jsn) {
            out.push((clue.clone(), jsn, hash_leaf(&jsn.to_be_bytes())));
            jsn += 1;
        }
        clue_id += 1;
    }
    out
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_insert");
    let n = 1u64 << 12;
    let load = workload(n);
    group.throughput(Throughput::Elements(n));

    group.bench_function("cm_tree", |b| {
        b.iter(|| {
            let mut cm = CmTree::new();
            for (clue, jsn, d) in &load {
                cm.append(clue, *jsn, *d);
            }
            cm.root()
        })
    });
    group.bench_function("ccmpt", |b| {
        b.iter(|| {
            let mut cc = CcMpt::new();
            for (clue, jsn, _) in &load {
                cc.append(clue, *jsn);
            }
            cc.root()
        })
    });
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_verify");
    for entries in [10u64, 100, 1000] {
        // Background + target clue.
        let background = workload(1 << 14);
        let mut cm = CmTree::new();
        let mut cc = CcMpt::new();
        let mut ledger = TimAccumulator::new();
        let mut digests = Vec::new();
        for (clue, jsn, d) in &background {
            cm.append(clue, *jsn, *d);
            cc.append(clue, *jsn);
            ledger.append(*d);
            digests.push(*d);
        }
        let mut jsn = background.len() as u64;
        #[allow(clippy::explicit_counter_loop)]
        for _ in 0..entries {
            let d = hash_leaf(&jsn.to_be_bytes());
            cm.append("target", jsn, d);
            cc.append("target", jsn);
            ledger.append(d);
            digests.push(d);
            jsn += 1;
        }
        let cm_root = cm.root();
        let cc_root = cc.root();
        let ledger_root = ledger.root();

        group.bench_with_input(BenchmarkId::new("cm_tree", entries), &entries, |b, _| {
            b.iter(|| {
                let proof = cm.prove_all("target").unwrap();
                CmTree::verify_client(&cm_root, &proof).unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("ccmpt", entries), &entries, |b, _| {
            b.iter(|| {
                let proof = cc
                    .prove("target", &ledger, |j| digests.get(j as usize).copied())
                    .unwrap();
                CcMpt::verify(&cc_root, &ledger_root, &proof).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert, bench_verify
}
criterion_main!(benches);
