//! MPT inclusion and absence proofs and their verification.

use crate::nibble::to_nibbles;
use crate::node::ProofNode;
use crate::MptError;
use ledgerdb_crypto::digest::Digest;

/// An inclusion proof: the node list along the key path, root first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MptProof {
    pub key: Vec<u8>,
    pub value: Vec<u8>,
    pub nodes: Vec<ProofNode>,
}

impl MptProof {
    /// Number of nodes carried — the CM-Tree1 leg of the clue proof cost.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// An absence proof: the node path from the root to the point where
/// the key's nibble walk diverges from the trie. The final node is the
/// divergence witness — a leaf with a different suffix, an extension
/// whose prefix the key does not share, or a branch lacking the key's
/// child slot (or a terminal value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MptAbsenceProof {
    pub key: Vec<u8>,
    pub nodes: Vec<ProofNode>,
}

/// Verify an absence proof against a trusted root digest.
///
/// Walks the committed path exactly like [`verify_proof`] but demands
/// that the final node *diverges* from the key instead of completing
/// it: a proof whose walk would reach the value is rejected, as is one
/// that stops early without demonstrating divergence.
pub fn verify_absence(root: &Digest, proof: &MptAbsenceProof) -> Result<(), MptError> {
    if proof.nodes.is_empty() {
        // Only the empty trie proves absence with no nodes.
        return if *root == Digest::ZERO {
            Ok(())
        } else {
            Err(MptError::MalformedProof("empty node list for non-empty root"))
        };
    }
    let nibbles = to_nibbles(&proof.key);
    let mut path: &[u8] = &nibbles;
    let mut expected = *root;
    let mut nodes = proof.nodes.iter().peekable();
    while let Some(node) = nodes.next() {
        if node.hash() != expected {
            return Err(MptError::ProofMismatch);
        }
        let last = nodes.peek().is_none();
        match node {
            ProofNode::Leaf { suffix, .. } => {
                if !last {
                    return Err(MptError::MalformedProof("trailing nodes after leaf"));
                }
                return if suffix.as_slice() != path {
                    Ok(())
                } else {
                    Err(MptError::MalformedProof("key present at leaf"))
                };
            }
            ProofNode::Extension { prefix, child_hash } => {
                let diverges =
                    path.len() < prefix.len() || &path[..prefix.len()] != prefix.as_slice();
                if diverges {
                    return if last {
                        Ok(())
                    } else {
                        Err(MptError::MalformedProof("trailing nodes after divergence"))
                    };
                }
                path = &path[prefix.len()..];
                expected = *child_hash;
            }
            ProofNode::Branch { child_hashes, value } => {
                if path.is_empty() {
                    if !last {
                        return Err(MptError::MalformedProof("trailing nodes after terminal branch"));
                    }
                    return if value.is_none() {
                        Ok(())
                    } else {
                        Err(MptError::MalformedProof("key present at branch value"))
                    };
                }
                match child_hashes[path[0] as usize] {
                    Some(child) => {
                        expected = child;
                        path = &path[1..];
                    }
                    None => {
                        return if last {
                            Ok(())
                        } else {
                            Err(MptError::MalformedProof("trailing nodes after divergence"))
                        };
                    }
                }
            }
        }
    }
    Err(MptError::MalformedProof("proof ended without demonstrating divergence"))
}

/// Verify an inclusion proof against a trusted root digest.
///
/// Walks the proof nodes top-down, checking at each step that (a) the
/// node's hash matches the digest its parent committed to and (b) the key
/// nibbles route through the node toward the claimed value.
pub fn verify_proof(root: &Digest, proof: &MptProof) -> Result<(), MptError> {
    if proof.nodes.is_empty() {
        return Err(MptError::MalformedProof("empty node list"));
    }
    let nibbles = to_nibbles(&proof.key);
    let mut path: &[u8] = &nibbles;
    let mut expected = *root;
    let mut nodes = proof.nodes.iter().peekable();
    while let Some(node) = nodes.next() {
        if node.hash() != expected {
            return Err(MptError::ProofMismatch);
        }
        match node {
            ProofNode::Leaf { suffix, value } => {
                if suffix.as_slice() != path {
                    return Err(MptError::MalformedProof("leaf suffix mismatch"));
                }
                if value != &proof.value {
                    return Err(MptError::MalformedProof("leaf value mismatch"));
                }
                if nodes.peek().is_some() {
                    return Err(MptError::MalformedProof("trailing nodes after leaf"));
                }
                return Ok(());
            }
            ProofNode::Extension { prefix, child_hash } => {
                if path.len() < prefix.len() || &path[..prefix.len()] != prefix.as_slice() {
                    return Err(MptError::MalformedProof("extension prefix mismatch"));
                }
                path = &path[prefix.len()..];
                expected = *child_hash;
            }
            ProofNode::Branch { child_hashes, value } => {
                if path.is_empty() {
                    match value {
                        Some(v) if v == &proof.value => {
                            if nodes.peek().is_some() {
                                return Err(MptError::MalformedProof(
                                    "trailing nodes after terminal branch",
                                ));
                            }
                            return Ok(());
                        }
                        _ => return Err(MptError::MalformedProof("branch value mismatch")),
                    }
                }
                let idx = path[0] as usize;
                let Some(child) = child_hashes[idx] else {
                    return Err(MptError::MalformedProof("missing branch child on path"));
                };
                expected = child;
                path = &path[1..];
            }
        }
    }
    Err(MptError::MalformedProof("proof ended before value"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::Mpt;

    #[test]
    fn empty_proof_rejected() {
        let proof = MptProof { key: b"k".to_vec(), value: b"v".to_vec(), nodes: vec![] };
        assert!(verify_proof(&Digest::ZERO, &proof).is_err());
    }

    #[test]
    fn truncated_proof_rejected() {
        let mut t = Mpt::new();
        for i in 0..32u64 {
            t.insert(&ledgerdb_crypto::sha3_256(&i.to_be_bytes()).0, vec![i as u8]);
        }
        let key = ledgerdb_crypto::sha3_256(&3u64.to_be_bytes());
        let root = t.root_hash();
        let mut proof = t.prove(&key.0).unwrap();
        assert!(proof.nodes.len() > 1);
        proof.nodes.pop();
        assert!(verify_proof(&root, &proof).is_err());
    }

    #[test]
    fn absence_proofs_verify_and_presence_rejected() {
        let mut t = Mpt::new();
        for i in 0..64u64 {
            t.insert(&ledgerdb_crypto::sha3_256(&i.to_be_bytes()).0, vec![i as u8]);
        }
        let root = t.root_hash();
        for i in 64..96u64 {
            let key = ledgerdb_crypto::sha3_256(&i.to_be_bytes());
            let proof = t.prove_absence(&key.0).unwrap();
            verify_absence(&root, &proof).unwrap_or_else(|e| panic!("probe {i}: {e}"));
        }
        // A present key cannot be proven absent.
        let present = ledgerdb_crypto::sha3_256(&3u64.to_be_bytes());
        assert_eq!(t.prove_absence(&present.0), Err(MptError::KeyPresent));
        // Re-keying an absence proof to a present key fails verification.
        let absent = ledgerdb_crypto::sha3_256(&70u64.to_be_bytes());
        let mut proof = t.prove_absence(&absent.0).unwrap();
        proof.key = present.0.to_vec();
        assert!(verify_absence(&root, &proof).is_err());
    }

    #[test]
    fn empty_trie_absence() {
        let t = Mpt::new();
        let proof = t.prove_absence(b"anything").unwrap();
        verify_absence(&t.root_hash(), &proof).unwrap();
        // Same (empty) proof against a non-empty root is rejected.
        let mut other = Mpt::new();
        other.insert(b"k", b"v".to_vec());
        assert!(verify_absence(&other.root_hash(), &proof).is_err());
    }

    #[test]
    fn truncated_absence_proof_rejected() {
        let mut t = Mpt::new();
        for i in 0..64u64 {
            t.insert(&ledgerdb_crypto::sha3_256(&i.to_be_bytes()).0, vec![i as u8]);
        }
        let root = t.root_hash();
        let absent = ledgerdb_crypto::sha3_256(&200u64.to_be_bytes());
        let mut proof = t.prove_absence(&absent.0).unwrap();
        assert!(proof.nodes.len() > 1, "need a multi-node path to truncate");
        proof.nodes.pop();
        assert!(verify_absence(&root, &proof).is_err());
    }

    #[test]
    fn swapped_key_rejected() {
        let mut t = Mpt::new();
        t.insert(b"alpha", b"1".to_vec());
        t.insert(b"beta", b"2".to_vec());
        let root = t.root_hash();
        let mut proof = t.prove(b"alpha").unwrap();
        proof.key = b"beta".to_vec();
        assert!(verify_proof(&root, &proof).is_err());
    }
}
