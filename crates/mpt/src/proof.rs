//! MPT inclusion proofs and their verification.

use crate::nibble::to_nibbles;
use crate::node::ProofNode;
use crate::MptError;
use ledgerdb_crypto::digest::Digest;

/// An inclusion proof: the node list along the key path, root first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MptProof {
    pub key: Vec<u8>,
    pub value: Vec<u8>,
    pub nodes: Vec<ProofNode>,
}

impl MptProof {
    /// Number of nodes carried — the CM-Tree1 leg of the clue proof cost.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Verify an inclusion proof against a trusted root digest.
///
/// Walks the proof nodes top-down, checking at each step that (a) the
/// node's hash matches the digest its parent committed to and (b) the key
/// nibbles route through the node toward the claimed value.
pub fn verify_proof(root: &Digest, proof: &MptProof) -> Result<(), MptError> {
    if proof.nodes.is_empty() {
        return Err(MptError::MalformedProof("empty node list"));
    }
    let nibbles = to_nibbles(&proof.key);
    let mut path: &[u8] = &nibbles;
    let mut expected = *root;
    let mut nodes = proof.nodes.iter().peekable();
    while let Some(node) = nodes.next() {
        if node.hash() != expected {
            return Err(MptError::ProofMismatch);
        }
        match node {
            ProofNode::Leaf { suffix, value } => {
                if suffix.as_slice() != path {
                    return Err(MptError::MalformedProof("leaf suffix mismatch"));
                }
                if value != &proof.value {
                    return Err(MptError::MalformedProof("leaf value mismatch"));
                }
                if nodes.peek().is_some() {
                    return Err(MptError::MalformedProof("trailing nodes after leaf"));
                }
                return Ok(());
            }
            ProofNode::Extension { prefix, child_hash } => {
                if path.len() < prefix.len() || &path[..prefix.len()] != prefix.as_slice() {
                    return Err(MptError::MalformedProof("extension prefix mismatch"));
                }
                path = &path[prefix.len()..];
                expected = *child_hash;
            }
            ProofNode::Branch { child_hashes, value } => {
                if path.is_empty() {
                    match value {
                        Some(v) if v == &proof.value => {
                            if nodes.peek().is_some() {
                                return Err(MptError::MalformedProof(
                                    "trailing nodes after terminal branch",
                                ));
                            }
                            return Ok(());
                        }
                        _ => return Err(MptError::MalformedProof("branch value mismatch")),
                    }
                }
                let idx = path[0] as usize;
                let Some(child) = child_hashes[idx] else {
                    return Err(MptError::MalformedProof("missing branch child on path"));
                };
                expected = child;
                path = &path[1..];
            }
        }
    }
    Err(MptError::MalformedProof("proof ended before value"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::Mpt;

    #[test]
    fn empty_proof_rejected() {
        let proof = MptProof { key: b"k".to_vec(), value: b"v".to_vec(), nodes: vec![] };
        assert!(verify_proof(&Digest::ZERO, &proof).is_err());
    }

    #[test]
    fn truncated_proof_rejected() {
        let mut t = Mpt::new();
        for i in 0..32u64 {
            t.insert(&ledgerdb_crypto::sha3_256(&i.to_be_bytes()).0, vec![i as u8]);
        }
        let key = ledgerdb_crypto::sha3_256(&3u64.to_be_bytes());
        let root = t.root_hash();
        let mut proof = t.prove(&key.0).unwrap();
        assert!(proof.nodes.len() > 1);
        proof.nodes.pop();
        assert!(verify_proof(&root, &proof).is_err());
    }

    #[test]
    fn swapped_key_rejected() {
        let mut t = Mpt::new();
        t.insert(b"alpha", b"1".to_vec());
        t.insert(b"beta", b"2".to_vec());
        let root = t.root_hash();
        let mut proof = t.prove(b"alpha").unwrap();
        proof.key = b"beta".to_vec();
        assert!(verify_proof(&root, &proof).is_err());
    }
}
