//! A Merkle Patricia Trie (MPT) with 16-way branching.
//!
//! This is the substrate for the CM-Tree's top layer (`CM-Tree1`, §IV-B)
//! and for the ccMPT baseline: keys are 32-byte digests (the clue string
//! scattered through SHA-3), split into 64 hex nibbles; values are opaque
//! byte strings (for CM-Tree1, the serialized CM-Tree2 frontier).
//!
//! Node kinds follow the Ethereum MPT design the paper cites:
//!
//! * **Branch** — 16 child slots plus an optional value.
//! * **Extension** — a shared nibble run followed by one child.
//! * **Leaf** — a terminal nibble run ("long-tail leaf node for residual"
//!   in the paper's Fig 6 walk-through) plus the value.
//!
//! Every node hashes to a digest; the root digest is the verifiable
//! snapshot recorded per block. Inclusion proofs carry the node list along
//! the key path; verification re-hashes each node bottom-up and re-walks
//! the nibbles.

pub mod nibble;
pub mod node;
pub mod proof;
pub mod trie;
pub mod wire;

pub use node::Node;
pub use proof::{verify_absence, verify_proof, MptAbsenceProof, MptProof};
pub use trie::Mpt;

use std::fmt;

/// Errors surfaced by trie operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MptError {
    /// The proof failed to reproduce the trusted root.
    ProofMismatch,
    /// The proof was structurally malformed.
    MalformedProof(&'static str),
    /// Key absent where presence was required.
    KeyNotFound,
    /// Key present where absence was required.
    KeyPresent,
}

impl fmt::Display for MptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MptError::ProofMismatch => write!(f, "MPT proof does not match trusted root"),
            MptError::MalformedProof(w) => write!(f, "malformed MPT proof: {w}"),
            MptError::KeyNotFound => write!(f, "key not found in trie"),
            MptError::KeyPresent => write!(f, "key unexpectedly present in trie"),
        }
    }
}

impl std::error::Error for MptError {}
