//! Wire encodings for MPT proofs.

use crate::node::ProofNode;
use crate::proof::{MptAbsenceProof, MptProof};
use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::wire::{Reader, Wire, WireError, Writer};

impl Wire for ProofNode {
    fn encode(&self, w: &mut Writer) {
        match self {
            ProofNode::Branch { child_hashes, value } => {
                // Compact branch: a 16-bit presence bitmap (bit i =
                // child i occupied, MSB-first) followed by only the
                // occupied digests. A branch with k children costs
                // 2 + 32k bytes instead of 16 + 32·16.
                w.put_u8(0);
                let mut bitmap: u16 = 0;
                for (i, child) in child_hashes.iter().enumerate() {
                    if child.is_some() {
                        bitmap |= 1 << (15 - i);
                    }
                }
                w.put_raw(&bitmap.to_be_bytes());
                for child in child_hashes.iter().flatten() {
                    w.put_raw(&child.0);
                }
                value.encode(w);
            }
            ProofNode::Extension { prefix, child_hash } => {
                w.put_u8(1);
                w.put_bytes(prefix);
                child_hash.encode(w);
            }
            ProofNode::Leaf { suffix, value } => {
                w.put_u8(2);
                w.put_bytes(suffix);
                w.put_bytes(value);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => {
                let mut raw = [0u8; 2];
                raw.copy_from_slice(r.get_raw(2)?);
                let bitmap = u16::from_be_bytes(raw);
                let mut child_hashes: Box<[Option<Digest>; 16]> =
                    Box::new(std::array::from_fn(|_| None));
                for (i, slot) in child_hashes.iter_mut().enumerate() {
                    if bitmap >> (15 - i) & 1 == 1 {
                        *slot = Some(Digest::decode(r)?);
                    }
                }
                Ok(ProofNode::Branch { child_hashes, value: Option::decode(r)? })
            }
            1 => Ok(ProofNode::Extension {
                prefix: r.get_bytes()?,
                child_hash: Digest::decode(r)?,
            }),
            2 => Ok(ProofNode::Leaf { suffix: r.get_bytes()?, value: r.get_bytes()? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for MptProof {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.key);
        w.put_bytes(&self.value);
        self.nodes.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MptProof { key: r.get_bytes()?, value: r.get_bytes()?, nodes: Vec::decode(r)? })
    }
}

impl Wire for MptAbsenceProof {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.key);
        self.nodes.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MptAbsenceProof { key: r.get_bytes()?, nodes: Vec::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::verify_proof;
    use crate::trie::Mpt;
    use ledgerdb_crypto::sha3_256;

    fn sample() -> (Mpt, Vec<Digest>) {
        let mut t = Mpt::new();
        let keys: Vec<Digest> = (0..40u64).map(|i| sha3_256(&i.to_be_bytes())).collect();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k.as_bytes(), format!("v{i}").into_bytes());
        }
        (t, keys)
    }

    #[test]
    fn proof_round_trip_verifies() {
        let (t, keys) = sample();
        let root = t.root_hash();
        for k in keys.iter().take(5) {
            let proof = t.prove(k.as_bytes()).unwrap();
            let decoded = MptProof::from_wire(&proof.to_wire()).unwrap();
            assert_eq!(decoded, proof);
            verify_proof(&root, &decoded).unwrap();
        }
    }

    #[test]
    fn node_kinds_round_trip() {
        let leaf = ProofNode::Leaf { suffix: vec![1, 2], value: b"v".to_vec() };
        assert_eq!(ProofNode::from_wire(&leaf.to_wire()).unwrap(), leaf);
        let ext = ProofNode::Extension {
            prefix: vec![3],
            child_hash: ledgerdb_crypto::sha256(b"c"),
        };
        assert_eq!(ProofNode::from_wire(&ext.to_wire()).unwrap(), ext);
        let mut child_hashes: Box<[Option<Digest>; 16]> = Box::new(std::array::from_fn(|_| None));
        child_hashes[5] = Some(ledgerdb_crypto::sha256(b"x"));
        let branch = ProofNode::Branch { child_hashes, value: Some(b"bv".to_vec()) };
        assert_eq!(ProofNode::from_wire(&branch.to_wire()).unwrap(), branch);
    }

    #[test]
    fn bad_tag_rejected() {
        let mut bytes = ProofNode::Leaf { suffix: vec![], value: vec![] }.to_wire();
        bytes[0] = 9;
        assert_eq!(ProofNode::from_wire(&bytes), Err(WireError::BadTag(9)));
    }

    #[test]
    fn truncation_rejected() {
        let (t, keys) = sample();
        let bytes = t.prove(keys[0].as_bytes()).unwrap().to_wire();
        assert!(MptProof::from_wire(&bytes[..bytes.len() - 3]).is_err());
    }
}
