//! Nibble-path utilities: keys split into 4-bit digits for 16-way descent.

/// Expand a byte key into its nibble sequence (high nibble first).
pub fn to_nibbles(key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() * 2);
    for &b in key {
        out.push(b >> 4);
        out.push(b & 0x0f);
    }
    out
}

/// Pack a nibble slice back into bytes (must have even length).
pub fn from_nibbles(nibbles: &[u8]) -> Option<Vec<u8>> {
    if !nibbles.len().is_multiple_of(2) {
        return None;
    }
    Some(
        nibbles
            .chunks(2)
            .map(|pair| (pair[0] << 4) | (pair[1] & 0x0f))
            .collect(),
    )
}

/// Length of the longest common prefix of two nibble slices.
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let key = [0xde, 0xad, 0xbe, 0xef];
        let nibs = to_nibbles(&key);
        assert_eq!(nibs, vec![0xd, 0xe, 0xa, 0xd, 0xb, 0xe, 0xe, 0xf]);
        assert_eq!(from_nibbles(&nibs).unwrap(), key.to_vec());
    }

    #[test]
    fn odd_length_rejected() {
        assert!(from_nibbles(&[1, 2, 3]).is_none());
    }

    #[test]
    fn common_prefix() {
        assert_eq!(common_prefix_len(&[1, 2, 3], &[1, 2, 4]), 2);
        assert_eq!(common_prefix_len(&[1], &[2]), 0);
        assert_eq!(common_prefix_len(&[5, 6], &[5, 6]), 2);
        assert_eq!(common_prefix_len(&[], &[1]), 0);
    }
}
