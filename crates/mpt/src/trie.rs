//! The trie itself: insert/get, root hashing, proof generation.

use crate::nibble::{common_prefix_len, to_nibbles};
use crate::node::{Node, NodeKind, ProofNode};
use crate::proof::{MptAbsenceProof, MptProof};
use crate::MptError;
use ledgerdb_crypto::digest::Digest;

/// A Merkle Patricia Trie mapping byte keys to byte values.
///
/// The paper's CM-Tree1 keeps a configurable number of top layers cached
/// in memory with lower layers on disk; this implementation is fully
/// in-memory but exposes [`Mpt::node_count_by_depth`] so the bench suite
/// can report the cache-size trade-off (the "top 6-layers caching cost is
/// around 512MB" discussion of §IV-B2). Node digests are memoized, so
/// inserts cost O(depth) hashing and [`Mpt::root_hash`] is O(1) between
/// mutations.
#[derive(Clone, Debug, Default)]
pub struct Mpt {
    root: Option<Box<Node>>,
    len: usize,
}

impl Mpt {
    /// An empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root digest of the current trie state ([`Digest::ZERO`] when empty).
    pub fn root_hash(&self) -> Digest {
        self.root.as_ref().map(|n| n.hash()).unwrap_or(Digest::ZERO)
    }

    /// Hash dirty subtrees across `pool`, leaving [`Mpt::root_hash`] an
    /// O(depth) cache walk afterwards.
    ///
    /// Inserts rebuild the descent path with empty digest caches while
    /// untouched subtrees keep theirs, so after a batch of inserts the
    /// dirty region is a shallow cone from the root down to the touched
    /// leaves. This walks a few levels deep, collects the roots of
    /// still-uncached subtrees, and warms their [`Node::hash`] memos in
    /// parallel. Determinism is structural: every task computes a pure
    /// function of its own subtree into that subtree's `OnceLock`, so
    /// scheduling order cannot influence any digest — the subsequent
    /// serial `root_hash()` combines identical bytes in identical order
    /// whether or not this ran. Calling it is purely an optimization;
    /// skipping it (the serial baseline) yields the same root.
    pub fn hash_subtrees_with(&self, pool: &ledgerdb_pool::Pool) {
        const FRONTIER_DEPTH: u32 = 3;
        let Some(root) = &self.root else { return };
        let mut frontier: Vec<&Node> = Vec::new();
        collect_dirty_frontier(root, FRONTIER_DEPTH, &mut frontier);
        if frontier.len() < 2 {
            // One dirty cone (or none): parallelism has nothing to split.
            if let Some(n) = frontier.first() {
                n.hash();
            }
            return;
        }
        // Chunk so task count tracks worker count, not node count.
        let chunk = frontier.len().div_ceil(pool.workers().max(1) * 4).max(1);
        pool.scope(|s| {
            for nodes in frontier.chunks(chunk) {
                s.spawn(move || {
                    for n in nodes {
                        n.hash();
                    }
                });
            }
        });
    }

    /// Insert or replace `key → value`. Returns the previous value.
    pub fn insert(&mut self, key: &[u8], value: Vec<u8>) -> Option<Vec<u8>> {
        let nibbles = to_nibbles(key);
        let root = self.root.take();
        let (new_root, old) = Self::insert_at(root, &nibbles, value);
        self.root = Some(new_root);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(
        node: Option<Box<Node>>,
        path: &[u8],
        value: Vec<u8>,
    ) -> (Box<Node>, Option<Vec<u8>>) {
        let Some(node) = node else {
            return (
                Box::new(Node::new(NodeKind::Leaf { suffix: path.to_vec(), value })),
                None,
            );
        };
        match node.kind {
            NodeKind::Leaf { suffix, value: old_value } => {
                if suffix == path {
                    return (
                        Box::new(Node::new(NodeKind::Leaf { suffix, value })),
                        Some(old_value),
                    );
                }
                let cp = common_prefix_len(&suffix, path);
                // Split into a branch under a possible shared extension.
                let mut branch = Node::empty_branch();
                {
                    let NodeKind::Branch { children, value: bval } = &mut branch.kind else {
                        unreachable!()
                    };
                    if suffix.len() == cp {
                        *bval = Some(old_value);
                    } else {
                        let idx = suffix[cp] as usize;
                        children[idx] = Some(Box::new(Node::new(NodeKind::Leaf {
                            suffix: suffix[cp + 1..].to_vec(),
                            value: old_value,
                        })));
                    }
                    if path.len() == cp {
                        *bval = Some(value);
                    } else {
                        let idx = path[cp] as usize;
                        children[idx] = Some(Box::new(Node::new(NodeKind::Leaf {
                            suffix: path[cp + 1..].to_vec(),
                            value,
                        })));
                    }
                }
                let new_node = if cp > 0 {
                    Box::new(Node::new(NodeKind::Extension {
                        prefix: path[..cp].to_vec(),
                        child: Box::new(branch),
                    }))
                } else {
                    Box::new(branch)
                };
                (new_node, None)
            }
            NodeKind::Extension { prefix, child } => {
                let cp = common_prefix_len(&prefix, path);
                if cp == prefix.len() {
                    // Full prefix match: descend.
                    let (new_child, old) = Self::insert_at(Some(child), &path[cp..], value);
                    return (
                        Box::new(Node::new(NodeKind::Extension { prefix, child: new_child })),
                        old,
                    );
                }
                // Partial match: split the extension.
                let mut branch = Node::empty_branch();
                {
                    let NodeKind::Branch { children, value: bval } = &mut branch.kind else {
                        unreachable!()
                    };
                    // The existing subtree hangs under its next nibble.
                    let ext_idx = prefix[cp] as usize;
                    let rest = prefix[cp + 1..].to_vec();
                    children[ext_idx] = Some(if rest.is_empty() {
                        child
                    } else {
                        Box::new(Node::new(NodeKind::Extension { prefix: rest, child }))
                    });
                    // The new key hangs under its nibble (or lands on the branch).
                    if path.len() == cp {
                        *bval = Some(value);
                    } else {
                        let idx = path[cp] as usize;
                        children[idx] = Some(Box::new(Node::new(NodeKind::Leaf {
                            suffix: path[cp + 1..].to_vec(),
                            value,
                        })));
                    }
                }
                let new_node = if cp > 0 {
                    Box::new(Node::new(NodeKind::Extension {
                        prefix: path[..cp].to_vec(),
                        child: Box::new(branch),
                    }))
                } else {
                    Box::new(branch)
                };
                (new_node, None)
            }
            NodeKind::Branch { mut children, value: bval } => {
                if path.is_empty() {
                    let old = bval;
                    return (
                        Box::new(Node::new(NodeKind::Branch { children, value: Some(value) })),
                        old,
                    );
                }
                let idx = path[0] as usize;
                let (new_child, old) = Self::insert_at(children[idx].take(), &path[1..], value);
                children[idx] = Some(new_child);
                (
                    Box::new(Node::new(NodeKind::Branch { children, value: bval })),
                    old,
                )
            }
        }
    }

    /// Look up `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let nibbles = to_nibbles(key);
        let mut node = self.root.as_deref()?;
        let mut path: &[u8] = &nibbles;
        loop {
            match &node.kind {
                NodeKind::Leaf { suffix, value } => {
                    return if suffix.as_slice() == path { Some(value) } else { None };
                }
                NodeKind::Extension { prefix, child } => {
                    if path.len() < prefix.len() || &path[..prefix.len()] != prefix.as_slice() {
                        return None;
                    }
                    path = &path[prefix.len()..];
                    node = child;
                }
                NodeKind::Branch { children, value } => {
                    if path.is_empty() {
                        return value.as_deref();
                    }
                    node = children[path[0] as usize].as_deref()?;
                    path = &path[1..];
                }
            }
        }
    }

    /// Produce an inclusion proof for `key`.
    pub fn prove(&self, key: &[u8]) -> Result<MptProof, MptError> {
        let nibbles = to_nibbles(key);
        let mut nodes: Vec<ProofNode> = Vec::new();
        let mut node = self.root.as_deref().ok_or(MptError::KeyNotFound)?;
        let mut path: &[u8] = &nibbles;
        loop {
            nodes.push(node.proof_encoding());
            match &node.kind {
                NodeKind::Leaf { suffix, value } => {
                    if suffix.as_slice() == path {
                        return Ok(MptProof { key: key.to_vec(), value: value.clone(), nodes });
                    }
                    return Err(MptError::KeyNotFound);
                }
                NodeKind::Extension { prefix, child } => {
                    if path.len() < prefix.len() || &path[..prefix.len()] != prefix.as_slice() {
                        return Err(MptError::KeyNotFound);
                    }
                    path = &path[prefix.len()..];
                    node = child;
                }
                NodeKind::Branch { children, value } => {
                    if path.is_empty() {
                        let v = value.as_ref().ok_or(MptError::KeyNotFound)?;
                        return Ok(MptProof { key: key.to_vec(), value: v.clone(), nodes });
                    }
                    node = children[path[0] as usize]
                        .as_deref()
                        .ok_or(MptError::KeyNotFound)?;
                    path = &path[1..];
                }
            }
        }
    }

    /// Produce an absence proof for `key` (errors if the key is
    /// present): the committed path down to the node where the key's
    /// nibble walk diverges from the trie.
    pub fn prove_absence(&self, key: &[u8]) -> Result<MptAbsenceProof, MptError> {
        let nibbles = to_nibbles(key);
        let mut nodes: Vec<ProofNode> = Vec::new();
        let Some(mut node) = self.root.as_deref() else {
            // Empty trie: absence is trivial (root == ZERO).
            return Ok(MptAbsenceProof { key: key.to_vec(), nodes });
        };
        let mut path: &[u8] = &nibbles;
        loop {
            nodes.push(node.proof_encoding());
            match &node.kind {
                NodeKind::Leaf { suffix, .. } => {
                    return if suffix.as_slice() == path {
                        Err(MptError::KeyPresent)
                    } else {
                        Ok(MptAbsenceProof { key: key.to_vec(), nodes })
                    };
                }
                NodeKind::Extension { prefix, child } => {
                    if path.len() < prefix.len() || &path[..prefix.len()] != prefix.as_slice() {
                        return Ok(MptAbsenceProof { key: key.to_vec(), nodes });
                    }
                    path = &path[prefix.len()..];
                    node = child;
                }
                NodeKind::Branch { children, value } => {
                    if path.is_empty() {
                        return if value.is_some() {
                            Err(MptError::KeyPresent)
                        } else {
                            Ok(MptAbsenceProof { key: key.to_vec(), nodes })
                        };
                    }
                    match children[path[0] as usize].as_deref() {
                        Some(child) => {
                            node = child;
                            path = &path[1..];
                        }
                        None => return Ok(MptAbsenceProof { key: key.to_vec(), nodes }),
                    }
                }
            }
        }
    }

    /// Count nodes per depth level — used to model the paper's top-layer
    /// memory cache sizing.
    pub fn node_count_by_depth(&self) -> Vec<usize> {
        let mut counts = Vec::new();
        fn walk(node: &Node, depth: usize, counts: &mut Vec<usize>) {
            if counts.len() <= depth {
                counts.resize(depth + 1, 0);
            }
            counts[depth] += 1;
            match &node.kind {
                NodeKind::Branch { children, .. } => {
                    for c in children.iter().flatten() {
                        walk(c, depth + 1, counts);
                    }
                }
                NodeKind::Extension { child, .. } => walk(child, depth + 1, counts),
                NodeKind::Leaf { .. } => {}
            }
        }
        if let Some(root) = &self.root {
            walk(root, 0, &mut counts);
        }
        counts
    }

    /// Iterate all `(key-nibbles, value)` pairs (test/debug helper).
    pub fn iter_values(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        fn walk(node: &Node, prefix: Vec<u8>, out: &mut Vec<(Vec<u8>, Vec<u8>)>) {
            match &node.kind {
                NodeKind::Leaf { suffix, value } => {
                    let mut k = prefix;
                    k.extend_from_slice(suffix);
                    out.push((k, value.clone()));
                }
                NodeKind::Extension { prefix: p, child } => {
                    let mut k = prefix;
                    k.extend_from_slice(p);
                    walk(child, k, out);
                }
                NodeKind::Branch { children, value } => {
                    if let Some(v) = value {
                        out.push((prefix.clone(), v.clone()));
                    }
                    for (i, c) in children.iter().enumerate() {
                        if let Some(c) = c {
                            let mut k = prefix.clone();
                            k.push(i as u8);
                            walk(c, k, out);
                        }
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            walk(root, Vec::new(), &mut out);
        }
        out
    }

    /// Iterate all `(byte key, value)` pairs, sorted by key. Every key
    /// entered through [`Mpt::insert`] splits into an even number of
    /// nibbles, so packing is total; the sort makes the listing canonical
    /// for checkpoint serialization. Rebuilding a trie by re-inserting
    /// these pairs reproduces the same root (insertion-order independent).
    pub fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = self
            .iter_values()
            .into_iter()
            .map(|(nibbles, value)| {
                debug_assert!(nibbles.len() % 2 == 0, "byte-derived keys have even nibble count");
                let key = nibbles.chunks(2).map(|p| (p[0] << 4) | p[1]).collect();
                (key, value)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Collect roots of uncached subtrees, descending at most `depth`
/// levels. A node with a filled digest cache is clean — so is its whole
/// subtree (caches fill bottom-up) — and is skipped entirely.
fn collect_dirty_frontier<'t>(node: &'t Node, depth: u32, out: &mut Vec<&'t Node>) {
    if node.cached_hash().is_some() {
        return;
    }
    if depth == 0 {
        out.push(node);
        return;
    }
    match &node.kind {
        NodeKind::Branch { children, .. } => {
            let before = out.len();
            for child in children.iter().flatten() {
                collect_dirty_frontier(child, depth - 1, out);
            }
            if out.len() == before {
                // All children clean (or absent): this node itself is
                // the remaining unit of work.
                out.push(node);
            }
        }
        NodeKind::Extension { child, .. } => {
            let before = out.len();
            collect_dirty_frontier(child, depth - 1, out);
            if out.len() == before {
                out.push(node);
            }
        }
        NodeKind::Leaf { .. } => out.push(node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::verify_proof;
    use ledgerdb_crypto::sha3_256;

    #[test]
    fn insert_get_simple() {
        let mut t = Mpt::new();
        t.insert(b"clue1", b"v1".to_vec());
        t.insert(b"clue2", b"v2".to_vec());
        assert_eq!(t.get(b"clue1"), Some(b"v1".as_ref()));
        assert_eq!(t.get(b"clue2"), Some(b"v2".as_ref()));
        assert_eq!(t.get(b"clue3"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overwrite_returns_old() {
        let mut t = Mpt::new();
        assert_eq!(t.insert(b"k", b"v1".to_vec()), None);
        assert_eq!(t.insert(b"k", b"v2".to_vec()), Some(b"v1".to_vec()));
        assert_eq!(t.get(b"k"), Some(b"v2".as_ref()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn root_changes_with_content() {
        let mut t = Mpt::new();
        let r0 = t.root_hash();
        t.insert(b"a", b"1".to_vec());
        let r1 = t.root_hash();
        t.insert(b"b", b"2".to_vec());
        let r2 = t.root_hash();
        assert_ne!(r0, r1);
        assert_ne!(r1, r2);
    }

    #[test]
    fn parallel_subtree_hashing_matches_serial_root() {
        let pool = ledgerdb_pool::Pool::with_registry(
            3,
            &ledgerdb_telemetry::Registry::new(),
        );
        for n in [0u64, 1, 2, 17, 200] {
            let mut serial = Mpt::new();
            let mut pooled = Mpt::new();
            for i in 0..n {
                let k = sha3_256(&i.to_be_bytes());
                serial.insert(k.as_bytes(), k.0.to_vec());
                pooled.insert(k.as_bytes(), k.0.to_vec());
            }
            let want = serial.root_hash();
            pooled.hash_subtrees_with(&pool);
            assert_eq!(pooled.root_hash(), want, "n={n}");
            // Warming twice (now fully cached) is a no-op.
            pooled.hash_subtrees_with(&pool);
            assert_eq!(pooled.root_hash(), want, "n={n} rewarm");
            // Incremental: dirty a path, warm, compare again.
            let k = sha3_256(b"extra");
            serial.insert(k.as_bytes(), b"x".to_vec());
            pooled.insert(k.as_bytes(), b"x".to_vec());
            pooled.hash_subtrees_with(&pool);
            assert_eq!(pooled.root_hash(), serial.root_hash(), "n={n} incr");
        }
    }

    #[test]
    fn root_is_insertion_order_independent() {
        let mut t1 = Mpt::new();
        let mut t2 = Mpt::new();
        let keys: Vec<Digest> = (0..50u64).map(|i| sha3_256(&i.to_be_bytes())).collect();
        for k in &keys {
            t1.insert(k.as_bytes(), k.0.to_vec());
        }
        for k in keys.iter().rev() {
            t2.insert(k.as_bytes(), k.0.to_vec());
        }
        assert_eq!(t1.root_hash(), t2.root_hash());
    }

    #[test]
    fn cached_root_tracks_mutation() {
        // The memoized hash must never go stale across inserts.
        let mut t = Mpt::new();
        let mut roots = Vec::new();
        for i in 0..64u64 {
            let k = sha3_256(&i.to_be_bytes());
            t.insert(k.as_bytes(), i.to_be_bytes().to_vec());
            let r = t.root_hash();
            assert_eq!(r, t.root_hash(), "repeat hash stable at {i}");
            roots.push(r);
        }
        // All roots distinct (every insert changed the trie).
        roots.sort();
        roots.dedup();
        assert_eq!(roots.len(), 64);
        // Rebuilding from scratch reproduces the same final root.
        let mut fresh = Mpt::new();
        for i in 0..64u64 {
            let k = sha3_256(&i.to_be_bytes());
            fresh.insert(k.as_bytes(), i.to_be_bytes().to_vec());
        }
        assert_eq!(fresh.root_hash(), t.root_hash());
    }

    #[test]
    fn prove_verify_hashed_keys() {
        let mut t = Mpt::new();
        let keys: Vec<Digest> = (0..200u64).map(|i| sha3_256(&i.to_be_bytes())).collect();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k.as_bytes(), format!("value-{i}").into_bytes());
        }
        let root = t.root_hash();
        for (i, k) in keys.iter().enumerate() {
            let proof = t.prove(k.as_bytes()).unwrap();
            assert_eq!(proof.value, format!("value-{i}").into_bytes());
            verify_proof(&root, &proof).unwrap_or_else(|e| panic!("key {i}: {e}"));
        }
    }

    #[test]
    fn prove_missing_key_errors() {
        let mut t = Mpt::new();
        t.insert(b"exists", b"v".to_vec());
        assert_eq!(t.prove(b"missing").unwrap_err(), MptError::KeyNotFound);
    }

    #[test]
    fn proof_fails_against_wrong_root() {
        let mut t = Mpt::new();
        t.insert(b"k1", b"v1".to_vec());
        let proof = t.prove(b"k1").unwrap();
        t.insert(b"k2", b"v2".to_vec());
        assert_eq!(verify_proof(&t.root_hash(), &proof), Err(MptError::ProofMismatch));
    }

    #[test]
    fn tampered_value_fails() {
        let mut t = Mpt::new();
        t.insert(b"k1", b"v1".to_vec());
        t.insert(b"k2", b"v2".to_vec());
        let root = t.root_hash();
        let mut proof = t.prove(b"k1").unwrap();
        proof.value = b"forged".to_vec();
        assert!(verify_proof(&root, &proof).is_err());
    }

    #[test]
    fn shared_prefix_keys_split_correctly() {
        let mut t = Mpt::new();
        t.insert(b"\x11\x22\x33", b"a".to_vec());
        t.insert(b"\x11\x22\x44", b"b".to_vec());
        t.insert(b"\x11\x55\x00", b"c".to_vec());
        assert_eq!(t.get(b"\x11\x22\x33"), Some(b"a".as_ref()));
        assert_eq!(t.get(b"\x11\x22\x44"), Some(b"b".as_ref()));
        assert_eq!(t.get(b"\x11\x55\x00"), Some(b"c".as_ref()));
        let root = t.root_hash();
        for k in [b"\x11\x22\x33".as_ref(), b"\x11\x22\x44".as_ref(), b"\x11\x55\x00".as_ref()] {
            verify_proof(&root, &t.prove(k).unwrap()).unwrap();
        }
    }

    #[test]
    fn key_prefix_of_another_key() {
        // "ab" is a nibble-prefix of "abc": exercises branch values.
        let mut t = Mpt::new();
        t.insert(b"ab", b"short".to_vec());
        t.insert(b"abc", b"long".to_vec());
        assert_eq!(t.get(b"ab"), Some(b"short".as_ref()));
        assert_eq!(t.get(b"abc"), Some(b"long".as_ref()));
        let root = t.root_hash();
        verify_proof(&root, &t.prove(b"ab").unwrap()).unwrap();
        verify_proof(&root, &t.prove(b"abc").unwrap()).unwrap();
    }

    #[test]
    fn depth_histogram_nonempty() {
        let mut t = Mpt::new();
        for i in 0..100u64 {
            let k = sha3_256(&i.to_be_bytes());
            t.insert(k.as_bytes(), vec![0u8; 8]);
        }
        let counts = t.node_count_by_depth();
        assert_eq!(counts[0], 1);
        assert!(counts.iter().sum::<usize>() >= 100);
    }

    #[test]
    fn iter_values_returns_all() {
        let mut t = Mpt::new();
        for i in 0..20u64 {
            let k = sha3_256(&i.to_be_bytes());
            t.insert(k.as_bytes(), i.to_be_bytes().to_vec());
        }
        assert_eq!(t.iter_values().len(), 20);
    }
}
