//! MPT node kinds and their canonical hashing.
//!
//! Every node memoizes its digest: inserts rebuild only the nodes along
//! the descent path (fresh, empty caches), while untouched subtrees keep
//! their filled caches. Root hashing after an insert therefore costs
//! O(depth), not O(size) — the property that keeps CM-Tree1 insertion
//! cheap (§IV-B3).

use ledgerdb_crypto::digest::Digest;
use ledgerdb_crypto::sha256::Sha256;
use std::sync::OnceLock;

/// A trie node: a kind plus its memoized digest.
#[derive(Clone, Debug)]
pub struct Node {
    pub kind: NodeKind,
    hash: OnceLock<Digest>,
}

/// The three MPT node kinds.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// 16-way branch with optional value terminating exactly here.
    Branch {
        children: Box<[Option<Box<Node>>; 16]>,
        value: Option<Vec<u8>>,
    },
    /// Shared nibble run followed by a single child.
    Extension { prefix: Vec<u8>, child: Box<Node> },
    /// Terminal node: residual nibble run plus the value.
    Leaf { suffix: Vec<u8>, value: Vec<u8> },
}

impl Node {
    /// Wrap a kind in a node with an empty hash cache.
    pub fn new(kind: NodeKind) -> Node {
        Node { kind, hash: OnceLock::new() }
    }

    /// Create an empty branch.
    pub fn empty_branch() -> Node {
        Node::new(NodeKind::Branch {
            children: Box::new(std::array::from_fn(|_| None)),
            value: None,
        })
    }

    /// Canonical digest of this node (memoized).
    ///
    /// The encoding is injective per kind: a tag byte, then length-prefixed
    /// components; children contribute their digests, absent children a
    /// zero digest.
    pub fn hash(&self) -> Digest {
        *self.hash.get_or_init(|| {
            let mut h = Sha256::new();
            match &self.kind {
                NodeKind::Branch { children, value } => {
                    h.update(&[0x00]);
                    for child in children.iter() {
                        match child {
                            Some(c) => h.update(&c.hash().0),
                            None => h.update(&Digest::ZERO.0),
                        }
                    }
                    match value {
                        Some(v) => {
                            h.update(&[1]);
                            h.update(&(v.len() as u64).to_be_bytes());
                            h.update(v);
                        }
                        None => h.update(&[0]),
                    }
                }
                NodeKind::Extension { prefix, child } => {
                    h.update(&[0x01]);
                    h.update(&(prefix.len() as u64).to_be_bytes());
                    h.update(prefix);
                    h.update(&child.hash().0);
                }
                NodeKind::Leaf { suffix, value } => {
                    h.update(&[0x02]);
                    h.update(&(suffix.len() as u64).to_be_bytes());
                    h.update(suffix);
                    h.update(&(value.len() as u64).to_be_bytes());
                    h.update(value);
                }
            }
            Digest(h.finalize())
        })
    }

    /// The memoized digest if already computed, without computing it.
    /// Used by the parallel seal path to skip clean subtrees when
    /// collecting dirty frontiers.
    pub fn cached_hash(&self) -> Option<Digest> {
        self.hash.get().copied()
    }

    /// A compact, child-digest-level encoding of this node for proofs:
    /// the same bytes [`Node::hash`] consumes, so a verifier can re-hash
    /// proof nodes without seeing whole subtrees.
    pub fn proof_encoding(&self) -> ProofNode {
        match &self.kind {
            NodeKind::Branch { children, value } => ProofNode::Branch {
                child_hashes: Box::new(std::array::from_fn(|i| {
                    children[i].as_ref().map(|c| c.hash())
                })),
                value: value.clone(),
            },
            NodeKind::Extension { prefix, child } => {
                ProofNode::Extension { prefix: prefix.clone(), child_hash: child.hash() }
            }
            NodeKind::Leaf { suffix, value } => {
                ProofNode::Leaf { suffix: suffix.clone(), value: value.clone() }
            }
        }
    }
}

/// A node as carried inside a proof: children replaced by their digests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofNode {
    Branch {
        child_hashes: Box<[Option<Digest>; 16]>,
        value: Option<Vec<u8>>,
    },
    Extension { prefix: Vec<u8>, child_hash: Digest },
    Leaf { suffix: Vec<u8>, value: Vec<u8> },
}

impl ProofNode {
    /// Digest of the proof node — must reproduce the original node's hash.
    pub fn hash(&self) -> Digest {
        let mut h = Sha256::new();
        match self {
            ProofNode::Branch { child_hashes, value } => {
                h.update(&[0x00]);
                for child in child_hashes.iter() {
                    match child {
                        Some(d) => h.update(&d.0),
                        None => h.update(&Digest::ZERO.0),
                    }
                }
                match value {
                    Some(v) => {
                        h.update(&[1]);
                        h.update(&(v.len() as u64).to_be_bytes());
                        h.update(v);
                    }
                    None => h.update(&[0]),
                }
            }
            ProofNode::Extension { prefix, child_hash } => {
                h.update(&[0x01]);
                h.update(&(prefix.len() as u64).to_be_bytes());
                h.update(prefix);
                h.update(&child_hash.0);
            }
            ProofNode::Leaf { suffix, value } => {
                h.update(&[0x02]);
                h.update(&(suffix.len() as u64).to_be_bytes());
                h.update(suffix);
                h.update(&(value.len() as u64).to_be_bytes());
                h.update(value);
            }
        }
        Digest(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(suffix: Vec<u8>, value: &[u8]) -> Node {
        Node::new(NodeKind::Leaf { suffix, value: value.to_vec() })
    }

    #[test]
    fn proof_encoding_hash_matches_node_hash() {
        let l = leaf(vec![1, 2, 3], b"v");
        assert_eq!(l.hash(), l.proof_encoding().hash());

        let ext = Node::new(NodeKind::Extension { prefix: vec![4, 5], child: Box::new(l.clone()) });
        assert_eq!(ext.hash(), ext.proof_encoding().hash());

        let mut branch = Node::empty_branch();
        if let NodeKind::Branch { children, value } = &mut branch.kind {
            children[3] = Some(Box::new(l));
            *value = Some(b"bv".to_vec());
        }
        assert_eq!(branch.hash(), branch.proof_encoding().hash());
    }

    #[test]
    fn different_nodes_different_hashes() {
        let a = leaf(vec![1], b"x");
        let b = leaf(vec![1], b"y");
        let c = leaf(vec![2], b"x");
        assert_ne!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn branch_child_position_matters() {
        let l = leaf(vec![], b"v");
        let mut b1 = Node::empty_branch();
        let mut b2 = Node::empty_branch();
        if let NodeKind::Branch { children, .. } = &mut b1.kind {
            children[0] = Some(Box::new(l.clone()));
        }
        if let NodeKind::Branch { children, .. } = &mut b2.kind {
            children[1] = Some(Box::new(l));
        }
        assert_ne!(b1.hash(), b2.hash());
    }

    #[test]
    fn hash_is_memoized_and_stable() {
        let l = leaf(vec![7], b"stable");
        let h1 = l.hash();
        let h2 = l.hash();
        assert_eq!(h1, h2);
        // A clone of an already-hashed node keeps the same digest.
        assert_eq!(l.clone().hash(), h1);
    }
}
