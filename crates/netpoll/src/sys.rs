//! The OS boundary: five Linux syscalls, no libc crate.
//!
//! On x86_64 the calls go straight through the `syscall` instruction via
//! inline asm — zero FFI, matching the workspace's no-deps discipline.
//! On other Linux architectures the same five entry points resolve
//! through minimal `extern "C"` declarations against the libc that std
//! already links (syscall numbers differ per arch, and aarch64 has no
//! `epoll_wait` at all — only `epoll_pwait` — so the symbolic names are
//! the portable spelling).
//!
//! Everything returns `io::Result`; a negative kernel return value is
//! converted to `io::Error::from_raw_os_error` at this layer so callers
//! never see raw errno encodings.

use std::io;

/// `EPOLL_CTL_*` opcodes.
pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

/// Readiness bits (level-triggered; we never set `EPOLLET`).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

/// The kernel's epoll event record. x86_64 (and i386) pack it to 4-byte
/// alignment; every other architecture uses natural alignment.
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

fn check(ret: isize) -> io::Result<isize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::EpollEvent;
    use std::arch::asm;

    // x86_64 syscall numbers.
    const SYS_READ: usize = 0;
    const SYS_WRITE: usize = 1;
    const SYS_CLOSE: usize = 3;
    const SYS_EPOLL_WAIT: usize = 232;
    const SYS_EPOLL_CTL: usize = 233;
    const SYS_EVENTFD2: usize = 290;
    const SYS_EPOLL_CREATE1: usize = 291;

    /// One raw syscall. The kernel clobbers rcx/r11; everything else is
    /// the standard x86_64 syscall convention (args in rdi/rsi/rdx/r10).
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub unsafe fn epoll_create1(flags: i32) -> isize {
        syscall4(SYS_EPOLL_CREATE1, flags as usize, 0, 0, 0)
    }

    pub unsafe fn epoll_ctl(epfd: i32, op: i32, fd: i32, ev: *mut EpollEvent) -> isize {
        syscall4(SYS_EPOLL_CTL, epfd as usize, op as usize, fd as usize, ev as usize)
    }

    pub unsafe fn epoll_wait(epfd: i32, evs: *mut EpollEvent, max: i32, timeout_ms: i32) -> isize {
        syscall4(
            SYS_EPOLL_WAIT,
            epfd as usize,
            evs as usize,
            max as usize,
            timeout_ms as isize as usize,
        )
    }

    pub unsafe fn eventfd(init: u32, flags: i32) -> isize {
        syscall4(SYS_EVENTFD2, init as usize, flags as usize, 0, 0)
    }

    pub unsafe fn read(fd: i32, buf: *mut u8, len: usize) -> isize {
        syscall4(SYS_READ, fd as usize, buf as usize, len, 0)
    }

    pub unsafe fn write(fd: i32, buf: *const u8, len: usize) -> isize {
        syscall4(SYS_WRITE, fd as usize, buf as usize, len, 0)
    }

    pub unsafe fn close(fd: i32) -> isize {
        syscall4(SYS_CLOSE, fd as usize, 0, 0, 0)
    }
}

#[cfg(all(target_os = "linux", not(target_arch = "x86_64")))]
mod imp {
    //! Minimal FFI against the libc std already links. Syscall numbers
    //! are arch-specific (and aarch64 lacks `epoll_wait` entirely), so
    //! the symbolic entry points are the portable spelling.
    use super::EpollEvent;
    use std::os::raw::{c_int, c_uint, c_void};

    extern "C" {
        #[link_name = "epoll_create1"]
        fn c_epoll_create1(flags: c_int) -> c_int;
        #[link_name = "epoll_ctl"]
        fn c_epoll_ctl(epfd: c_int, op: c_int, fd: c_int, ev: *mut c_void) -> c_int;
        #[link_name = "epoll_wait"]
        fn c_epoll_wait(epfd: c_int, evs: *mut c_void, max: c_int, timeout: c_int) -> c_int;
        #[link_name = "eventfd"]
        fn c_eventfd(init: c_uint, flags: c_int) -> c_int;
        #[link_name = "read"]
        fn c_read(fd: c_int, buf: *mut c_void, len: usize) -> isize;
        #[link_name = "write"]
        fn c_write(fd: c_int, buf: *const c_void, len: usize) -> isize;
        #[link_name = "close"]
        fn c_close(fd: c_int) -> c_int;
    }

    fn errno_result(ret: isize) -> isize {
        if ret < 0 {
            -(std::io::Error::last_os_error().raw_os_error().unwrap_or(5) as isize)
        } else {
            ret
        }
    }

    pub unsafe fn epoll_create1(flags: i32) -> isize {
        errno_result(c_epoll_create1(flags) as isize)
    }

    pub unsafe fn epoll_ctl(epfd: i32, op: i32, fd: i32, ev: *mut EpollEvent) -> isize {
        errno_result(c_epoll_ctl(epfd, op, fd, ev.cast()) as isize)
    }

    pub unsafe fn epoll_wait(epfd: i32, evs: *mut EpollEvent, max: i32, timeout_ms: i32) -> isize {
        errno_result(c_epoll_wait(epfd, evs.cast(), max, timeout_ms) as isize)
    }

    pub unsafe fn eventfd(init: u32, flags: i32) -> isize {
        errno_result(c_eventfd(init, flags) as isize)
    }

    pub unsafe fn read(fd: i32, buf: *mut u8, len: usize) -> isize {
        errno_result(c_read(fd, buf.cast(), len))
    }

    pub unsafe fn write(fd: i32, buf: *const u8, len: usize) -> isize {
        errno_result(c_write(fd, buf.cast(), len))
    }

    pub unsafe fn close(fd: i32) -> isize {
        errno_result(c_close(fd) as isize)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Non-Linux stub: every call reports `Unsupported`. The event
    //! server is Linux-only; the threaded server remains the portable
    //! path, and this stub keeps the workspace compiling elsewhere.
    use super::EpollEvent;

    const ENOSYS: isize = -38;

    pub unsafe fn epoll_create1(_flags: i32) -> isize {
        ENOSYS
    }
    pub unsafe fn epoll_ctl(_e: i32, _o: i32, _f: i32, _ev: *mut EpollEvent) -> isize {
        ENOSYS
    }
    pub unsafe fn epoll_wait(_e: i32, _evs: *mut EpollEvent, _m: i32, _t: i32) -> isize {
        ENOSYS
    }
    pub unsafe fn eventfd(_init: u32, _flags: i32) -> isize {
        ENOSYS
    }
    pub unsafe fn read(_fd: i32, _buf: *mut u8, _len: usize) -> isize {
        ENOSYS
    }
    pub unsafe fn write(_fd: i32, _buf: *const u8, _len: usize) -> isize {
        ENOSYS
    }
    pub unsafe fn close(_fd: i32) -> isize {
        0
    }
}

pub fn sys_epoll_create1() -> io::Result<i32> {
    check(unsafe { imp::epoll_create1(EPOLL_CLOEXEC) }).map(|fd| fd as i32)
}

pub fn sys_epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // DEL on old kernels requires a non-null event pointer; passing one
    // unconditionally is harmless everywhere.
    check(unsafe { imp::epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

pub fn sys_epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    let ret = check(unsafe {
        imp::epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
    })?;
    Ok(ret as usize)
}

pub fn sys_eventfd_nonblocking() -> io::Result<i32> {
    check(unsafe { imp::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }).map(|fd| fd as i32)
}

pub fn sys_read(fd: i32, buf: &mut [u8]) -> io::Result<usize> {
    check(unsafe { imp::read(fd, buf.as_mut_ptr(), buf.len()) }).map(|n| n as usize)
}

pub fn sys_write(fd: i32, buf: &[u8]) -> io::Result<usize> {
    check(unsafe { imp::write(fd, buf.as_ptr(), buf.len()) }).map(|n| n as usize)
}

pub fn sys_close(fd: i32) {
    let _ = unsafe { imp::close(fd) };
}
