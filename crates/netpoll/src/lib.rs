//! # ledgerdb-netpoll
//!
//! A std-only readiness-polling primitive for the event-driven server:
//! a thin, level-triggered epoll wrapper with no libc crate (raw
//! `syscall` instructions on x86_64, minimal FFI elsewhere — see
//! [`sys`]), in the same no-deps discipline as `crates/pool`.
//!
//! Three types carry the whole API:
//!
//! * [`Poller`] — owns the epoll instance; sockets register by raw fd
//!   under a caller-chosen [`Token`] with an [`Interest`] set, and
//!   [`Poller::wait`] parks until readiness or a timeout;
//! * [`Token`] — an opaque `u64` the caller uses to map events back to
//!   its own connection table; the poller never interprets it;
//! * [`Waker`] — an eventfd registered like any other source, so
//!   another thread (a dispatch worker finishing a request, a shutdown
//!   path) can interrupt a blocked [`Poller::wait`].
//!
//! Level-triggered on purpose: the event loop's per-connection state
//! machines re-arm naturally ("still have buffered bytes to write" ⇒
//! keep `WRITABLE` interest), and a missed edge can never wedge a
//! connection — the next `wait` reports the level again.

mod sys;

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Caller-chosen identifier echoed back on every event for its source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// Which readiness directions a registration subscribes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest(sys::EPOLLIN | sys::EPOLLRDHUP);
    /// Writable only.
    pub const WRITABLE: Interest = Interest(sys::EPOLLOUT);
    /// Both directions.
    pub const BOTH: Interest = Interest(sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLOUT);
    /// Neither direction: stay registered but quiet. Error/hang-up
    /// conditions are still reported (the kernel never masks those) —
    /// the state an event loop wants while a request is in flight and
    /// reading more would break per-connection backpressure.
    pub const NONE: Interest = Interest(0);

    fn bits(self) -> u32 {
        self.0
    }
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: Token,
    bits: u32,
}

impl Event {
    /// Bytes (or an accepted connection, or an EOF) can be read without
    /// blocking. Error/hang-up conditions also report readable so the
    /// owner discovers them through an ordinary `read` returning 0/Err.
    pub fn readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP) != 0
    }

    /// The socket's send buffer has room.
    pub fn writable(&self) -> bool {
        self.bits & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0
    }

    /// The peer closed its end (full close or write-half shutdown).
    pub fn peer_closed(&self) -> bool {
        self.bits & (sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
    }

    /// The kernel flagged a socket error (fetch it via a read/write).
    pub fn is_error(&self) -> bool {
        self.bits & sys::EPOLLERR != 0
    }
}

/// An owned epoll instance.
///
/// Registration is by raw fd: the caller keeps ownership of the socket
/// and must deregister (or close) before the fd is reused. Closing a
/// registered fd removes it from the interest set kernel-side, so
/// dropping a `TcpStream` is always a safe way out.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { epfd: sys::sys_epoll_create1()? })
    }

    /// Subscribe `fd` under `token`.
    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd.as_raw_fd(),
            interest.bits(),
            token.0,
        )
    }

    /// Change an existing registration's interest set (token may change
    /// too — the kernel stores whatever is passed here).
    pub fn modify(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd.as_raw_fd(),
            interest.bits(),
            token.0,
        )
    }

    /// Remove a registration. Harmless if the fd was already closed.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Block until at least one source is ready, the timeout elapses
    /// (`events` comes back empty), or a [`Waker`] fires. `None` blocks
    /// indefinitely. Interrupted waits (`EINTR`) retry internally.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs deadline doesn't busy-spin at 0ms.
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32 + i32::from(d.subsec_nanos() % 1_000_000 != 0),
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = loop {
            match sys::sys_epoll_wait(self.epfd, &mut buf, timeout_ms) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &buf[..n] {
            // `ev` may be packed on x86_64; copy fields out by value.
            let (bits, data) = (ev.events, ev.data);
            events.push(Event { token: Token(data), bits });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::sys_close(self.epfd);
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`]: an eventfd that
/// any number of threads can [`Waker::wake`] without coordination. The
/// owning loop registers it like a socket and calls [`Waker::drain`]
/// when its token reports readable.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        Ok(Waker { fd: sys::sys_eventfd_nonblocking()? })
    }

    /// Make the next (or current) `wait` return. Safe from any thread;
    /// coalesces — a thousand wakes before the drain cost one event.
    pub fn wake(&self) {
        // A full eventfd counter (EAGAIN) already guarantees a pending
        // readable event, so the failure needs no handling.
        let _ = sys::sys_write(self.fd, &1u64.to_ne_bytes());
    }

    /// Consume pending wakeups so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = sys::sys_read(self.fd, &mut buf);
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::sys_close(self.fd);
    }
}

// Wakers cross threads by design: the fd is just an integer handle and
// eventfd writes are atomic kernel-side.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(&listener, Token(7), Interest::READABLE).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty(), "no connection yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable());
        assert!(listener.accept().is_ok());
    }

    #[test]
    fn stream_readability_tracks_bytes_and_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(&served, Token(1), Interest::READABLE).unwrap();
        let mut events = Vec::new();

        client.write_all(b"ping").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == Token(1) && e.readable()));
        let mut buf = [0u8; 16];
        let mut served_ref = &served;
        assert_eq!(served_ref.read(&mut buf).unwrap(), 4);

        // Level-triggered: with the bytes consumed, the level is gone.
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty(), "drained socket reports no level");

        // Peer close raises readable again (EOF is a read event).
        drop(client);
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == Token(1) && e.readable()));
        assert!(events.iter().any(|e| e.peer_closed()), "RDHUP/HUP reported");
        assert_eq!(served_ref.read(&mut buf).unwrap(), 0, "clean EOF");
    }

    #[test]
    fn writable_interest_follows_modify() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // Readable-only first: an idle writable socket must NOT wake us.
        poller.register(&served, Token(3), Interest::READABLE).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty());

        // Flip to writable: an empty send buffer reports immediately.
        poller.modify(&served, Token(4), Interest::WRITABLE).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == Token(4) && e.writable()));

        poller.deregister(&served).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty(), "deregistered socket is silent");
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new().unwrap());
        poller.register(waker.as_ref(), Token(99), Interest::READABLE).unwrap();

        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake();
        });

        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "woke promptly");
        assert!(events.iter().any(|e| e.token == Token(99)));
        waker.drain();
        handle.join().unwrap();

        // Drained: the level is gone, the next wait times out quietly.
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn wakes_coalesce_and_drain_fully() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(&waker, Token(5), Interest::READABLE).unwrap();
        for _ in 0..1000 {
            waker.wake();
        }
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1, "wakes coalesce into one event");
        waker.drain();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty(), "one drain clears the counter");
    }

    #[test]
    fn timeout_is_honored() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::from_millis(60))).unwrap();
        let waited = start.elapsed();
        assert!(events.is_empty());
        assert!(waited >= Duration::from_millis(50), "waited {waited:?}");
        assert!(waited < Duration::from_secs(5), "returned promptly: {waited:?}");
    }
}
