//! A binary Merkle-ized Patricia trie with truncated sibling links.
//!
//! The 16-ary MPT in `crates/mpt` pays up to 15 sibling digests per
//! level in every witness. This crate trades trie arity for witness
//! bytes: keys are routed by the bits of `sha256(key)` (a fixed 256-bit
//! path, so variable-length keys can never be prefixes of each other),
//! path compression skips runs of identical bits (each branch records
//! the bit index it splits on), and a witness carries exactly **one**
//! sibling per branch on the path.
//!
//! Sibling *links* are truncated to 16 bytes: a node's own identity is
//! its full 32-byte SHA-256 hash, but a parent commits only the first
//! 16 bytes of each child hash. The published root stays a full
//! 32-byte digest, so forging a proof still requires a 128-bit
//! second-preimage on an internal link — far beyond brute force, but a
//! weaker margin than the MPT's full-width links. That trade-off is
//! why the binary backend is opt-in (`--state-backend bin`) rather
//! than the default; see DESIGN.md §15.
//!
//! Subtree hashes are memoized per node (`OnceLock`), and inserts
//! rebuild only the descent path, so across seals the unchanged
//! subtrees are never re-hashed. `hash_subtrees_with` exposes the same
//! dirty-frontier parallel hashing hook the seal pipeline uses for the
//! MPT.

pub mod proof;
pub mod trie;
pub mod wire;

pub use proof::{verify_bin_proof, BinProof};
pub use trie::{BinTrie, LINK_LEN};

use std::fmt;

/// Errors surfaced by binary-trie operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinTrieError {
    /// The proof failed to reproduce the trusted root.
    ProofMismatch,
    /// The proof was structurally malformed.
    MalformedProof(&'static str),
    /// Key absent where presence was required.
    KeyNotFound,
}

impl fmt::Display for BinTrieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinTrieError::ProofMismatch => {
                write!(f, "binary trie proof does not match trusted root")
            }
            BinTrieError::MalformedProof(w) => write!(f, "malformed binary trie proof: {w}"),
            BinTrieError::KeyNotFound => write!(f, "key not found in binary trie"),
        }
    }
}

impl std::error::Error for BinTrieError {}
