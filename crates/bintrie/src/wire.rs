//! Compact wire codec for [`BinProof`]: the sibling count is implied
//! by the bitmap popcount, so the encoding is exactly
//! `key · leaf-option · 32-byte bitmap · popcount × LINK_LEN bytes`.

use crate::proof::BinProof;
use crate::trie::LINK_LEN;
use ledgerdb_crypto::wire::{Reader, Wire, WireError};

impl Wire for BinProof {
    fn encode(&self, w: &mut ledgerdb_crypto::wire::Writer) {
        w.put_bytes(&self.key);
        match &self.leaf {
            Some((k, v)) => {
                w.put_u8(1);
                w.put_bytes(k);
                w.put_bytes(v);
            }
            None => w.put_u8(0),
        }
        w.put_raw(&self.bitmap);
        for s in &self.siblings {
            w.put_raw(s);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let key = r.get_bytes()?;
        let leaf = match r.get_u8()? {
            0 => None,
            1 => Some((r.get_bytes()?, r.get_bytes()?)),
            t => return Err(WireError::BadTag(t)),
        };
        let mut bitmap = [0u8; 32];
        bitmap.copy_from_slice(r.get_raw(32)?);
        let count = bitmap.iter().map(|b| b.count_ones() as usize).sum();
        let mut siblings = Vec::with_capacity(count);
        for _ in 0..count {
            let mut s = [0u8; LINK_LEN];
            s.copy_from_slice(r.get_raw(LINK_LEN)?);
            siblings.push(s);
        }
        Ok(BinProof { key, leaf, bitmap, siblings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::BinTrie;
    use crate::verify_bin_proof;

    #[test]
    fn proof_round_trip_verifies() {
        let mut t = BinTrie::new();
        for i in 0..200u64 {
            t.insert(format!("k{i}").as_bytes(), format!("v{i}").into_bytes());
        }
        let root = t.root_hash();
        for probe in ["k7", "k199", "absent"] {
            let proof = t.prove(probe.as_bytes());
            let bytes = proof.to_wire();
            let decoded = BinProof::from_wire(&bytes).unwrap();
            assert_eq!(decoded, proof);
            assert_eq!(
                verify_bin_proof(&root, &decoded).unwrap(),
                verify_bin_proof(&root, &proof).unwrap()
            );
        }
    }

    #[test]
    fn truncation_rejected() {
        let mut t = BinTrie::new();
        t.insert(b"a", b"1".to_vec());
        t.insert(b"b", b"2".to_vec());
        let bytes = t.prove(b"a").to_wire();
        for cut in 0..bytes.len() {
            assert!(BinProof::from_wire(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut t = BinTrie::new();
        t.insert(b"a", b"1".to_vec());
        let mut bytes = t.prove(b"a").to_wire();
        // The leaf-option tag sits right after the length-prefixed key.
        let tag_at = 8 + 1; // u64 len + "a"
        bytes[tag_at] = 9;
        assert!(BinProof::from_wire(&bytes).is_err());
    }
}
