//! Binary-trie witnesses: one truncated sibling link per level, branch
//! positions packed into a 256-bit bitmap, inclusion and absence in
//! one shape.

use crate::trie::{branch_hash, leaf_hash, link, path_bit, route, LINK_LEN, PATH_BITS};
use crate::BinTrieError;
use ledgerdb_crypto::digest::Digest;

/// A witness that routing `sha256(key)` through the committed trie
/// terminates at `leaf`.
///
/// * **Inclusion** — `leaf` holds the queried key itself.
/// * **Absence** — `leaf` holds a *different* key (the one occupying
///   the queried key's routing slot), or is `None` for the empty trie.
///
/// `bitmap` marks which of the 256 routing-bit indices have a branch
/// on the path; `siblings` carries one [`LINK_LEN`]-byte link per set
/// bit, root-to-leaf. The verifier re-derives each direction from
/// `sha256(key)`, so a proof transplanted onto another path cannot
/// reproduce the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinProof {
    /// The queried key.
    pub key: Vec<u8>,
    /// The `(key, value)` of the leaf reached by routing; `None` only
    /// for the empty trie.
    pub leaf: Option<(Vec<u8>, Vec<u8>)>,
    /// 256-bit MSB-first bitmap of branch split positions on the path.
    pub bitmap: [u8; 32],
    /// One truncated sibling link per set bitmap bit, root-to-leaf.
    pub siblings: Vec<[u8; LINK_LEN]>,
}

impl BinProof {
    /// The proven value: `Some` when this is an inclusion proof for
    /// `key`, `None` when it demonstrates absence.
    pub fn value(&self) -> Option<&[u8]> {
        match &self.leaf {
            Some((k, v)) if *k == self.key => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Whether this witness claims the key is present.
    pub fn is_inclusion(&self) -> bool {
        self.value().is_some()
    }

    /// Branch split positions in root-to-leaf (ascending) order.
    pub(crate) fn set_bits(&self) -> impl Iterator<Item = u32> + '_ {
        (0..PATH_BITS).filter(|&i| self.bitmap[(i / 8) as usize] >> (7 - (i % 8)) & 1 == 1)
    }
}

/// Verify a [`BinProof`] against a trusted root. On success returns
/// the proven value (`None` = verified absence).
pub fn verify_bin_proof<'a>(
    root: &Digest,
    proof: &'a BinProof,
) -> Result<Option<&'a [u8]>, BinTrieError> {
    let Some((leaf_key, leaf_value)) = &proof.leaf else {
        // Empty-trie absence: nothing on the path, nothing beside it.
        if !proof.siblings.is_empty() || proof.bitmap != [0u8; 32] {
            return Err(BinTrieError::MalformedProof("empty-trie proof carries path data"));
        }
        if *root != Digest::ZERO {
            return Err(BinTrieError::ProofMismatch);
        }
        return Ok(None);
    };
    let set: Vec<u32> = proof.set_bits().collect();
    if set.len() != proof.siblings.len() {
        return Err(BinTrieError::MalformedProof("bitmap popcount != sibling count"));
    }
    let path = route(&proof.key);
    if leaf_key != &proof.key {
        // Absence leg: the resident leaf must genuinely occupy the
        // queried key's routing slot, i.e. agree with it on every
        // branch bit of the path. Without this the hash chain below
        // would still fail (directions enter the parent hashes), but
        // checking here turns a subtle mismatch into a typed error.
        let resident = route(leaf_key);
        for &bit in &set {
            if path_bit(&resident, bit) != path_bit(&path, bit) {
                return Err(BinTrieError::MalformedProof("absence leaf off the key's path"));
            }
        }
    }
    // Chain bottom-up: deepest branch combines the leaf, shallower
    // branches combine the running subtree; the final full hash must
    // equal the trusted root.
    let mut cur = leaf_hash(leaf_key, leaf_value);
    for (&bit, sibling) in set.iter().rev().zip(proof.siblings.iter().rev()) {
        let own = link(&cur);
        cur = if path_bit(&path, bit) {
            branch_hash(bit, sibling, &own)
        } else {
            branch_hash(bit, &own, sibling)
        };
    }
    if cur != *root {
        return Err(BinTrieError::ProofMismatch);
    }
    Ok(proof.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::BinTrie;

    fn populated(n: u64) -> BinTrie {
        let mut t = BinTrie::new();
        for i in 0..n {
            t.insert(format!("key-{i}").as_bytes(), format!("value-{i}").into_bytes());
        }
        t
    }

    #[test]
    fn inclusion_round_trip() {
        let t = populated(300);
        let root = t.root_hash();
        for i in [0u64, 7, 150, 299] {
            let proof = t.prove(format!("key-{i}").as_bytes());
            assert!(proof.is_inclusion());
            let value = verify_bin_proof(&root, &proof).unwrap();
            assert_eq!(value, Some(format!("value-{i}").as_bytes()));
        }
    }

    #[test]
    fn absence_round_trip() {
        let t = populated(300);
        let root = t.root_hash();
        for probe in ["missing", "key-300", "zzz"] {
            let proof = t.prove(probe.as_bytes());
            assert!(!proof.is_inclusion());
            assert_eq!(verify_bin_proof(&root, &proof).unwrap(), None);
        }
        // Empty trie: trivially absent.
        let empty = BinTrie::new();
        let proof = empty.prove(b"anything");
        assert_eq!(verify_bin_proof(&empty.root_hash(), &proof).unwrap(), None);
    }

    #[test]
    fn tampered_proofs_fail() {
        let t = populated(64);
        let root = t.root_hash();
        let good = t.prove(b"key-9");

        let mut tampered = good.clone();
        tampered.leaf.as_mut().unwrap().1 = b"forged".to_vec();
        assert!(verify_bin_proof(&root, &tampered).is_err());

        let mut tampered = good.clone();
        if let Some(s) = tampered.siblings.first_mut() {
            s[0] ^= 1;
        }
        assert!(verify_bin_proof(&root, &tampered).is_err());

        let mut tampered = good.clone();
        tampered.bitmap[31] ^= 1;
        assert!(verify_bin_proof(&root, &tampered).is_err());

        // Replaying a valid proof against a different root fails.
        let other = populated(65).root_hash();
        assert!(verify_bin_proof(&other, &good).is_err());

        // Claiming a different key on a valid path fails.
        let mut tampered = good.clone();
        tampered.key = b"key-10".to_vec();
        assert!(verify_bin_proof(&root, &tampered).is_err());
    }

    #[test]
    fn witness_is_one_sibling_per_level() {
        let t = populated(1000);
        let proof = t.prove(b"key-500");
        // ~log2(1000) ≈ 10 levels; each costs LINK_LEN bytes.
        assert!(proof.siblings.len() < 32, "path unexpectedly deep");
        assert_eq!(proof.siblings.len(), proof.set_bits().count());
    }
}
